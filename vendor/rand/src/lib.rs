//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the rand API this workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and uniform sampling over
//! `Range`/`RangeInclusive` via [`Rng::gen_range`]. `seed_from_u64` follows
//! the rand_core 0.6 PCG-based seed expansion so seeds produce the same
//! generator state as the real crate.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw one uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 sample range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// Widening-multiply bounded sample in `[0, span)` (Lemire's method, without
/// the rejection refinement — bias is < 2⁻⁶⁴·span, irrelevant here).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// A deterministic RNG constructible from a seed (mirror of
/// `rand_core::SeedableRng`, including the PCG-based `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 output function, byte
    /// for byte identical to rand_core 0.6.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let out = xorshifted.rotate_right(rot).to_le_bytes();
            chunk.copy_from_slice(&out[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..2000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let i: i32 = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&i));
            let j: i32 = rng.gen_range(-1i32..=1);
            assert!((-1..=1).contains(&j));
            let u: usize = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn inclusive_range_reaches_endpoints() {
        let mut rng = Counter(7);
        let mut seen = [false; 3];
        for _ in 0..500 {
            let v: i32 = rng.gen_range(-1i32..=1);
            seen[(v + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "endpoints never sampled: {seen:?}");
    }
}
