//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace imports (both
//! as traits and, under the `derive` feature, as the no-op derive macros from
//! the sibling `serde_derive` shim). The build container has no registry
//! access; since no crate in the tree performs actual serialization, marker
//! traits are sufficient to keep every `#[derive(Serialize, Deserialize)]`
//! site compiling.

/// Marker for types that opt into serialization (no-op in the shim).
pub trait Serialize {}

/// Marker for types that opt into deserialization (no-op in the shim).
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
