//! Offline stand-in for `proptest` 1.x.
//!
//! Reimplements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait over numeric ranges, tuples,
//! `prop_map`, and [`collection::vec`]; the `proptest!` macro with
//! `#![proptest_config]`, `pat in strategy` bindings, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, and `prop_assume!`; and a
//! deterministic per-test ChaCha8-seeded case runner. Shrinking is not
//! implemented — a failing case reports its assertion message and the case
//! number instead of a minimised input.

pub mod strategy {
    //! The value-generation trait and combinators.

    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    macro_rules! numeric_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
    numeric_range_inclusive_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy yielding `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Configuration and the per-test RNG.

    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Per-test configuration (only `cases` is honoured by the shim).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; keep that so un-configured
            // tests retain their seed-time coverage.
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this input out; try another.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    /// Deterministic RNG handed to strategies; seeded from the test name so
    /// every test sees a stable stream across runs.
    pub struct TestRng {
        /// Underlying generator (public so range strategies can sample).
        pub rng: ChaCha8Rng,
    }

    impl TestRng {
        /// Seeds from an FNV-1a hash of `label` (typically the test name).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { rng: ChaCha8Rng::seed_from_u64(h) }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::collection::SizeRange;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Property-test declaration macro; see the crate docs for the supported
/// grammar (`pat in strategy` bindings with optional `#![proptest_config]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    ::std::module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(64).max(4096),
                                "prop_assume rejected too many inputs ({} accepted)",
                                accepted
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!("property failed (case {}): {}", accepted + 1, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            lhs,
            rhs,
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            lhs,
            rhs,
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, $($fmt)*);
    }};
}

/// Rejects the current case (resampled, not counted) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn offset_pair() -> impl Strategy<Value = (i32, i32)> {
        (0i32..10, -3i32..=3).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_tuples(x in 0i32..10, (a, b) in offset_pair(), u in 0.0f64..1.0) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((b - a).abs() <= 3);
            prop_assert!((0.0..1.0).contains(&u));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0i32..5, 2..7), w in crate::collection::vec(0u8..2, 4)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn assume_filters(n in 0i32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0i32..1000;
        let mut r1 = crate::test_runner::TestRng::deterministic("label");
        let mut r2 = crate::test_runner::TestRng::deterministic("label");
        let a: Vec<i32> = (0..32).map(|_| s.generate(&mut r1)).collect();
        let b: Vec<i32> = (0..32).map(|_| s.generate(&mut r2)).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 5i32..9) {
                prop_assert!(x < 7, "x was {}", x);
            }
        }
        inner();
    }
}
