//! Offline stand-in for `criterion` 0.5.
//!
//! Mirrors the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — with a simple median-of-samples timer instead of the full
//! statistical machinery. Good enough to keep bench code compiling and to
//! give indicative numbers; swap the real crate back in when a registry is
//! available.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// No-op CLI integration hook (the real crate parses bench filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _parent: self, name, sample_size }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, self.default_sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted, ignored by the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Times `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Closes the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark, optionally parameterised.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("  {label:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let best = b.samples[0];
    eprintln!("  {label:<40} median {median:>12.3?}   best {best:>12.3?}");
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
