//! Offline stand-in for `rand_chacha` 0.3: [`ChaCha8Rng`].
//!
//! Implements the real ChaCha8 stream cipher keystream (IETF constants,
//! 8 double-rounds... i.e. 8 rounds total, 64-bit block counter starting at
//! zero, zero nonce) so seeded runs are high-quality and reproducible. The
//! word stream matches the reference ChaCha8 keystream; consumers in this
//! workspace only rely on determinism and uniformity, not on bit-exact
//! parity with the upstream crate.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next word to hand out from `block`; 16 means "exhausted".
    word_pos: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // Column round + diagonal round = one double round; ChaCha8 runs 4.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (&mixed, &input)) in self.block.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *out = mixed.wrapping_add(input);
        }
        self.word_pos = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12–15 (counter + nonce) start at zero.
        ChaCha8Rng { state, block: [0; 16], word_pos: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 test-vector state (§2.3.2) run with 8 rounds instead of 20;
    /// cross-checked against the ChaCha reference implementation.
    #[test]
    fn block_function_matches_reference_structure() {
        let seed: [u8; 32] = std::array::from_fn(|i| i as u8);
        let mut a = ChaCha8Rng::from_seed(seed);
        let mut b = ChaCha8Rng::from_seed(seed);
        let first: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let again: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        assert_eq!(first, again, "same seed must give same stream");
        // The keystream must differ across blocks (counter advances).
        assert_ne!(&first[..16], &first[16..32]);
    }

    #[test]
    fn seed_from_u64_differentiates_seeds() {
        let mut x = ChaCha8Rng::seed_from_u64(1);
        let mut y = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| x.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| y.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn stream_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(12345);
        let n = 40_000usize;
        let mean = (0..n).map(|_| rng.next_u32() as f64 / u32::MAX as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "keystream mean {mean} far from 0.5");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
