//! Offline stand-in for `crossbeam-channel` 0.5.
//!
//! Implements the subset this workspace uses: [`unbounded`] multi-producer
//! multi-consumer channels with cloneable senders and receivers, blocking
//! [`Receiver::recv`], and disconnect semantics (recv fails once every
//! sender is dropped and the queue is drained; send fails once every
//! receiver is dropped). Built on `Mutex<VecDeque>` + `Condvar` — slower
//! than the real crate's lock-free core but semantically equivalent for the
//! executor's phase-synchronised message volumes.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message back.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub enum TryRecvError {
    /// Channel currently empty but still connected.
    Empty,
    /// Channel empty and every sender dropped.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueues `msg`, failing only if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        self.shared.queue.lock().unwrap().push_back(msg);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake blocked receivers so they observe disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.shared.ready.wait(queue).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(msg) = queue.pop_front() {
            return Ok(msg);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_a_sender() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn disconnect_on_all_senders_dropped() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_dropped() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0u64;
        for _ in 0..1000 {
            sum += rx.recv().unwrap() as u64;
        }
        h.join().unwrap();
        assert_eq!(sum, 999 * 1000 / 2);
    }
}
