//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` to keep its public
//! types serde-ready; nothing actually serializes today (no serde_json or
//! bincode in the dependency tree). This shim accepts the derive attribute
//! syntax (including `#[serde(...)]` helper attributes) and expands to an
//! empty token stream, so the annotated types compile unchanged while the
//! real implementation can be swapped back in whenever a registry is
//! available.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
