//! `scmd` — command-line driver for the shift-collapse MD library.
//!
//! ```text
//! scmd run      --system lj|silica --cells N --steps N --method sc|fs|hybrid
//!               [--dt X] [--temp T] [--subdivision K] [--skin S] [--xyz PATH]
//!               [--metrics-json PATH] [--trace PATH]
//! scmd bench    [--out PATH] [--quick true] [--baseline PATH] [--wall-tol PCT] [--summary PATH]
//! scmd bench    --compare OLD --with NEW [--wall-tol PCT] [--summary PATH]
//! scmd chaos    [--cases lj,silica] [--storms N] [--seed S] [--steps N] [--faults N] [--out DIR]
//! scmd patterns [--n N]           # pattern algebra summary
//! scmd model    --machine xeon|bgq [--grain N]   # cost-model report
//! ```
//!
//! `--metrics-json PATH` streams one `Telemetry` JSON line per report block
//! (plus a final snapshot) to PATH; the layout is pinned by
//! `schema/metrics.schema.json` and validated in CI.
//!
//! `--trace PATH` records event-level traces (every phase interval plus
//! checkpoint/comm markers) and writes a Chrome Trace Format file loadable
//! in `chrome://tracing` or Perfetto.
//!
//! `scmd chaos` runs seeded randomized fault storms (all five fault
//! kinds, crashes included) against supervised 8-rank runs, asserting
//! the physics guardrails plus exact accepted-tuple equality against a
//! fault-free reference; each failing storm writes a reproducer bundle
//! (seed, fault script, chrome trace, telemetry) and the process exits
//! non-zero.
//!
//! `scmd bench` runs the pinned deterministic workload matrix and writes
//! `BENCH_<gitsha>.json` (layout pinned by `schema/bench.schema.json`);
//! with `--baseline` it additionally diffs against a previous bench file
//! and exits non-zero on any regression. `--compare OLD --with NEW` diffs
//! two existing files without running the matrix.

use shift_collapse_md::md::{thermalize, write_xyz, Method};
use shift_collapse_md::pattern::{generate_fs, import_volume_cubic, shift_collapse, theory};
use shift_collapse_md::prelude::*;
use std::collections::HashMap;
use std::io::Write;

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| usage("missing subcommand"));
    let flags = parse_flags(args);
    // The whole pipeline funnels through the unified `sc_md::Error`, so
    // every failure mode (build, I/O, metrics output) exits through one
    // place with one message shape.
    let result = match cmd.as_str() {
        "run" => run(&flags),
        "bench" => bench(&flags),
        "chaos" => chaos(&flags),
        "patterns" => {
            patterns(&flags);
            Ok(())
        }
        "model" => {
            model(&flags);
            Ok(())
        }
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown subcommand {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "scmd — shift-collapse molecular dynamics\n\n\
         USAGE:\n  scmd run      --system lj|silica [--cells N] [--steps N] [--method sc|fs|hybrid]\n\
         \x20               [--dt X] [--temp T] [--subdivision K] [--skin S] [--xyz PATH]\n\
         \x20               [--metrics-json PATH] [--trace PATH]\n\
         \x20 scmd bench    [--out PATH] [--quick true] [--baseline PATH] [--wall-tol PCT] [--summary PATH]\n\
         \x20 scmd bench    --compare OLD --with NEW [--wall-tol PCT] [--summary PATH]\n\
         \x20 scmd chaos    [--cases lj,silica] [--storms N] [--seed S] [--steps N]\n\
         \x20               [--faults N] [--out DIR]\n\
         \x20 scmd patterns [--n N]\n\
         \x20 scmd model    [--machine xeon|bgq] [--grain N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn parse_flags(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let Some(key) = a.strip_prefix("--") else {
            usage(&format!("unexpected argument {a:?}"));
        };
        let val = args.next().unwrap_or_else(|| usage(&format!("--{key} needs a value")));
        out.insert(key.to_string(), val);
    }
    out
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .map(|v| v.parse().unwrap_or_else(|_| usage(&format!("bad value for --{key}: {v:?}"))))
        .unwrap_or(default)
}

fn method_of(flags: &HashMap<String, String>) -> Method {
    match flags.get("method").map(String::as_str) {
        None | Some("sc") => Method::ShiftCollapse,
        Some("fs") => Method::FullShell,
        Some("hybrid") => Method::Hybrid,
        Some(m) => usage(&format!("unknown method {m:?}")),
    }
}

fn run(flags: &HashMap<String, String>) -> Result<(), shift_collapse_md::md::Error> {
    let system = flags.get("system").map(String::as_str).unwrap_or("lj");
    let steps: usize = get(flags, "steps", 100);
    let method = method_of(flags);
    let dt_default = if system == "silica" { 0.0005 } else { 0.002 };
    let dt: f64 = get(flags, "dt", dt_default);
    let subdivision: i32 = get(flags, "subdivision", 1);
    let runtime = RuntimeConfig {
        verlet_skin: get(flags, "skin", 0.0),
        metrics: if flags.contains_key("metrics-json") {
            Registry::new()
        } else {
            Registry::disabled()
        },
        tracer: if flags.contains_key("trace") {
            shift_collapse_md::obs::Tracer::new()
        } else {
            shift_collapse_md::obs::Tracer::disabled()
        },
        ..RuntimeConfig::default()
    };
    let mut sim = match system {
        "lj" => {
            let cells: usize = get(flags, "cells", 6);
            let (mut store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(cells, 1.5599), 0.0, 42);
            thermalize(&mut store, get(flags, "temp", 1.0), 42);
            Simulation::builder(store, bbox)
                .pair_potential(Box::new(LennardJones::reduced(2.5)))
                .method(method)
                .timestep(dt)
                .cell_subdivision(subdivision)
                .runtime(runtime)
                .build()?
        }
        "silica" => {
            let cells: usize = get(flags, "cells", 3);
            let v = Vashishta::silica();
            let (mut store, bbox) = build_silica_like(cells, 7.16, v.params().masses, 0.0, 42);
            thermalize(&mut store, get(flags, "temp", 0.05), 42);
            Simulation::builder(store, bbox)
                .pair_potential(Box::new(v.pair.clone()))
                .triplet_potential(Box::new(v.triplet.clone()))
                .method(method)
                .timestep(dt)
                .cell_subdivision(subdivision)
                .runtime(runtime)
                .build()?
        }
        other => usage(&format!("unknown system {other:?}")),
    };
    let mut metrics_out = match flags.get("metrics-json") {
        Some(path) => Some(std::io::BufWriter::new(std::fs::File::create(path)?)),
        None => None,
    };

    println!(
        "# {} | {} atoms | {} | dt = {dt} | {steps} steps",
        system,
        sim.store().len(),
        sim.method().name()
    );
    let e0 = sim.total_energy();
    let t0 = std::time::Instant::now();
    let report_every = (steps / 10).max(1);
    for block in 0..steps.div_ceil(report_every) {
        let todo = report_every.min(steps - block * report_every);
        let stats = sim.run(todo);
        println!(
            "step {:>6}  E = {:>12.4}  T = {:>8.4}  tuples/step = {}",
            sim.steps_done(),
            stats.energy.total() + sim.store().kinetic_energy(),
            sim.store().temperature(),
            stats.tuples.total_accepted(),
        );
        if let Some(out) = &mut metrics_out {
            writeln!(out, "{}", stats.to_json())?;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let e1 = sim.total_energy();
    println!(
        "# {:.2} ms/step | NVE drift {:.2e} | candidates/step: {}",
        wall / steps as f64 * 1e3,
        ((e1 - e0) / e0.abs()).abs(),
        sim.telemetry().tuples.total_candidates(),
    );
    if let Some(mut out) = metrics_out {
        writeln!(out, "{}", sim.telemetry().to_json())?;
        out.flush()?;
        println!("# telemetry JSON written to {}", flags["metrics-json"]);
    }
    if let Some(path) = flags.get("xyz") {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        write_xyz(&mut f, sim.store(), sim.bbox(), &format!("step={}", sim.steps_done()))?;
        println!("# final snapshot written to {path}");
    }
    if let Some(path) = flags.get("trace") {
        let events = sim.tracer().events();
        let dropped = sim.tracer().dropped();
        std::fs::write(path, shift_collapse_md::obs::chrome_trace(&events).to_string())?;
        println!("# chrome trace written to {path} ({} events, {dropped} dropped)", events.len());
    }
    Ok(())
}

fn bench(flags: &HashMap<String, String>) -> Result<(), shift_collapse_md::md::Error> {
    use shift_collapse_md::bench::{
        compare, git_sha, markdown_delta_table, run_matrix, to_document,
    };
    use shift_collapse_md::obs::json::Json;

    let wall_tol: f64 = get(flags, "wall-tol", 200.0);
    let load = |path: &str| -> Result<Json, shift_collapse_md::md::Error> {
        let text = std::fs::read_to_string(path)?;
        Ok(Json::parse(&text)
            .unwrap_or_else(|e| usage(&format!("{path} is not a bench JSON document: {e}"))))
    };
    let diff = |baseline: &Json, current: &Json| -> Result<(), shift_collapse_md::md::Error> {
        let (report, failures) = compare(baseline, current, wall_tol);
        for line in &report {
            println!("{line}");
        }
        // --summary PATH appends the per-case wall delta table as markdown
        // (pointed at $GITHUB_STEP_SUMMARY by the CI bench-regression job).
        if let Some(path) = flags.get("summary") {
            use std::io::Write;
            let table = markdown_delta_table(baseline, current);
            let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
            f.write_all(table.as_bytes())?;
            println!("# wall delta table appended to {path}");
        }
        if failures.is_empty() {
            println!("# no regressions (wall tolerance {wall_tol}%)");
            Ok(())
        } else {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    };

    // Pure comparator mode: diff two existing bench files.
    if let Some(old) = flags.get("compare") {
        let new = flags.get("with").unwrap_or_else(|| usage("--compare OLD needs --with NEW"));
        return diff(&load(old)?, &load(new)?);
    }

    let quick: bool = get(flags, "quick", false);
    let cases = run_matrix(quick);
    let doc = to_document(&cases);
    for c in &cases {
        println!(
            "{:<28} {:>6} atoms  {:>3} steps  {:>9.3} ms/step  {:>10} tuples",
            c.name, c.atoms, c.steps, c.ms_per_step, c.tuples_accepted
        );
    }
    let out = flags.get("out").cloned().unwrap_or_else(|| format!("BENCH_{}.json", git_sha()));
    std::fs::write(&out, doc.to_string())?;
    println!("# bench document written to {out}");
    match flags.get("baseline") {
        Some(path) => diff(&load(path)?, &doc),
        None => Ok(()),
    }
}

fn chaos(flags: &HashMap<String, String>) -> Result<(), shift_collapse_md::md::Error> {
    use shift_collapse_md::chaos::{run_soak, ChaosConfig};

    let defaults = ChaosConfig::default();
    let config = ChaosConfig {
        cases: flags
            .get("cases")
            .map(|v| v.split(',').map(str::to_string).collect())
            .unwrap_or(defaults.cases),
        storms: get(flags, "storms", defaults.storms),
        seed: get(flags, "seed", defaults.seed),
        steps: get(flags, "steps", defaults.steps),
        faults: get(flags, "faults", defaults.faults),
        out_dir: flags.get("out").map(Into::into).unwrap_or(defaults.out_dir),
    };
    println!(
        "# chaos soak: {} × {} storms | {} steps | {} faults/storm | base seed {}",
        config.cases.join(","),
        config.storms,
        config.steps,
        config.faults,
        config.seed,
    );
    let outcomes = run_soak(&config).unwrap_or_else(|e| usage(&e));
    let mut failures = 0;
    for o in &outcomes {
        match (&o.failure, &o.bundle) {
            (None, _) => println!("storm {:<8} seed {:>6}  ok", o.case, o.seed),
            (Some(why), bundle) => {
                failures += 1;
                eprintln!("storm {:<8} seed {:>6}  FAILED: {why}", o.case, o.seed);
                if let Some(dir) = bundle {
                    eprintln!("  reproducer bundle: {}", dir.display());
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("# {failures}/{} storms violated guardrails", outcomes.len());
        std::process::exit(1);
    }
    println!("# all {} storms within guardrails", outcomes.len());
    Ok(())
}

fn patterns(flags: &HashMap<String, String>) {
    let n: usize = get(flags, "n", 3);
    let fs = generate_fs(n);
    let sc = shift_collapse(n);
    println!("n = {n}");
    println!("  |Ψ_FS| = {} (27^{} = {})", fs.len(), n - 1, theory::fs_path_count(n));
    println!("  |Ψ_SC| = {} (Eq. 29: {})", sc.len(), theory::sc_path_count(n));
    println!("  search ratio FS/SC = {:.3}", theory::fs_over_sc_ratio(n));
    println!("  SC footprint = {} cells (first octant [0,{}]³)", sc.footprint(), n - 1);
    for l in [1u32, 2, 4] {
        println!(
            "  imports, l = {l}: SC {} | FS {} | midpoint {}",
            import_volume_cubic(l, &sc),
            import_volume_cubic(l, &fs),
            theory::midpoint_import_volume(l as u64, n),
        );
    }
}

fn model(flags: &HashMap<String, String>) {
    let machine = match flags.get("machine").map(String::as_str) {
        None | Some("xeon") => MachineProfile::xeon(),
        Some("bgq") => MachineProfile::bgq(),
        Some(m) => usage(&format!("unknown machine {m:?}")),
    };
    let model = MdCostModel::new(shift_collapse_md::netmodel::SilicaWorkload::silica(), machine);
    let grain: f64 = get(flags, "grain", 425.0);
    println!("machine: {} | granularity N/P = {grain}", model.machine.name);
    for m in Method::ALL {
        let c = model.step_time(m, grain);
        println!(
            "  {:<10} total {:>10.3} ms (compute {:>9.3} ms, comm {:>9.3} ms, {} ghosts)",
            m.name(),
            c.total_s() * 1e3,
            c.compute_s * 1e3,
            c.comm_s * 1e3,
            c.ghosts as u64,
        );
    }
    match model.crossover(Method::ShiftCollapse, Method::Hybrid, 24.0, 1e6) {
        Some(x) => println!("  SC → Hybrid crossover: N/P ≈ {x:.0}"),
        None => println!("  no SC → Hybrid crossover found"),
    }
}
