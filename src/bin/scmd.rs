//! `scmd` — command-line driver for the shift-collapse MD library.
//!
//! ```text
//! scmd run      [--spec PATH] | [--system lj|silica --cells N --steps N --method sc|fs|hybrid
//!               --dt X --temp T --subdivision K --skin S]
//!               [--xyz PATH] [--metrics-json PATH] [--trace PATH] [--results PATH]
//! scmd bench    [--spec PATH] [--out PATH] [--quick true] [--baseline PATH]
//!               [--wall-tol PCT] [--summary PATH]
//! scmd bench    --compare OLD --with NEW [--wall-tol PCT] [--summary PATH]
//! scmd chaos    [--cases lj,silica] [--spec PATH] [--storms N] [--seed S] [--steps N]
//!               [--faults N] [--out DIR]
//! scmd serve    [--socket PATH] [--lanes N] [--queue N] [--slice N] [--state DIR]
//!               [--resume true] [--metrics-addr HOST:PORT]
//! scmd submit   --spec PATH [--socket PATH]      # returns the job id
//! scmd status   [--id job-N] [--socket PATH]     # one job, or the whole table
//! scmd watch    job-N [--every STEPS] [--count N] [--json true] [--socket PATH]
//! scmd dump     job-N [--out PATH] [--socket PATH]   # flight-recorder snapshot
//! scmd metrics  [--out PATH] [--socket PATH]     # Prometheus text exposition
//! scmd cancel   --id job-N [--socket PATH]
//! scmd results  --id job-N [--socket PATH] [--out PATH]
//! scmd shutdown [--socket PATH]                  # checkpoint jobs, stop the daemon
//! scmd patterns [--n N]           # pattern algebra summary
//! scmd model    --machine xeon|bgq [--grain N]   # cost-model report
//! ```
//!
//! Every workload-running verb is spec-driven: `--spec PATH` loads an
//! `sc-scenario/1` document (JSON or TOML, see `scenarios/`), and the
//! legacy `--system/--cells/...` flags on `run` are a shim that builds
//! the equivalent spec — both paths instantiate through `sc-spec`, so a
//! flag-driven run and its spec twin are bitwise-identical.
//!
//! `--metrics-json PATH` streams one `Telemetry` JSON line per report block
//! (plus a final snapshot) to PATH; the layout is pinned by
//! `schema/metrics.schema.json` and validated in CI.
//!
//! `--trace PATH` records event-level traces and writes a Chrome Trace
//! Format file loadable in `chrome://tracing` or Perfetto.
//!
//! `--results PATH` writes the run's `sc-observables/1` document — the
//! same byte-stable layout `scmd serve` persists per finished job, so a
//! standalone run and a served job of the same spec can be diffed with
//! `cmp`.
//!
//! `scmd serve` is the multi-tenant job service: a Unix-socket daemon with
//! fair round-robin scheduling across worker lanes, a bounded queue with
//! typed backpressure, per-job supervision (rollback recovery under fault
//! storms), and checkpoint persistence so `--resume true` continues
//! interrupted jobs bitwise-exactly after a restart.
//!
//! The live telemetry plane watches jobs without perturbing them:
//! `scmd watch job-N` streams a running job's telemetry snapshots (same
//! documents as `--metrics-json`, bounded queues that drop-oldest under
//! backpressure), `scmd dump job-N` snapshots its flight-recorder trace
//! ring into a Chrome Trace file mid-run, and `scmd metrics` (or the
//! daemon's `--metrics-addr` HTTP listener) exports daemon- plus
//! per-job Prometheus series.
//!
//! Malformed command lines exit with status 2 and an error naming the
//! offending flag; runtime failures exit with status 1.

use shift_collapse_md::md::{write_xyz, CliError, Error, Method};
use shift_collapse_md::obs::json::Json;
use shift_collapse_md::pattern::{generate_fs, import_volume_cubic, shift_collapse, theory};
use shift_collapse_md::prelude::*;
use shift_collapse_md::serve::{Daemon, DaemonConfig, Request, Response, SchedulerConfig};
use shift_collapse_md::spec::{
    observables_doc, ExecutorSpec, ObservabilitySpec, PotentialSpec, ScenarioSpec, SpecError,
    SystemSpec,
};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

type Flags = HashMap<String, String>;

fn main() {
    let mut args = std::env::args().skip(1);
    match dispatch(&mut args) {
        Ok(()) => {}
        Err(Error::Cli(e)) => {
            // A malformed command line names the offending flag and exits 2
            // (distinct from runtime failures, which exit 1).
            eprintln!("error: {e}");
            eprintln!("run `scmd help` for usage");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn dispatch(args: &mut impl Iterator<Item = String>) -> Result<(), Error> {
    let cmd = args.next().ok_or(CliError::MissingSubcommand)?;
    if matches!(cmd.as_str(), "--help" | "-h" | "help") {
        print_usage();
        return Ok(());
    }
    // `watch`/`dump` take their job id positionally (`scmd watch job-3`)
    // as well as via `--id`.
    let mut rest: Vec<String> = args.collect();
    if matches!(cmd.as_str(), "watch" | "dump")
        && rest.first().is_some_and(|a| !a.starts_with("--"))
    {
        rest.insert(0, "--id".to_string());
    }
    let flags = parse_flags(&mut rest.into_iter())?;
    match cmd.as_str() {
        "run" => run(&flags),
        "bench" => bench(&flags),
        "chaos" => chaos(&flags),
        "serve" => serve(&flags),
        "submit" => submit(&flags),
        "status" => status(&flags),
        "watch" => watch(&flags),
        "dump" => dump(&flags),
        "metrics" => metrics(&flags),
        "cancel" => cancel(&flags),
        "results" => results(&flags),
        "shutdown" => shutdown(&flags),
        "patterns" => patterns(&flags),
        "model" => model(&flags),
        other => Err(CliError::UnknownSubcommand(other.into()).into()),
    }
}

fn print_usage() {
    println!(
        "scmd — shift-collapse molecular dynamics\n\n\
         USAGE:\n  scmd run      [--spec PATH] [--system lj|silica] [--cells N] [--steps N]\n\
         \x20               [--method sc|fs|hybrid] [--dt X] [--temp T] [--subdivision K]\n\
         \x20               [--skin S] [--xyz PATH] [--metrics-json PATH] [--trace PATH]\n\
         \x20               [--results PATH]\n\
         \x20 scmd bench    [--spec PATH] [--out PATH] [--quick true] [--baseline PATH]\n\
         \x20               [--wall-tol PCT] [--summary PATH]\n\
         \x20 scmd bench    --compare OLD --with NEW [--wall-tol PCT] [--summary PATH]\n\
         \x20 scmd chaos    [--cases lj,silica] [--spec PATH] [--storms N] [--seed S]\n\
         \x20               [--steps N] [--faults N] [--out DIR]\n\
         \x20 scmd serve    [--socket PATH] [--lanes N] [--queue N] [--slice N]\n\
         \x20               [--state DIR] [--resume true] [--metrics-addr HOST:PORT]\n\
         \x20 scmd submit   --spec PATH [--socket PATH]\n\
         \x20 scmd status   [--id job-N] [--socket PATH]\n\
         \x20 scmd watch    job-N [--every STEPS] [--count N] [--json true]\n\
         \x20               [--socket PATH]\n\
         \x20 scmd dump     job-N [--out PATH] [--socket PATH]\n\
         \x20 scmd metrics  [--out PATH] [--socket PATH]\n\
         \x20 scmd cancel   --id job-N [--socket PATH]\n\
         \x20 scmd results  --id job-N [--socket PATH] [--out PATH]\n\
         \x20 scmd shutdown [--socket PATH]\n\
         \x20 scmd patterns [--n N]\n\
         \x20 scmd model    [--machine xeon|bgq] [--grain N]"
    );
}

fn parse_flags(args: &mut impl Iterator<Item = String>) -> Result<Flags, Error> {
    let mut out = HashMap::new();
    while let Some(a) = args.next() {
        let key = a
            .strip_prefix("--")
            .filter(|k| !k.is_empty())
            .ok_or_else(|| CliError::UnexpectedArg(a.clone()))?;
        let val = args.next().ok_or_else(|| CliError::MissingValue(key.to_string()))?;
        out.insert(key.to_string(), val);
    }
    Ok(out)
}

/// Rejects flags the subcommand does not know — a typo fails loudly
/// instead of being silently ignored.
fn check_flags(flags: &Flags, allowed: &[&str]) -> Result<(), Error> {
    for key in flags.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(CliError::UnexpectedArg(format!("--{key}")).into());
        }
    }
    Ok(())
}

fn get<T: std::str::FromStr>(
    flags: &Flags,
    key: &str,
    default: T,
    expected: &'static str,
) -> Result<T, Error> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| {
            CliError::BadFlagValue { flag: key.into(), value: v.clone(), expected }.into()
        }),
    }
}

fn required<'a>(flags: &'a Flags, key: &str) -> Result<&'a String, Error> {
    flags.get(key).ok_or_else(|| CliError::MissingFlag(key.to_string()).into())
}

fn method_of(flags: &Flags) -> Result<Method, Error> {
    match flags.get("method").map(String::as_str) {
        None | Some("sc") => Ok(Method::ShiftCollapse),
        Some("fs") => Ok(Method::FullShell),
        Some("hybrid") => Ok(Method::Hybrid),
        Some(m) => Err(CliError::UnknownValue {
            flag: "method".into(),
            value: m.into(),
            allowed: "sc|fs|hybrid",
        }
        .into()),
    }
}

/// Spec-layer failures ride the unified error as setup failures.
fn spec_err(e: SpecError) -> Error {
    Error::Setup(Box::new(e))
}

// ---------------------------------------------------------------------------
// scmd run
// ---------------------------------------------------------------------------

/// The scenario a `run` invocation describes: `--spec PATH` verbatim, or
/// the legacy flag set assembled into the equivalent spec. Both paths
/// instantiate through `sc-spec`, so they are bitwise-identical.
fn run_scenario(flags: &Flags) -> Result<ScenarioSpec, Error> {
    let observability = ObservabilitySpec {
        metrics: flags.contains_key("metrics-json"),
        trace: flags.contains_key("trace"),
        ..ObservabilitySpec::default()
    };
    if let Some(path) = flags.get("spec") {
        let mut spec = ScenarioSpec::from_path(Path::new(path)).map_err(spec_err)?;
        if flags.contains_key("steps") {
            spec.steps = get(flags, "steps", spec.steps, "a positive integer")?;
        }
        // Output flags enable the matching sinks even if the spec left
        // them off — asking for a file implies wanting its contents.
        spec.observability.metrics |= observability.metrics;
        spec.observability.trace |= observability.trace;
        spec.validate().map_err(spec_err)?;
        return Ok(spec);
    }
    let system = flags.get("system").map(String::as_str).unwrap_or("lj");
    let (system_spec, potential, dt_default) = match system {
        "lj" => (
            SystemSpec::Lj {
                cells: get(flags, "cells", 6, "a positive integer")?,
                a: 1.5599,
                temp: get(flags, "temp", 1.0, "a number")?,
                seed: 42,
            },
            PotentialSpec::Lj { cutoff: 2.5 },
            0.002,
        ),
        "silica" => (
            SystemSpec::Silica {
                cells: get(flags, "cells", 3, "a positive integer")?,
                a: 7.16,
                temp: get(flags, "temp", 0.05, "a number")?,
                seed: 42,
            },
            PotentialSpec::Vashishta,
            0.0005,
        ),
        other => {
            return Err(CliError::UnknownValue {
                flag: "system".into(),
                value: other.into(),
                allowed: "lj|silica",
            }
            .into());
        }
    };
    let spec = ScenarioSpec {
        name: format!("cli-{system}"),
        system: system_spec,
        potential,
        method: method_of(flags)?,
        executor: ExecutorSpec::Serial { threads: 0 },
        dt: get(flags, "dt", dt_default, "a number")?,
        steps: get(flags, "steps", 100, "a positive integer")?,
        subdivision: get(flags, "subdivision", 1, "an integer in 1..=3")?,
        verlet_skin: get(flags, "skin", 0.0, "a number")?,
        resort_every: 8,
        comm: Default::default(),
        thermostat: None,
        fault_plan: None,
        observability,
        checkpoint: None,
    };
    spec.validate().map_err(spec_err)?;
    Ok(spec)
}

fn run(flags: &Flags) -> Result<(), Error> {
    check_flags(
        flags,
        &[
            "spec",
            "system",
            "cells",
            "steps",
            "method",
            "dt",
            "temp",
            "subdivision",
            "skin",
            "xyz",
            "metrics-json",
            "trace",
            "results",
        ],
    )?;
    let spec = run_scenario(flags)?;
    let mut handle = spec.instantiate().map_err(spec_err)?;
    let steps = spec.steps as usize;
    let mut metrics_out = match flags.get("metrics-json") {
        Some(path) => Some(std::io::BufWriter::new(std::fs::File::create(path)?)),
        None => None,
    };
    println!(
        "# {} | {} atoms | {} | {} | dt = {} | {steps} steps",
        spec.name,
        handle.gather().len(),
        spec.method.name(),
        handle.executor_kind(),
        spec.dt,
    );
    let e0 = handle.total_energy();
    let t0 = std::time::Instant::now();
    let report_every = (steps / 10).max(1);
    for block in 0..steps.div_ceil(report_every) {
        let todo = report_every.min(steps - block * report_every);
        handle.run(todo);
        let t = handle.telemetry();
        let store = handle.gather();
        println!(
            "step {:>6}  E = {:>12.4}  T = {:>8.4}  tuples/step = {}",
            handle.steps_done(),
            t.energy.total() + store.kinetic_energy(),
            store.temperature(),
            t.tuples.total_accepted(),
        );
        if let Some(out) = &mut metrics_out {
            writeln!(out, "{}", t.to_json())?;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let e1 = handle.total_energy();
    println!(
        "# {:.2} ms/step | NVE drift {:.2e} | candidates/step: {}",
        wall / steps as f64 * 1e3,
        ((e1 - e0) / e0.abs()).abs(),
        handle.telemetry().tuples.total_candidates(),
    );
    if let Some(mut out) = metrics_out {
        writeln!(out, "{}", handle.telemetry().to_json())?;
        out.flush()?;
        println!("# telemetry JSON written to {}", flags["metrics-json"]);
    }
    if let Some(path) = flags.get("xyz") {
        // The box is static under NVE, so the workload builder's box is
        // the run's box.
        let (_, bbox) = spec.build_workload();
        let store = handle.gather();
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        write_xyz(&mut f, &store, &bbox, &format!("step={}", handle.steps_done()))?;
        println!("# final snapshot written to {path}");
    }
    if let Some(path) = flags.get("trace") {
        let events = handle.tracer().events();
        let dropped = handle.tracer().dropped();
        std::fs::write(path, shift_collapse_md::obs::chrome_trace(&events).to_string())?;
        println!("# chrome trace written to {path} ({} events, {dropped} dropped)", events.len());
    }
    if let Some(path) = flags.get("results") {
        write_results(path, &spec.name, handle.steps_done(), &handle.gather(), e1)?;
    }
    Ok(())
}

/// Writes the `sc-observables/1` document — byte-identical to the
/// `results.json` the job service persists for the same scenario.
fn write_results(
    path: &str,
    scenario: &str,
    steps: u64,
    store: &shift_collapse_md::cell::AtomStore,
    energy_total: f64,
) -> Result<(), Error> {
    std::fs::write(path, observables_doc(scenario, steps, store, energy_total).to_string())?;
    println!("# observables document written to {path}");
    Ok(())
}

// ---------------------------------------------------------------------------
// scmd bench / chaos
// ---------------------------------------------------------------------------

fn bench(flags: &Flags) -> Result<(), Error> {
    use shift_collapse_md::bench::{
        compare, git_sha, markdown_delta_table, run_matrix, run_spec_case, to_document,
    };

    check_flags(
        flags,
        &["spec", "out", "quick", "baseline", "wall-tol", "summary", "compare", "with"],
    )?;
    let wall_tol: f64 = get(flags, "wall-tol", 200.0, "a percentage")?;
    let load = |path: &str| -> Result<Json, Error> {
        let text = std::fs::read_to_string(path)?;
        Json::parse(&text)
            .map_err(|e| Error::Setup(format!("{path} is not a bench JSON document: {e}").into()))
    };
    let diff = |baseline: &Json, current: &Json| -> Result<(), Error> {
        let (report, failures) = compare(baseline, current, wall_tol);
        for line in &report {
            println!("{line}");
        }
        // --summary PATH appends the per-case wall delta table as markdown
        // (pointed at $GITHUB_STEP_SUMMARY by the CI bench-regression job).
        if let Some(path) = flags.get("summary") {
            let table = markdown_delta_table(baseline, current);
            let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
            f.write_all(table.as_bytes())?;
            println!("# wall delta table appended to {path}");
        }
        if failures.is_empty() {
            println!("# no regressions (wall tolerance {wall_tol}%)");
            Ok(())
        } else {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    };

    // Pure comparator mode: diff two existing bench files.
    if let Some(old) = flags.get("compare") {
        let new = required(flags, "with")?;
        return diff(&load(old)?, &load(new)?);
    }

    let cases = match flags.get("spec") {
        // A single spec-defined case instead of the pinned matrix.
        Some(path) => {
            let spec = ScenarioSpec::from_path(Path::new(path)).map_err(spec_err)?;
            vec![run_spec_case(&spec).map_err(|e| Error::Setup(e.into()))?]
        }
        None => run_matrix(get(flags, "quick", false, "true|false")?),
    };
    let doc = to_document(&cases);
    for c in &cases {
        println!(
            "{:<28} {:>6} atoms  {:>3} steps  {:>9.3} ms/step  {:>10} tuples",
            c.name, c.atoms, c.steps, c.ms_per_step, c.tuples_accepted
        );
    }
    let out = flags.get("out").cloned().unwrap_or_else(|| format!("BENCH_{}.json", git_sha()));
    std::fs::write(&out, doc.to_string())?;
    println!("# bench document written to {out}");
    match flags.get("baseline") {
        Some(path) => diff(&load(path)?, &doc),
        None => Ok(()),
    }
}

fn chaos(flags: &Flags) -> Result<(), Error> {
    use shift_collapse_md::chaos::{run_soak, ChaosConfig};

    check_flags(flags, &["cases", "spec", "storms", "seed", "steps", "faults", "out"])?;
    let defaults = ChaosConfig::default();
    let specs = match flags.get("spec") {
        Some(path) => vec![ScenarioSpec::from_path(Path::new(path)).map_err(spec_err)?],
        None => Vec::new(),
    };
    let config = ChaosConfig {
        cases: match flags.get("cases") {
            Some(v) => v.split(',').map(str::to_string).collect(),
            // A spec-only soak storms just the spec.
            None if !specs.is_empty() => Vec::new(),
            None => defaults.cases,
        },
        specs,
        storms: get(flags, "storms", defaults.storms, "a positive integer")?,
        seed: get(flags, "seed", defaults.seed, "an integer")?,
        steps: get(flags, "steps", defaults.steps, "a positive integer")?,
        faults: get(flags, "faults", defaults.faults, "a positive integer")?,
        out_dir: flags.get("out").map(Into::into).unwrap_or(defaults.out_dir),
    };
    let labels: Vec<&str> = config
        .cases
        .iter()
        .map(String::as_str)
        .chain(config.specs.iter().map(|s| s.name.as_str()))
        .collect();
    println!(
        "# chaos soak: {} × {} storms | {} steps | {} faults/storm | base seed {}",
        labels.join(","),
        config.storms,
        config.steps,
        config.faults,
        config.seed,
    );
    let outcomes = run_soak(&config).map_err(|e| Error::Setup(e.into()))?;
    let mut failures = 0;
    for o in &outcomes {
        match (&o.failure, &o.bundle) {
            (None, _) => println!("storm {:<8} seed {:>6}  ok", o.case, o.seed),
            (Some(why), bundle) => {
                failures += 1;
                eprintln!("storm {:<8} seed {:>6}  FAILED: {why}", o.case, o.seed);
                if let Some(dir) = bundle {
                    eprintln!("  reproducer bundle: {}", dir.display());
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("# {failures}/{} storms violated guardrails", outcomes.len());
        std::process::exit(1);
    }
    println!("# all {} storms within guardrails", outcomes.len());
    Ok(())
}

// ---------------------------------------------------------------------------
// scmd serve + client verbs
// ---------------------------------------------------------------------------

fn socket_of(flags: &Flags) -> PathBuf {
    flags.get("socket").map(PathBuf::from).unwrap_or_else(|| PathBuf::from("scmd.sock"))
}

fn serve(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["socket", "lanes", "queue", "slice", "state", "resume", "metrics-addr"])?;
    let config = DaemonConfig {
        socket: socket_of(flags),
        scheduler: SchedulerConfig {
            lanes: get(flags, "lanes", 2, "a positive integer")?,
            queue_capacity: get(flags, "queue", 8, "a positive integer")?,
            slice_steps: get(flags, "slice", 4, "a positive integer")?,
            state_dir: Some(
                flags.get("state").map(PathBuf::from).unwrap_or_else(|| "scmd-state".into()),
            ),
            ..SchedulerConfig::default()
        },
        resume: get(flags, "resume", false, "true|false")?,
        metrics_addr: flags.get("metrics-addr").cloned(),
    };
    let socket = config.socket.clone();
    let daemon = Daemon::bind(config)?;
    println!(
        "# scmd serve | socket {} | {} resumed jobs | submit with `scmd submit --spec PATH`",
        socket.display(),
        daemon.job_count(),
    );
    if let Some(addr) = daemon.metrics_local_addr() {
        // Printed before `run` so scrapers (and tests binding port 0) can
        // discover the resolved address.
        println!("# metrics exposition on http://{addr}/metrics");
    }
    daemon.run()?;
    println!("# daemon stopped");
    Ok(())
}

/// One request/response round trip; daemon-side rejections surface as
/// runtime errors with the daemon's code and message.
fn call(flags: &Flags, req: &Request) -> Result<Response, Error> {
    let socket = socket_of(flags);
    let resp = shift_collapse_md::serve::client::request(&socket, req).map_err(|e| {
        Error::Io(std::io::Error::new(
            e.kind(),
            format!("{} (is a daemon serving on {}?)", e, socket.display()),
        ))
    })?;
    match resp {
        Response::Error { code, message } => {
            Err(Error::Runtime(format!("daemon rejected the request [{code}]: {message}").into()))
        }
        ok => Ok(ok),
    }
}

fn submit(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["spec", "socket"])?;
    let path = required(flags, "spec")?;
    // Parse client-side first: a bad spec fails here with the full typed
    // error instead of a wire round trip, and TOML specs reach the daemon
    // in canonical JSON.
    let spec = ScenarioSpec::from_path(Path::new(path)).map_err(spec_err)?;
    match call(flags, &Request::Submit { spec: spec.to_json() })? {
        Response::Submitted { id } => {
            println!("{id}");
            Ok(())
        }
        other => Err(unexpected(other)),
    }
}

fn status(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["id", "socket"])?;
    match call(flags, &Request::Status { id: flags.get("id").cloned() })? {
        Response::Status { jobs } => {
            println!(
                "{:<8} {:<10} {:>8} {:>8} {:>6} {:<24} ERROR",
                "ID", "STATE", "STEPS", "WALL", "LANE", "SPEC"
            );
            for j in &jobs {
                let s = |k: &str| j.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
                let n = |k: &str| j.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
                println!(
                    "{:<8} {:<10} {:>3}/{:<4} {:>7.1}s {:>6} {:<24} {}",
                    s("id"),
                    s("state"),
                    n("steps_done"),
                    n("total_steps"),
                    n("wall_ms") / 1e3,
                    n("lane"),
                    s("spec_name"),
                    j.get("error").and_then(|v| v.as_str()).unwrap_or(""),
                );
            }
            Ok(())
        }
        other => Err(unexpected(other)),
    }
}

/// Streams a running job's telemetry to stdout. Human mode prints one
/// line per snapshot; `--json true` prints the raw response lines
/// (`watching`, `telemetry`, `watch-end`) for scripting. `--count N`
/// disconnects after N snapshots; otherwise the stream runs until the
/// job goes terminal.
fn watch(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["id", "every", "count", "json", "socket"])?;
    let id = required(flags, "id")?.clone();
    let every = flags.get("every").map(|_| get(flags, "every", 0, "a step count")).transpose()?;
    let count: Option<u64> =
        flags.get("count").map(|_| get(flags, "count", 0, "a positive integer")).transpose()?;
    let json = get(flags, "json", false, "true|false")?;
    let socket = socket_of(flags);
    let mut seen = 0u64;
    let mut rejection: Option<Error> = None;
    shift_collapse_md::serve::client::watch(&socket, &id, every, |resp| {
        if json {
            println!("{}", resp.to_json());
        }
        match resp {
            Response::Watching { id, every } => {
                if !json {
                    match every {
                        0 => println!("# watching {id} (snapshot every slice)"),
                        n => println!("# watching {id} (snapshot every {n} steps)"),
                    }
                }
                true
            }
            Response::Telemetry { seq, dropped, doc, .. } => {
                if !json {
                    let n = |k: &str| doc.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
                    let energy = doc
                        .get("energy")
                        .and_then(|e| e.get("total"))
                        .and_then(|v| v.as_f64())
                        .unwrap_or(f64::NAN);
                    println!(
                        "seq {seq:>4}  step {:>6}  E = {energy:>12.4}  dropped {dropped}",
                        n("step"),
                    );
                }
                seen += 1;
                count.is_none_or(|c| seen < c)
            }
            Response::WatchEnd { id, state, dropped } => {
                if !json {
                    println!("# {id} is {state} ({dropped} snapshots dropped)");
                }
                false
            }
            Response::Error { code, message } => {
                rejection = Some(Error::Runtime(
                    format!("daemon rejected the request [{code}]: {message}").into(),
                ));
                false
            }
            _ => true,
        }
    })
    .map_err(|e| {
        Error::Io(std::io::Error::new(
            e.kind(),
            format!("{} (is a daemon serving on {}?)", e, socket.display()),
        ))
    })?;
    match rejection {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Snapshots a running job's flight-recorder ring into a Chrome Trace
/// file (default `job-N-trace.json`).
fn dump(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["id", "out", "socket"])?;
    let id = required(flags, "id")?;
    match call(flags, &Request::Dump { id: id.clone() })? {
        Response::Dump { id, step, events, dropped, trace } => {
            let path = flags.get("out").cloned().unwrap_or_else(|| format!("{id}-trace.json"));
            std::fs::write(&path, trace.to_string())?;
            println!(
                "# {id} flight recorder at step {step}: {events} events \
                 ({dropped} overwritten) written to {path}"
            );
            Ok(())
        }
        other => Err(unexpected(other)),
    }
}

/// Fetches the daemon's merged Prometheus text exposition over the
/// socket (no TCP listener required).
fn metrics(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["out", "socket"])?;
    match call(flags, &Request::Metrics)? {
        Response::Metrics { text } => {
            match flags.get("out") {
                Some(path) => {
                    std::fs::write(path, &text)?;
                    println!("# metrics exposition written to {path}");
                }
                None => print!("{text}"),
            }
            Ok(())
        }
        other => Err(unexpected(other)),
    }
}

fn cancel(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["id", "socket"])?;
    let id = required(flags, "id")?;
    match call(flags, &Request::Cancel { id: id.clone() })? {
        Response::Cancelled { id } => {
            println!("{id} cancelled");
            Ok(())
        }
        other => Err(unexpected(other)),
    }
}

fn results(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["id", "socket", "out"])?;
    let id = required(flags, "id")?;
    match call(flags, &Request::Results { id: id.clone() })? {
        Response::Results { doc, .. } => {
            match flags.get("out") {
                // No trailing newline: the file must byte-match the
                // daemon's persisted results.json.
                Some(path) => {
                    std::fs::write(path, doc.to_string())?;
                    println!("# results written to {path}");
                }
                None => println!("{doc}"),
            }
            Ok(())
        }
        other => Err(unexpected(other)),
    }
}

fn shutdown(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["socket"])?;
    match call(flags, &Request::Shutdown)? {
        Response::ShuttingDown => {
            println!("# daemon shutting down");
            Ok(())
        }
        other => Err(unexpected(other)),
    }
}

fn unexpected(resp: Response) -> Error {
    Error::Runtime(format!("unexpected daemon response: {}", resp.to_json()).into())
}

// ---------------------------------------------------------------------------
// scmd patterns / model
// ---------------------------------------------------------------------------

fn patterns(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["n"])?;
    let n: usize = get(flags, "n", 3, "a tuple order ≥ 2")?;
    let fs = generate_fs(n);
    let sc = shift_collapse(n);
    println!("n = {n}");
    println!("  |Ψ_FS| = {} (27^{} = {})", fs.len(), n - 1, theory::fs_path_count(n));
    println!("  |Ψ_SC| = {} (Eq. 29: {})", sc.len(), theory::sc_path_count(n));
    println!("  search ratio FS/SC = {:.3}", theory::fs_over_sc_ratio(n));
    println!("  SC footprint = {} cells (first octant [0,{}]³)", sc.footprint(), n - 1);
    for l in [1u32, 2, 4] {
        println!(
            "  imports, l = {l}: SC {} | FS {} | midpoint {}",
            import_volume_cubic(l, &sc),
            import_volume_cubic(l, &fs),
            theory::midpoint_import_volume(l as u64, n),
        );
    }
    Ok(())
}

fn model(flags: &Flags) -> Result<(), Error> {
    check_flags(flags, &["machine", "grain"])?;
    let machine = match flags.get("machine").map(String::as_str) {
        None | Some("xeon") => MachineProfile::xeon(),
        Some("bgq") => MachineProfile::bgq(),
        Some(m) => {
            return Err(CliError::UnknownValue {
                flag: "machine".into(),
                value: m.into(),
                allowed: "xeon|bgq",
            }
            .into());
        }
    };
    let model = MdCostModel::new(shift_collapse_md::netmodel::SilicaWorkload::silica(), machine);
    let grain: f64 = get(flags, "grain", 425.0, "a number")?;
    println!("machine: {} | granularity N/P = {grain}", model.machine.name);
    for m in Method::ALL {
        let c = model.step_time(m, grain);
        println!(
            "  {:<10} total {:>10.3} ms (compute {:>9.3} ms, comm {:>9.3} ms, {} ghosts)",
            m.name(),
            c.total_s() * 1e3,
            c.compute_s * 1e3,
            c.comm_s * 1e3,
            c.ghosts as u64,
        );
    }
    match model.crossover(Method::ShiftCollapse, Method::Hybrid, 24.0, 1e6) {
        Some(x) => println!("  SC → Hybrid crossover: N/P ≈ {x:.0}"),
        None => println!("  no SC → Hybrid crossover found"),
    }
    Ok(())
}
