//! The benchmark-regression harness behind `scmd bench`.
//!
//! Runs a pinned, deterministic workload matrix — the serial engine, the
//! threaded executor, and the BSP executor, each over the method set — and
//! writes one `BENCH_<gitsha>.json` document whose layout is pinned by
//! `schema/bench.schema.json`. A companion comparator diffs two bench
//! documents: the deterministic work counters (tuple candidates/accepted,
//! comm messages/bytes, energies) must match exactly, and wall times may
//! regress at most by a configurable percentage. CI runs the matrix against
//! the checked-in `BENCH_baseline.json` so behavioural regressions (more
//! work, more traffic, different physics) fail loudly even on machines
//! whose absolute speed differs from the baseline host's.

use sc_geom::IVec3;
use sc_md::{build_fcc_lattice, thermalize, LatticeSpec, Method, Simulation};
use sc_obs::json::Json;
use sc_parallel::rank::ForceField;
use sc_parallel::{DistributedSim, ThreadedSim};
use sc_potential::{LennardJones, Vashishta};

/// The schema identifier stamped into every bench document.
pub const SCHEMA_ID: &str = "sc-bench/1";

/// One measured benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Unique case name (`executor-method-system`).
    pub name: String,
    /// `serial`, `threaded`, or `bsp`.
    pub executor: String,
    /// Method short name (`sc`, `fs`, `hybrid`).
    pub method: String,
    /// Workload system (`lj` or `silica`).
    pub system: String,
    /// Atom count.
    pub atoms: u64,
    /// Steps integrated.
    pub steps: u64,
    /// Total wall seconds for the run.
    pub wall_s: f64,
    /// Milliseconds per step.
    pub ms_per_step: f64,
    /// Tuple candidates visited in the final step (0 where the executor
    /// does not report tuple statistics).
    pub tuples_candidates: u64,
    /// Tuples accepted in the final step.
    pub tuples_accepted: u64,
    /// Final potential energy (deterministic given the pinned seeds).
    pub energy_total: f64,
    /// Messages sent over the whole run (0 for the serial engine).
    pub comm_messages: u64,
    /// Bytes sent over the whole run (0 for the serial engine).
    pub comm_bytes: u64,
}

impl BenchCase {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("executor".into(), Json::str(&self.executor)),
            ("method".into(), Json::str(&self.method)),
            ("system".into(), Json::str(&self.system)),
            ("atoms".into(), Json::num(self.atoms as f64)),
            ("steps".into(), Json::num(self.steps as f64)),
            ("wall_s".into(), Json::num(self.wall_s)),
            ("ms_per_step".into(), Json::num(self.ms_per_step)),
            ("tuples_candidates".into(), Json::num(self.tuples_candidates as f64)),
            ("tuples_accepted".into(), Json::num(self.tuples_accepted as f64)),
            ("energy_total".into(), Json::num(self.energy_total)),
            ("comm_messages".into(), Json::num(self.comm_messages as f64)),
            ("comm_bytes".into(), Json::num(self.comm_bytes as f64)),
        ])
    }
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// repository (the bench file is still valid — the sha is provenance only).
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn lj_serial(method: Method, cells: usize, steps: usize) -> BenchCase {
    let (mut store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(cells, 1.5599), 0.0, 42);
    thermalize(&mut store, 1.0, 42);
    let atoms = store.len() as u64;
    let mut sim = Simulation::builder(store, bbox)
        .pair_potential(Box::new(LennardJones::reduced(2.5)))
        .method(method)
        .timestep(0.002)
        .build()
        .expect("pinned serial workload builds");
    let t0 = std::time::Instant::now();
    sim.run(steps);
    let wall = t0.elapsed().as_secs_f64();
    let t = sim.telemetry();
    BenchCase {
        name: format!("serial-{}-lj", method.name()),
        executor: "serial".into(),
        method: method.name().into(),
        system: "lj".into(),
        atoms,
        steps: steps as u64,
        wall_s: wall,
        ms_per_step: wall / steps as f64 * 1e3,
        tuples_candidates: t.tuples.total_candidates(),
        tuples_accepted: t.tuples.total_accepted(),
        energy_total: t.energy.total(),
        comm_messages: 0,
        comm_bytes: 0,
    }
}

fn silica_serial(method: Method, cells: usize, steps: usize) -> BenchCase {
    let v = Vashishta::silica();
    let (mut store, bbox) = sc_md::build_silica_like(cells, 7.16, v.params().masses, 0.0, 42);
    thermalize(&mut store, 0.05, 42);
    let atoms = store.len() as u64;
    let mut sim = Simulation::builder(store, bbox)
        .pair_potential(Box::new(v.pair.clone()))
        .triplet_potential(Box::new(v.triplet.clone()))
        .method(method)
        .timestep(0.0005)
        .build()
        .expect("pinned silica workload builds");
    let t0 = std::time::Instant::now();
    sim.run(steps);
    let wall = t0.elapsed().as_secs_f64();
    let t = sim.telemetry();
    BenchCase {
        name: format!("serial-{}-silica", method.name()),
        executor: "serial".into(),
        method: method.name().into(),
        system: "silica".into(),
        atoms,
        steps: steps as u64,
        wall_s: wall,
        ms_per_step: wall / steps as f64 * 1e3,
        tuples_candidates: t.tuples.total_candidates(),
        tuples_accepted: t.tuples.total_accepted(),
        energy_total: t.energy.total(),
        comm_messages: 0,
        comm_bytes: 0,
    }
}

fn lj_ff(method: Method) -> ForceField {
    ForceField {
        pair: Some(Box::new(LennardJones::reduced(2.5))),
        triplet: None,
        quadruplet: None,
        method,
    }
}

fn lj_dist_inputs(cells: usize) -> (sc_cell::AtomStore, sc_geom::SimulationBox) {
    let (mut store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(cells, 1.5599), 0.0, 42);
    thermalize(&mut store, 1.0, 42);
    (store, bbox)
}

fn lj_bsp(method: Method, cells: usize, steps: usize) -> BenchCase {
    let (store, bbox) = lj_dist_inputs(cells);
    let atoms = store.len() as u64;
    let mut d = DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(method), 0.002)
        .expect("pinned BSP workload builds");
    let t0 = std::time::Instant::now();
    d.run(steps);
    let wall = t0.elapsed().as_secs_f64();
    let t = d.telemetry();
    BenchCase {
        name: format!("bsp-{}-lj", method.name()),
        executor: "bsp".into(),
        method: method.name().into(),
        system: "lj".into(),
        atoms,
        steps: steps as u64,
        wall_s: wall,
        ms_per_step: wall / steps as f64 * 1e3,
        tuples_candidates: t.tuples.total_candidates(),
        tuples_accepted: t.tuples.total_accepted(),
        energy_total: t.energy.total(),
        comm_messages: t.comm.messages,
        comm_bytes: t.comm.bytes,
    }
}

fn lj_threaded(method: Method, cells: usize, steps: usize) -> BenchCase {
    let (store, bbox) = lj_dist_inputs(cells);
    let atoms = store.len() as u64;
    let t0 = std::time::Instant::now();
    let (_, energy, stats) =
        ThreadedSim::run(store, bbox, IVec3::splat(2), lj_ff(method), 0.002, steps)
            .expect("pinned threaded workload runs");
    let wall = t0.elapsed().as_secs_f64();
    BenchCase {
        name: format!("threaded-{}-lj", method.name()),
        executor: "threaded".into(),
        method: method.name().into(),
        system: "lj".into(),
        atoms,
        steps: steps as u64,
        wall_s: wall,
        ms_per_step: wall / steps as f64 * 1e3,
        // The one-shot threaded executor reports energies and comm
        // counters but no tuple statistics.
        tuples_candidates: 0,
        tuples_accepted: 0,
        energy_total: energy.total(),
        comm_messages: stats.messages,
        comm_bytes: stats.bytes,
    }
}

fn silica_ff(method: Method) -> ForceField {
    let v = Vashishta::silica();
    ForceField {
        pair: Some(Box::new(v.pair.clone())),
        triplet: Some(Box::new(v.triplet.clone())),
        quadruplet: None,
        method,
    }
}

fn silica_dist_inputs(cells: usize) -> (sc_cell::AtomStore, sc_geom::SimulationBox) {
    let v = Vashishta::silica();
    let (mut store, bbox) = sc_md::build_silica_like(cells, 7.16, v.params().masses, 0.0, 42);
    thermalize(&mut store, 0.05, 42);
    (store, bbox)
}

fn silica_bsp(method: Method, cells: usize, steps: usize) -> BenchCase {
    let (store, bbox) = silica_dist_inputs(cells);
    let atoms = store.len() as u64;
    let mut d = DistributedSim::new(store, bbox, IVec3::new(2, 2, 1), silica_ff(method), 0.0005)
        .expect("pinned silica BSP workload builds");
    let t0 = std::time::Instant::now();
    d.run(steps);
    let wall = t0.elapsed().as_secs_f64();
    let t = d.telemetry();
    BenchCase {
        name: format!("bsp-{}-silica", method.name()),
        executor: "bsp".into(),
        method: method.name().into(),
        system: "silica".into(),
        atoms,
        steps: steps as u64,
        wall_s: wall,
        ms_per_step: wall / steps as f64 * 1e3,
        tuples_candidates: t.tuples.total_candidates(),
        tuples_accepted: t.tuples.total_accepted(),
        energy_total: t.energy.total(),
        comm_messages: t.comm.messages,
        comm_bytes: t.comm.bytes,
    }
}

fn silica_threaded(method: Method, cells: usize, steps: usize) -> BenchCase {
    let (store, bbox) = silica_dist_inputs(cells);
    let atoms = store.len() as u64;
    let t0 = std::time::Instant::now();
    let (_, energy, stats) =
        ThreadedSim::run(store, bbox, IVec3::new(2, 2, 1), silica_ff(method), 0.0005, steps)
            .expect("pinned silica threaded workload runs");
    let wall = t0.elapsed().as_secs_f64();
    BenchCase {
        name: format!("threaded-{}-silica", method.name()),
        executor: "threaded".into(),
        method: method.name().into(),
        system: "silica".into(),
        atoms,
        steps: steps as u64,
        wall_s: wall,
        ms_per_step: wall / steps as f64 * 1e3,
        tuples_candidates: 0,
        tuples_accepted: 0,
        energy_total: energy.total(),
        comm_messages: stats.messages,
        comm_bytes: stats.bytes,
    }
}

/// Runs the pinned workload matrix. `quick` halves the step counts (used
/// by tests; CI and interactive runs use the full matrix, which still
/// completes in seconds).
pub fn run_matrix(quick: bool) -> Vec<BenchCase> {
    let (lj_steps, silica_steps, dist_steps) = if quick { (4, 2, 2) } else { (10, 4, 5) };
    let mut cases = Vec::new();
    for method in Method::ALL {
        cases.push(lj_serial(method, 5, lj_steps));
    }
    cases.push(silica_serial(Method::ShiftCollapse, 3, silica_steps));
    cases.push(silica_serial(Method::FullShell, 3, silica_steps));
    for method in [Method::ShiftCollapse, Method::FullShell] {
        cases.push(lj_bsp(method, 7, dist_steps));
    }
    cases.push(lj_threaded(Method::ShiftCollapse, 7, dist_steps));
    // The paper's benchmark app on both distributed executors: pair+triplet
    // silica is where the Morton layout + batched lane kernels must show a
    // ms/step win (DESIGN §5d).
    cases.push(silica_bsp(Method::ShiftCollapse, 4, dist_steps));
    cases.push(silica_threaded(Method::ShiftCollapse, 4, dist_steps));
    cases
}

/// Renders a bench document (the `BENCH_<gitsha>.json` layout pinned by
/// `schema/bench.schema.json`).
pub fn to_document(cases: &[BenchCase]) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str(SCHEMA_ID)),
        ("git_sha".into(), Json::str(git_sha())),
        ("cases".into(), Json::Arr(cases.iter().map(BenchCase::to_json).collect())),
    ])
}

fn num(case: &Json, key: &str) -> f64 {
    case.get(key).and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
}

/// Diffs `current` against `baseline`. Returns `(report, failures)`:
/// one report line per compared case, and one failure line per violated
/// invariant. Deterministic counters (tuple candidates/accepted, comm
/// messages/bytes) must match exactly and energies must agree to 1e-6
/// relative; wall time may grow at most `wall_tol_pct` percent over the
/// baseline (pass `f64::INFINITY` to skip the wall check entirely, e.g.
/// when the baseline was recorded on different hardware).
pub fn compare(baseline: &Json, current: &Json, wall_tol_pct: f64) -> (Vec<String>, Vec<String>) {
    let mut report = Vec::new();
    let mut failures = Vec::new();
    let empty = Vec::new();
    let base_cases = baseline.get("cases").and_then(|c| c.as_array()).unwrap_or(&empty);
    let cur_cases = current.get("cases").and_then(|c| c.as_array()).unwrap_or(&empty);
    for base in base_cases {
        let name = base.get("name").and_then(|n| n.as_str()).unwrap_or("?").to_string();
        let Some(cur) = cur_cases
            .iter()
            .find(|c| c.get("name").and_then(|n| n.as_str()) == Some(name.as_str()))
        else {
            failures.push(format!("{name}: case missing from current run"));
            continue;
        };
        for key in [
            "atoms",
            "steps",
            "tuples_candidates",
            "tuples_accepted",
            "comm_messages",
            "comm_bytes",
        ] {
            let (b, c) = (num(base, key), num(cur, key));
            if b != c {
                failures.push(format!("{name}: {key} changed {b} -> {c}"));
            }
        }
        let (be, ce) = (num(base, "energy_total"), num(cur, "energy_total"));
        if (be - ce).abs() > 1e-6 * be.abs().max(1.0) {
            failures.push(format!("{name}: energy_total drifted {be} -> {ce}"));
        }
        let (bw, cw) = (num(base, "wall_s"), num(cur, "wall_s"));
        let growth_pct = if bw > 0.0 { (cw / bw - 1.0) * 100.0 } else { 0.0 };
        if growth_pct > wall_tol_pct {
            failures.push(format!(
                "{name}: wall time regressed {:.1}% ({:.4}s -> {:.4}s, tolerance {wall_tol_pct}%)",
                growth_pct, bw, cw
            ));
        }
        report.push(format!("{name:<28} wall {:.4}s -> {:.4}s ({:+.1}%)", bw, cw, growth_pct));
    }
    (report, failures)
}

/// Renders the per-case wall-time delta between two bench documents as a
/// GitHub-flavoured markdown table — written into the CI job summary by
/// `scmd bench --summary`. Cases present only in `current` (newly added
/// benchmarks) are listed with an em-dash baseline instead of being
/// silently dropped.
pub fn markdown_delta_table(baseline: &Json, current: &Json) -> String {
    let empty = Vec::new();
    let base_cases = baseline.get("cases").and_then(|c| c.as_array()).unwrap_or(&empty);
    let cur_cases = current.get("cases").and_then(|c| c.as_array()).unwrap_or(&empty);
    let name_of = |c: &Json| c.get("name").and_then(|n| n.as_str()).unwrap_or("?").to_string();
    let mut out = String::from(
        "### Bench wall-time deltas\n\n\
         | case | baseline ms/step | current ms/step | Δ wall |\n\
         |---|---:|---:|---:|\n",
    );
    for cur in cur_cases {
        let name = name_of(cur);
        let cm = num(cur, "ms_per_step");
        match base_cases.iter().find(|b| name_of(b) == name) {
            Some(base) => {
                let bm = num(base, "ms_per_step");
                let (bw, cw) = (num(base, "wall_s"), num(cur, "wall_s"));
                let pct = if bw > 0.0 { (cw / bw - 1.0) * 100.0 } else { 0.0 };
                out.push_str(&format!("| {name} | {bm:.3} | {cm:.3} | {pct:+.1}% |\n"));
            }
            None => out.push_str(&format!("| {name} | — | {cm:.3} | new case |\n")),
        }
    }
    for base in base_cases {
        let name = name_of(base);
        if !cur_cases.iter().any(|c| name_of(c) == name) {
            out.push_str(&format!("| {name} | {:.3} | — | missing |\n", num(base, "ms_per_step")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(wall: f64, candidates: u64) -> Json {
        let case = BenchCase {
            name: "serial-sc-lj".into(),
            executor: "serial".into(),
            method: "sc".into(),
            system: "lj".into(),
            atoms: 256,
            steps: 4,
            wall_s: wall,
            ms_per_step: wall / 4.0 * 1e3,
            tuples_candidates: candidates,
            tuples_accepted: candidates / 2,
            energy_total: -100.0,
            comm_messages: 0,
            comm_bytes: 0,
        };
        to_document(&[case])
    }

    #[test]
    fn identical_documents_compare_clean() {
        let a = doc(1.0, 1000);
        let (report, failures) = compare(&a, &a, 20.0);
        assert_eq!(failures, Vec::<String>::new());
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn wall_regression_beyond_tolerance_fails() {
        let (_, failures) = compare(&doc(1.0, 1000), &doc(1.5, 1000), 20.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("wall time regressed"), "{failures:?}");
        // Infinite tolerance skips the wall check.
        let (_, failures) = compare(&doc(1.0, 1000), &doc(100.0, 1000), f64::INFINITY);
        assert!(failures.is_empty());
    }

    #[test]
    fn counter_drift_fails_regardless_of_wall_tolerance() {
        let (_, failures) = compare(&doc(1.0, 1000), &doc(1.0, 1001), f64::INFINITY);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("tuples_candidates"), "{failures:?}");
    }

    #[test]
    fn markdown_table_covers_new_and_missing_cases() {
        let base = doc(1.0, 1000);
        let mut extra = doc(0.5, 1000);
        if let Json::Obj(fields) = &mut extra {
            if let Some((_, Json::Arr(cases))) = fields.iter_mut().find(|(k, _)| k == "cases") {
                let added = BenchCase {
                    name: "bsp-SC-MD-silica".into(),
                    executor: "bsp".into(),
                    method: "SC-MD".into(),
                    system: "silica".into(),
                    atoms: 1536,
                    steps: 5,
                    wall_s: 0.2,
                    ms_per_step: 40.0,
                    tuples_candidates: 1,
                    tuples_accepted: 1,
                    energy_total: -1.0,
                    comm_messages: 1,
                    comm_bytes: 8,
                };
                cases.push(added.to_json());
            }
        }
        let table = markdown_delta_table(&base, &extra);
        assert!(table.contains("| serial-sc-lj |"), "{table}");
        assert!(table.contains("-50.0%"), "{table}");
        assert!(table.contains("| bsp-SC-MD-silica | — | 40.000 | new case |"), "{table}");
        // The reverse direction reports the dropped case.
        let table = markdown_delta_table(&extra, &base);
        assert!(table.contains("missing"), "{table}");
    }

    #[test]
    fn missing_case_fails() {
        let base = doc(1.0, 1000);
        let empty = Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA_ID)),
            ("git_sha".into(), Json::str("x")),
            ("cases".into(), Json::Arr(vec![])),
        ]);
        let (_, failures) = compare(&base, &empty, 20.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }

    #[test]
    fn quick_matrix_is_deterministic_across_runs() {
        // Two back-to-back runs must agree on every deterministic counter —
        // this is the invariant the CI comparator relies on.
        let a = run_matrix(true);
        let b = run_matrix(true);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.tuples_candidates, y.tuples_candidates, "{}", x.name);
            assert_eq!(x.tuples_accepted, y.tuples_accepted, "{}", x.name);
            assert_eq!(x.comm_messages, y.comm_messages, "{}", x.name);
            assert_eq!(x.comm_bytes, y.comm_bytes, "{}", x.name);
            assert!((x.energy_total - y.energy_total).abs() < 1e-9, "{}", x.name);
        }
        let (report, failures) = compare(&to_document(&a), &to_document(&b), f64::INFINITY);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(report.len(), a.len());
    }
}
