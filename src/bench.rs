//! The benchmark-regression harness behind `scmd bench`.
//!
//! Runs a pinned, deterministic workload matrix — the serial engine, the
//! threaded executor, and the BSP executor, each over the method set — and
//! writes one `BENCH_<gitsha>.json` document whose layout is pinned by
//! `schema/bench.schema.json`. A companion comparator diffs two bench
//! documents: the deterministic work counters (tuple candidates/accepted,
//! comm messages/bytes, energies) must match exactly, and wall times may
//! regress at most by a configurable percentage. CI runs the matrix against
//! the checked-in `BENCH_baseline.json` so behavioural regressions (more
//! work, more traffic, different physics) fail loudly even on machines
//! whose absolute speed differs from the baseline host's.

use sc_obs::json::Json;
use sc_spec::{ExecutorSpec, ScenarioSpec, SystemSpec};

/// The schema identifier stamped into every bench document.
pub const SCHEMA_ID: &str = "sc-bench/1";

/// One measured benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Unique case name (`executor-method-system`).
    pub name: String,
    /// `serial`, `threaded`, or `bsp`.
    pub executor: String,
    /// Method short name (`sc`, `fs`, `hybrid`).
    pub method: String,
    /// Workload system (`lj` or `silica`).
    pub system: String,
    /// Atom count.
    pub atoms: u64,
    /// Steps integrated.
    pub steps: u64,
    /// Total wall seconds for the run.
    pub wall_s: f64,
    /// Milliseconds per step.
    pub ms_per_step: f64,
    /// Tuple candidates visited in the final step (0 where the executor
    /// does not report tuple statistics).
    pub tuples_candidates: u64,
    /// Tuples accepted in the final step.
    pub tuples_accepted: u64,
    /// Final potential energy (deterministic given the pinned seeds).
    pub energy_total: f64,
    /// Messages sent over the whole run (0 for the serial engine).
    pub comm_messages: u64,
    /// Bytes sent over the whole run (0 for the serial engine).
    pub comm_bytes: u64,
    /// Messages per integration step (`comm_messages / steps`). With
    /// per-neighbor aggregation this is one framed batch per neighbor per
    /// exchange phase; the comparator gates on it exactly so a schedule
    /// regression back to per-channel sends fails loudly.
    pub messages_per_step: f64,
}

impl BenchCase {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("executor".into(), Json::str(&self.executor)),
            ("method".into(), Json::str(&self.method)),
            ("system".into(), Json::str(&self.system)),
            ("atoms".into(), Json::num(self.atoms as f64)),
            ("steps".into(), Json::num(self.steps as f64)),
            ("wall_s".into(), Json::num(self.wall_s)),
            ("ms_per_step".into(), Json::num(self.ms_per_step)),
            ("tuples_candidates".into(), Json::num(self.tuples_candidates as f64)),
            ("tuples_accepted".into(), Json::num(self.tuples_accepted as f64)),
            ("energy_total".into(), Json::num(self.energy_total)),
            ("comm_messages".into(), Json::num(self.comm_messages as f64)),
            ("comm_bytes".into(), Json::num(self.comm_bytes as f64)),
            ("messages_per_step".into(), Json::num(self.messages_per_step)),
        ])
    }
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// repository (the bench file is still valid — the sha is provenance only).
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The pinned workload matrix, embedded at compile time from
/// `scenarios/bench/`. Array order is the canonical case order, and each
/// file's `name` field matches `BENCH_baseline.json` case-for-case —
/// editing a spec file changes what `scmd bench` measures, and the
/// baseline comparator catches any counter drift that causes.
const MATRIX_SPECS: [&str; 12] = [
    include_str!("../scenarios/bench/serial-sc-md-lj.json"),
    include_str!("../scenarios/bench/serial-fs-md-lj.json"),
    include_str!("../scenarios/bench/serial-hybrid-md-lj.json"),
    include_str!("../scenarios/bench/serial-sc-md-silica.json"),
    include_str!("../scenarios/bench/serial-fs-md-silica.json"),
    include_str!("../scenarios/bench/bsp-sc-md-lj.json"),
    include_str!("../scenarios/bench/bsp-fs-md-lj.json"),
    include_str!("../scenarios/bench/threaded-sc-md-lj.json"),
    include_str!("../scenarios/bench/bsp-sc-md-silica.json"),
    include_str!("../scenarios/bench/threaded-sc-md-silica.json"),
    include_str!("../scenarios/bench/bsp-sc-md-clustered.json"),
    include_str!("../scenarios/bench/bsp-sc-md-clustered-legacy.json"),
];

/// Decodes the embedded benchmark matrix.
pub fn matrix_specs() -> Vec<ScenarioSpec> {
    MATRIX_SPECS
        .iter()
        .map(|src| ScenarioSpec::from_json_str(src).expect("checked-in bench spec is valid"))
        .collect()
}

/// The matrix step count for a case: the `steps` field in the checked-in
/// specs holds the full-mode value; `quick` (used by tests) shrinks it.
fn mode_steps(spec: &ScenarioSpec, quick: bool) -> u64 {
    let (lj_steps, silica_steps, dist_steps, clustered_steps) =
        if quick { (4, 2, 2, 2) } else { (10, 4, 5, 200) };
    match &spec.executor {
        ExecutorSpec::Serial { .. } => match &spec.system {
            SystemSpec::Silica { .. } => silica_steps,
            _ => lj_steps,
        },
        // The clustered pair exists to A/B the comm schedule (default vs
        // pinned legacy per-channel); the schedule delta is a few percent
        // in-process, so the pair runs long enough for it to rise above
        // scheduler noise.
        _ => match &spec.system {
            SystemSpec::Clustered { .. } => clustered_steps,
            _ => dist_steps,
        },
    }
}

/// Runs one scenario as a measured bench case. Every executor — serial,
/// threaded, BSP — goes through the same [`sc_spec::RunHandle`]
/// instantiation the job service uses, so the bench doubles as a no-drift
/// check on the spec layer.
pub fn run_spec_case(spec: &ScenarioSpec) -> Result<BenchCase, String> {
    let steps = spec.steps;
    let mut handle = spec.instantiate().map_err(|e| e.to_string())?;
    let atoms = handle.gather().len() as u64;
    let t0 = std::time::Instant::now();
    handle.run(steps as usize);
    let wall = t0.elapsed().as_secs_f64();
    let t = handle.telemetry();
    Ok(BenchCase {
        name: spec.name.clone(),
        executor: spec.executor.kind().into(),
        method: spec.method.name().into(),
        system: spec.system.kind().into(),
        atoms,
        steps,
        wall_s: wall,
        ms_per_step: wall / steps as f64 * 1e3,
        tuples_candidates: t.tuples.total_candidates(),
        tuples_accepted: t.tuples.total_accepted(),
        energy_total: t.energy.total(),
        // The serial engine's telemetry reports zeroed comm counters,
        // matching the baseline's serial cases.
        comm_messages: t.comm.messages,
        comm_bytes: t.comm.bytes,
        messages_per_step: t.comm.messages as f64 / steps as f64,
    })
}

/// Runs the pinned workload matrix from the embedded `scenarios/bench/`
/// specs. `quick` shrinks the step counts (used by tests; CI and
/// interactive runs use the full matrix, which still completes in
/// seconds).
pub fn run_matrix(quick: bool) -> Vec<BenchCase> {
    let mut specs = matrix_specs();
    for spec in &mut specs {
        spec.steps = mode_steps(spec, quick);
    }
    // The clustered A/B pair (default vs `-legacy` comm schedule) reports
    // interleaved min-of-3 wall time: the schedule delta it exists to
    // measure is a few percent, below the slow machine-load drift between
    // two back-to-back single-shot windows. Alternating A,B,A,B,A,B and
    // keeping each case's fastest repeat cancels that drift; counters are
    // deterministic across repeats, so only the wall estimate tightens.
    let rounds = if quick { 1 } else { 3 };
    let mut best: Vec<Option<BenchCase>> = specs.iter().map(|_| None).collect();
    for round in 0..rounds {
        for (i, spec) in specs.iter().enumerate() {
            let repeated = matches!(spec.system, SystemSpec::Clustered { .. });
            if round > 0 && !repeated {
                continue;
            }
            let case = run_spec_case(spec).expect("checked-in bench spec runs");
            best[i] = match best[i].take() {
                Some(b) if b.wall_s <= case.wall_s => Some(b),
                _ => Some(case),
            };
        }
    }
    best.into_iter().map(|b| b.expect("every spec ran in round 0")).collect()
}

/// Renders a bench document (the `BENCH_<gitsha>.json` layout pinned by
/// `schema/bench.schema.json`).
pub fn to_document(cases: &[BenchCase]) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str(SCHEMA_ID)),
        ("git_sha".into(), Json::str(git_sha())),
        ("cases".into(), Json::Arr(cases.iter().map(BenchCase::to_json).collect())),
    ])
}

fn num(case: &Json, key: &str) -> f64 {
    case.get(key).and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
}

/// Diffs `current` against `baseline`. Returns `(report, failures)`:
/// one report line per compared case, and one failure line per violated
/// invariant. Deterministic counters (tuple candidates/accepted, comm
/// messages/bytes) must match exactly and energies must agree to 1e-6
/// relative; wall time may grow at most `wall_tol_pct` percent over the
/// baseline (pass `f64::INFINITY` to skip the wall check entirely, e.g.
/// when the baseline was recorded on different hardware).
pub fn compare(baseline: &Json, current: &Json, wall_tol_pct: f64) -> (Vec<String>, Vec<String>) {
    let mut report = Vec::new();
    let mut failures = Vec::new();
    let empty = Vec::new();
    let base_cases = baseline.get("cases").and_then(|c| c.as_array()).unwrap_or(&empty);
    let cur_cases = current.get("cases").and_then(|c| c.as_array()).unwrap_or(&empty);
    for base in base_cases {
        let name = base.get("name").and_then(|n| n.as_str()).unwrap_or("?").to_string();
        let Some(cur) = cur_cases
            .iter()
            .find(|c| c.get("name").and_then(|n| n.as_str()) == Some(name.as_str()))
        else {
            failures.push(format!("{name}: case missing from current run"));
            continue;
        };
        for key in [
            "atoms",
            "steps",
            "tuples_candidates",
            "tuples_accepted",
            "comm_messages",
            "comm_bytes",
            "messages_per_step",
        ] {
            let (b, c) = (num(base, key), num(cur, key));
            if b != c {
                failures.push(format!("{name}: {key} changed {b} -> {c}"));
            }
        }
        let (be, ce) = (num(base, "energy_total"), num(cur, "energy_total"));
        if (be - ce).abs() > 1e-6 * be.abs().max(1.0) {
            failures.push(format!("{name}: energy_total drifted {be} -> {ce}"));
        }
        let (bw, cw) = (num(base, "wall_s"), num(cur, "wall_s"));
        let growth_pct = if bw > 0.0 { (cw / bw - 1.0) * 100.0 } else { 0.0 };
        if growth_pct > wall_tol_pct {
            failures.push(format!(
                "{name}: wall time regressed {:.1}% ({:.4}s -> {:.4}s, tolerance {wall_tol_pct}%)",
                growth_pct, bw, cw
            ));
        }
        report.push(format!("{name:<28} wall {:.4}s -> {:.4}s ({:+.1}%)", bw, cw, growth_pct));
    }
    (report, failures)
}

/// Renders the per-case wall-time delta between two bench documents as a
/// GitHub-flavoured markdown table — written into the CI job summary by
/// `scmd bench --summary`. Cases present only in `current` (newly added
/// benchmarks) are listed with an em-dash baseline instead of being
/// silently dropped.
pub fn markdown_delta_table(baseline: &Json, current: &Json) -> String {
    let empty = Vec::new();
    let base_cases = baseline.get("cases").and_then(|c| c.as_array()).unwrap_or(&empty);
    let cur_cases = current.get("cases").and_then(|c| c.as_array()).unwrap_or(&empty);
    let name_of = |c: &Json| c.get("name").and_then(|n| n.as_str()).unwrap_or("?").to_string();
    let mut out = String::from(
        "### Bench wall-time deltas\n\n\
         | case | baseline ms/step | current ms/step | Δ wall |\n\
         |---|---:|---:|---:|\n",
    );
    for cur in cur_cases {
        let name = name_of(cur);
        let cm = num(cur, "ms_per_step");
        match base_cases.iter().find(|b| name_of(b) == name) {
            Some(base) => {
                let bm = num(base, "ms_per_step");
                let (bw, cw) = (num(base, "wall_s"), num(cur, "wall_s"));
                let pct = if bw > 0.0 { (cw / bw - 1.0) * 100.0 } else { 0.0 };
                out.push_str(&format!("| {name} | {bm:.3} | {cm:.3} | {pct:+.1}% |\n"));
            }
            None => out.push_str(&format!("| {name} | — | {cm:.3} | new case |\n")),
        }
    }
    for base in base_cases {
        let name = name_of(base);
        if !cur_cases.iter().any(|c| name_of(c) == name) {
            out.push_str(&format!("| {name} | {:.3} | — | missing |\n", num(base, "ms_per_step")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(wall: f64, candidates: u64) -> Json {
        let case = BenchCase {
            name: "serial-sc-lj".into(),
            executor: "serial".into(),
            method: "sc".into(),
            system: "lj".into(),
            atoms: 256,
            steps: 4,
            wall_s: wall,
            ms_per_step: wall / 4.0 * 1e3,
            tuples_candidates: candidates,
            tuples_accepted: candidates / 2,
            energy_total: -100.0,
            comm_messages: 0,
            comm_bytes: 0,
            messages_per_step: 0.0,
        };
        to_document(&[case])
    }

    #[test]
    fn identical_documents_compare_clean() {
        let a = doc(1.0, 1000);
        let (report, failures) = compare(&a, &a, 20.0);
        assert_eq!(failures, Vec::<String>::new());
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn wall_regression_beyond_tolerance_fails() {
        let (_, failures) = compare(&doc(1.0, 1000), &doc(1.5, 1000), 20.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("wall time regressed"), "{failures:?}");
        // Infinite tolerance skips the wall check.
        let (_, failures) = compare(&doc(1.0, 1000), &doc(100.0, 1000), f64::INFINITY);
        assert!(failures.is_empty());
    }

    #[test]
    fn counter_drift_fails_regardless_of_wall_tolerance() {
        let (_, failures) = compare(&doc(1.0, 1000), &doc(1.0, 1001), f64::INFINITY);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("tuples_candidates"), "{failures:?}");
    }

    #[test]
    fn markdown_table_covers_new_and_missing_cases() {
        let base = doc(1.0, 1000);
        let mut extra = doc(0.5, 1000);
        if let Json::Obj(fields) = &mut extra {
            if let Some((_, Json::Arr(cases))) = fields.iter_mut().find(|(k, _)| k == "cases") {
                let added = BenchCase {
                    name: "bsp-SC-MD-silica".into(),
                    executor: "bsp".into(),
                    method: "SC-MD".into(),
                    system: "silica".into(),
                    atoms: 1536,
                    steps: 5,
                    wall_s: 0.2,
                    ms_per_step: 40.0,
                    tuples_candidates: 1,
                    tuples_accepted: 1,
                    energy_total: -1.0,
                    comm_messages: 1,
                    comm_bytes: 8,
                    messages_per_step: 0.2,
                };
                cases.push(added.to_json());
            }
        }
        let table = markdown_delta_table(&base, &extra);
        assert!(table.contains("| serial-sc-lj |"), "{table}");
        assert!(table.contains("-50.0%"), "{table}");
        assert!(table.contains("| bsp-SC-MD-silica | — | 40.000 | new case |"), "{table}");
        // The reverse direction reports the dropped case.
        let table = markdown_delta_table(&extra, &base);
        assert!(table.contains("missing"), "{table}");
    }

    #[test]
    fn missing_case_fails() {
        let base = doc(1.0, 1000);
        let empty = Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA_ID)),
            ("git_sha".into(), Json::str("x")),
            ("cases".into(), Json::Arr(vec![])),
        ]);
        let (_, failures) = compare(&base, &empty, 20.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }

    #[test]
    fn embedded_matrix_specs_parse_and_keep_the_baseline_case_names() {
        let specs = matrix_specs();
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "serial-SC-MD-lj",
                "serial-FS-MD-lj",
                "serial-Hybrid-MD-lj",
                "serial-SC-MD-silica",
                "serial-FS-MD-silica",
                "bsp-SC-MD-lj",
                "bsp-FS-MD-lj",
                "threaded-SC-MD-lj",
                "bsp-SC-MD-silica",
                "threaded-SC-MD-silica",
                "bsp-SC-MD-clustered",
                "bsp-SC-MD-clustered-legacy",
            ]
        );
        // Every name leads with its own executor/method/system triple, so a
        // mislabeled spec file cannot masquerade as another case; a suffix
        // (e.g. `-legacy` for the pinned per-channel comm variant) is
        // allowed after the triple.
        for s in &specs {
            let triple = format!("{}-{}-{}", s.executor.kind(), s.method.name(), s.system.kind());
            assert!(
                s.name == triple || s.name.starts_with(&format!("{triple}-")),
                "spec name {:?} disagrees with its contents ({triple})",
                s.name
            );
        }
    }

    #[test]
    fn quick_matrix_is_deterministic_across_runs() {
        // Two back-to-back runs must agree on every deterministic counter —
        // this is the invariant the CI comparator relies on.
        let a = run_matrix(true);
        let b = run_matrix(true);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.tuples_candidates, y.tuples_candidates, "{}", x.name);
            assert_eq!(x.tuples_accepted, y.tuples_accepted, "{}", x.name);
            assert_eq!(x.comm_messages, y.comm_messages, "{}", x.name);
            assert_eq!(x.comm_bytes, y.comm_bytes, "{}", x.name);
            assert!((x.energy_total - y.energy_total).abs() < 1e-9, "{}", x.name);
        }
        let (report, failures) = compare(&to_document(&a), &to_document(&b), f64::INFINITY);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(report.len(), a.len());
    }
}
