//! `scmd chaos` — the seeded fault-storm soak harness.
//!
//! Each storm scripts a [`FaultPlan::storm`] (all five fault kinds with a
//! capped crash budget) against a supervised 8-rank distributed run and
//! checks the final state against a fault-free reference of the same
//! case: no atom lost, *exact* accepted-tuple equality (candidate counts
//! are decomposition-dependent by design and deliberately not compared),
//! and total-energy / total-momentum agreement. A failing storm writes a
//! reproducer bundle — seed, the full fault script, the fired-fault log,
//! a chrome trace, and the final telemetry JSON — so the exact scenario
//! replays offline from one directory.

use sc_cell::AtomStore;
use sc_geom::{IVec3, Vec3};
use sc_md::supervisor::{Supervisor, SupervisorConfig};
use sc_md::{build_fcc_lattice, build_silica_like, thermalize, LatticeSpec, Method};
use sc_obs::json::Json;
use sc_obs::{chrome_trace, Tracer};
use sc_parallel::rank::ForceField;
use sc_parallel::{DistributedSim, FaultPlan};
use sc_potential::{LennardJones, Vashishta};
use sc_spec::{ExecutorSpec, ScenarioSpec};
use std::path::PathBuf;

/// Soak-run parameters (one storm = one seeded fault schedule).
pub struct ChaosConfig {
    /// Built-in workload cases to storm (`lj`, `silica`).
    pub cases: Vec<String>,
    /// Spec-defined cases stormed alongside the built-in ones; each must
    /// use the BSP executor (`scmd chaos --spec PATH`).
    pub specs: Vec<ScenarioSpec>,
    /// Storms per case.
    pub storms: u64,
    /// Base seed; storm `i` of a case uses `seed + i`.
    pub seed: u64,
    /// Steps per run (reference and stormed runs alike).
    pub steps: u64,
    /// Scripted faults per storm (crashes capped at 2 of these).
    pub faults: usize,
    /// Directory for reproducer bundles of failing storms.
    pub out_dir: PathBuf,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            cases: vec!["lj".into(), "silica".into()],
            specs: Vec::new(),
            storms: 8,
            seed: 7,
            steps: 10,
            faults: 3,
            out_dir: PathBuf::from("chaos-out"),
        }
    }
}

/// A stormable case: a built-in name or a scenario spec.
enum CaseDef<'a> {
    Named(&'a str),
    Spec(&'a ScenarioSpec),
}

impl CaseDef<'_> {
    fn name(&self) -> &str {
        match self {
            CaseDef::Named(name) => name,
            CaseDef::Spec(spec) => &spec.name,
        }
    }

    fn build(&self) -> Result<DistributedSim, String> {
        match self {
            CaseDef::Named(name) => build_case(name),
            CaseDef::Spec(spec) => build_spec_case(spec),
        }
    }
}

/// Instantiates a spec-defined chaos case. The storm harness owns the
/// fault schedule — a fault plan in the spec would fire during the
/// fault-free reference run too, so it is stripped here.
fn build_spec_case(spec: &ScenarioSpec) -> Result<DistributedSim, String> {
    if !matches!(spec.executor, ExecutorSpec::Bsp { .. }) {
        return Err(format!(
            "chaos spec {:?} must use the bsp executor, got {}",
            spec.name,
            spec.executor.kind()
        ));
    }
    let mut clean = spec.clone();
    clean.fault_plan = None;
    let handle = clean.instantiate().map_err(|e| e.to_string())?;
    Ok(*handle.into_bsp().expect("bsp executor instantiates as the BSP engine"))
}

/// One storm's verdict.
#[derive(Debug)]
pub struct StormOutcome {
    /// Workload case name.
    pub case: String,
    /// The storm's fault-schedule seed.
    pub seed: u64,
    /// `None` on success, the guardrail violation otherwise.
    pub failure: Option<String>,
    /// Reproducer bundle location (failing storms only).
    pub bundle: Option<PathBuf>,
}

/// Fault-free invariants a stormed run must reproduce.
struct Reference {
    atoms: usize,
    pair_accepted: u64,
    triplet_accepted: u64,
    quadruplet_accepted: u64,
    energy: f64,
    momentum: Vec3,
}

fn lj_ff() -> ForceField {
    ForceField {
        pair: Some(Box::new(LennardJones::reduced(2.5))),
        triplet: None,
        quadruplet: None,
        method: Method::ShiftCollapse,
    }
}

fn silica_ff() -> ForceField {
    let v = Vashishta::silica();
    ForceField {
        pair: Some(Box::new(v.pair.clone())),
        triplet: Some(Box::new(v.triplet.clone())),
        quadruplet: None,
        method: Method::ShiftCollapse,
    }
}

/// Builds the pinned 8-rank (2×2×2) workload for `case` — boxes are large
/// enough that every survivor grid down to 6 ranks stays feasible.
fn build_case(case: &str) -> Result<DistributedSim, String> {
    match case {
        "lj" => {
            let (mut store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(7, 1.5599), 0.0, 42);
            thermalize(&mut store, 1.0, 42);
            DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(), 0.002)
                .map_err(|e| format!("lj case must build: {e}"))
        }
        "silica" => {
            let v = Vashishta::silica();
            let (mut store, bbox) = build_silica_like(4, 7.16, v.params().masses, 0.0, 42);
            thermalize(&mut store, 0.05, 42);
            DistributedSim::new(store, bbox, IVec3::splat(2), silica_ff(), 0.0005)
                .map_err(|e| format!("silica case must build: {e}"))
        }
        other => Err(format!("unknown chaos case {other:?} (expected lj|silica)")),
    }
}

fn total_momentum(store: &AtomStore) -> Vec3 {
    let masses = store.species_masses().to_vec();
    let mut p = Vec3::ZERO;
    for i in 0..store.len() {
        p += store.velocities()[i] * masses[store.species()[i].index()];
    }
    p
}

fn reference_for(case: &CaseDef, steps: u64) -> Result<Reference, String> {
    let mut sim = case.build()?;
    sim.run(steps as usize);
    let t = sim.telemetry();
    let out = sim.gather();
    Ok(Reference {
        atoms: out.len(),
        pair_accepted: t.tuples.pair.accepted,
        triplet_accepted: t.tuples.triplet.accepted,
        quadruplet_accepted: t.tuples.quadruplet.accepted,
        energy: t.energy.total() + sim.kinetic_energy(),
        momentum: total_momentum(&out),
    })
}

/// Checks the stormed run against the fault-free invariants; the first
/// violated guardrail is the verdict.
fn check(sim: &DistributedSim, reference: &Reference) -> Option<String> {
    let out = sim.gather();
    if out.len() != reference.atoms {
        return Some(format!("atom count {} != reference {}", out.len(), reference.atoms));
    }
    let t = sim.telemetry();
    for (what, got, want) in [
        ("pair", t.tuples.pair.accepted, reference.pair_accepted),
        ("triplet", t.tuples.triplet.accepted, reference.triplet_accepted),
        ("quadruplet", t.tuples.quadruplet.accepted, reference.quadruplet_accepted),
    ] {
        if got != want {
            return Some(format!("{what} accepted {got} != reference {want}"));
        }
    }
    let energy = t.energy.total() + sim.kinetic_energy();
    let rel = ((energy - reference.energy) / reference.energy.abs().max(1e-300)).abs();
    if rel > 1e-6 {
        return Some(format!("total energy {energy} drifted {rel:.2e} from {}", reference.energy));
    }
    let dp = (total_momentum(&out) - reference.momentum).norm();
    if dp > 1e-8 {
        return Some(format!("total momentum drifted by {dp:.2e}"));
    }
    None
}

/// JSON-encodes a fault script / fired-fault log entry via its `Debug`
/// form — the bundle is for a human replaying the scenario, and the
/// `Debug` text pastes straight back into a `FaultPlan` literal.
fn faults_json<T: std::fmt::Debug>(items: &[T]) -> Json {
    Json::Arr(items.iter().map(|f| Json::str(format!("{f:?}"))).collect())
}

/// Writes the reproducer bundle for a failed storm; best-effort — bundle
/// I/O errors are reported in the outcome but never mask the failure.
fn write_bundle(
    dir: &PathBuf,
    case: &str,
    seed: u64,
    config: &ChaosConfig,
    script: &Json,
    sim: &DistributedSim,
    failure: &str,
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let write = |name: &str, text: String| -> Result<(), String> {
        std::fs::write(dir.join(name), text).map_err(|e| format!("write {name}: {e}"))
    };
    let repro = Json::Obj(vec![
        ("case".into(), Json::str(case)),
        ("seed".into(), Json::num(seed as f64)),
        ("steps".into(), Json::num(config.steps as f64)),
        ("faults".into(), Json::num(config.faults as f64)),
        ("failure".into(), Json::str(failure)),
        ("fault_script".into(), script.clone()),
        ("fired".into(), faults_json(sim.fault_plan().events())),
        ("unfired".into(), faults_json(sim.fault_plan().pending())),
        (
            "crashed_ranks".into(),
            Json::Arr(
                sim.fault_plan().crashed_ranks().iter().map(|&r| Json::num(r as f64)).collect(),
            ),
        ),
    ]);
    write("repro.json", repro.to_string())?;
    write("telemetry.json", sim.telemetry().to_json_value().to_string())?;
    write("trace.json", chrome_trace(&sim.tracer().events()).to_string())?;
    Ok(())
}

/// Runs one storm: a seeded fault schedule under supervision, checked
/// against `reference`. Failing storms leave a reproducer bundle under
/// `config.out_dir`.
fn run_storm(
    case: &CaseDef,
    seed: u64,
    config: &ChaosConfig,
    reference: &Reference,
) -> Result<StormOutcome, String> {
    let mut sim = case.build()?;
    let nranks = sim.telemetry().per_rank.len();
    // Small spec-defined grids can't afford the built-in matrix's crash
    // budget of 2 — always leave at least one survivor.
    let crash_cap = 2.min(nranks.saturating_sub(1));
    let plan = FaultPlan::storm(seed, config.faults, config.steps, nranks, crash_cap);
    let script = faults_json(plan.pending());
    sim.set_fault_plan(plan);
    sim.set_tracer(Tracer::new());
    let mut sup = Supervisor::new(SupervisorConfig {
        checkpoint_every: 2,
        max_rollbacks: 64,
        ..SupervisorConfig::default()
    });
    let failure = match sup.run(&mut sim, config.steps) {
        Err(e) => Some(format!("supervision aborted: {e}")),
        Ok(()) => check(&sim, reference),
    };
    let bundle = match &failure {
        None => None,
        Some(why) => {
            let dir = config.out_dir.join(format!("chaos-{}-{seed}", case.name()));
            if let Err(e) = write_bundle(&dir, case.name(), seed, config, &script, &sim, why) {
                eprintln!("warning: reproducer bundle incomplete: {e}");
            }
            Some(dir)
        }
    };
    Ok(StormOutcome { case: case.name().to_string(), seed, failure, bundle })
}

/// Runs the whole soak matrix; outcomes come back in deterministic
/// (case-major, then seed) order.
///
/// # Errors
/// Only configuration errors (unknown case, unbuildable workload) abort
/// the soak; guardrail violations are reported per storm instead.
pub fn run_soak(config: &ChaosConfig) -> Result<Vec<StormOutcome>, String> {
    let defs: Vec<CaseDef> = config
        .cases
        .iter()
        .map(|name| CaseDef::Named(name))
        .chain(config.specs.iter().map(CaseDef::Spec))
        .collect();
    let mut outcomes = Vec::new();
    for case in &defs {
        let reference = reference_for(case, config.steps)?;
        for storm in 0..config.storms {
            outcomes.push(run_storm(case, config.seed + storm, config, &reference)?);
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny pinned soak passes end-to-end (the CI job runs the full
    /// matrix; this keeps the harness itself under unit test).
    #[test]
    fn pinned_lj_storms_pass() {
        let config = ChaosConfig {
            cases: vec!["lj".into()],
            storms: 2,
            seed: 11,
            steps: 6,
            faults: 2,
            ..ChaosConfig::default()
        };
        let outcomes = run_soak(&config).expect("soak must run");
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.failure.is_none(), "storm {} failed: {:?}", o.seed, o.failure);
        }
    }

    #[test]
    fn unknown_case_is_a_configuration_error() {
        let config = ChaosConfig { cases: vec!["argon".into()], ..ChaosConfig::default() };
        assert!(run_soak(&config).unwrap_err().contains("unknown chaos case"));
    }

    /// A spec-defined BSP case storms alongside the built-ins, and its
    /// own fault plan is stripped so the reference run is fault-free.
    #[test]
    fn spec_cases_storm_like_builtins() {
        let spec = ScenarioSpec::from_json_str(
            r#"{
                "schema": "sc-scenario/1",
                "name": "spec-lj-storm",
                "system": {"kind": "lj", "cells": 7, "a": 1.5599, "temp": 1.0, "seed": 42},
                "potential": {"kind": "lj", "cutoff": 2.5},
                "method": "sc",
                "executor": {"kind": "bsp", "grid": [2, 2, 2]},
                "dt": 0.002,
                "steps": 6,
                "fault_plan": {"seed": 3, "count": 2, "max_crashes": 1}
            }"#,
        )
        .unwrap();
        let config = ChaosConfig {
            cases: vec![],
            specs: vec![spec],
            storms: 1,
            seed: 11,
            steps: 6,
            faults: 2,
            ..ChaosConfig::default()
        };
        let outcomes = run_soak(&config).expect("spec soak must run");
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].case, "spec-lj-storm");
        assert!(outcomes[0].failure.is_none(), "storm failed: {:?}", outcomes[0].failure);
    }

    /// Serial specs are configuration errors — there is nothing to crash.
    #[test]
    fn serial_spec_is_rejected() {
        let spec = ScenarioSpec::from_json_str(
            r#"{
                "schema": "sc-scenario/1",
                "name": "serial-nope",
                "system": {"kind": "lj", "cells": 5, "a": 1.5599, "temp": 1.0, "seed": 42},
                "potential": {"kind": "lj", "cutoff": 2.5},
                "method": "sc",
                "executor": {"kind": "serial"},
                "dt": 0.002,
                "steps": 4
            }"#,
        )
        .unwrap();
        let config = ChaosConfig { cases: vec![], specs: vec![spec], ..ChaosConfig::default() };
        assert!(run_soak(&config).unwrap_err().contains("must use the bsp executor"));
    }

    /// The reproducer bundle is complete and machine-readable: the
    /// repro document parses back, names the scenario, and the trace /
    /// telemetry sidecars exist.
    #[test]
    fn reproducer_bundle_round_trips() {
        let dir = std::env::temp_dir().join(format!("sc-chaos-bundle-{}", std::process::id()));
        let config = ChaosConfig::default();
        let mut sim = build_case("lj").unwrap();
        let plan = FaultPlan::storm(3, 2, 6, 8, 1);
        let script = faults_json(plan.pending());
        sim.set_fault_plan(plan);
        sim.set_tracer(Tracer::new());
        // Unsupervised: an escalated fault is fine, the bundle is what is
        // under test here.
        for _ in 0..6 {
            let _ = sim.try_step();
        }
        write_bundle(&dir, "lj", 3, &config, &script, &sim, "synthetic failure").unwrap();
        let repro = Json::parse(&std::fs::read_to_string(dir.join("repro.json")).unwrap()).unwrap();
        assert_eq!(repro.get("case").unwrap().as_str(), Some("lj"));
        assert_eq!(repro.get("seed").unwrap().as_f64(), Some(3.0));
        assert_eq!(repro.get("failure").unwrap().as_str(), Some("synthetic failure"));
        assert_eq!(repro.get("fault_script").unwrap().as_array().unwrap().len(), 2);
        let telemetry =
            Json::parse(&std::fs::read_to_string(dir.join("telemetry.json")).unwrap()).unwrap();
        assert!(telemetry.get("degraded").is_some());
        assert!(dir.join("trace.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
