//! # shift-collapse-md
//!
//! An open-source Rust implementation of the **shift-collapse (SC)
//! algorithm** for dynamic range-limited n-tuple computation in many-body
//! molecular dynamics, reproducing
//!
//! > M. Kunaseth, R. K. Kalia, A. Nakano, K. Nomura, P. Vashishta,
//! > *"A Scalable Parallel Algorithm for Dynamic Range-Limited n-Tuple
//! > Computation in Many-Body Molecular Dynamics Simulation"*,
//! > Proceedings of SC'13.
//!
//! This umbrella crate re-exports the whole workspace under stable paths:
//!
//! * [`geom`] — vectors, periodic boxes, cell regions.
//! * [`pattern`] — the computation-pattern algebra and the SC algorithm
//!   itself (the paper's core contribution).
//! * [`cell`] — the linked-cell data structure and atom storage.
//! * [`potential`] — Lennard-Jones, Vashishta-form silica, Stillinger-Weber,
//!   and a 4-body torsion potential.
//! * [`md`] — the UCP enumeration engine and the SC-MD / FS-MD / Hybrid-MD
//!   simulation drivers.
//! * [`parallel`] — the thread-based distributed-memory runtime
//!   (halo exchange, forwarded routing, force reduction, migration).
//! * [`obs`] — the observability layer: lock-free metrics registry, phase
//!   taxonomy, and the human / JSON / Prometheus exporters behind the
//!   unified `Telemetry` snapshot.
//! * [`netmodel`] — calibrated machine profiles used to regenerate the
//!   paper's granularity and strong-scaling figures.
//! * [`spec`] — declarative `sc-scenario/1` documents (JSON/TOML) and the
//!   validating builder that instantiates them on any executor.
//! * [`serve`] — the multi-tenant job service behind `scmd serve`:
//!   fair-share scheduling, backpressure, and restartable jobs.
//!
//! ## Quickstart
//!
//! ```
//! use shift_collapse_md::prelude::*;
//!
//! // A small Lennard-Jones liquid, integrated with the SC pattern.
//! let spec = LatticeSpec::cubic(6, 1.5599); // 6³ FCC cells, 864 atoms
//! let (store, bbox) = build_fcc_lattice(&spec, 0.05, 42);
//! let lj = LennardJones::reduced(2.5);
//! let mut sim = Simulation::builder(store, bbox)
//!     .pair_potential(Box::new(lj))
//!     .method(Method::ShiftCollapse)
//!     .timestep(0.002)
//!     .build()
//!     .unwrap();
//! let e0 = sim.total_energy();
//! sim.run(10);
//! let e1 = sim.total_energy();
//! assert!(((e1 - e0) / e0).abs() < 1e-3); // NVE drift is tiny
//! ```

pub mod bench;
pub mod chaos;

pub use sc_cell as cell;
pub use sc_core as pattern;
pub use sc_geom as geom;
pub use sc_md as md;
pub use sc_netmodel as netmodel;
pub use sc_obs as obs;
pub use sc_parallel as parallel;
pub use sc_potential as potential;
pub use sc_serve as serve;
pub use sc_spec as spec;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use sc_cell::{AtomStore, CellLattice, Species};
    pub use sc_core::{
        eighth_shell, generate_fs, generate_fs_reach, half_shell, shift_collapse,
        shift_collapse_reach, Path, Pattern, PatternKind,
    };
    pub use sc_geom::{CellRegion, IVec3, SimulationBox, Vec3};
    pub use sc_md::{
        build_fcc_lattice, build_silica_like, pair_virial_pressure, LatticeSpec,
        MeanSquaredDisplacement, Method, Observer, RadialDistribution, RuntimeConfig, Simulation,
        SimulationBuilder, Telemetry,
    };
    pub use sc_netmodel::{MachineProfile, MdCostModel, MethodCosts};
    pub use sc_obs::{Phase, PhaseBreakdown, Registry};
    pub use sc_parallel::{DistributedSim, RankGrid, ThreadedSim};
    pub use sc_potential::{LennardJones, StillingerWeber, TabulatedPair, TorsionToy, Vashishta};
}
