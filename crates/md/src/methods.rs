//! The three n-tuple computation methods the paper benchmarks (§5).

use crate::engine::{self, Dedup, PatternPlan, VisitStats};
use sc_cell::{AtomStore, CellLattice};
use sc_core::PatternKind;
use sc_geom::{SimulationBox, Vec3};
use serde::{Deserialize, Serialize};

/// Which n-tuple search strategy a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// FS-MD: full-shell patterns for every n, reflective duplicates
    /// filtered during enumeration, widest import volume.
    FullShell,
    /// SC-MD: shift-collapse patterns for every n — the paper's algorithm.
    ShiftCollapse,
    /// Hybrid-MD: the production baseline of the paper — cell-based
    /// full-shell pair search feeding a Verlet pair list; n ≥ 3 terms are
    /// pruned from the pair list rather than the cell structure.
    Hybrid,
}

impl Method {
    /// All methods, in the order the paper's figures list them.
    pub const ALL: [Method; 3] = [Method::ShiftCollapse, Method::FullShell, Method::Hybrid];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Method::FullShell => "FS-MD",
            Method::ShiftCollapse => "SC-MD",
            Method::Hybrid => "Hybrid-MD",
        }
    }

    /// The cell pattern and dedup mode used for tuple order `n` — Hybrid
    /// uses the cell structure only for pairs (n = 2).
    pub fn plan_for(self, n: usize) -> PatternPlan {
        match self {
            Method::FullShell | Method::Hybrid => {
                PatternPlan::new(&PatternKind::FullShell.build(n), Dedup::Guarded)
            }
            Method::ShiftCollapse => {
                PatternPlan::new(&PatternKind::ShiftCollapse.build(n), Dedup::Collapsed)
            }
        }
    }
}

/// A Verlet pair neighbour list: for every atom, the neighbours within the
/// pair cutoff, stored in CSR form. Hybrid-MD rebuilds this every step from
/// the full-shell pair search and prunes all n ≥ 3 tuples from it.
#[derive(Debug, Clone, Default)]
pub struct NeighborList {
    starts: Vec<u32>,
    /// Neighbour atom index and the minimum-image displacement to it.
    entries: Vec<(u32, Vec3)>,
}

impl NeighborList {
    /// Builds the symmetric neighbour list (each pair appears in both rows)
    /// from a cell-based pair sweep over the global periodic lattice. The
    /// returned statistics account Hybrid's pair-search cost like the other
    /// methods'.
    pub fn build(
        lat: &CellLattice,
        store: &AtomStore,
        plan: &PatternPlan,
        rcut: f64,
    ) -> (NeighborList, VisitStats) {
        let cells: Vec<sc_geom::IVec3> = lat.cells().collect();
        NeighborList::build_from_cells(
            &engine::PeriodicSource::new(lat, store),
            &cells,
            store.len(),
            plan,
            rcut,
        )
    }

    /// Builds the list from an arbitrary [`engine::TupleSource`] sweeping
    /// the given base cells — used by the distributed runtime, whose pair
    /// sweep runs over a rank-local ghost lattice.
    pub fn build_from_cells(
        src: &impl engine::TupleSource,
        cells: &[sc_geom::IVec3],
        n: usize,
        plan: &PatternPlan,
        rcut: f64,
    ) -> (NeighborList, VisitStats) {
        let mut pairs: Vec<(u32, u32, Vec3)> = Vec::new();
        let mut stats = VisitStats::default();
        for &q in cells {
            stats.merge(engine::visit_pairs_in_cell_src(src, plan, rcut, q, |i, j, d, _| {
                pairs.push((i, j, d));
            }));
        }
        let mut counts = vec![0u32; n + 1];
        for &(i, j, _) in &pairs {
            counts[i as usize + 1] += 1;
            counts[j as usize + 1] += 1;
        }
        for k in 0..n {
            counts[k + 1] += counts[k];
        }
        let mut entries = vec![(0u32, Vec3::ZERO); pairs.len() * 2];
        let mut cursor = counts.clone();
        for &(i, j, d) in &pairs {
            entries[cursor[i as usize] as usize] = (j, d);
            cursor[i as usize] += 1;
            entries[cursor[j as usize] as usize] = (i, -d);
            cursor[j as usize] += 1;
        }
        (NeighborList { starts: counts, entries }, stats)
    }

    /// Neighbours of atom `i`: `(j, d_ij)` with `d_ij = r_j − r_i`
    /// (minimum image).
    #[inline]
    pub fn neighbors(&self, i: u32) -> &[(u32, Vec3)] {
        &self.entries[self.starts[i as usize] as usize..self.starts[i as usize + 1] as usize]
    }

    /// Number of atoms the list covers.
    pub fn len(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of directed neighbour entries (2× the pair count).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Visits every undirected triplet `(i, j, k)` (vertex `j`) whose two
    /// legs are shorter than `rcut3`, pruned from the pair list — the
    /// Hybrid-MD triplet search. The callback receives
    /// `(i, j, k, d_ji, d_jk)` converted to the engine's chain convention
    /// `(i0, i1, i2, d01, d12)` by the caller.
    pub fn visit_triplets(
        &self,
        rcut3: f64,
        mut f: impl FnMut(u32, u32, u32, Vec3, Vec3),
    ) -> VisitStats {
        let rc2 = rcut3 * rcut3;
        let mut stats = VisitStats::default();
        for j in 0..self.len() as u32 {
            let nbrs = self.neighbors(j);
            for (a, &(i, d_ji)) in nbrs.iter().enumerate() {
                if d_ji.norm_sq() >= rc2 {
                    continue;
                }
                for &(k, d_jk) in &nbrs[a + 1..] {
                    stats.candidates += 1;
                    if d_jk.norm_sq() >= rc2 {
                        continue;
                    }
                    stats.accepted += 1;
                    // Chain convention: (i, j, k) with d01 = r_j − r_i = −d_ji.
                    f(i, j, k, -d_ji, d_jk);
                }
            }
        }
        stats
    }

    /// Visits every undirected bonded chain `(i, j, k, l)` with all three
    /// links shorter than `rcut4`, pruned from the pair list — the
    /// Hybrid-MD quadruplet search. Callback receives
    /// `(ids, d01, d12, d23)` in chain convention.
    pub fn visit_quadruplets(
        &self,
        rcut4: f64,
        mut f: impl FnMut([u32; 4], Vec3, Vec3, Vec3),
    ) -> VisitStats {
        let rc2 = rcut4 * rcut4;
        let mut stats = VisitStats::default();
        for j in 0..self.len() as u32 {
            for &(k, d_jk) in self.neighbors(j) {
                // Each undirected centre bond once.
                if k <= j || d_jk.norm_sq() >= rc2 {
                    continue;
                }
                for &(i, d_ji) in self.neighbors(j) {
                    if i == k || d_ji.norm_sq() >= rc2 {
                        continue;
                    }
                    for &(l, d_kl) in self.neighbors(k) {
                        stats.candidates += 1;
                        if l == j || l == i || d_kl.norm_sq() >= rc2 {
                            continue;
                        }
                        stats.accepted += 1;
                        f([i, j, k, l], -d_ji, d_jk, d_kl);
                    }
                }
            }
        }
        stats
    }
}

/// Builds a cell lattice for one n-body term: cell edge = the term's cutoff
/// (SC-MD and FS-MD size the cell structure to each `r_cut-n`; Hybrid only
/// ever builds the pair lattice).
pub fn lattice_for_cutoff(bbox: &SimulationBox, rcut: f64, n: usize) -> CellLattice {
    lattice_for_cutoff_subdivided(bbox, rcut, n, 1)
}

/// Like [`lattice_for_cutoff`] but with cells subdivided `k`-fold
/// (edge ≥ `rcut/k`), for reach-k patterns (paper §6 / the midpoint-method
/// regime). Rejects lattices where reach-k pattern offsets (up to
/// `k·(n−1)`) would alias through the periodic wrap, or boxes below 3
/// cutoffs where the minimum-image convention would break.
pub fn lattice_for_cutoff_subdivided(
    bbox: &SimulationBox,
    rcut: f64,
    n: usize,
    k: i32,
) -> CellLattice {
    assert!(k >= 1, "subdivision must be ≥ 1");
    let l = bbox.lengths();
    assert!(
        l.x >= 3.0 * rcut && l.y >= 3.0 * rcut && l.z >= 3.0 * rcut,
        "box {l:?} below 3 cutoffs ({rcut}); minimum-image breaks"
    );
    let lat = CellLattice::new(*bbox, rcut / k as f64);
    let dims = lat.dims();
    let min_dim = dims.x.min(dims.y).min(dims.z);
    let span = k * (n as i32 - 1);
    assert!(
        min_dim > span,
        "lattice {dims} too small for reach-{k} n = {n} tuples (offset span {span}): \
         pattern offsets would alias through the periodic wrap"
    );
    lat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_gas;
    use std::collections::HashSet;

    #[test]
    fn method_metadata() {
        assert_eq!(Method::ShiftCollapse.name(), "SC-MD");
        assert_eq!(Method::FullShell.plan_for(2).len(), 27);
        assert_eq!(Method::ShiftCollapse.plan_for(2).len(), 14);
        assert_eq!(Method::ShiftCollapse.plan_for(3).len(), 378);
        assert_eq!(Method::Hybrid.plan_for(2).len(), 27);
    }

    fn setup(n_atoms: usize, box_l: f64, rcut: f64) -> (CellLattice, AtomStore) {
        let (store, bbox) = random_gas(n_atoms, box_l, 11);
        let mut lat = CellLattice::new(bbox, rcut);
        lat.rebuild(&store);
        (lat, store)
    }

    #[test]
    fn neighbor_list_is_symmetric_and_complete() {
        let rcut = 1.2;
        let (lat, store) = setup(100, 4.0, rcut);
        let plan = Method::Hybrid.plan_for(2);
        let (nl, stats) = NeighborList::build(&lat, &store, &plan, rcut);
        assert!(stats.accepted > 0);
        assert_eq!(nl.entry_count() as u64, stats.accepted * 2);
        // Symmetry: j in N(i) ⇔ i in N(j), with opposite displacements.
        for i in 0..store.len() as u32 {
            for &(j, d) in nl.neighbors(i) {
                let back = nl
                    .neighbors(j)
                    .iter()
                    .find(|&&(k, _)| k == i)
                    .expect("asymmetric neighbour list");
                assert!((back.1 + d).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn hybrid_triplets_match_cell_triplets() {
        // The Hybrid Verlet-list triplet search must produce exactly the
        // same undirected triplet set as the SC cell search with rcut3.
        let rcut2 = 1.2;
        let rcut3 = 0.6; // ≈ half, like the silica benchmark
        let (lat, store) = setup(150, 4.0, rcut2);
        let (nl, _) = NeighborList::build(&lat, &store, &Method::Hybrid.plan_for(2), rcut2);
        let mut hybrid = HashSet::new();
        nl.visit_triplets(rcut3, |i, j, k, _, _| {
            let key = (i.min(k), j, i.max(k));
            assert!(hybrid.insert(key), "duplicate hybrid triplet {key:?}");
        });
        // SC cell-based search with a lattice sized to rcut3.
        let mut lat3 = CellLattice::new(*lat.bbox(), rcut3);
        lat3.rebuild(&store);
        let plan3 = Method::ShiftCollapse.plan_for(3);
        let mut sc = HashSet::new();
        engine::visit_triplets(&lat3, &store, &plan3, rcut3, |i, j, k, _, _| {
            let key = (i.min(k), j, i.max(k));
            assert!(sc.insert(key), "duplicate SC triplet {key:?}");
        });
        assert_eq!(hybrid, sc);
        assert!(!sc.is_empty());
    }

    #[test]
    fn hybrid_quadruplets_match_cell_quadruplets() {
        let rcut2 = 1.2;
        let rcut4 = 0.9;
        let (lat, store) = setup(60, 4.0, rcut2);
        let (nl, _) = NeighborList::build(&lat, &store, &Method::Hybrid.plan_for(2), rcut2);
        let canon = |ids: [u32; 4]| {
            if ids[0] < ids[3] || (ids[0] == ids[3] && ids[1] <= ids[2]) {
                ids
            } else {
                [ids[3], ids[2], ids[1], ids[0]]
            }
        };
        let mut hybrid = HashSet::new();
        nl.visit_quadruplets(rcut4, |ids, _, _, _| {
            assert!(hybrid.insert(canon(ids)), "duplicate hybrid quad {ids:?}");
        });
        let mut lat4 = CellLattice::new(*lat.bbox(), rcut4);
        lat4.rebuild(&store);
        let plan4 = Method::ShiftCollapse.plan_for(4);
        let mut sc = HashSet::new();
        engine::visit_quadruplets(&lat4, &store, &plan4, rcut4, |ids, _, _, _| {
            assert!(sc.insert(canon(ids)), "duplicate SC quad {ids:?}");
        });
        assert_eq!(hybrid, sc);
        assert!(!sc.is_empty());
    }

    #[test]
    fn hybrid_triplet_search_is_cheaper_with_short_cutoff() {
        // The Hybrid advantage the paper describes: with rcut3 ≈ 0.47·rcut2
        // the Verlet-list triplet search examines far fewer candidates than
        // the rcut2-cell search would, and fewer even than the rcut3-cell
        // SC search (pair lists localize better than cells).
        let rcut2 = 1.5;
        let rcut3 = 0.7;
        let (lat, store) = setup(250, 4.5, rcut2);
        let (nl, _) = NeighborList::build(&lat, &store, &Method::Hybrid.plan_for(2), rcut2);
        let h = nl.visit_triplets(rcut3, |_, _, _, _, _| {});
        let mut lat3 = CellLattice::new(*lat.bbox(), rcut3);
        lat3.rebuild(&store);
        let s = engine::visit_triplets(
            &lat3,
            &store,
            &Method::ShiftCollapse.plan_for(3),
            rcut3,
            |_, _, _, _, _| {},
        );
        assert!(
            h.candidates < s.candidates,
            "hybrid triplet candidates {} ≥ SC cell candidates {}",
            h.candidates,
            s.candidates
        );
        assert_eq!(h.accepted, s.accepted);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn aliasing_lattice_rejected() {
        let bbox = SimulationBox::cubic(3.0);
        let _ = lattice_for_cutoff(&bbox, 1.0, 4);
    }
}
