//! The unified telemetry snapshot and the periodic [`Observer`] hook.
//!
//! [`Telemetry`] is the one type every runtime layer reports through. It
//! collapses what used to be three overlapping types (`StepStats`,
//! `CommStats`, `StepPhases`) into a single snapshot carrying physics
//! (energy, virial, tuple counts), the per-phase time breakdown mapped to
//! the paper's cost terms, communication counters, and allocation
//! accounting. The serial [`Simulation`](crate::Simulation) leaves the
//! communication fields empty; the distributed executors fill them per
//! rank and in aggregate.

use crate::stats::{EnergyBreakdown, TupleCounts};
use sc_obs::json::Json;
use sc_obs::{CommCounters, ImbalanceReport, PhaseBreakdown};

/// One point-in-time snapshot of everything a simulation reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Steps completed when the snapshot was taken.
    pub step: u64,
    /// Potential energies by term, from the most recent force computation.
    pub energy: EnergyBreakdown,
    /// Tuple-search statistics from the most recent force computation.
    pub tuples: TupleCounts,
    /// Scalar virial from the most recent force computation.
    pub virial: f64,
    /// Phase breakdown of the most recent force computation / step.
    pub phases: PhaseBreakdown,
    /// Phase breakdown accumulated since construction.
    pub total_phases: PhaseBreakdown,
    /// Aggregate communication counters (all ranks merged). Empty for the
    /// shared-memory engine.
    pub comm: CommCounters,
    /// Per-rank communication counters, indexed by rank. Empty for the
    /// shared-memory engine.
    pub per_rank: Vec<CommCounters>,
    /// Allocation events observed in the hot path: force-scratch
    /// growth plus metric registrations. Flat across steady-state steps.
    pub alloc_events: u64,
    /// Whether the runtime is in degraded mode: it lost at least one rank
    /// and re-decomposed onto the survivors. Always `false` for the
    /// shared-memory engine.
    pub degraded: bool,
}

impl Telemetry {
    /// Renders the snapshot as one compact JSON line (no trailing newline).
    /// The layout is pinned by `schema/metrics.schema.json` at the
    /// repository root and validated in CI.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The per-rank load-imbalance report over this snapshot's `per_rank`
    /// counters; `None` for single-image runs (nothing to compare).
    pub fn imbalance(&self) -> Option<ImbalanceReport> {
        if self.per_rank.is_empty() {
            return None;
        }
        Some(ImbalanceReport::from_per_rank(&self.per_rank))
    }

    /// The JSON value behind [`Telemetry::to_json`], for embedding.
    pub fn to_json_value(&self) -> Json {
        let phases = |p: &PhaseBreakdown| {
            Json::Obj(p.iter().map(|(ph, s)| (format!("{}_s", ph.name()), Json::num(s))).collect())
        };
        let comm = |c: &CommCounters, extra: Vec<(String, Json)>| {
            let mut fields = extra;
            fields.extend([
                ("messages".to_string(), Json::num(c.messages as f64)),
                ("bytes".to_string(), Json::num(c.bytes as f64)),
                ("ghosts_imported".to_string(), Json::num(c.ghosts_imported as f64)),
                ("atoms_migrated".to_string(), Json::num(c.atoms_migrated as f64)),
                ("retries".to_string(), Json::num(c.retries as f64)),
                ("faults_detected".to_string(), Json::num(c.faults_detected as f64)),
                ("partners".to_string(), Json::num(c.partners.len() as f64)),
            ]);
            Json::Obj(fields)
        };
        let order = |v: &crate::engine::VisitStats| {
            Json::Obj(vec![
                ("candidates".to_string(), Json::num(v.candidates as f64)),
                ("accepted".to_string(), Json::num(v.accepted as f64)),
            ])
        };
        let doc = Json::Obj(vec![
            ("step".to_string(), Json::num(self.step as f64)),
            (
                "energy".to_string(),
                Json::Obj(vec![
                    ("pair".to_string(), Json::num(self.energy.pair)),
                    ("triplet".to_string(), Json::num(self.energy.triplet)),
                    ("quadruplet".to_string(), Json::num(self.energy.quadruplet)),
                    ("total".to_string(), Json::num(self.energy.total())),
                ]),
            ),
            ("virial".to_string(), Json::num(self.virial)),
            (
                "tuples".to_string(),
                Json::Obj(vec![
                    ("pair".to_string(), order(&self.tuples.pair)),
                    ("triplet".to_string(), order(&self.tuples.triplet)),
                    ("quadruplet".to_string(), order(&self.tuples.quadruplet)),
                ]),
            ),
            ("phases".to_string(), phases(&self.phases)),
            ("total_phases".to_string(), phases(&self.total_phases)),
            ("comm".to_string(), comm(&self.comm, vec![])),
            (
                "per_rank".to_string(),
                Json::Arr(
                    self.per_rank
                        .iter()
                        .enumerate()
                        .map(|(rank, c)| {
                            let mut obj =
                                comm(c, vec![("rank".to_string(), Json::num(rank as f64))]);
                            if let Json::Obj(fields) = &mut obj {
                                fields.push(("phases".to_string(), phases(&c.phases)));
                            }
                            obj
                        })
                        .collect(),
                ),
            ),
            ("alloc_events".to_string(), Json::num(self.alloc_events as f64)),
            ("degraded".to_string(), Json::Bool(self.degraded)),
        ]);
        let Json::Obj(mut fields) = doc else { unreachable!() };
        if let Some(report) = self.imbalance() {
            fields.push(("imbalance".to_string(), report.to_json_value()));
        }
        Json::Obj(fields)
    }

    /// Renders the snapshot as a small human-readable table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "step {:>8}  E_pot {:>12.5}  virial {:>12.5}",
            self.step,
            self.energy.total(),
            self.virial
        );
        let _ = writeln!(
            out,
            "tuples accepted {} / {} candidates",
            self.tuples.total_accepted(),
            self.tuples.total_candidates()
        );
        for (phase, secs) in self.phases.iter() {
            if secs > 0.0 {
                let _ = writeln!(out, "  {:<10} {:.6} s", phase.name(), secs);
            }
        }
        if self.comm.messages > 0 {
            let _ = writeln!(
                out,
                "comm: {} msgs, {} bytes, {} ghosts, {} migrated, {} retries, {} faults",
                self.comm.messages,
                self.comm.bytes,
                self.comm.ghosts_imported,
                self.comm.atoms_migrated,
                self.comm.retries,
                self.comm.faults_detected
            );
        }
        out
    }
}

/// A periodic telemetry sink, registered with
/// [`Simulation::observe_every`](crate::Simulation::observe_every) (or the
/// distributed equivalent) and invoked every N completed steps with a fresh
/// snapshot — long runs can stream telemetry without touching engine
/// internals.
pub trait Observer: Send {
    /// Called with a snapshot after every N-th completed step.
    fn observe(&mut self, telemetry: &Telemetry);
}

impl<F: FnMut(&Telemetry) + Send> Observer for F {
    fn observe(&mut self, telemetry: &Telemetry) {
        self(telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_obs::Phase;

    #[test]
    fn json_line_parses_and_carries_every_section() {
        let mut t = Telemetry { step: 42, virial: -1.5, ..Default::default() };
        t.energy.pair = -10.0;
        t.phases.add(Phase::Bin, 0.25);
        t.total_phases.add(Phase::Bin, 2.5);
        t.comm.record_send(1, 100);
        let mut rank1 = t.comm.clone();
        rank1.phases.add(Phase::Eval, 0.75);
        t.per_rank = vec![CommCounters::default(), rank1];
        t.alloc_events = 7;
        let v = Json::parse(&t.to_json()).unwrap();
        assert_eq!(v.get("step").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("energy").unwrap().get("total").unwrap().as_f64(), Some(-10.0));
        assert_eq!(v.get("phases").unwrap().get("bin_s").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("total_phases").unwrap().get("bin_s").unwrap().as_f64(), Some(2.5));
        let ranks = v.get("per_rank").unwrap().as_array().unwrap();
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[1].get("rank").unwrap().as_f64(), Some(1.0));
        assert_eq!(ranks[1].get("bytes").unwrap().as_f64(), Some(100.0));
        assert_eq!(v.get("alloc_events").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(false));
        // Per-rank entries carry their own phase breakdown …
        let rank_phases = ranks[1].get("phases").unwrap();
        assert_eq!(rank_phases.get("eval_s").unwrap().as_f64(), Some(0.75));
        // … and multi-rank snapshots carry the imbalance section.
        let imb = v.get("imbalance").unwrap();
        assert_eq!(imb.get("ranks").unwrap().as_f64(), Some(2.0));
        assert!(imb.get("compute_imbalance").unwrap().as_f64().unwrap() >= 1.0);
        assert_eq!(imb.get("per_rank").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn single_image_snapshots_omit_imbalance() {
        let t = Telemetry::default();
        assert!(t.imbalance().is_none());
        let v = Json::parse(&t.to_json()).unwrap();
        assert!(v.get("imbalance").is_none());
    }

    #[test]
    fn closures_are_observers() {
        let mut seen = Vec::new();
        {
            let mut obs: Box<dyn Observer> = Box::new(|t: &Telemetry| seen.push(t.step));
            let t = Telemetry { step: 3, ..Default::default() };
            obs.observe(&t);
            obs.observe(&Telemetry { step: 6, ..t.clone() });
        }
        assert_eq!(seen, vec![3, 6]);
    }

    #[test]
    fn table_renders_nonzero_sections_only() {
        let mut t = Telemetry::default();
        t.phases.add(Phase::Eval, 0.5);
        let table = t.render_table();
        assert!(table.contains("eval"));
        assert!(!table.contains("comm:"));
        t.comm.record_send(0, 10);
        assert!(t.render_table().contains("comm:"));
    }
}
