//! Per-step accounting: energies and tuple-search statistics.

use crate::engine::VisitStats;

/// Potential-energy breakdown by n-body term (the paper's Φ₂ + Φ₃ + Φ₄,
/// Eq. 2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Pair-term energy Φ₂.
    pub pair: f64,
    /// Triplet-term energy Φ₃.
    pub triplet: f64,
    /// Quadruplet-term energy Φ₄.
    pub quadruplet: f64,
}

impl EnergyBreakdown {
    /// Total potential energy.
    pub fn total(&self) -> f64 {
        self.pair + self.triplet + self.quadruplet
    }
}

/// Search statistics per tuple order — the measurable form of the paper's
/// search-cost analysis (Fig. 7 plots `accepted` for n = 3; `candidates`
/// is the `|S_cell|` sum of Eq. 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TupleCounts {
    /// Pair-search statistics.
    pub pair: VisitStats,
    /// Triplet-search statistics.
    pub triplet: VisitStats,
    /// Quadruplet-search statistics.
    pub quadruplet: VisitStats,
}

impl TupleCounts {
    /// Total candidates across all tuple orders.
    pub fn total_candidates(&self) -> u64 {
        self.pair.candidates + self.triplet.candidates + self.quadruplet.candidates
    }

    /// Total accepted tuples across all orders.
    pub fn total_accepted(&self) -> u64 {
        self.pair.accepted + self.triplet.accepted + self.quadruplet.accepted
    }
}

/// Wall-clock breakdown of one force computation by step phase — the
/// shared-memory counterpart of the paper's `T = T_compute + T_comm`
/// decomposition, letting the compute/comm crossover (Fig. 8) be read off a
/// real run instead of the analytic model.
///
/// `enumerate_s` and `eval_s` are *summed per-lane CPU seconds* (the lanes
/// run concurrently), while `bin_s`, `exchange_s`, and `reduce_s` are wall
/// time on the driving thread. `eval_s` is nonzero only when detailed
/// timing is enabled (it costs two clock reads per accepted tuple); with it
/// off, potential evaluation time is folded into `enumerate_s`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepPhases {
    /// Seconds rebinning atoms into cell lattices (plus Verlet-list builds
    /// under Hybrid-MD).
    pub bin_s: f64,
    /// Seconds in ghost exchange. Always zero for the shared-memory
    /// [`Simulation`](crate::Simulation); the distributed executors fill it.
    pub exchange_s: f64,
    /// Per-lane seconds walking the n-tuple search space (cell sweeps or
    /// neighbour-list traversal), excluding `eval_s` when that is measured.
    pub enumerate_s: f64,
    /// Per-lane seconds inside potential evaluations (detailed timing only).
    pub eval_s: f64,
    /// Seconds merging per-lane accumulators into the global force array.
    pub reduce_s: f64,
}

impl StepPhases {
    /// Total accounted seconds.
    pub fn total_s(&self) -> f64 {
        self.bin_s + self.exchange_s + self.enumerate_s + self.eval_s + self.reduce_s
    }

    /// Adds another breakdown (e.g. across steps or ranks) in place.
    pub fn accumulate(&mut self, o: &StepPhases) {
        self.bin_s += o.bin_s;
        self.exchange_s += o.exchange_s;
        self.enumerate_s += o.enumerate_s;
        self.eval_s += o.eval_s;
        self.reduce_s += o.reduce_s;
    }
}

/// Everything one force computation reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepStats {
    /// Potential energies by term.
    pub energy: EnergyBreakdown,
    /// Search statistics by term.
    pub tuples: TupleCounts,
    /// Scalar virial `W = Σ_tuples Σ_k f_k · (r_k − r_ref)` over all terms —
    /// the potential part of the pressure `P = (N k_B T + W/3) / V`.
    pub virial: f64,
    /// Wall-clock phase breakdown of this computation.
    pub phases: StepPhases,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let e = EnergyBreakdown { pair: 1.0, triplet: 2.0, quadruplet: 3.0 };
        assert_eq!(e.total(), 6.0);
        let t = TupleCounts {
            pair: VisitStats { candidates: 10, accepted: 4 },
            triplet: VisitStats { candidates: 100, accepted: 7 },
            quadruplet: VisitStats::default(),
        };
        assert_eq!(t.total_candidates(), 110);
        assert_eq!(t.total_accepted(), 11);
    }

    #[test]
    fn phase_totals_and_accumulation() {
        let mut p = StepPhases {
            bin_s: 1.0,
            exchange_s: 0.5,
            enumerate_s: 2.0,
            eval_s: 3.0,
            reduce_s: 0.25,
        };
        assert!((p.total_s() - 6.75).abs() < 1e-12);
        p.accumulate(&p.clone());
        assert!((p.total_s() - 13.5).abs() < 1e-12);
    }
}
