//! Per-step accounting: energies and tuple-search statistics. Phase timing
//! lives in [`sc_obs::PhaseBreakdown`]; the full per-step snapshot is the
//! unified [`Telemetry`](crate::Telemetry) type.

use crate::engine::VisitStats;

/// Potential-energy breakdown by n-body term (the paper's Φ₂ + Φ₃ + Φ₄,
/// Eq. 2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Pair-term energy Φ₂.
    pub pair: f64,
    /// Triplet-term energy Φ₃.
    pub triplet: f64,
    /// Quadruplet-term energy Φ₄.
    pub quadruplet: f64,
}

impl EnergyBreakdown {
    /// Total potential energy.
    pub fn total(&self) -> f64 {
        self.pair + self.triplet + self.quadruplet
    }
}

/// Search statistics per tuple order — the measurable form of the paper's
/// search-cost analysis (Fig. 7 plots `accepted` for n = 3; `candidates`
/// is the `|S_cell|` sum of Eq. 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TupleCounts {
    /// Pair-search statistics.
    pub pair: VisitStats,
    /// Triplet-search statistics.
    pub triplet: VisitStats,
    /// Quadruplet-search statistics.
    pub quadruplet: VisitStats,
}

impl TupleCounts {
    /// Total candidates across all tuple orders.
    pub fn total_candidates(&self) -> u64 {
        self.pair.candidates + self.triplet.candidates + self.quadruplet.candidates
    }

    /// Total accepted tuples across all orders.
    pub fn total_accepted(&self) -> u64 {
        self.pair.accepted + self.triplet.accepted + self.quadruplet.accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let e = EnergyBreakdown { pair: 1.0, triplet: 2.0, quadruplet: 3.0 };
        assert_eq!(e.total(), 6.0);
        let t = TupleCounts {
            pair: VisitStats { candidates: 10, accepted: 4 },
            triplet: VisitStats { candidates: 100, accepted: 7 },
            quadruplet: VisitStats::default(),
        };
        assert_eq!(t.total_candidates(), 110);
        assert_eq!(t.total_accepted(), 11);
    }
}
