//! Per-step accounting: energies, tuple-search statistics, and legacy
//! conversion shims onto the unified [`Telemetry`](crate::Telemetry) type.
//!
//! Phase timing now lives in [`sc_obs::PhaseBreakdown`]; the old
//! `StepPhases` name survives as a deprecated-style alias so downstream
//! code migrates without a flag day.

use crate::engine::VisitStats;
use crate::telemetry::Telemetry;
use sc_obs::PhaseBreakdown;

/// Potential-energy breakdown by n-body term (the paper's Φ₂ + Φ₃ + Φ₄,
/// Eq. 2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Pair-term energy Φ₂.
    pub pair: f64,
    /// Triplet-term energy Φ₃.
    pub triplet: f64,
    /// Quadruplet-term energy Φ₄.
    pub quadruplet: f64,
}

impl EnergyBreakdown {
    /// Total potential energy.
    pub fn total(&self) -> f64 {
        self.pair + self.triplet + self.quadruplet
    }
}

/// Search statistics per tuple order — the measurable form of the paper's
/// search-cost analysis (Fig. 7 plots `accepted` for n = 3; `candidates`
/// is the `|S_cell|` sum of Eq. 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TupleCounts {
    /// Pair-search statistics.
    pub pair: VisitStats,
    /// Triplet-search statistics.
    pub triplet: VisitStats,
    /// Quadruplet-search statistics.
    pub quadruplet: VisitStats,
}

impl TupleCounts {
    /// Total candidates across all tuple orders.
    pub fn total_candidates(&self) -> u64 {
        self.pair.candidates + self.triplet.candidates + self.quadruplet.candidates
    }

    /// Total accepted tuples across all orders.
    pub fn total_accepted(&self) -> u64 {
        self.pair.accepted + self.triplet.accepted + self.quadruplet.accepted
    }
}

/// Deprecated-style alias kept for source compatibility: phase timing is
/// now the shared [`sc_obs::PhaseBreakdown`]. The field accesses of the old
/// struct (`.bin_s`, `.eval_s`, …) become the getter methods `.bin_s()`,
/// `.eval_s()`, … on the shared type. New code should name
/// `PhaseBreakdown` directly.
pub type StepPhases = PhaseBreakdown;

/// Legacy flat snapshot of one force computation — superseded by
/// [`Telemetry`], which adds cumulative phases, communication counters, and
/// allocation accounting. Kept as a thin conversion shim
/// (`StepStats::from(&telemetry)`) so existing call sites migrate in place;
/// new code should use [`crate::Simulation::telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepStats {
    /// Potential energies by term.
    pub energy: EnergyBreakdown,
    /// Search statistics by term.
    pub tuples: TupleCounts,
    /// Scalar virial `W = Σ_tuples Σ_k f_k · (r_k − r_ref)` over all terms —
    /// the potential part of the pressure `P = (N k_B T + W/3) / V`.
    pub virial: f64,
    /// Wall-clock phase breakdown of this computation.
    pub phases: PhaseBreakdown,
}

impl From<&Telemetry> for StepStats {
    fn from(t: &Telemetry) -> Self {
        StepStats { energy: t.energy, tuples: t.tuples, virial: t.virial, phases: t.phases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_obs::Phase;

    #[test]
    fn totals() {
        let e = EnergyBreakdown { pair: 1.0, triplet: 2.0, quadruplet: 3.0 };
        assert_eq!(e.total(), 6.0);
        let t = TupleCounts {
            pair: VisitStats { candidates: 10, accepted: 4 },
            triplet: VisitStats { candidates: 100, accepted: 7 },
            quadruplet: VisitStats::default(),
        };
        assert_eq!(t.total_candidates(), 110);
        assert_eq!(t.total_accepted(), 11);
    }

    #[test]
    fn step_phases_alias_behaves_like_the_shared_breakdown() {
        let mut p = StepPhases::new();
        p.add(Phase::Bin, 1.0);
        p.add(Phase::Exchange, 0.5);
        p.add(Phase::Enumerate, 2.0);
        p.add(Phase::Eval, 3.0);
        p.add(Phase::Reduce, 0.25);
        assert!((p.total_s() - 6.75).abs() < 1e-12);
        let q = p;
        p.accumulate(&q);
        assert!((p.total_s() - 13.5).abs() < 1e-12);
        assert_eq!(p.eval_s(), 6.0);
    }

    #[test]
    fn step_stats_shim_converts_from_telemetry() {
        let mut t = Telemetry::default();
        t.energy.pair = -3.5;
        t.virial = 1.25;
        t.phases.add(Phase::Eval, 0.5);
        let s = StepStats::from(&t);
        assert_eq!(s.energy.pair, -3.5);
        assert_eq!(s.virial, 1.25);
        assert_eq!(s.phases.eval_s(), 0.5);
    }
}
