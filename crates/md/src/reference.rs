//! O(Nⁿ) brute-force reference: ground truth for enumeration and forces.
//!
//! The paper defines the target of any n-tuple search as `Γ*(n)` — all
//! undirected chains of distinct atoms with every consecutive link shorter
//! than the cutoff (Eq. 6). This module materializes `Γ*(n)` by exhaustive
//! search (no cells, no patterns) so the test suite can check that every
//! method finds exactly this set and produces exactly these forces.

use sc_cell::AtomStore;
use sc_geom::SimulationBox;
use sc_potential::{PairPotential, QuadrupletPotential, TripletPotential};
use std::collections::HashSet;

/// All undirected cutoff pairs `(i, j)` with `i < j`.
pub fn all_pairs(store: &AtomStore, bbox: &SimulationBox, rcut: f64) -> HashSet<(u32, u32)> {
    let n = store.len();
    let rc2 = rcut * rcut;
    let pos = store.positions();
    let mut out = HashSet::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if bbox.dist_sq(pos[i], pos[j]) < rc2 {
                out.insert((i as u32, j as u32));
            }
        }
    }
    out
}

/// All undirected chain triplets, canonicalized as `(min(i,k), j, max(i,k))`
/// with vertex `j` in the middle.
pub fn all_triplets(
    store: &AtomStore,
    bbox: &SimulationBox,
    rcut: f64,
) -> HashSet<(u32, u32, u32)> {
    let n = store.len();
    let rc2 = rcut * rcut;
    let pos = store.positions();
    let mut out = HashSet::new();
    for j in 0..n {
        for i in 0..n {
            if i == j || bbox.dist_sq(pos[j], pos[i]) >= rc2 {
                continue;
            }
            for k in (i + 1)..n {
                if k == j || bbox.dist_sq(pos[j], pos[k]) >= rc2 {
                    continue;
                }
                out.insert((i as u32, j as u32, k as u32));
            }
        }
    }
    out
}

/// All undirected chain quadruplets `(i, j, k, l)` (links i–j, j–k, k–l),
/// canonicalized so the lexicographically smaller direction is stored.
pub fn all_quadruplets(store: &AtomStore, bbox: &SimulationBox, rcut: f64) -> HashSet<[u32; 4]> {
    let n = store.len();
    let rc2 = rcut * rcut;
    let pos = store.positions();
    let mut out = HashSet::new();
    for j in 0..n {
        for k in 0..n {
            if k == j || bbox.dist_sq(pos[j], pos[k]) >= rc2 {
                continue;
            }
            for i in 0..n {
                if i == j || i == k || bbox.dist_sq(pos[i], pos[j]) >= rc2 {
                    continue;
                }
                for l in 0..n {
                    if l == i || l == j || l == k || bbox.dist_sq(pos[k], pos[l]) >= rc2 {
                        continue;
                    }
                    let ids = [i as u32, j as u32, k as u32, l as u32];
                    let rev = [ids[3], ids[2], ids[1], ids[0]];
                    out.insert(if ids <= rev { ids } else { rev });
                }
            }
        }
    }
    out
}

/// Brute-force pair forces and energy, accumulating into `store.forces_mut`.
pub fn pair_forces(store: &mut AtomStore, bbox: &SimulationBox, pot: &dyn PairPotential) -> f64 {
    let pairs = all_pairs(store, bbox, pot.cutoff());
    let mut energy = 0.0;
    for (i, j) in pairs {
        let (si, sj) = (store.species()[i as usize], store.species()[j as usize]);
        if !pot.applies(si, sj) {
            continue;
        }
        let d = bbox.min_image(store.positions()[i as usize], store.positions()[j as usize]);
        let r = d.norm();
        let (u, du) = pot.eval(si, sj, r);
        energy += u;
        let fj = -(du / r) * d;
        store.forces_mut()[j as usize] += fj;
        store.forces_mut()[i as usize] -= fj;
    }
    energy
}

/// Brute-force triplet forces and energy.
pub fn triplet_forces(
    store: &mut AtomStore,
    bbox: &SimulationBox,
    pot: &dyn TripletPotential,
) -> f64 {
    let triplets = all_triplets(store, bbox, pot.cutoff());
    let mut energy = 0.0;
    for (i, j, k) in triplets {
        let (s0, s1, s2) =
            (store.species()[i as usize], store.species()[j as usize], store.species()[k as usize]);
        if !pot.applies(s0, s1, s2) {
            continue;
        }
        let d10 = bbox.min_image(store.positions()[j as usize], store.positions()[i as usize]);
        let d12 = bbox.min_image(store.positions()[j as usize], store.positions()[k as usize]);
        let (u, f0, f1, f2) = pot.eval(s0, s1, s2, d10, d12);
        energy += u;
        store.forces_mut()[i as usize] += f0;
        store.forces_mut()[j as usize] += f1;
        store.forces_mut()[k as usize] += f2;
    }
    energy
}

/// Brute-force quadruplet forces and energy.
pub fn quadruplet_forces(
    store: &mut AtomStore,
    bbox: &SimulationBox,
    pot: &dyn QuadrupletPotential,
) -> f64 {
    let quads = all_quadruplets(store, bbox, pot.cutoff());
    let mut energy = 0.0;
    for ids in quads {
        let sp = [
            store.species()[ids[0] as usize],
            store.species()[ids[1] as usize],
            store.species()[ids[2] as usize],
            store.species()[ids[3] as usize],
        ];
        if !pot.applies(sp) {
            continue;
        }
        let p = store.positions();
        let d01 = bbox.min_image(p[ids[0] as usize], p[ids[1] as usize]);
        let d12 = bbox.min_image(p[ids[1] as usize], p[ids[2] as usize]);
        let d23 = bbox.min_image(p[ids[2] as usize], p[ids[3] as usize]);
        let (u, f) = pot.eval(sp, d01, d12, d23);
        energy += u;
        for (slot, force) in ids.iter().zip(f) {
            store.forces_mut()[*slot as usize] += force;
        }
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_gas;
    use sc_potential::LennardJones;

    #[test]
    fn pair_count_matches_direct_formula() {
        let (store, bbox) = random_gas(30, 4.0, 3);
        let pairs = all_pairs(&store, &bbox, 1.0);
        // Check a couple of membership facts directly.
        for &(i, j) in &pairs {
            assert!(i < j);
            assert!(
                bbox.dist_sq(store.positions()[i as usize], store.positions()[j as usize]) < 1.0
            );
        }
        // Complement check: no missed pair.
        let n = store.len() as u32;
        for i in 0..n {
            for j in (i + 1)..n {
                let close = bbox
                    .dist_sq(store.positions()[i as usize], store.positions()[j as usize])
                    < 1.0;
                assert_eq!(close, pairs.contains(&(i, j)));
            }
        }
    }

    #[test]
    fn triplets_are_vertex_canonical() {
        let (store, bbox) = random_gas(25, 4.0, 4);
        for (i, j, k) in all_triplets(&store, &bbox, 1.2) {
            assert!(i < k);
            assert!(i != j && j != k);
        }
    }

    #[test]
    fn brute_force_forces_conserve_momentum() {
        let (mut store, bbox) = random_gas(40, 5.0, 5);
        let lj = LennardJones::reduced(1.5);
        store.zero_forces();
        let e = pair_forces(&mut store, &bbox, &lj);
        assert!(e.is_finite());
        // Random-gas overlaps make individual forces huge; compare the net
        // force against the force scale, not absolutely.
        let scale: f64 = store.forces().iter().map(|f| f.norm()).fold(1.0, f64::max);
        assert!(
            store.net_force().norm() < 1e-10 * scale,
            "net force {:?} vs scale {scale}",
            store.net_force()
        );
    }
}
