//! Checkpointing: full phase-space snapshots with a self-validating binary
//! encoding, the rollback targets for fault recovery.
//!
//! A [`Checkpoint`] captures everything needed to continue a trajectory:
//! step counter, timestep, box, mass table, and per-atom id / species /
//! position / velocity / force **in store order**. Scalars are encoded as
//! exact IEEE-754 bit patterns (`f64::to_bits`, little-endian), so a
//! save/load round trip is bitwise lossless and a restored serial
//! simulation continues bitwise-identically to an uninterrupted run. The
//! encoding ends in an FNV-1a checksum so a torn or corrupted file is
//! rejected on load instead of silently resuming from garbage.

use sc_cell::{AtomStore, Species};
use sc_geom::{SimulationBox, Vec3};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"SCCK";
/// Format version. v2 added the [`SnapshotLayout`] header; v3 added the
/// job-identity label. v1 files are rejected with
/// [`CheckpointError::BadVersion`] rather than being reinterpreted under the
/// new layout; v2 files (which lack the label) still load, with an empty
/// label.
const VERSION: u32 = 3;
/// Oldest format version [`Checkpoint::from_bytes`] still accepts.
const OLDEST_READABLE_VERSION: u32 = 2;

/// The producer topology recorded in a snapshot header: which runtime wrote
/// the file. Restores are topology-independent (a snapshot is a global
/// phase-space point), so the layout is provenance, not a restore
/// constraint — use [`Checkpoint::require_layout`] where a caller *does*
/// want to insist on a producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotLayout {
    /// Written by the serial engine (store order = summation order).
    Serial,
    /// Written by a distributed executor running this rank grid (atoms are
    /// gathered in global-id order).
    Grid {
        /// Rank-grid dimensions of the producer.
        pdims: [i32; 3],
    },
}

impl fmt::Display for SnapshotLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotLayout::Serial => write!(f, "serial"),
            SnapshotLayout::Grid { pdims } => {
                write!(f, "{}x{}x{} grid", pdims[0], pdims[1], pdims[2])
            }
        }
    }
}

/// Why a checkpoint could not be decoded or moved to/from disk.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// The buffer does not start with the checkpoint magic.
    BadMagic,
    /// The format version is not one this build understands.
    BadVersion(
        /// The version found in the header.
        u32,
    ),
    /// The rank-layout header holds a tag this build does not know.
    BadLayout(
        /// The layout tag found in the header.
        u8,
    ),
    /// The snapshot was produced by a different topology than the caller
    /// required (see [`Checkpoint::require_layout`]).
    LayoutMismatch {
        /// The layout the caller insisted on.
        expected: SnapshotLayout,
        /// The layout recorded in the snapshot.
        found: SnapshotLayout,
    },
    /// The snapshot carries a different identity label than the caller
    /// required (see [`Checkpoint::require_label`]) — e.g. the job service
    /// refusing to resume job A from job B's checkpoint file.
    LabelMismatch {
        /// The label the caller insisted on.
        expected: String,
        /// The label recorded in the snapshot.
        found: String,
    },
    /// The buffer ended before the declared content.
    Truncated,
    /// The trailing checksum does not match the content (torn write or bit
    /// corruption).
    ChecksumMismatch,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadLayout(t) => write!(f, "unknown checkpoint layout tag {t}"),
            CheckpointError::LayoutMismatch { expected, found } => {
                write!(f, "checkpoint layout mismatch: expected {expected}, found {found}")
            }
            CheckpointError::LabelMismatch { expected, found } => {
                write!(f, "checkpoint label mismatch: expected {expected:?}, found {found:?}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A full phase-space snapshot. Atom arrays are parallel and in store
/// order (not id order), so restoring into a serial simulation reproduces
/// the exact summation order of the saved run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Producer topology (format-version-2 header field).
    pub layout: SnapshotLayout,
    /// Free-form identity label (format-version-3 header field; empty for
    /// snapshots that belong to no one in particular). The job service
    /// stamps the owning job id here so a resume can refuse a foreign
    /// snapshot ([`Checkpoint::require_label`]).
    pub label: String,
    /// Steps completed when the snapshot was taken.
    pub step: u64,
    /// The integration timestep in force.
    pub dt: f64,
    /// Periodic box edge lengths.
    pub box_lengths: Vec3,
    /// Per-species mass table.
    pub species_masses: Vec<f64>,
    /// Global atom ids.
    pub ids: Vec<u64>,
    /// Species per atom.
    pub species: Vec<Species>,
    /// Positions.
    pub positions: Vec<Vec3>,
    /// Velocities.
    pub velocities: Vec<Vec3>,
    /// Forces (saved so a restore can skip the priming force computation
    /// and continue bitwise-identically).
    pub forces: Vec<Vec3>,
}

impl Checkpoint {
    /// Snapshots a store (owned slots only — pass a store without ghosts).
    pub fn from_store(step: u64, dt: f64, bbox: &SimulationBox, store: &AtomStore) -> Self {
        Checkpoint {
            layout: SnapshotLayout::Serial,
            label: String::new(),
            step,
            dt,
            box_lengths: bbox.lengths(),
            species_masses: store.species_masses().to_vec(),
            ids: store.ids().to_vec(),
            species: store.species().to_vec(),
            positions: store.positions().to_vec(),
            velocities: store.velocities().to_vec(),
            forces: store.forces().to_vec(),
        }
    }

    /// Rebuilds the atom store, preserving order and forces.
    pub fn to_store(&self) -> AtomStore {
        let mut store = AtomStore::new(self.species_masses.clone());
        for i in 0..self.ids.len() {
            store.push(self.ids[i], self.species[i], self.positions[i], self.velocities[i]);
        }
        store.forces_mut().copy_from_slice(&self.forces);
        store
    }

    /// Stamps the producer topology into the header (builder style).
    pub fn with_layout(mut self, layout: SnapshotLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Stamps an identity label into the header (builder style) — e.g. the
    /// owning job id.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Insists that the snapshot carries exactly the label `expected`.
    ///
    /// # Errors
    /// [`CheckpointError::LabelMismatch`] naming both labels.
    pub fn require_label(&self, expected: &str) -> Result<(), CheckpointError> {
        if self.label == expected {
            Ok(())
        } else {
            Err(CheckpointError::LabelMismatch {
                expected: expected.to_string(),
                found: self.label.clone(),
            })
        }
    }

    /// Insists that the snapshot was produced by `expected`.
    ///
    /// # Errors
    /// [`CheckpointError::LayoutMismatch`] naming both layouts.
    pub fn require_layout(&self, expected: SnapshotLayout) -> Result<(), CheckpointError> {
        if self.layout == expected {
            Ok(())
        } else {
            Err(CheckpointError::LayoutMismatch { expected, found: self.layout })
        }
    }

    /// The periodic box of the snapshot.
    pub fn bbox(&self) -> SimulationBox {
        SimulationBox::new(self.box_lengths)
    }

    /// Atoms in the snapshot.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the snapshot holds no atoms.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Encodes the snapshot: magic, version, header, atom arrays, trailing
    /// FNV-1a checksum. Bitwise lossless.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.ids.len();
        let mut out = Vec::with_capacity(
            4 + 4 + 8 + 8 + 24 + 4 + 8 * self.species_masses.len() + 8 + n * (8 + 1 + 72) + 8,
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        // Layout header: tag byte + three i32 grid dims (zero for serial),
        // fixed-width so the offset of everything after it is static.
        let (tag, pdims) = match self.layout {
            SnapshotLayout::Serial => (0u8, [0i32; 3]),
            SnapshotLayout::Grid { pdims } => (1u8, pdims),
        };
        out.push(tag);
        for d in pdims {
            out.extend_from_slice(&d.to_le_bytes());
        }
        // v3 identity label: u32 byte length + UTF-8 bytes.
        out.extend_from_slice(&(self.label.len() as u32).to_le_bytes());
        out.extend_from_slice(self.label.as_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        put_f64(&mut out, self.dt);
        put_vec3(&mut out, self.box_lengths);
        out.extend_from_slice(&(self.species_masses.len() as u32).to_le_bytes());
        for &m in &self.species_masses {
            put_f64(&mut out, m);
        }
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for i in 0..n {
            out.extend_from_slice(&self.ids[i].to_le_bytes());
            out.push(self.species[i].0);
            put_vec3(&mut out, self.positions[i]);
            put_vec3(&mut out, self.velocities[i]);
            put_vec3(&mut out, self.forces[i]);
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a snapshot produced by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    /// [`CheckpointError`] for a foreign buffer, unknown version, short
    /// read, or checksum failure.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 4 || bytes[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < 8 + 8 {
            return Err(CheckpointError::Truncated);
        }
        let (content, tail) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a(content) != declared {
            return Err(CheckpointError::ChecksumMismatch);
        }
        let mut r = Cursor { buf: content, pos: 4 };
        let version = r.u32()?;
        if !(OLDEST_READABLE_VERSION..=VERSION).contains(&version) {
            return Err(CheckpointError::BadVersion(version));
        }
        let tag = r.u8()?;
        let mut pdims = [0i32; 3];
        for d in &mut pdims {
            *d = r.u32()? as i32;
        }
        let layout = match tag {
            0 => SnapshotLayout::Serial,
            1 => SnapshotLayout::Grid { pdims },
            t => return Err(CheckpointError::BadLayout(t)),
        };
        // The identity label joined the header in v3; v2 snapshots simply
        // have none.
        let label = if version >= 3 {
            let len = r.u32()? as usize;
            String::from_utf8(r.take(len)?.to_vec()).map_err(|_| CheckpointError::Truncated)?
        } else {
            String::new()
        };
        let step = r.u64()?;
        let dt = r.f64()?;
        let box_lengths = r.vec3()?;
        let n_species = r.u32()? as usize;
        let mut species_masses = Vec::with_capacity(n_species);
        for _ in 0..n_species {
            species_masses.push(r.f64()?);
        }
        let n = r.u64()? as usize;
        let mut cp = Checkpoint {
            layout,
            label,
            step,
            dt,
            box_lengths,
            species_masses,
            ids: Vec::with_capacity(n),
            species: Vec::with_capacity(n),
            positions: Vec::with_capacity(n),
            velocities: Vec::with_capacity(n),
            forces: Vec::with_capacity(n),
        };
        for _ in 0..n {
            cp.ids.push(r.u64()?);
            cp.species.push(Species(r.u8()?));
            cp.positions.push(r.vec3()?);
            cp.velocities.push(r.vec3()?);
            cp.forces.push(r.vec3()?);
        }
        if r.pos != content.len() {
            return Err(CheckpointError::Truncated);
        }
        Ok(cp)
    }

    /// Writes the snapshot to `path` (atomic enough for recovery tests:
    /// the checksum rejects a torn file on load).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()?;
        Ok(())
    }

    /// Reads a snapshot back from `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_vec3(out: &mut Vec<u8>, v: Vec3) {
    put_f64(out, v.x);
    put_f64(out, v.y);
    put_f64(out, v.z);
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Minimal bounds-checked reader over the content slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn vec3(&mut self) -> Result<Vec3, CheckpointError> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::build_silica_like;

    fn sample() -> Checkpoint {
        let (mut store, bbox) = build_silica_like(2, 7.16, [28.0855, 15.999], 0.3, 11);
        // Give forces distinctive bit patterns so the round trip proves they
        // survive exactly.
        for (i, f) in store.forces_mut().iter_mut().enumerate() {
            *f = Vec3::new(i as f64 * 0.1, -(i as f64), 1.0 / (i as f64 + 1.0));
        }
        Checkpoint::from_store(42, 1e-3, &bbox, &store)
    }

    #[test]
    fn byte_roundtrip_is_bitwise() {
        let cp = sample();
        let back = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
        assert_eq!(cp, back);
        // Exact bits, not just PartialEq (which NaN could fool).
        for (a, b) in cp.positions.iter().zip(&back.positions) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
        }
        for (a, b) in cp.forces.iter().zip(&back.forces) {
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
    }

    #[test]
    fn store_roundtrip_preserves_order_and_forces() {
        let cp = sample();
        let store = cp.to_store();
        assert_eq!(store.ids(), cp.ids.as_slice());
        assert_eq!(store.forces(), cp.forces.as_slice());
        let again = Checkpoint::from_store(cp.step, cp.dt, &cp.bbox(), &store);
        assert_eq!(cp, again);
    }

    #[test]
    fn decode_rejects_corruption() {
        let cp = sample();
        let bytes = cp.to_bytes();
        assert!(matches!(
            Checkpoint::from_bytes(b"not a checkpoint"),
            Err(CheckpointError::BadMagic)
        ));
        let mut torn = bytes.clone();
        torn.truncate(torn.len() / 2);
        assert!(Checkpoint::from_bytes(&torn).is_err());
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(Checkpoint::from_bytes(&flipped), Err(CheckpointError::ChecksumMismatch)));
        let mut vbad = bytes.clone();
        vbad[4] = 99; // version byte
                      // Version is covered by the checksum, so this reads as corruption.
        assert!(Checkpoint::from_bytes(&vbad).is_err());
    }

    /// Re-seals a hand-mutated buffer so it fails on content, not checksum.
    fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
        let n = bytes.len() - 8;
        bytes.truncate(n);
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        bytes
    }

    #[test]
    fn layout_header_round_trips() {
        let cp = sample().with_layout(SnapshotLayout::Grid { pdims: [2, 2, 1] });
        let back = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
        assert_eq!(back.layout, SnapshotLayout::Grid { pdims: [2, 2, 1] });
        assert_eq!(cp, back);
        assert!(back.require_layout(SnapshotLayout::Grid { pdims: [2, 2, 1] }).is_ok());
        let err = back.require_layout(SnapshotLayout::Serial).unwrap_err();
        assert!(matches!(err, CheckpointError::LayoutMismatch { .. }));
        assert!(err.to_string().contains("2x2x1"), "{err}");
    }

    #[test]
    fn label_header_round_trips_and_is_enforced() {
        let cp = sample().with_label("j-000042");
        let back = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
        assert_eq!(back.label, "j-000042");
        assert_eq!(cp, back);
        assert!(back.require_label("j-000042").is_ok());
        let err = back.require_label("j-000007").unwrap_err();
        assert!(matches!(err, CheckpointError::LabelMismatch { .. }));
        assert!(err.to_string().contains("j-000042"), "{err}");
        assert!(err.to_string().contains("j-000007"), "{err}");
    }

    #[test]
    fn v2_snapshot_without_label_still_loads() {
        // A v2 file is a v3 file with an empty label minus the 4-byte label
        // length, with the version patched down. Offset 21 = magic (4) +
        // version (4) + layout tag (1) + grid dims (12).
        let cp = sample();
        assert!(cp.label.is_empty());
        let mut bytes = cp.to_bytes();
        bytes.drain(21..25);
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        let v2 = reseal(bytes);
        let back = Checkpoint::from_bytes(&v2).unwrap();
        assert_eq!(back.label, "");
        assert_eq!(back, cp);
    }

    #[test]
    fn old_format_version_is_rejected_not_reinterpreted() {
        // A well-formed v1 file differs from v2 only by the version field
        // and the missing 13-byte layout header; simulate one by patching
        // the version down and re-sealing. The decoder must refuse it with
        // the version it found, never parse the body under v2 offsets.
        let mut bytes = sample().to_bytes();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let vbad = reseal(bytes);
        assert!(matches!(Checkpoint::from_bytes(&vbad), Err(CheckpointError::BadVersion(1))));
    }

    #[test]
    fn unknown_layout_tag_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 7; // layout tag
        let bad = reseal(bytes);
        assert!(matches!(Checkpoint::from_bytes(&bad), Err(CheckpointError::BadLayout(7))));
    }

    #[test]
    fn disk_roundtrip() {
        let cp = sample();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sc-checkpoint-test-{}.sc", std::process::id()));
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(cp, back);
    }
}
