//! The user-facing simulation driver.

use crate::checkpoint::Checkpoint;
use crate::engine::{self, PatternPlan, VisitStats};
use crate::error::BuildError;
use crate::integrate::{berendsen_rescale, velocity_verlet_finish, velocity_verlet_start};
use crate::methods::{Method, NeighborList};
use crate::par::{AccumulatorPool, ForceAccumulator, LaneSlots, ThreadPool};
use crate::stats::{EnergyBreakdown, TupleCounts};
use crate::telemetry::{Observer, Telemetry};
use sc_cell::{AtomStore, CellLattice};
use sc_geom::{IVec3, SimulationBox, Vec3};
use sc_obs::{CommCounters, Counter, Phase, PhaseBreakdown, Registry, TraceSink, Tracer};
use sc_potential::{PairPotential, QuadrupletPotential, TripletPotential};
use std::collections::HashMap;
use std::time::Instant;

/// Runtime/observability configuration of a [`Simulation`], passed to
/// [`SimulationBuilder::build`] via [`SimulationBuilder::runtime`].
///
/// Collapses the former scattered builder knobs (`threads`,
/// `detailed_timing`, `verlet_skin`) and adds the metrics [`Registry`] the
/// engine reports into. Scalar fields are validated by `build()`; a
/// rejected value comes back as [`BuildError::Config`] naming the field.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Parallel force-evaluation lanes. `0` (default) sizes the pool to the
    /// host's available parallelism; `1` runs inline with no workers.
    pub threads: usize,
    /// Per-evaluation timers, splitting the `eval` phase out of
    /// `enumerate`. Costs two clock reads per accepted tuple; off by
    /// default.
    pub detailed_timing: bool,
    /// Verlet-list skin for Hybrid-MD (ignored by the cell-sweep methods):
    /// the pair list is built with cutoff `r_cut2 + skin` and reused until
    /// an atom moves more than `skin/2`. Zero (default) rebuilds every
    /// step — the fully dynamic mode the paper benchmarks. Must be finite
    /// and ≥ 0.
    pub verlet_skin: f64,
    /// Morton re-sort cadence: every `resort_every`-th step the atom store
    /// is permuted along the Z-order curve of a canonical cell lattice (max
    /// term cutoff, no skin, no subdivision), so cell neighbours stay memory
    /// neighbours for the batched distance kernels. `0` disables re-sorting.
    /// The cadence trades permutation cost against gather locality; once
    /// sorted, atoms drift across cells slowly, so a small power of two
    /// (default 8) keeps the layout tight at negligible cost.
    pub resort_every: u64,
    /// The metrics registry every phase/counter observation flows into.
    /// Defaults to [`Registry::disabled`], which is allocation-free and
    /// never reads the clock.
    pub metrics: Registry,
    /// The event tracer phase intervals and markers flow into. Defaults to
    /// [`Tracer::disabled`], which is likewise allocation-free and never
    /// reads the clock in the hot path.
    pub tracer: Tracer,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            threads: 0,
            detailed_timing: false,
            verlet_skin: 0.0,
            resort_every: 8,
            metrics: Registry::disabled(),
            tracer: Tracer::disabled(),
        }
    }
}

/// Builder for [`Simulation`]. Obtained from [`Simulation::builder`].
pub struct SimulationBuilder {
    store: AtomStore,
    bbox: SimulationBox,
    method: Method,
    dt: f64,
    pair: Option<Box<dyn PairPotential>>,
    triplet: Option<Box<dyn TripletPotential>>,
    quadruplet: Option<Box<dyn QuadrupletPotential>>,
    thermostat: Option<(f64, f64)>,
    barostat: Option<(f64, f64)>,
    subdivision: i32,
    runtime: RuntimeConfig,
}

impl SimulationBuilder {
    /// Sets the pair (n = 2) potential term.
    pub fn pair_potential(mut self, p: Box<dyn PairPotential>) -> Self {
        self.pair = Some(p);
        self
    }

    /// Sets the triplet (n = 3) potential term.
    pub fn triplet_potential(mut self, p: Box<dyn TripletPotential>) -> Self {
        self.triplet = Some(p);
        self
    }

    /// Sets the quadruplet (n = 4) potential term.
    pub fn quadruplet_potential(mut self, p: Box<dyn QuadrupletPotential>) -> Self {
        self.quadruplet = Some(p);
        self
    }

    /// Selects the n-tuple computation method (default:
    /// [`Method::ShiftCollapse`]).
    pub fn method(mut self, m: Method) -> Self {
        self.method = m;
        self
    }

    /// Sets the integration timestep (default 0.001). Validated by
    /// [`SimulationBuilder::build`]: a non-positive or non-finite value is
    /// rejected as [`BuildError::Config`] with `field = "timestep"`.
    pub fn timestep(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Enables a Berendsen thermostat with target temperature and coupling
    /// ratio `dt/τ ∈ (0, 1]`.
    pub fn thermostat(mut self, target: f64, dt_over_tau: f64) -> Self {
        assert!(target >= 0.0 && (0.0..=1.0).contains(&dt_over_tau));
        self.thermostat = Some((target, dt_over_tau));
        self
    }

    /// Enables a Berendsen barostat: weak pressure coupling toward
    /// `p_target` with strength `beta_dt_over_tau` (compressibility × dt/τ).
    /// Each step the box and all positions are rescaled by
    /// `μ = (1 − β·(P_target − P))^{1/3}`, clamped to ±5% per step.
    pub fn barostat(mut self, p_target: f64, beta_dt_over_tau: f64) -> Self {
        assert!(beta_dt_over_tau > 0.0 && beta_dt_over_tau.is_finite());
        self.barostat = Some((p_target, beta_dt_over_tau));
        self
    }

    /// Sets the full runtime/observability configuration in one call —
    /// the preferred way to configure threads, timing detail, the Verlet
    /// skin, and the metrics registry. Scalars are validated by
    /// [`SimulationBuilder::build`].
    pub fn runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Legacy shim for [`RuntimeConfig::verlet_skin`] — prefer
    /// [`SimulationBuilder::runtime`]. Validation happens in `build()`
    /// ([`BuildError::Config`] with `field = "verlet_skin"`).
    pub fn verlet_skin(mut self, skin: f64) -> Self {
        self.runtime.verlet_skin = skin;
        self
    }

    /// Legacy shim for [`RuntimeConfig::threads`] — prefer
    /// [`SimulationBuilder::runtime`].
    pub fn threads(mut self, n: usize) -> Self {
        self.runtime.threads = n;
        self
    }

    /// Legacy shim for [`RuntimeConfig::detailed_timing`] — prefer
    /// [`SimulationBuilder::runtime`].
    pub fn detailed_timing(mut self, on: bool) -> Self {
        self.runtime.detailed_timing = on;
        self
    }

    /// Subdivides cells `k`-fold (edge ≥ `r_cut/k`) and uses reach-k
    /// patterns — the §6 generalization toward the midpoint method. Smaller
    /// cells prune the candidate space faster than the pattern grows
    /// (`reach_theory::search_volume_ratio`), at the cost of more cells.
    /// Default 1 (the paper's main setting).
    pub fn cell_subdivision(mut self, k: i32) -> Self {
        assert!((1..=3).contains(&k), "supported subdivisions: 1..=3");
        self.subdivision = k;
        self
    }

    /// Validates the configuration and builds the simulation.
    ///
    /// # Errors
    /// See [`BuildError`] — no terms, Hybrid without a pair term, cutoff
    /// ordering violations, a box too small for some term's lattice, a
    /// degenerate scalar configuration value ([`BuildError::Config`] names
    /// the field), or non-finite initial positions/velocities.
    pub fn build(self) -> Result<Simulation, BuildError> {
        if self.pair.is_none() && self.triplet.is_none() && self.quadruplet.is_none() {
            return Err(BuildError::NoTerms);
        }
        if !(self.dt > 0.0 && self.dt.is_finite()) {
            return Err(BuildError::Config { field: "timestep", value: self.dt });
        }
        if !(self.runtime.verlet_skin >= 0.0 && self.runtime.verlet_skin.is_finite()) {
            return Err(BuildError::Config {
                field: "verlet_skin",
                value: self.runtime.verlet_skin,
            });
        }
        for i in 0..self.store.len() {
            if !self.store.positions()[i].is_finite() {
                return Err(BuildError::NonFiniteAtom { index: i, what: "position" });
            }
            if !self.store.velocities()[i].is_finite() {
                return Err(BuildError::NonFiniteAtom { index: i, what: "velocity" });
            }
        }
        if self.method == Method::Hybrid {
            let rc2 = self.pair.as_ref().ok_or(BuildError::HybridNeedsPair)?.cutoff();
            if let Some(t) = &self.triplet {
                if t.cutoff() > rc2 {
                    return Err(BuildError::CutoffOrder { n: 3, rcut_n: t.cutoff(), rcut2: rc2 });
                }
            }
            if let Some(q) = &self.quadruplet {
                if q.cutoff() > rc2 {
                    return Err(BuildError::CutoffOrder { n: 4, rcut_n: q.cutoff(), rcut2: rc2 });
                }
            }
        }
        // A cutoff beyond half the shortest box edge makes the minimum-image
        // convention ambiguous: atom j and its periodic image can both fall
        // inside the cutoff, and a single-image sweep double-counts (or picks
        // the wrong copy of) such pairs. The k = 1 lattices reject this
        // implicitly (they need 3 cells of edge ≥ r_cut per axis), but
        // subdivided lattices (cell edge r_cut/k) would let it through.
        let min_edge = {
            let l = self.bbox.lengths();
            l.x.min(l.y).min(l.z)
        };
        let half_box_check = |field: &'static str, rcut_eff: f64| -> Result<(), BuildError> {
            if rcut_eff > 0.5 * min_edge {
                return Err(BuildError::Config { field, value: rcut_eff });
            }
            Ok(())
        };
        if let Some(p) = &self.pair {
            // Hybrid's list cutoff includes the skin — that is the radius the
            // neighbour search actually resolves images at.
            let eff = if self.method == Method::Hybrid {
                p.cutoff() + self.runtime.verlet_skin
            } else {
                p.cutoff()
            };
            half_box_check("pair_cutoff", eff)?;
        }
        if let Some(t) = &self.triplet {
            half_box_check("triplet_cutoff", t.cutoff())?;
        }
        if let Some(q) = &self.quadruplet {
            half_box_check("quadruplet_cutoff", q.cutoff())?;
        }
        let k = self.subdivision;
        let build_lat = |rcut: f64, n: usize| -> Result<CellLattice, BuildError> {
            std::panic::catch_unwind(|| {
                crate::methods::lattice_for_cutoff_subdivided(&self.bbox, rcut, n, k)
            })
            .map_err(|_| BuildError::BoxTooSmall { n, rcut, subdivision: k })
        };
        let mut pair_lat = None;
        let mut triplet_lat = None;
        let mut quad_lat = None;
        if let Some(p) = &self.pair {
            // Hybrid's list cutoff includes the skin; its cells must too,
            // or the 27-cell sweep would miss skin-shell pairs.
            let pair_cut = if self.method == Method::Hybrid {
                p.cutoff() + self.runtime.verlet_skin
            } else {
                p.cutoff()
            };
            pair_lat = Some(build_lat(pair_cut, 2)?);
        }
        match self.method {
            Method::Hybrid => {
                // Hybrid prunes n ≥ 3 tuples from the pair list: no extra
                // lattices, but a pair lattice must exist (validated above).
            }
            Method::FullShell | Method::ShiftCollapse => {
                if let Some(t) = &self.triplet {
                    triplet_lat = Some(build_lat(t.cutoff(), 3)?);
                }
                if let Some(q) = &self.quadruplet {
                    quad_lat = Some(build_lat(q.cutoff(), 4)?);
                }
            }
        }
        let has_pair = self.pair.is_some();
        let has_triplet = self.triplet.is_some();
        let has_quad = self.quadruplet.is_some();
        let method = self.method;
        // Canonical Morton sort lattice: largest *raw* term cutoff, no skin,
        // no subdivision — deliberately independent of method/runtime knobs,
        // so every method applied to the same system re-sorts identically
        // (cross-method trajectory comparisons stay elementwise valid). The
        // max-cutoff term's own lattice already required ≥ 3 cells per axis
        // at this edge, so this construction cannot fail.
        let sort_cutoff = [
            self.pair.as_ref().map(|p| p.cutoff()),
            self.triplet.as_ref().map(|t| t.cutoff()),
            self.quadruplet.as_ref().map(|q| q.cutoff()),
        ]
        .into_iter()
        .flatten()
        .fold(f64::NEG_INFINITY, f64::max);
        let sort_lat = CellLattice::new(self.bbox, sort_cutoff);
        Ok(Simulation {
            store: self.store,
            bbox: self.bbox,
            method,
            dt: self.dt,
            pair: self.pair,
            triplet: self.triplet,
            quadruplet: self.quadruplet,
            // Plans are built only for the terms actually present — a
            // reach-k quadruplet pattern can run to millions of paths.
            pair_plan: has_pair
                .then(|| PatternPlan::new(&method.plan_pattern_reach(2, k), method.dedup())),
            triplet_plan: has_triplet
                .then(|| PatternPlan::new(&method.plan_pattern_reach(3, k), method.dedup())),
            quad_plan: has_quad
                .then(|| PatternPlan::new(&method.plan_pattern_reach(4, k), method.dedup())),
            pair_lat,
            triplet_lat,
            quad_lat,
            thermostat: self.thermostat,
            barostat: self.barostat,
            skin: self.runtime.verlet_skin,
            subdivision: k,
            resort_every: self.runtime.resort_every,
            sort_cutoff,
            sort_lat,
            last_sort_step: None,
            id_cache: None,
            hybrid_cache: None,
            hybrid_builds: 0,
            par: ParEngine::new(self.runtime.threads),
            detailed_timing: self.runtime.detailed_timing,
            obs: SimMetrics::register(&self.runtime.metrics),
            metrics: self.runtime.metrics,
            tsink: self.runtime.tracer.sink(0, 0),
            tracer: self.runtime.tracer,
            total_phases: PhaseBreakdown::new(),
            observer: None,
            last_stats: LastComputation::default(),
            steps_done: 0,
        })
    }
}

/// Pre-registered metric handles, created once at build time so that
/// steady-state steps touch only atomics (and, with a disabled registry,
/// nothing at all).
struct SimMetrics {
    steps: Counter,
    computations: Counter,
    /// Accepted tuples per order (n = 2, 3, 4).
    accepted: [Counter; 3],
    /// Candidate tuples per order.
    candidates: [Counter; 3],
    /// Nanoseconds of enumerate+eval work per order — the paper's
    /// per-n-tuple-order cost observable (Eq. 29).
    work_ns: [Counter; 3],
}

impl SimMetrics {
    fn register(reg: &Registry) -> Self {
        SimMetrics {
            steps: reg.counter("sim.steps"),
            computations: reg.counter("sim.force_computations"),
            accepted: [
                reg.counter("tuples.pair.accepted"),
                reg.counter("tuples.triplet.accepted"),
                reg.counter("tuples.quadruplet.accepted"),
            ],
            candidates: [
                reg.counter("tuples.pair.candidates"),
                reg.counter("tuples.triplet.candidates"),
                reg.counter("tuples.quadruplet.candidates"),
            ],
            work_ns: [
                reg.counter("eval.pair_work_ns"),
                reg.counter("eval.triplet_work_ns"),
                reg.counter("eval.quadruplet_work_ns"),
            ],
        }
    }
}

/// A complete MD simulation: atoms + box + potential terms + an n-tuple
/// computation method, integrating NVE (optionally thermostatted) with
/// velocity Verlet and recomputing the dynamic tuple sets every step.
pub struct Simulation {
    store: AtomStore,
    bbox: SimulationBox,
    method: Method,
    dt: f64,
    pair: Option<Box<dyn PairPotential>>,
    triplet: Option<Box<dyn TripletPotential>>,
    quadruplet: Option<Box<dyn QuadrupletPotential>>,
    pair_plan: Option<PatternPlan>,
    triplet_plan: Option<PatternPlan>,
    quad_plan: Option<PatternPlan>,
    pair_lat: Option<CellLattice>,
    triplet_lat: Option<CellLattice>,
    quad_lat: Option<CellLattice>,
    thermostat: Option<(f64, f64)>,
    barostat: Option<(f64, f64)>,
    skin: f64,
    subdivision: i32,
    /// Morton re-sort cadence ([`RuntimeConfig::resort_every`]; 0 = never).
    resort_every: u64,
    /// Largest raw term cutoff — the canonical sort lattice's cell edge.
    sort_cutoff: f64,
    /// Canonical lattice whose Z-order curve defines the data-sorted layout.
    sort_lat: CellLattice,
    /// Step index of the last applied re-sort, so repeated force
    /// computations within one step (or explicit [`Simulation::compute_forces`]
    /// calls between steps) permute at most once per step.
    last_sort_step: Option<u64>,
    /// Lazily rebuilt `id → slot` map, keyed by the store generation it was
    /// built against (re-sorts and removals invalidate it).
    id_cache: Option<(u64, HashMap<u64, u32>)>,
    hybrid_cache: Option<HybridCache>,
    /// Monotonic count of Verlet-list builds — lives outside the cache so
    /// that cache invalidations (re-sort, geometry change) don't reset it.
    hybrid_builds: u64,
    par: ParEngine,
    detailed_timing: bool,
    obs: SimMetrics,
    metrics: Registry,
    tracer: Tracer,
    /// The engine's own event sink (rank 0, lane 0); inert when tracing is
    /// disabled.
    tsink: TraceSink,
    total_phases: PhaseBreakdown,
    observer: Option<(u64, Box<dyn Observer>)>,
    last_stats: LastComputation,
    steps_done: u64,
}

/// The physics of the most recent force computation, surfaced through
/// [`Simulation::telemetry`].
#[derive(Debug, Clone, Copy, Default)]
struct LastComputation {
    energy: EnergyBreakdown,
    tuples: TupleCounts,
    /// Scalar virial `W = Σ_tuples Σ_k f_k · (r_k − r_ref)` over all terms —
    /// the potential part of the pressure `P = (N k_B T + W/3) / V`.
    virial: f64,
    phases: PhaseBreakdown,
}

/// The simulation's parallel force-evaluation state: the persistent worker
/// pool, the accumulator pool, and a reusable staging vector holding the
/// per-lane accumulators of the kernel invocation in flight. All capacity is
/// established on first use, so steady-state steps allocate nothing.
struct ParEngine {
    pool: ThreadPool,
    accs: AccumulatorPool,
    staging: Vec<ForceAccumulator>,
}

impl ParEngine {
    fn new(threads: usize) -> Self {
        let pool = if threads == 0 { ThreadPool::auto() } else { ThreadPool::new(threads) };
        let staging = Vec::with_capacity(pool.lanes());
        ParEngine { pool, accs: AccumulatorPool::new(), staging }
    }
}

/// Cached Verlet list for Hybrid-MD with a skin.
struct HybridCache {
    list: NeighborList,
    ref_positions: Vec<Vec3>,
    build_stats: VisitStats,
}

impl Method {
    /// Reach-k pattern for subdivided cells (paper §6); k = 1 is the
    /// paper's main setting.
    pub(crate) fn plan_pattern_reach(self, n: usize, k: i32) -> sc_core::Pattern {
        match self {
            Method::FullShell | Method::Hybrid => sc_core::generate_fs_reach(n, k),
            Method::ShiftCollapse => sc_core::shift_collapse_reach(n, k),
        }
    }

    pub(crate) fn dedup(self) -> engine::Dedup {
        match self {
            Method::FullShell | Method::Hybrid => engine::Dedup::Guarded,
            Method::ShiftCollapse => engine::Dedup::Collapsed,
        }
    }
}

impl Simulation {
    /// Starts building a simulation over `store` in `bbox`.
    pub fn builder(store: AtomStore, bbox: SimulationBox) -> SimulationBuilder {
        SimulationBuilder {
            store,
            bbox,
            method: Method::ShiftCollapse,
            dt: 0.001,
            pair: None,
            triplet: None,
            quadruplet: None,
            thermostat: None,
            barostat: None,
            subdivision: 1,
            runtime: RuntimeConfig::default(),
        }
    }

    /// The atoms.
    pub fn store(&self) -> &AtomStore {
        &self.store
    }

    /// Mutable atom access (e.g. to perturb positions in tests).
    pub fn store_mut(&mut self) -> &mut AtomStore {
        &mut self.store
    }

    /// The periodic box.
    pub fn bbox(&self) -> &SimulationBox {
        &self.bbox
    }

    /// The configured method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The unified telemetry snapshot: physics of the most recent force
    /// computation, per-phase timings (last and cumulative), and allocation
    /// accounting. Communication fields are empty for the shared-memory
    /// engine.
    pub fn telemetry(&self) -> Telemetry {
        Telemetry {
            step: self.steps_done,
            energy: self.last_stats.energy,
            tuples: self.last_stats.tuples,
            virial: self.last_stats.virial,
            phases: self.last_stats.phases,
            total_phases: self.total_phases,
            comm: CommCounters::default(),
            per_rank: Vec::new(),
            alloc_events: self.par.accs.allocation_events() + self.metrics.allocation_events(),
            degraded: false,
        }
    }

    /// The metrics registry this simulation reports into (disabled unless
    /// one was supplied via [`RuntimeConfig::metrics`]).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The event tracer this simulation emits into (disabled unless one was
    /// supplied via [`RuntimeConfig::tracer`]). Collect with
    /// [`Tracer::events`] after a run.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Registers a periodic [`Observer`]: after every `every`-th completed
    /// step, `observer` receives a fresh [`Telemetry`] snapshot. Replaces
    /// any previously registered observer.
    pub fn observe_every(&mut self, every: u64, observer: Box<dyn Observer>) {
        assert!(every > 0, "observer period must be ≥ 1");
        self.observer = Some((every, observer));
    }

    /// Number of completed steps.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// Recomputes all forces and energies from the current positions —
    /// rebinning the cell lattices (dynamic tuple computation), running the
    /// per-term UCP searches, and accumulating forces. Returns the
    /// computation's [`Telemetry`] snapshot (also available afterwards via
    /// [`Simulation::telemetry`]), and feeds every phase and counter into
    /// the configured metrics registry.
    pub fn compute_forces(&mut self) -> Telemetry {
        // Tracing is branch-guarded: a disabled sink reads no clock here.
        let trace_t0 = if self.tsink.enabled() { self.tsink.now_ns() } else { 0 };
        let mut energy = EnergyBreakdown::default();
        let mut tuples = TupleCounts::default();
        let mut phases = PhaseBreakdown::new();
        let t_sort = Instant::now();
        if self.maybe_resort() {
            phases.add(Phase::Bin, t_sort.elapsed().as_secs_f64());
        }
        self.store.zero_forces();
        let mut virial = 0.0;
        let detailed = self.detailed_timing;
        match self.method {
            Method::FullShell | Method::ShiftCollapse => {
                if let Some(p) = &self.pair {
                    let lat = self.pair_lat.as_mut().expect("pair lattice");
                    let t_bin = Instant::now();
                    lat.rebuild(&self.store);
                    phases.add(Phase::Bin, t_bin.elapsed().as_secs_f64());
                    let plan = self.pair_plan.as_ref().expect("pair plan");
                    let work0 = phases.enumerate_s() + phases.eval_s();
                    let (e, w, s) = par_term_forces(
                        &mut self.par,
                        lat,
                        &mut self.store,
                        plan,
                        TermPotential::Pair(p.as_ref()),
                        detailed,
                        &mut phases,
                    );
                    let work = phases.enumerate_s() + phases.eval_s() - work0;
                    self.obs.work_ns[0].add((work * 1e9) as u64);
                    energy.pair = e;
                    virial += w;
                    tuples.pair = s;
                }
                if let Some(t) = &self.triplet {
                    let lat = self.triplet_lat.as_mut().expect("triplet lattice");
                    let t_bin = Instant::now();
                    lat.rebuild(&self.store);
                    phases.add(Phase::Bin, t_bin.elapsed().as_secs_f64());
                    let plan = self.triplet_plan.as_ref().expect("triplet plan");
                    let work0 = phases.enumerate_s() + phases.eval_s();
                    let (e, w, s) = par_term_forces(
                        &mut self.par,
                        lat,
                        &mut self.store,
                        plan,
                        TermPotential::Triplet(t.as_ref()),
                        detailed,
                        &mut phases,
                    );
                    let work = phases.enumerate_s() + phases.eval_s() - work0;
                    self.obs.work_ns[1].add((work * 1e9) as u64);
                    energy.triplet = e;
                    virial += w;
                    tuples.triplet = s;
                }
                if let Some(q) = &self.quadruplet {
                    let lat = self.quad_lat.as_mut().expect("quadruplet lattice");
                    let t_bin = Instant::now();
                    lat.rebuild(&self.store);
                    phases.add(Phase::Bin, t_bin.elapsed().as_secs_f64());
                    let plan = self.quad_plan.as_ref().expect("quadruplet plan");
                    let work0 = phases.enumerate_s() + phases.eval_s();
                    let (e, w, s) = par_term_forces(
                        &mut self.par,
                        lat,
                        &mut self.store,
                        plan,
                        TermPotential::Quadruplet(q.as_ref()),
                        detailed,
                        &mut phases,
                    );
                    let work = phases.enumerate_s() + phases.eval_s() - work0;
                    self.obs.work_ns[2].add((work * 1e9) as u64);
                    energy.quadruplet = e;
                    virial += w;
                    tuples.quadruplet = s;
                }
            }
            Method::Hybrid => {
                virial = self.compute_hybrid(&mut energy, &mut tuples, &mut phases);
            }
        }
        self.last_stats = LastComputation { energy, tuples, virial, phases };
        self.total_phases.accumulate(&phases);
        self.obs.computations.inc();
        for (order, (cand, acc)) in [
            (tuples.pair.candidates, tuples.pair.accepted),
            (tuples.triplet.candidates, tuples.triplet.accepted),
            (tuples.quadruplet.candidates, tuples.quadruplet.accepted),
        ]
        .into_iter()
        .enumerate()
        {
            self.obs.candidates[order].add(cand);
            self.obs.accepted[order].add(acc);
        }
        for (phase, secs) in phases.iter() {
            self.metrics.record_phase(phase, secs);
        }
        if self.tsink.enabled() {
            self.trace_computation(trace_t0, &phases);
        }
        self.telemetry()
    }

    /// Emits one trace event per [`Phase`] slot for the force computation
    /// that started at `t0` (tracer-relative nanoseconds): an aggregate
    /// `Compute` interval spanning the whole computation, then every other
    /// slot laid out cumulatively in canonical order with its measured
    /// duration (zero for phases this engine does not exercise, so a trace
    /// always carries the full taxonomy).
    fn trace_computation(&self, t0: u64, phases: &PhaseBreakdown) {
        let step = self.steps_done;
        let wall_ns = self.tsink.now_ns().saturating_sub(t0);
        self.tsink.phase(step, Phase::Compute, t0, wall_ns);
        let mut cursor = t0;
        for (phase, secs) in phases.iter() {
            if phase == Phase::Compute {
                continue;
            }
            let dur_ns = (secs * 1e9) as u64;
            self.tsink.phase(step, phase, cursor, dur_ns);
            cursor += dur_ns;
        }
    }

    /// Applies the Morton re-sort when the cadence says so: permutes the
    /// store along the Z-order curve of the canonical sort lattice, keyed on
    /// `steps_done` so the decision is a pure function of replayable state
    /// (checkpoint restore replays it bitwise). Returns whether a permutation
    /// was applied. Slot-indexed caches (the Hybrid Verlet list, the id map)
    /// are invalidated; re-binning of the term lattices happens immediately
    /// after in `compute_forces`, so no stale slot index survives.
    fn maybe_resort(&mut self) -> bool {
        if self.resort_every == 0
            || !self.steps_done.is_multiple_of(self.resort_every)
            || self.last_sort_step == Some(self.steps_done)
        {
            return false;
        }
        self.last_sort_step = Some(self.steps_done);
        self.store.sort_by_cell(&self.sort_lat);
        // The Verlet list and its reference positions are slot-indexed.
        self.hybrid_cache = None;
        self.id_cache = None;
        true
    }

    /// The slot currently holding the atom with global id `id`, or `None` if
    /// no such atom exists. Slots move under Morton re-sorts and
    /// [`AtomStore::swap_remove`]; this map is the stable indirection
    /// checkpoint consumers and telemetry should use instead of caching raw
    /// slots. Rebuilt lazily (O(N)) after any structural change, then O(1)
    /// per lookup.
    pub fn slot_of_id(&mut self, id: u64) -> Option<u32> {
        let generation = self.store.generation();
        if self.id_cache.as_ref().map(|(g, _)| *g) != Some(generation) {
            self.id_cache = Some((generation, self.store.id_index()));
        }
        self.id_cache.as_ref().and_then(|(_, map)| map.get(&id).copied())
    }

    /// Number of allocation events (buffer creations or growths) in the
    /// force-scratch pool since construction. Flat across steps once warm —
    /// the observable behind the zero-allocation steady-state guarantee.
    pub fn scratch_allocation_events(&self) -> u64 {
        self.par.accs.allocation_events()
    }

    /// Number of parallel force-evaluation lanes in use.
    pub fn force_lanes(&self) -> usize {
        self.par.pool.lanes()
    }

    /// Instantaneous pressure `P = (N k_B T + W/3)/V` from the most recent
    /// force computation's virial (recomputes forces to stay current).
    pub fn pressure(&mut self) -> f64 {
        let stats = self.compute_forces();
        let n = self.store.len() as f64;
        (n * self.store.temperature() + stats.virial / 3.0) / self.bbox.volume()
    }

    /// Hybrid-MD force computation. With `verlet_skin > 0` the pair list is
    /// built with cutoff `r_cut2 + skin` and reused across steps until some
    /// atom has moved more than `skin/2` since the build (the classical
    /// Verlet-list reuse criterion); displacements are always recomputed
    /// from the current positions, so reuse changes cost, never physics.
    fn compute_hybrid(
        &mut self,
        energy: &mut EnergyBreakdown,
        tuples: &mut TupleCounts,
        phases: &mut PhaseBreakdown,
    ) -> f64 {
        let p = self.pair.as_ref().expect("hybrid has a pair term");
        let rcut2 = p.cutoff();
        let list_cut = rcut2 + self.skin;
        let rebuild = match &self.hybrid_cache {
            None => true,
            Some(cache) if self.skin == 0.0 => {
                let _ = cache;
                true
            }
            Some(cache) => {
                let half_skin_sq = 0.25 * self.skin * self.skin;
                cache
                    .ref_positions
                    .iter()
                    .zip(self.store.positions())
                    .any(|(r0, r1)| self.bbox.dist_sq(*r0, *r1) > half_skin_sq)
            }
        };
        if rebuild {
            // Binning under Hybrid covers both the cell rebuild and the
            // Verlet-list construction it feeds.
            let t_bin = Instant::now();
            let lat = self.pair_lat.as_mut().expect("pair lattice");
            lat.rebuild(&self.store);
            let (nl, pair_stats) = NeighborList::build(
                lat,
                &self.store,
                self.pair_plan.as_ref().expect("pair plan"),
                list_cut,
            );
            self.hybrid_cache = Some(HybridCache {
                list: nl,
                ref_positions: self.store.positions().to_vec(),
                build_stats: pair_stats,
            });
            self.hybrid_builds += 1;
            phases.add(Phase::Bin, t_bin.elapsed().as_secs_f64());
        }
        let t_enum = Instant::now();
        let cache = self.hybrid_cache.as_ref().expect("hybrid cache");
        let nl = &cache.list;
        tuples.pair = cache.build_stats;
        let positions = self.store.positions().to_vec();
        let species = self.store.species().to_vec();
        let bbox = self.bbox;
        let rc2sq = rcut2 * rcut2;
        // Pair forces from the list (each undirected pair once), with
        // displacements recomputed from the *current* positions.
        let mut virial = 0.0;
        let mut e_pair = 0.0;
        for i in 0..self.store.len() as u32 {
            let si = species[i as usize];
            for &(j, _) in nl.neighbors(i) {
                if j <= i {
                    continue;
                }
                let d = bbox.min_image(positions[i as usize], positions[j as usize]);
                if d.norm_sq() >= rc2sq {
                    continue; // in the skin shell, outside the true cutoff
                }
                let sj = species[j as usize];
                if !p.applies(si, sj) {
                    continue;
                }
                let r = d.norm();
                let (u, du) = p.eval(si, sj, r);
                e_pair += u;
                let fj = d * (-(du / r));
                virial += d.dot(fj);
                self.store.forces_mut()[j as usize] += fj;
                self.store.forces_mut()[i as usize] -= fj;
            }
        }
        energy.pair = e_pair;

        if let Some(t) = &self.triplet {
            let rc3sq = t.cutoff() * t.cutoff();
            let mut e3 = 0.0;
            let mut stats = VisitStats::default();
            let forces = self.store.forces_mut();
            for j in 0..positions.len() as u32 {
                let nbrs = nl.neighbors(j);
                for (a, &(i, _)) in nbrs.iter().enumerate() {
                    let d_ji = bbox.min_image(positions[j as usize], positions[i as usize]);
                    if d_ji.norm_sq() >= rc3sq {
                        continue;
                    }
                    for &(k, _) in &nbrs[a + 1..] {
                        stats.candidates += 1;
                        let d_jk = bbox.min_image(positions[j as usize], positions[k as usize]);
                        if d_jk.norm_sq() >= rc3sq {
                            continue;
                        }
                        stats.accepted += 1;
                        let (s0, s1, s2) =
                            (species[i as usize], species[j as usize], species[k as usize]);
                        if !t.applies(s0, s1, s2) {
                            continue;
                        }
                        let (u, f0, f1, f2) = t.eval(s0, s1, s2, d_ji, d_jk);
                        e3 += u;
                        virial += f0.dot(d_ji) + f2.dot(d_jk);
                        forces[i as usize] += f0;
                        forces[j as usize] += f1;
                        forces[k as usize] += f2;
                    }
                }
            }
            energy.triplet = e3;
            tuples.triplet = stats;
        }

        if let Some(qp) = &self.quadruplet {
            let rc4sq = qp.cutoff() * qp.cutoff();
            let mut e4 = 0.0;
            let mut stats = VisitStats::default();
            let forces = self.store.forces_mut();
            for j in 0..positions.len() as u32 {
                for &(k, _) in nl.neighbors(j) {
                    if k <= j {
                        continue;
                    }
                    let d_jk = bbox.min_image(positions[j as usize], positions[k as usize]);
                    if d_jk.norm_sq() >= rc4sq {
                        continue;
                    }
                    for &(i, _) in nl.neighbors(j) {
                        if i == k {
                            continue;
                        }
                        let d_ji = bbox.min_image(positions[j as usize], positions[i as usize]);
                        if d_ji.norm_sq() >= rc4sq {
                            continue;
                        }
                        for &(l, _) in nl.neighbors(k) {
                            stats.candidates += 1;
                            if l == j || l == i {
                                continue;
                            }
                            let d_kl = bbox.min_image(positions[k as usize], positions[l as usize]);
                            if d_kl.norm_sq() >= rc4sq {
                                continue;
                            }
                            stats.accepted += 1;
                            let sp = [
                                species[i as usize],
                                species[j as usize],
                                species[k as usize],
                                species[l as usize],
                            ];
                            if !qp.applies(sp) {
                                continue;
                            }
                            let (u, f) = qp.eval(sp, -d_ji, d_jk, d_kl);
                            e4 += u;
                            // Virial about j: r_i−r_j = d_ji, r_k−r_j = d_jk,
                            // r_l−r_j = d_jk + d_kl.
                            virial += f[0].dot(d_ji) + f[2].dot(d_jk) + f[3].dot(d_jk + d_kl);
                            for (slot, force) in [i, j, k, l].iter().zip(f) {
                                forces[*slot as usize] += force;
                            }
                        }
                    }
                }
            }
            energy.quadruplet = e4;
            tuples.quadruplet = stats;
        }
        phases.add(Phase::Enumerate, t_enum.elapsed().as_secs_f64());
        virial
    }

    /// Number of Verlet-list builds performed so far (Hybrid only) — the
    /// observable the skin optimisation improves.
    pub fn hybrid_list_builds(&self) -> u64 {
        self.hybrid_builds
    }

    /// Advances one velocity-Verlet step (with thermostat, if configured).
    /// Returns the step's [`Telemetry`] snapshot and notifies any
    /// registered periodic observer.
    pub fn step(&mut self) -> Telemetry {
        if self.steps_done == 0 {
            // Prime forces so the first half-kick uses real accelerations.
            self.compute_forces();
        }
        let integrate_start =
            self.metrics.span_traced(Phase::Integrate, &self.tsink, self.steps_done + 1);
        velocity_verlet_start(&mut self.store, &self.bbox, self.dt);
        drop(integrate_start);
        let mut stats = self.compute_forces();
        let integrate_finish =
            self.metrics.span_traced(Phase::Integrate, &self.tsink, self.steps_done + 1);
        velocity_verlet_finish(&mut self.store, self.dt);
        if let Some((target, c)) = self.thermostat {
            berendsen_rescale(&mut self.store, target, c);
        }
        drop(integrate_finish);
        if let Some((p_target, beta)) = self.barostat {
            let n = self.store.len() as f64;
            let p = (n * self.store.temperature() + stats.virial / 3.0) / self.bbox.volume();
            let mu = (1.0 - beta * (p_target - p)).clamp(0.857, 1.158).cbrt();
            self.rescale_box(mu);
        }
        self.steps_done += 1;
        self.obs.steps.inc();
        stats.step = self.steps_done;
        if let Some((every, mut observer)) = self.observer.take() {
            if self.steps_done.is_multiple_of(every) {
                observer.observe(&self.telemetry());
            }
            self.observer = Some((every, observer));
        }
        stats
    }

    /// Uniformly rescales the box and all positions by `mu`, rebuilding the
    /// cell lattices for the new geometry.
    fn rescale_box(&mut self, mu: f64) {
        assert!(mu > 0.0 && mu.is_finite());
        let new_len = self.bbox.lengths() * mu;
        self.bbox = SimulationBox::new(new_len);
        for r in self.store.positions_mut() {
            *r *= mu;
        }
        self.rebuild_lattices();
    }

    /// Rebuilds every term's cell lattice for the current box and drops the
    /// cached Verlet list. Used after any geometry change (barostat rescale,
    /// checkpoint restore).
    fn rebuild_lattices(&mut self) {
        let k = self.subdivision;
        if let Some(p) = &self.pair {
            let cut =
                if self.method == Method::Hybrid { p.cutoff() + self.skin } else { p.cutoff() };
            self.pair_lat =
                Some(crate::methods::lattice_for_cutoff_subdivided(&self.bbox, cut, 2, k));
        }
        if self.method != Method::Hybrid {
            if let Some(t) = &self.triplet {
                self.triplet_lat = Some(crate::methods::lattice_for_cutoff_subdivided(
                    &self.bbox,
                    t.cutoff(),
                    3,
                    k,
                ));
            }
            if let Some(q) = &self.quadruplet {
                self.quad_lat = Some(crate::methods::lattice_for_cutoff_subdivided(
                    &self.bbox,
                    q.cutoff(),
                    4,
                    k,
                ));
            }
        }
        // The canonical sort lattice tracks the box geometry too.
        self.sort_lat = CellLattice::new(self.bbox, self.sort_cutoff);
        // A geometry change invalidates any cached Verlet list.
        self.hybrid_cache = None;
    }

    /// Runs `n` steps, returning the last step's telemetry.
    pub fn run(&mut self, n: usize) -> Telemetry {
        for _ in 0..n {
            self.step();
        }
        self.telemetry()
    }

    /// Total (kinetic + potential) energy at the current positions.
    /// Recomputes forces as a side effect.
    pub fn total_energy(&mut self) -> f64 {
        let stats = self.compute_forces();
        stats.energy.total() + self.store.kinetic_energy()
    }

    /// The integration timestep.
    pub fn timestep(&self) -> f64 {
        self.dt
    }

    /// Overrides the integration timestep mid-run (used by the
    /// [`crate::supervisor::Supervisor`] for timestep backoff after
    /// physics-invariant rollbacks).
    pub fn set_timestep(&mut self, dt: f64) {
        assert!(dt > 0.0 && dt.is_finite(), "timestep {dt} must be positive and finite");
        self.dt = dt;
    }
}

impl crate::supervisor::Recoverable for Simulation {
    /// Serial stepping has no communication layer, so it cannot fail with a
    /// recoverable fault — only physics-invariant violations (caught by the
    /// supervisor's own checks) can trigger rollback.
    type Fault = std::convert::Infallible;

    fn try_step(&mut self) -> Result<(), Self::Fault> {
        self.step();
        Ok(())
    }

    fn checkpoint(&self) -> Checkpoint {
        Checkpoint::from_store(self.steps_done, self.dt, &self.bbox, &self.store)
    }

    fn restore(&mut self, cp: &Checkpoint) {
        self.store = cp.to_store();
        self.bbox = cp.bbox();
        self.dt = cp.dt;
        self.steps_done = cp.step;
        self.last_stats = LastComputation::default();
        // The resort cadence is keyed on `steps_done`, which the checkpoint
        // restores; clearing the latch lets the replayed run re-sort at
        // exactly the steps the original run did (checkpoints preserve slot
        // order, so the permutations — and hence the trajectory — replay
        // bitwise). The id map is slot-indexed and must be rebuilt.
        self.last_sort_step = None;
        self.id_cache = None;
        // Restored forces came from the checkpoint, so a step-0 restore must
        // not re-prime over them — except a checkpoint taken before any force
        // computation, whose forces are identically zero and whose re-priming
        // reproduces them.
        self.rebuild_lattices();
    }

    fn atom_count(&self) -> usize {
        self.store.len()
    }

    /// Potential energy comes from the most recent force computation (zero
    /// until the first step primes forces), so with the energy guardrail
    /// enabled the simulation should take at least one step — or call
    /// [`Simulation::total_energy`] — before supervision starts.
    fn total_energy_estimate(&self) -> f64 {
        self.last_stats.energy.total() + self.store.kinetic_energy()
    }

    fn state_is_finite(&self) -> bool {
        let n = self.store.len();
        (0..n).all(|i| {
            self.store.positions()[i].is_finite()
                && self.store.velocities()[i].is_finite()
                && self.store.forces()[i].is_finite()
        })
    }

    fn timestep(&self) -> f64 {
        self.dt
    }

    fn set_timestep(&mut self, dt: f64) {
        Simulation::set_timestep(self, dt);
    }

    fn steps_done(&self) -> u64 {
        self.steps_done
    }
}

/// One n-body potential term, erased to a shared reference so the unified
/// kernel can be monomorphised once and dispatch per term.
#[derive(Clone, Copy)]
enum TermPotential<'a> {
    Pair(&'a dyn PairPotential),
    Triplet(&'a dyn TripletPotential),
    Quadruplet(&'a dyn QuadrupletPotential),
}

impl TermPotential<'_> {
    fn cutoff(&self) -> f64 {
        match self {
            TermPotential::Pair(p) => p.cutoff(),
            TermPotential::Triplet(t) => t.cutoff(),
            TermPotential::Quadruplet(q) => q.cutoff(),
        }
    }
}

/// Decodes a flat cell index into lattice coordinates (x fastest).
#[inline]
fn decode_cell(dims: IVec3, c: usize) -> IVec3 {
    let dx = dims.x as usize;
    let dy = dims.y as usize;
    IVec3::new((c % dx) as i32, ((c / dx) % dy) as i32, (c / (dx * dy)) as i32)
}

/// The unified parallel n-tuple force kernel (replaces the former
/// per-order `par_pair_forces` / `par_triplet_forces` / `par_quad_forces`
/// rayon folds).
///
/// The cell range is split into one contiguous span per pool lane; each lane
/// draws a [`ForceAccumulator`] from the simulation's pool and sweeps its
/// span with the per-cell UCP visitors. Afterwards the driving thread merges
/// the dirty slots of every accumulator into the store's force array in lane
/// order, so results are deterministic for a fixed lane count. Steady-state
/// invocations perform no heap allocation: the accumulators, the staging
/// vector, and the pool's dispatch are all reused (see
/// [`Simulation::scratch_allocation_events`]).
fn par_term_forces(
    eng: &mut ParEngine,
    lat: &CellLattice,
    store: &mut AtomStore,
    plan: &PatternPlan,
    term: TermPotential<'_>,
    detailed: bool,
    phases: &mut PhaseBreakdown,
) -> (f64, f64, VisitStats) {
    let n = store.len();
    let dims = lat.dims();
    let ncells = (dims.x as usize) * (dims.y as usize) * (dims.z as usize);
    let lanes = eng.pool.lanes().min(ncells.max(1));
    let rcut = term.cutoff();
    debug_assert!(eng.staging.is_empty());
    for _ in 0..lanes {
        eng.staging.push(eng.accs.acquire(n));
    }
    {
        let store_ref: &AtomStore = store;
        let species = store_ref.species();
        let slots = LaneSlots::new(eng.staging.as_mut_ptr());
        let job = move |t: usize| {
            // SAFETY: lane `t` is the sole accessor of staging slot `t`.
            let acc = unsafe { &mut *slots.get(t) };
            let t_lane = Instant::now();
            let lo = t * ncells / lanes;
            let hi = (t + 1) * ncells / lanes;
            match term {
                TermPotential::Pair(pot) => {
                    for c in lo..hi {
                        let q = decode_cell(dims, c);
                        let s = engine::visit_pairs_in_cell(
                            lat,
                            store_ref,
                            plan,
                            rcut,
                            q,
                            |i, j, d, r| {
                                let (si, sj) = (species[i as usize], species[j as usize]);
                                if !pot.applies(si, sj) {
                                    return;
                                }
                                let t_eval = detailed.then(Instant::now);
                                let (u, du) = pot.eval(si, sj, r);
                                acc.energy += u;
                                let fj = d * (-(du / r));
                                // Pair virial: d · f_j = −du·r.
                                acc.virial += d.dot(fj);
                                acc.add(j, fj);
                                acc.sub(i, fj);
                                if let Some(t0) = t_eval {
                                    acc.eval_s += t0.elapsed().as_secs_f64();
                                }
                            },
                        );
                        acc.stats.merge(s);
                    }
                }
                TermPotential::Triplet(pot) => {
                    for c in lo..hi {
                        let q = decode_cell(dims, c);
                        let s = engine::visit_triplets_in_cell(
                            lat,
                            store_ref,
                            plan,
                            rcut,
                            q,
                            |i0, i1, i2, d01, d12| {
                                let (s0, s1, s2) = (
                                    species[i0 as usize],
                                    species[i1 as usize],
                                    species[i2 as usize],
                                );
                                if !pot.applies(s0, s1, s2) {
                                    return;
                                }
                                let t_eval = detailed.then(Instant::now);
                                let (u, f0, f1, f2) = pot.eval(s0, s1, s2, -d01, d12);
                                acc.energy += u;
                                // Tuple virial about the vertex:
                                // Σ_k f_k·(r_k − r1).
                                acc.virial += f0.dot(-d01) + f2.dot(d12);
                                acc.add(i0, f0);
                                acc.add(i1, f1);
                                acc.add(i2, f2);
                                if let Some(t0) = t_eval {
                                    acc.eval_s += t0.elapsed().as_secs_f64();
                                }
                            },
                        );
                        acc.stats.merge(s);
                    }
                }
                TermPotential::Quadruplet(pot) => {
                    for c in lo..hi {
                        let q = decode_cell(dims, c);
                        let s = engine::visit_quadruplets_in_cell(
                            lat,
                            store_ref,
                            plan,
                            rcut,
                            q,
                            |ids, d01, d12, d23| {
                                let sp = [
                                    species[ids[0] as usize],
                                    species[ids[1] as usize],
                                    species[ids[2] as usize],
                                    species[ids[3] as usize],
                                ];
                                if !pot.applies(sp) {
                                    return;
                                }
                                let t_eval = detailed.then(Instant::now);
                                let (u, forces4) = pot.eval(sp, d01, d12, d23);
                                acc.energy += u;
                                // Virial about atom 1: r0−r1 = −d01,
                                // r2−r1 = d12, r3−r1 = d12 + d23.
                                acc.virial += forces4[0].dot(-d01)
                                    + forces4[2].dot(d12)
                                    + forces4[3].dot(d12 + d23);
                                for (&slot, force) in ids.iter().zip(forces4) {
                                    acc.add(slot, force);
                                }
                                if let Some(t0) = t_eval {
                                    acc.eval_s += t0.elapsed().as_secs_f64();
                                }
                            },
                        );
                        acc.stats.merge(s);
                    }
                }
            }
            acc.lane_s += t_lane.elapsed().as_secs_f64();
        };
        eng.pool.run(lanes, &job);
    }
    let t_reduce = Instant::now();
    let forces = store.forces_mut();
    let mut energy = 0.0;
    let mut virial = 0.0;
    let mut stats = VisitStats::default();
    for acc in eng.staging.drain(..) {
        acc.merge_into(forces);
        energy += acc.energy;
        virial += acc.virial;
        stats.merge(acc.stats);
        phases.add(Phase::Eval, acc.eval_s);
        phases.add(Phase::Enumerate, acc.lane_s - acc.eval_s);
        eng.accs.release(acc);
    }
    phases.add(Phase::Reduce, t_reduce.elapsed().as_secs_f64());
    (energy, virial, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{build_fcc_lattice, random_gas, LatticeSpec};
    use crate::{reference, Method};
    use sc_potential::{LennardJones, StillingerWeber, TorsionToy, Vashishta};

    fn lj_sim(method: Method) -> Simulation {
        let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(6, 1.5599), 0.1, 42);
        Simulation::builder(store, bbox)
            .pair_potential(Box::new(LennardJones::reduced(2.5)))
            .method(method)
            .timestep(0.002)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_empty_potentials() {
        let (store, bbox) = random_gas(10, 8.0, 1);
        assert!(Simulation::builder(store, bbox).build().is_err());
    }

    #[test]
    fn hybrid_requires_pair_term() {
        let (store, bbox) = random_gas(10, 8.0, 1);
        let err = match Simulation::builder(store, bbox)
            .triplet_potential(Box::new(StillingerWeber::silicon()))
            .method(Method::Hybrid)
            .build()
        {
            Err(e) => e,
            Ok(_) => panic!("hybrid without pair term should fail"),
        };
        assert_eq!(err, crate::BuildError::HybridNeedsPair);
    }

    #[test]
    fn all_methods_agree_on_lj_forces() {
        let mut sims: Vec<Simulation> = Method::ALL.iter().map(|&m| lj_sim(m)).collect();
        let energies: Vec<f64> = sims.iter_mut().map(|s| s.compute_forces().energy.pair).collect();
        let tol = 1e-11 * energies[0].abs();
        for e in &energies[1..] {
            assert!((e - energies[0]).abs() < tol, "pair energies differ: {energies:?}");
        }
        let f0: Vec<Vec3> = sims[0].store().forces().to_vec();
        for sim in &sims[1..] {
            for (a, b) in f0.iter().zip(sim.store().forces()) {
                assert!((*a - *b).norm() < 1e-8);
            }
        }
        // And they agree with the brute-force reference.
        let mut store = sims[0].store().clone();
        store.zero_forces();
        let e_ref = reference::pair_forces(&mut store, sims[0].bbox(), &LennardJones::reduced(2.5));
        assert!((e_ref - energies[0]).abs() < tol);
        for (a, b) in f0.iter().zip(store.forces()) {
            assert!((*a - *b).norm() < 1e-8);
        }
    }

    #[test]
    fn net_force_vanishes_for_every_method() {
        for &m in &Method::ALL {
            let mut sim = lj_sim(m);
            sim.compute_forces();
            assert!(
                sim.store().net_force().norm() < 1e-9,
                "{} net force {:?}",
                m.name(),
                sim.store().net_force()
            );
        }
    }

    #[test]
    fn lj_nve_conserves_energy() {
        let mut sim = lj_sim(Method::ShiftCollapse);
        let e0 = sim.total_energy();
        sim.run(50);
        let e1 = sim.total_energy();
        assert!(((e1 - e0) / e0.abs()).abs() < 1e-3, "NVE drift over 50 steps: {e0} → {e1}");
    }

    #[test]
    fn methods_produce_identical_trajectories() {
        // Same initial conditions, same forces ⇒ same trajectory (up to
        // floating-point addition order; LJ with f64 stays bit-stable for
        // tens of steps at this tolerance).
        let mut sims: Vec<Simulation> = Method::ALL.iter().map(|&m| lj_sim(m)).collect();
        for _ in 0..10 {
            for sim in &mut sims {
                sim.step();
            }
        }
        let p0 = sims[0].store().positions();
        for sim in &sims[1..] {
            for (a, b) in p0.iter().zip(sim.store().positions()) {
                assert!((*a - *b).norm() < 1e-7, "{} diverged from SC-MD", sim.method().name());
            }
        }
    }

    fn silica_sim(method: Method) -> Simulation {
        let v = Vashishta::silica();
        let masses = v.params().masses;
        let (store, bbox) = crate::workload::build_silica_like(3, 7.16, masses, 0.01, 7);
        Simulation::builder(store, bbox)
            .pair_potential(Box::new(v.pair.clone()))
            .triplet_potential(Box::new(v.triplet.clone()))
            .method(method)
            .timestep(0.0005)
            .build()
            .unwrap()
    }

    #[test]
    fn silica_methods_agree_with_reference() {
        let v = Vashishta::silica();
        let mut sims: Vec<Simulation> = Method::ALL.iter().map(|&m| silica_sim(m)).collect();
        let stats: Vec<_> = sims.iter_mut().map(|s| s.compute_forces()).collect();
        // Reference forces.
        let mut store = sims[0].store().clone();
        store.zero_forces();
        let e2 = reference::pair_forces(&mut store, sims[0].bbox(), &v.pair);
        let e3 = reference::triplet_forces(&mut store, sims[0].bbox(), &v.triplet);
        for (sim, st) in sims.iter().zip(&stats) {
            assert!(
                (st.energy.pair - e2).abs() < 1e-7 * e2.abs().max(1.0),
                "{} pair energy {} vs reference {e2}",
                sim.method().name(),
                st.energy.pair
            );
            assert!(
                (st.energy.triplet - e3).abs() < 1e-7 * e3.abs().max(1.0),
                "{} triplet energy {} vs reference {e3}",
                sim.method().name(),
                st.energy.triplet
            );
            for (a, b) in store.forces().iter().zip(sim.store().forces()) {
                assert!((*a - *b).norm() < 1e-7, "{} forces differ", sim.method().name());
            }
        }
        // Triplet term is genuinely active in this configuration.
        assert!(stats[0].tuples.triplet.accepted > 0);
    }

    #[test]
    fn sc_searches_fewer_candidates_than_fs() {
        let mut sc = silica_sim(Method::ShiftCollapse);
        let mut fs = silica_sim(Method::FullShell);
        let s_sc = sc.compute_forces();
        let s_fs = fs.compute_forces();
        let ratio = s_fs.tuples.triplet.candidates as f64 / s_sc.tuples.triplet.candidates as f64;
        assert!(ratio > 1.7, "FS/SC triplet candidate ratio {ratio}");
        // Identical accepted tuple counts: same force set.
        assert_eq!(s_fs.tuples.triplet.accepted, s_sc.tuples.triplet.accepted);
    }

    #[test]
    fn quadruplet_term_runs_under_all_methods() {
        let torsion = TorsionToy::new(0.05, 1.0, 0.3);
        let build = |m: Method| {
            // FCC with nearest-neighbour distance a/√2 ≈ 0.85 < rcut4 = 1.0,
            // so bonded chains exist; the crystal keeps pair forces bounded.
            let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(4, 1.2), 0.02, 13);
            Simulation::builder(store, bbox)
                .pair_potential(Box::new(LennardJones::reduced(1.2)))
                .quadruplet_potential(Box::new(torsion))
                .method(m)
                .build()
                .unwrap()
        };
        let mut energies = vec![];
        let mut forces = vec![];
        for &m in &Method::ALL {
            let mut sim = build(m);
            let st = sim.compute_forces();
            energies.push(st.energy.quadruplet);
            forces.push(sim.store().forces().to_vec());
            assert!(st.tuples.quadruplet.accepted > 0, "{} found no quads", m.name());
        }
        for e in &energies[1..] {
            assert!((e - energies[0]).abs() < 1e-8, "quad energies {energies:?}");
        }
        for f in &forces[1..] {
            for (a, b) in forces[0].iter().zip(f) {
                assert!((*a - *b).norm() < 1e-8);
            }
        }
    }

    #[test]
    fn subdivided_cells_reproduce_forces_exactly() {
        // §6 extension: reach-2 patterns on half-size cells find the same
        // force set, hence identical energies and forces.
        let build = |k: i32, method: Method| {
            let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(6, 1.5599), 0.1, 42);
            Simulation::builder(store, bbox)
                .pair_potential(Box::new(LennardJones::reduced(2.5)))
                .method(method)
                .cell_subdivision(k)
                .build()
                .unwrap()
        };
        for method in [Method::ShiftCollapse, Method::FullShell] {
            let mut base = build(1, method);
            let mut sub = build(2, method);
            let e1 = base.compute_forces();
            let e2 = sub.compute_forces();
            assert!(
                (e1.energy.pair - e2.energy.pair).abs() < 1e-10 * e1.energy.pair.abs(),
                "{}: k=1 energy {} vs k=2 {}",
                method.name(),
                e1.energy.pair,
                e2.energy.pair
            );
            // Identical accepted pair sets.
            assert_eq!(e1.tuples.pair.accepted, e2.tuples.pair.accepted);
            for (a, b) in base.store().forces().iter().zip(sub.store().forces()) {
                assert!((*a - *b).norm() < 1e-9);
            }
        }
    }

    #[test]
    fn subdivided_triplet_search_examines_fewer_candidates() {
        // The §6 trade-off: at silica-like density, reach-2 cells prune the
        // triplet candidate space (reach_theory::search_volume_ratio < 1).
        let v = Vashishta::silica();
        let masses = v.params().masses;
        let build = |k: i32| {
            let (store, bbox) = crate::workload::build_silica_like(3, 7.16, masses, 0.01, 7);
            Simulation::builder(store, bbox)
                .pair_potential(Box::new(v.pair.clone()))
                .triplet_potential(Box::new(v.triplet.clone()))
                .method(Method::ShiftCollapse)
                .cell_subdivision(k)
                .build()
                .unwrap()
        };
        let s1 = build(1).compute_forces();
        let s2 = build(2).compute_forces();
        assert_eq!(s1.tuples.triplet.accepted, s2.tuples.triplet.accepted);
        assert!(
            s2.tuples.triplet.candidates < s1.tuples.triplet.candidates,
            "k=2 candidates {} should be below k=1 candidates {}",
            s2.tuples.triplet.candidates,
            s1.tuples.triplet.candidates
        );
        assert!(
            (s1.energy.triplet - s2.energy.triplet).abs() < 1e-9 * s1.energy.triplet.abs().max(1.0)
        );
    }

    /// Potential energy of a uniformly dilated copy of a simulation's
    /// system: positions and box scaled by λ.
    fn dilated_energy(
        base_store: &sc_cell::AtomStore,
        base_box: &SimulationBox,
        lambda: f64,
        build: impl Fn(sc_cell::AtomStore, SimulationBox) -> Simulation,
    ) -> f64 {
        let mut store = base_store.clone();
        for r in store.positions_mut() {
            *r *= lambda;
        }
        let bbox = SimulationBox::new(base_box.lengths() * lambda);
        let mut sim = build(store, bbox);
        sim.compute_forces().energy.total()
    }

    #[test]
    fn many_body_virial_matches_dilation_derivative() {
        // W = −dU/dλ at λ = 1 under uniform dilation — checks the pair,
        // triplet, and quadruplet virial formulas at once.
        let torsion = TorsionToy::new(0.05, 1.0, 0.3);
        let sw = {
            let mut s = StillingerWeber::silicon();
            let scale = 0.9 / (s.a * s.sigma);
            s.sigma *= scale;
            s
        };
        // a = 1.25 keeps every FCC neighbour shell comfortably away from
        // the LJ cutoff (1.2): nearest 0.884, second 1.25. A shell sitting
        // exactly on the cutoff would put the dilation derivative on a
        // tuple-set knife edge.
        let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(5, 1.25), 0.02, 23);
        let build = |st: sc_cell::AtomStore, bb: SimulationBox| {
            Simulation::builder(st, bb)
                .pair_potential(Box::new(LennardJones::reduced(1.2)))
                .triplet_potential(Box::new(sw))
                .quadruplet_potential(Box::new(torsion))
                .method(Method::ShiftCollapse)
                .build()
                .unwrap()
        };
        let mut sim = build(store.clone(), bbox);
        let w = sim.compute_forces().virial;
        let h = 1e-6;
        let up = dilated_energy(&store, &bbox, 1.0 + h, build);
        let um = dilated_energy(&store, &bbox, 1.0 - h, build);
        let dudl = (up - um) / (2.0 * h);
        assert!((w + dudl).abs() < 1e-4 * w.abs().max(1.0), "virial {w} vs -dU/dlambda {}", -dudl);
    }

    #[test]
    fn hybrid_virial_matches_cell_methods() {
        let v = Vashishta::silica();
        let masses = v.params().masses;
        let mut virials = vec![];
        for method in Method::ALL {
            let (store, bbox) = crate::workload::build_silica_like(3, 7.16, masses, 0.01, 7);
            let mut sim = Simulation::builder(store, bbox)
                .pair_potential(Box::new(v.pair.clone()))
                .triplet_potential(Box::new(v.triplet.clone()))
                .method(method)
                .build()
                .unwrap();
            virials.push(sim.compute_forces().virial);
        }
        for w in &virials[1..] {
            assert!(
                (w - virials[0]).abs() < 1e-7 * virials[0].abs().max(1.0),
                "virials differ: {virials:?}"
            );
        }
    }

    #[test]
    fn barostat_relaxes_pressure_toward_target() {
        // A compressed LJ crystal has a large positive pressure; the
        // barostat must expand the box and bring P down toward the target.
        let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(6, 1.35), 0.05, 3);
        let mut sim = Simulation::builder(store, bbox)
            .pair_potential(Box::new(LennardJones::reduced(2.5)))
            .thermostat(0.8, 0.05)
            .barostat(0.5, 0.002)
            .timestep(0.002)
            .build()
            .unwrap();
        let p0 = sim.pressure();
        let v0 = sim.bbox().volume();
        assert!(p0 > 5.0, "compressed crystal should start high: P = {p0}");
        sim.run(300);
        let p1 = sim.pressure();
        let v1 = sim.bbox().volume();
        assert!(v1 > v0, "box must expand: {v0} -> {v1}");
        assert!(p1 < 0.5 * p0, "pressure must relax: {p0} -> {p1}");
        // Atoms stay inside the rescaled box.
        assert!(sim.store().positions().iter().all(|&r| sim.bbox().contains(r)));
    }

    #[test]
    fn verlet_skin_preserves_physics_and_saves_rebuilds() {
        let v = Vashishta::silica();
        let masses = v.params().masses;
        let build = |skin: f64| {
            let (store, bbox) = crate::workload::build_silica_like(3, 7.16, masses, 0.05, 7);
            Simulation::builder(store, bbox)
                .pair_potential(Box::new(v.pair.clone()))
                .triplet_potential(Box::new(v.triplet.clone()))
                .method(Method::Hybrid)
                .verlet_skin(skin)
                .timestep(0.0005)
                .build()
                .unwrap()
        };
        let mut fresh = build(0.0);
        let mut skinned = build(0.5);
        for _ in 0..10 {
            fresh.step();
            skinned.step();
        }
        // Identical trajectories (reuse changes cost, not physics).
        for (a, b) in fresh.store().positions().iter().zip(skinned.store().positions()) {
            assert!((*a - *b).norm() < 1e-9);
        }
        let e_f = fresh.telemetry().energy;
        let e_s = skinned.telemetry().energy;
        assert!((e_f.pair - e_s.pair).abs() < 1e-9 * e_f.pair.abs().max(1.0));
        assert!((e_f.triplet - e_s.triplet).abs() < 1e-9 * e_f.triplet.abs().max(1.0));
        // And the skin actually avoids rebuilds.
        assert!(
            skinned.hybrid_list_builds() < fresh.hybrid_list_builds(),
            "skin rebuilds {} should be below fresh rebuilds {}",
            skinned.hybrid_list_builds(),
            fresh.hybrid_list_builds()
        );
        assert!(skinned.hybrid_list_builds() >= 1);
    }

    #[test]
    fn thermostat_drives_temperature() {
        let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(5, 1.7), 0.5, 3);
        let mut sim = Simulation::builder(store, bbox)
            .pair_potential(Box::new(LennardJones::reduced(2.5)))
            .thermostat(0.7, 0.1)
            .timestep(0.002)
            .build()
            .unwrap();
        sim.run(200);
        let t = sim.store().temperature();
        assert!((t - 0.7).abs() < 0.2, "temperature {t} should approach 0.7");
    }

    /// Builds the same silica system with an explicit lane count (and,
    /// optionally, a live metrics registry) through the [`RuntimeConfig`]
    /// path.
    fn silica_sim_runtime(method: Method, threads: usize, metrics: Registry) -> Simulation {
        let v = Vashishta::silica();
        let masses = v.params().masses;
        let (store, bbox) = crate::workload::build_silica_like(3, 7.16, masses, 0.01, 7);
        Simulation::builder(store, bbox)
            .pair_potential(Box::new(v.pair.clone()))
            .triplet_potential(Box::new(v.triplet.clone()))
            .method(method)
            .runtime(RuntimeConfig { threads, metrics, ..RuntimeConfig::default() })
            .timestep(0.0005)
            .build()
            .unwrap()
    }

    fn silica_sim_threads(method: Method, threads: usize) -> Simulation {
        silica_sim_runtime(method, threads, Registry::disabled())
    }

    #[test]
    fn parallel_forces_match_serial_pairs_and_triplets() {
        // The unified kernel must give the same physics regardless of lane
        // count — one lane runs inline, four lanes exercise the pool and the
        // per-lane accumulator merge. Floating-point summation order differs
        // across lane counts, so a tight (but not bitwise) tolerance.
        for method in [Method::ShiftCollapse, Method::FullShell] {
            let mut serial = silica_sim_threads(method, 1);
            let mut par = silica_sim_threads(method, 4);
            assert_eq!(par.force_lanes(), 4);
            let s = serial.compute_forces();
            let p = par.compute_forces();
            assert!(s.tuples.pair.accepted > 0 && s.tuples.triplet.accepted > 0);
            assert_eq!(s.tuples, p.tuples, "{method:?}: tuple counts must match exactly");
            let scale = s.energy.total().abs().max(1.0);
            assert!(
                (s.energy.pair - p.energy.pair).abs() < 1e-10 * scale,
                "{method:?}: pair energy {} vs {}",
                s.energy.pair,
                p.energy.pair
            );
            assert!(
                (s.energy.triplet - p.energy.triplet).abs() < 1e-10 * scale,
                "{method:?}: triplet energy {} vs {}",
                s.energy.triplet,
                p.energy.triplet
            );
            assert!((s.virial - p.virial).abs() < 1e-9 * scale);
            for (a, b) in serial.store().forces().iter().zip(par.store().forces()) {
                assert!((*a - *b).norm() < 1e-9, "{method:?}: force {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn parallel_forces_deterministic_for_fixed_lane_count() {
        // Same lane count ⇒ same task → lane partition ⇒ bitwise-identical
        // forces across runs (merges happen in lane order).
        let forces = |_: usize| {
            let mut sim = silica_sim_threads(Method::ShiftCollapse, 3);
            sim.compute_forces();
            sim.store().forces().to_vec()
        };
        let a = forces(0);
        let b = forces(1);
        assert_eq!(a, b, "fixed lane count must be bitwise deterministic");
    }

    #[test]
    fn steady_state_steps_do_not_allocate_scratch() {
        // Regression for the zero-allocation guarantee, extended to the
        // observability layer: with the registry fully disabled, steady
        // state must add no allocations per step anywhere — neither in the
        // force scratch pool nor in the (inert) metrics plumbing.
        let mut sim = silica_sim_threads(Method::ShiftCollapse, 2);
        sim.run(2); // warm up: pool fills with per-lane buffers
        let warm = sim.scratch_allocation_events();
        assert!(warm > 0, "warm-up must have populated the pool");
        let warm_total = sim.telemetry().alloc_events;
        assert_eq!(sim.metrics().allocation_events(), 0, "disabled registry never allocates");
        sim.run(5);
        assert_eq!(
            sim.scratch_allocation_events(),
            warm,
            "steady-state steps must reuse pooled accumulators, not allocate"
        );
        assert_eq!(sim.metrics().allocation_events(), 0);
        assert_eq!(
            sim.telemetry().alloc_events,
            warm_total,
            "telemetry's combined allocation observable must stay flat"
        );
        // The default tracer is the inert one: no rings, no events, and
        // (asserted in sc-obs) no clock reads on any emit path.
        assert!(!sim.tracer().enabled());
        assert!(sim.tracer().events().is_empty());
        assert_eq!(sim.tracer().dropped(), 0);
    }

    #[test]
    fn tracing_emits_every_phase_and_integrate_spans() {
        let tracer = sc_obs::Tracer::new();
        let v = Vashishta::silica();
        let masses = v.params().masses;
        let (store, bbox) = crate::workload::build_silica_like(3, 7.16, masses, 0.01, 7);
        let mut sim = Simulation::builder(store, bbox)
            .pair_potential(Box::new(v.pair.clone()))
            .triplet_potential(Box::new(v.triplet.clone()))
            .runtime(RuntimeConfig { tracer: tracer.clone(), ..RuntimeConfig::default() })
            .timestep(0.0005)
            .build()
            .unwrap();
        sim.run(2);
        assert!(sim.tracer().enabled());
        let events = tracer.events();
        // Every slot of the taxonomy appears at least once, including the
        // comm phases the serial engine never exercises (zero-duration).
        for phase in Phase::ALL {
            assert!(
                events.iter().any(|e| e.kind == sc_obs::EventKind::Phase(phase)),
                "no trace event for phase {phase:?}"
            );
        }
        // The aggregate Compute interval and the Integrate spans carry real
        // durations; events are step-stamped.
        let compute_ns: u64 = events
            .iter()
            .filter(|e| e.kind == sc_obs::EventKind::Phase(Phase::Compute))
            .map(|e| e.dur_ns)
            .sum();
        let integrate_ns: u64 = events
            .iter()
            .filter(|e| e.kind == sc_obs::EventKind::Phase(Phase::Integrate))
            .map(|e| e.dur_ns)
            .sum();
        assert!(compute_ns > 0);
        assert!(integrate_ns > 0);
        assert!(events.iter().any(|e| e.step == 2));
        assert_eq!(tracer.dropped(), 0);
        // Merged events arrive sorted by (step, rank, t_ns, lane).
        let keys: Vec<_> = events.iter().map(|e| (e.step, e.rank, e.t_ns, e.lane)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn enabled_registry_allocates_only_at_registration() {
        let reg = Registry::new();
        let mut sim = silica_sim_runtime(Method::ShiftCollapse, 2, reg.clone());
        let registered = reg.allocation_events();
        assert!(registered > 0, "build() pre-registers the metric handles");
        sim.run(3);
        assert_eq!(
            reg.allocation_events(),
            registered,
            "steady-state steps must not register (allocate) new metrics"
        );
        // The registry saw real data from the run.
        assert_eq!(reg.counter("sim.steps").get(), 3);
        assert!(reg.counter("tuples.triplet.accepted").get() > 0);
        assert!(reg.counter("eval.pair_work_ns").get() > 0);
        assert!(reg.phases().bin_s() > 0.0);
        assert!(reg.phases().integrate_s() > 0.0);
        let snap = reg.snapshot();
        assert!(snap.counters.iter().any(|(n, v)| n == "sim.force_computations" && *v > 0));
    }

    #[test]
    fn registry_counters_sum_exactly_across_pool_lanes() {
        // Worker lanes of the simulation's own thread pool hammer one
        // counter; the total must be exact (atomicity under the pool).
        let reg = Registry::new();
        let c = reg.counter("lane.work");
        let pool = ThreadPool::new(4);
        for _ in 0..50 {
            let job = |_lane: usize| {
                for _ in 0..1000 {
                    c.inc();
                }
            };
            pool.run(4, &job);
        }
        assert_eq!(c.get(), 200_000);
    }

    #[test]
    fn step_phases_are_recorded() {
        let mut sim = silica_sim_threads(Method::ShiftCollapse, 2);
        let stats = sim.compute_forces();
        assert!(stats.phases.bin_s() > 0.0, "binning was timed");
        assert!(stats.phases.enumerate_s() > 0.0, "enumeration was timed");
        assert!(stats.phases.reduce_s() > 0.0, "reduction was timed");
        assert_eq!(stats.phases.exchange_s(), 0.0, "no ghost exchange in shared memory");
        assert_eq!(stats.phases.eval_s(), 0.0, "eval split requires detailed timing");

        let v = Vashishta::silica();
        let masses = v.params().masses;
        let (store, bbox) = crate::workload::build_silica_like(3, 7.16, masses, 0.01, 7);
        let mut detailed = Simulation::builder(store, bbox)
            .pair_potential(Box::new(v.pair.clone()))
            .triplet_potential(Box::new(v.triplet.clone()))
            .runtime(RuntimeConfig { detailed_timing: true, ..RuntimeConfig::default() })
            .build()
            .unwrap();
        let stats = detailed.compute_forces();
        assert!(stats.phases.eval_s() > 0.0, "detailed timing splits out eval");
        assert!(stats.phases.total_s() > 0.0);
    }

    #[test]
    fn build_rejects_bad_scalars_with_field_names() {
        let build = |dt: f64, skin: f64| {
            let (store, bbox) = random_gas(10, 8.0, 1);
            Simulation::builder(store, bbox)
                .pair_potential(Box::new(LennardJones::reduced(2.5)))
                .timestep(dt)
                .verlet_skin(skin)
                .build()
        };
        match build(-0.5, 0.0).map(|_| ()) {
            Err(crate::BuildError::Config { field: "timestep", value }) => assert_eq!(value, -0.5),
            other => panic!("expected timestep Config error, got {other:?}"),
        }
        match build(0.001, f64::NAN).map(|_| ()) {
            Err(crate::BuildError::Config { field: "verlet_skin", .. }) => {}
            other => panic!("expected verlet_skin Config error, got {other:?}"),
        }
        assert!(build(0.001, 0.3).is_ok());
    }

    #[test]
    fn build_rejects_cutoffs_beyond_half_the_box() {
        // Subdivided cells (edge r_cut/k) would happily build a lattice for
        // a cutoff beyond half the shortest box edge, where the
        // minimum-image convention becomes ambiguous and single-image sweeps
        // double-count pairs; the builder must reject the value itself.
        let build = |rcut: f64| {
            let (store, bbox) = random_gas(10, 8.0, 1);
            Simulation::builder(store, bbox)
                .pair_potential(Box::new(LennardJones::reduced(rcut)))
                .cell_subdivision(2)
                .build()
        };
        // Exactly half the shortest edge is the boundary value: it passes
        // the half-box check (only *strictly* larger cutoffs are ambiguous)
        // and instead trips the stricter 3-cutoff minimum-image guard
        // downstream — the typed Config error must not claim it.
        match build(4.0).map(|_| ()) {
            Err(crate::BuildError::BoxTooSmall { .. }) => {}
            other => panic!("expected BoxTooSmall at the boundary, got {other:?}"),
        }
        match build(4.0 + 1e-9).map(|_| ()) {
            Err(crate::BuildError::Config { field: "pair_cutoff", value }) => {
                assert!(value > 4.0)
            }
            other => panic!("expected pair_cutoff Config error, got {other:?}"),
        }
        // Comfortably inside the limit still builds.
        assert!(build(2.5).is_ok());
    }

    #[test]
    fn removal_then_step_stays_finite_and_conserves_momentum() {
        let mut sim = lj_sim(Method::ShiftCollapse);
        sim.run(2); // warm lattices, store already Morton-sorted
        let n0 = sim.store().len();
        let (gone_id, ..) = sim.store_mut().swap_remove(3);
        assert_eq!(sim.store().len(), n0 - 1);
        assert_eq!(sim.slot_of_id(gone_id), None);
        // swap_remove moved the last atom into slot 3; every lattice binned
        // before the removal is stale (the generation counter marks it), and
        // the next force computation must rebuild before enumerating.
        sim.step();
        for i in 0..sim.store().len() {
            assert!(sim.store().positions()[i].is_finite());
            assert!(sim.store().velocities()[i].is_finite());
            assert!(sim.store().forces()[i].is_finite());
        }
        // Newton's third law over the surviving atoms.
        assert!(sim.store().net_force().norm() < 1e-7, "net force {:?}", sim.store().net_force());
        // Every surviving id resolves to its current slot through the map.
        for i in 0..sim.store().len() {
            let id = sim.store().ids()[i];
            assert_eq!(sim.slot_of_id(id), Some(i as u32));
        }
    }

    #[test]
    fn observer_fires_on_schedule_with_current_telemetry() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let mut sim = lj_sim(Method::ShiftCollapse);
        sim.observe_every(
            3,
            Box::new(move |t: &Telemetry| {
                sink.lock().unwrap().push((t.step, t.energy.total()));
            }),
        );
        sim.run(7);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![3, 6]);
        assert!(seen.iter().all(|&(_, e)| e.is_finite() && e != 0.0));
    }
}
