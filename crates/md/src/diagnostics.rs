//! Physical observables computed over the same tuple machinery the forces
//! use: radial distribution function, mean-squared displacement, and the
//! pair-virial pressure.

use crate::engine::{visit_pairs, visit_triplets, Dedup, PatternPlan};
use sc_cell::{AtomStore, CellLattice, Species};
use sc_core::shift_collapse;
use sc_geom::{SimulationBox, Vec3};
use sc_potential::PairPotential;

/// A radial distribution function g(r) accumulated over snapshots.
///
/// Uses the SC pair pattern to enumerate each pair once — the same
/// redundancy-free search that computes forces, reused for analysis.
#[derive(Debug, Clone)]
pub struct RadialDistribution {
    rmax: f64,
    bins: Vec<f64>,
    snapshots: u32,
    /// Count of atoms whose pairs are tallied (species-a atoms), and of the
    /// partner species, for partial-g(r) normalization.
    n_a: usize,
    n_b: usize,
    volume: f64,
    filter: Option<(Species, Species)>,
}

impl RadialDistribution {
    /// Creates an accumulator with `nbins` bins up to `rmax` over all pairs.
    pub fn new(rmax: f64, nbins: usize) -> Self {
        assert!(rmax > 0.0 && nbins > 0);
        RadialDistribution {
            rmax,
            bins: vec![0.0; nbins],
            snapshots: 0,
            n_a: 0,
            n_b: 0,
            volume: 0.0,
            filter: None,
        }
    }

    /// Restricts to the partial g_ab(r) between two species (unordered) —
    /// the Si-O / O-O / Si-Si decomposition silica structure work uses.
    pub fn partial(mut self, a: Species, b: Species) -> Self {
        self.filter = Some((a, b));
        self
    }

    /// Accumulates one snapshot.
    pub fn accumulate(&mut self, store: &AtomStore, bbox: &SimulationBox) {
        let mut lat = CellLattice::new(*bbox, self.rmax);
        lat.rebuild(store);
        let plan = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
        let nb = self.bins.len() as f64;
        let rmax = self.rmax;
        let bins = &mut self.bins;
        let filter = self.filter;
        let species = store.species();
        visit_pairs(&lat, store, &plan, rmax, |i, j, _, r| {
            if let Some((a, b)) = filter {
                let (si, sj) = (species[i as usize], species[j as usize]);
                if !((si, sj) == (a, b) || (si, sj) == (b, a)) {
                    return;
                }
            }
            let bin = (r / rmax * nb) as usize;
            if bin < bins.len() {
                bins[bin] += 2.0; // each undirected pair counts for both atoms
            }
        });
        self.snapshots += 1;
        match self.filter {
            None => {
                self.n_a = store.len();
                self.n_b = store.len();
            }
            Some((a, b)) => {
                self.n_a = store.species().iter().filter(|s| **s == a).count();
                self.n_b = store.species().iter().filter(|s| **s == b).count();
            }
        }
        self.volume = bbox.volume();
    }

    /// The normalized g(r): `(r_mid, g)` per bin, ideal-gas normalized so a
    /// structureless fluid gives g ≈ 1 at large r.
    ///
    /// The bins hold *directed* counts (each undirected pair tallied twice).
    /// The ideal-gas directed count in a shell of volume `s` is
    /// `C·s/V` with `C = N_a·N_b` for unlike partials, `N_a²` for like
    /// partials, and `N²` unfiltered — so one division normalizes all
    /// three cases.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let c = match self.filter {
            None => (self.n_a * self.n_a) as f64,
            Some((a, b)) if a == b => (self.n_a * self.n_a) as f64,
            Some(_) => 2.0 * (self.n_a * self.n_b) as f64,
        };
        let dr = self.rmax / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let r_lo = i as f64 * dr;
                let r_hi = r_lo + dr;
                let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
                let ideal = c * shell / self.volume * self.snapshots.max(1) as f64;
                (r_lo + 0.5 * dr, if ideal > 0.0 { count / ideal } else { 0.0 })
            })
            .collect()
    }
}

/// Mean-squared displacement tracker against a reference snapshot, following
/// atoms through periodic wrapping by accumulating per-step minimum-image
/// displacements.
#[derive(Debug, Clone)]
pub struct MeanSquaredDisplacement {
    unwrapped: Vec<Vec3>,
    reference: Vec<Vec3>,
    last_wrapped: Vec<Vec3>,
}

impl MeanSquaredDisplacement {
    /// Starts tracking from the store's current positions.
    pub fn new(store: &AtomStore) -> Self {
        let p = store.positions().to_vec();
        MeanSquaredDisplacement { unwrapped: p.clone(), reference: p.clone(), last_wrapped: p }
    }

    /// Records the current positions (call once per step or sampling
    /// interval; atoms must not move more than half a box per call).
    pub fn record(&mut self, store: &AtomStore, bbox: &SimulationBox) {
        for i in 0..store.len() {
            let step = bbox.min_image(self.last_wrapped[i], store.positions()[i]);
            self.unwrapped[i] += step;
            self.last_wrapped[i] = store.positions()[i];
        }
    }

    /// The current MSD `⟨|r(t) − r(0)|²⟩`.
    pub fn value(&self) -> f64 {
        if self.unwrapped.is_empty() {
            return 0.0;
        }
        self.unwrapped.iter().zip(&self.reference).map(|(u, r)| (*u - *r).norm_sq()).sum::<f64>()
            / self.unwrapped.len() as f64
    }
}

/// A bond-angle distribution over chain triplets — the structural probe for
/// network formers like silica (O-Si-O peaks at 109.47°, Si-O-Si near
/// 140-150°). Built on the same SC(3) triplet enumeration the 3-body forces
/// use.
#[derive(Debug, Clone)]
pub struct BondAngleDistribution {
    rcut: f64,
    bins: Vec<u64>,
    /// Restrict to a species chain `(s0, vertex, s2)` (unordered ends), or
    /// `None` for all triplets.
    filter: Option<(Species, Species, Species)>,
}

impl BondAngleDistribution {
    /// Creates an accumulator over `nbins` bins on [0°, 180°] for triplets
    /// with both legs < `rcut`.
    pub fn new(rcut: f64, nbins: usize) -> Self {
        assert!(rcut > 0.0 && nbins > 0);
        BondAngleDistribution { rcut, bins: vec![0; nbins], filter: None }
    }

    /// Restricts accumulation to `s0 - vertex - s2` chains (ends unordered).
    pub fn for_species(mut self, s0: Species, vertex: Species, s2: Species) -> Self {
        self.filter = Some((s0, vertex, s2));
        self
    }

    /// Accumulates one snapshot.
    pub fn accumulate(&mut self, store: &AtomStore, bbox: &SimulationBox) {
        let mut lat = CellLattice::new(*bbox, self.rcut);
        lat.rebuild(store);
        let plan = PatternPlan::new(&shift_collapse(3), Dedup::Collapsed);
        let nb = self.bins.len() as f64;
        let bins = &mut self.bins;
        let filter = self.filter;
        let species = store.species();
        visit_triplets(&lat, store, &plan, self.rcut, |i, j, k, d01, d12| {
            if let Some((a, v, b)) = filter {
                let (si, sj, sk) = (species[i as usize], species[j as usize], species[k as usize]);
                if sj != v || !((si, sk) == (a, b) || (si, sk) == (b, a)) {
                    return;
                }
            }
            // Vertex at the chain middle: legs −d01 and d12.
            let u = -d01;
            let w = d12;
            let cos = (u.dot(w) / (u.norm() * w.norm())).clamp(-1.0, 1.0);
            let theta = cos.acos().to_degrees();
            let bin = ((theta / 180.0 * nb) as usize).min(bins.len() - 1);
            bins[bin] += 1;
        });
    }

    /// The normalized distribution: `(θ_mid_degrees, probability_density)`.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let total: u64 = self.bins.iter().sum();
        let dtheta = 180.0 / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let p = if total > 0 { c as f64 / total as f64 / dtheta } else { 0.0 };
                ((i as f64 + 0.5) * dtheta, p)
            })
            .collect()
    }

    /// The modal angle in degrees (0 if nothing accumulated).
    pub fn peak_angle(&self) -> f64 {
        let (i, _) = self.bins.iter().enumerate().max_by_key(|(_, &c)| c).unwrap_or((0, &0));
        (i as f64 + 0.5) * 180.0 / self.bins.len() as f64
    }
}

/// Coordination-number histogram: how many neighbours within `rcut` each
/// atom has (optionally counting only neighbours of a given species).
pub fn coordination_histogram(
    store: &AtomStore,
    bbox: &SimulationBox,
    rcut: f64,
    neighbor_species: Option<Species>,
) -> Vec<u32> {
    let mut lat = CellLattice::new(*bbox, rcut);
    lat.rebuild(store);
    let plan = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
    let mut counts = vec![0u32; store.len()];
    visit_pairs(&lat, store, &plan, rcut, |i, j, _, _| {
        let (si, sj) = (store.species()[i as usize], store.species()[j as usize]);
        if neighbor_species.is_none_or(|s| sj == s) {
            counts[i as usize] += 1;
        }
        if neighbor_species.is_none_or(|s| si == s) {
            counts[j as usize] += 1;
        }
    });
    counts
}

/// Counts the chain-cutoff n-tuples of every order 2..=`n_max` in a
/// configuration, using the SC pattern of each order — the size of the
/// dynamic workload an n-body force field of that order would face
/// (ReaxFF-style fields reach n = 6, §1). `n_max ≤ 5`.
pub fn chain_statistics(
    store: &AtomStore,
    bbox: &SimulationBox,
    rcut: f64,
    n_max: usize,
) -> Vec<(usize, u64)> {
    assert!((2..=5).contains(&n_max));
    let mut lat = CellLattice::new(*bbox, rcut);
    lat.rebuild(store);
    (2..=n_max)
        .map(|n| {
            let plan = PatternPlan::new(&shift_collapse(n), Dedup::Collapsed);
            let stats = crate::engine::visit_ntuples(&lat, store, &plan, rcut, |_| {});
            (n, stats.accepted)
        })
        .collect()
}

/// The full instantaneous pair-virial tensor `Σ_pairs d ⊗ f` (row-major
/// 3×3), whose trace/3V plus the kinetic term gives the scalar pressure.
pub fn pair_virial_tensor(
    store: &AtomStore,
    bbox: &SimulationBox,
    pot: &dyn PairPotential,
) -> [[f64; 3]; 3] {
    let mut lat = CellLattice::new(*bbox, pot.cutoff());
    lat.rebuild(store);
    let plan = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
    let mut w = [[0.0; 3]; 3];
    visit_pairs(&lat, store, &plan, pot.cutoff(), |i, j, d, r| {
        let (si, sj) = (store.species()[i as usize], store.species()[j as usize]);
        if !pot.applies(si, sj) {
            return;
        }
        let (_, du) = pot.eval(si, sj, r);
        let f = d * (-(du / r)); // force on j
        #[allow(clippy::needless_range_loop)]
        for a in 0..3 {
            for b in 0..3 {
                w[a][b] += d[a] * f[b];
            }
        }
    });
    w
}

/// Instantaneous pair-virial pressure
/// `P = (N k_B T + ⅓ Σ_pairs r·f) / V` (k_B = 1). Many-body virial terms are
/// not included; for the pair-dominated systems in this repository the pair
/// virial is the leading contribution.
pub fn pair_virial_pressure(
    store: &AtomStore,
    bbox: &SimulationBox,
    pot: &dyn PairPotential,
) -> f64 {
    let mut lat = CellLattice::new(*bbox, pot.cutoff());
    lat.rebuild(store);
    let plan = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
    let mut virial = 0.0;
    visit_pairs(&lat, store, &plan, pot.cutoff(), |i, j, d, r| {
        let (si, sj) = (store.species()[i as usize], store.species()[j as usize]);
        if !pot.applies(si, sj) {
            return;
        }
        let (_, du) = pot.eval(si, sj, r);
        // r · f(pair) = −r·du/dr for a central force along d.
        virial += -du * r;
        let _ = d;
    });
    let n = store.len() as f64;
    (n * store.temperature() + virial / 3.0) / bbox.volume()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{build_fcc_lattice, random_gas, LatticeSpec};
    use crate::{Method, Simulation};
    use sc_cell::Species;
    use sc_potential::LennardJones;

    #[test]
    fn rdf_of_ideal_gas_is_flat() {
        let (store, bbox) = random_gas(4000, 12.0, 3);
        let mut rdf = RadialDistribution::new(3.0, 30);
        rdf.accumulate(&store, &bbox);
        let g = rdf.normalized();
        // Skip the first bins (few counts); the rest must hover near 1.
        for &(r, v) in g.iter().filter(|(r, _)| *r > 0.5) {
            assert!((v - 1.0).abs() < 0.25, "g({r:.2}) = {v}");
        }
    }

    #[test]
    fn rdf_of_crystal_peaks_at_nearest_neighbor_distance() {
        let a = 1.6;
        let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(5, a), 0.0, 1);
        let mut rdf = RadialDistribution::new(2.0, 100);
        rdf.accumulate(&store, &bbox);
        let g = rdf.normalized();
        let nn = a / 2f64.sqrt(); // FCC nearest-neighbour distance
        let peak = g.iter().max_by(|x, y| x.1.partial_cmp(&y.1).unwrap()).unwrap();
        assert!(
            (peak.0 - nn).abs() < 0.05,
            "peak at {} but nearest-neighbour distance is {nn}",
            peak.0
        );
        assert!(peak.1 > 10.0, "crystal peak should tower over ideal gas");
    }

    #[test]
    fn msd_zero_for_static_system_grows_for_moving() {
        let (store, bbox) = random_gas(50, 5.0, 2);
        let mut msd = MeanSquaredDisplacement::new(&store);
        msd.record(&store, &bbox);
        assert!(msd.value() < 1e-30);
        // Move every atom by (0.1, 0, 0), wrapped.
        let mut moved = store.clone();
        for p in moved.positions_mut() {
            *p = bbox.wrap(*p + Vec3::new(0.1, 0.0, 0.0));
        }
        msd.record(&moved, &bbox);
        assert!((msd.value() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn msd_tracks_through_periodic_wrap() {
        let bbox = SimulationBox::cubic(4.0);
        let mut store = AtomStore::single_species();
        store.push(0, Species::DEFAULT, Vec3::new(3.9, 2.0, 2.0), Vec3::ZERO);
        let mut msd = MeanSquaredDisplacement::new(&store);
        // Cross the boundary in small steps; total displacement 1.0 in x.
        for k in 1..=10 {
            store.positions_mut()[0] = bbox.wrap(Vec3::new(3.9 + 0.1 * k as f64, 2.0, 2.0));
            msd.record(&store, &bbox);
        }
        assert!((msd.value() - 1.0).abs() < 1e-12, "MSD {} should be 1.0", msd.value());
    }

    #[test]
    fn partial_rdfs_decompose_the_total() {
        // Random two-species gas: every partial must be ≈ 1 (ideal), and
        // the species-weighted sum of partials must recover the total.
        let (mut store0, bbox) = random_gas(3000, 10.0, 4);
        // Make a two-species store: alternate species.
        let mut store = sc_cell::AtomStore::new(vec![1.0, 2.0]);
        for i in 0..store0.len() {
            store.push(i as u64, Species((i % 2) as u8), store0.positions()[i], Vec3::ZERO);
        }
        store0.zero_forces();
        let mut total = RadialDistribution::new(2.5, 20);
        total.accumulate(&store, &bbox);
        let mut parts = vec![
            RadialDistribution::new(2.5, 20).partial(Species(0), Species(0)),
            RadialDistribution::new(2.5, 20).partial(Species(0), Species(1)),
            RadialDistribution::new(2.5, 20).partial(Species(1), Species(1)),
        ];
        for p in &mut parts {
            p.accumulate(&store, &bbox);
        }
        let g_t = total.normalized();
        let gs: Vec<_> = parts.iter().map(|p| p.normalized()).collect();
        // Weights: x_a x_b (×2 off-diagonal) with x = 1/2 each:
        // g = ¼ g00 + ½ g01 + ¼ g11.
        for i in 0..g_t.len() {
            if g_t[i].0 < 0.5 {
                continue; // sparse inner bins
            }
            let mix = 0.25 * gs[0][i].1 + 0.5 * gs[1][i].1 + 0.25 * gs[2][i].1;
            assert!(
                (mix - g_t[i].1).abs() < 0.05,
                "at r = {}: mix {mix} vs total {}",
                g_t[i].0,
                g_t[i].1
            );
            assert!((g_t[i].1 - 1.0).abs() < 0.25, "ideal gas g ≈ 1");
        }
    }

    #[test]
    fn silica_partial_rdf_peaks_at_bond_length() {
        let a = 7.16;
        let (store, bbox) = crate::workload::build_silica_like(2, a, [28.0855, 15.999], 0.0, 3);
        let mut sio = RadialDistribution::new(4.0, 80).partial(Species::SI, Species::O);
        sio.accumulate(&store, &bbox);
        let bond = a * 0.25 * 3f64.sqrt() * 0.5; // ≈ 1.55 Å
        let peak =
            sio.normalized().into_iter().max_by(|x, y| x.1.partial_cmp(&y.1).unwrap()).unwrap();
        assert!((peak.0 - bond).abs() < 0.1, "Si-O peak at {} Å, bond length {bond} Å", peak.0);
    }

    #[test]
    fn silica_bond_angles_peak_at_tetrahedral() {
        // β-cristobalite-like SiO₂: O-Si-O angles are exactly 109.47°.
        let (store, bbox) = crate::workload::build_silica_like(2, 7.16, [28.0855, 15.999], 0.0, 3);
        let mut bad =
            BondAngleDistribution::new(2.0, 90).for_species(Species::O, Species::SI, Species::O);
        bad.accumulate(&store, &bbox);
        let peak = bad.peak_angle();
        assert!((peak - 109.47).abs() < 3.0, "O-Si-O peak at {peak}°");
        // Si-O-Si in the ideal lattice is 180° (straight bridges).
        let mut sos =
            BondAngleDistribution::new(2.0, 90).for_species(Species::SI, Species::O, Species::SI);
        sos.accumulate(&store, &bbox);
        assert!(sos.peak_angle() > 170.0, "Si-O-Si peak at {}°", sos.peak_angle());
        // The normalized distribution integrates to 1.
        let total: f64 = bad.normalized().iter().map(|(_, p)| p * 2.0).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn silica_coordination_numbers() {
        // Ideal SiO₂ network: every Si has 4 O neighbours, every O has 2 Si
        // neighbours, at the bond distance.
        let (store, bbox) = crate::workload::build_silica_like(2, 7.16, [28.0855, 15.999], 0.0, 3);
        let bond = 7.16 * 0.25 * 3f64.sqrt() * 0.5 + 0.3;
        let si_coord = coordination_histogram(&store, &bbox, bond, Some(Species::O));
        let o_coord = coordination_histogram(&store, &bbox, bond, Some(Species::SI));
        for i in 0..store.len() {
            match store.species()[i] {
                Species::SI => assert_eq!(si_coord[i], 4, "Si atom {i}"),
                _ => assert_eq!(o_coord[i], 2, "O atom {i}"),
            }
        }
    }

    #[test]
    fn chain_statistics_grow_with_order() {
        let (store, bbox) = random_gas(150, 5.0, 9);
        let stats = chain_statistics(&store, &bbox, 1.0, 5);
        assert_eq!(stats.len(), 4);
        // Pairs < triplets < quadruplets < quintuplets at this density
        // (each extra link multiplies by ≈ the neighbour count).
        for w in stats.windows(2) {
            assert!(w[1].1 > w[0].1, "chain counts must grow: {stats:?}");
        }
        // Pair count agrees with the brute-force reference.
        let pairs = crate::reference::all_pairs(&store, &bbox, 1.0);
        assert_eq!(stats[0].1, pairs.len() as u64);
    }

    #[test]
    fn virial_tensor_trace_matches_scalar_pressure() {
        let (mut store, bbox) = random_gas(60, 8.0, 5);
        for v in store.velocities_mut() {
            *v = Vec3::new(0.3, 0.1, -0.2);
        }
        store.remove_drift();
        let lj = LennardJones::reduced(2.5);
        let w = pair_virial_tensor(&store, &bbox, &lj);
        let trace = w[0][0] + w[1][1] + w[2][2];
        let p_from_tensor =
            (store.len() as f64 * store.temperature() + trace / 3.0) / bbox.volume();
        let p = pair_virial_pressure(&store, &bbox, &lj);
        assert!((p - p_from_tensor).abs() < 1e-9 * p.abs().max(1.0));
        // The tensor is symmetric for central forces.
        #[allow(clippy::needless_range_loop)]
        for a in 0..3 {
            for b in 0..3 {
                assert!((w[a][b] - w[b][a]).abs() < 1e-9 * w[a][b].abs().max(1.0));
            }
        }
    }

    #[test]
    fn virial_pressure_matches_brute_force() {
        let (mut store, bbox) = random_gas(80, 8.0, 5);
        for v in store.velocities_mut() {
            *v = Vec3::new(0.5, -0.2, 0.3);
        }
        store.remove_drift();
        store.rescale_to_temperature(1.0);
        let lj = LennardJones::reduced(2.5);
        let p = pair_virial_pressure(&store, &bbox, &lj);
        // Brute-force virial over all cutoff pairs.
        let mut virial = 0.0;
        for (i, j) in crate::reference::all_pairs(&store, &bbox, 2.5) {
            let r =
                bbox.min_image(store.positions()[i as usize], store.positions()[j as usize]).norm();
            let (_, du) = sc_potential::PairPotential::eval(&lj, Species(0), Species(0), r);
            virial += -du * r;
        }
        let expect = (store.len() as f64 * store.temperature() + virial / 3.0) / bbox.volume();
        assert!(
            (p - expect).abs() < 1e-9 * expect.abs().max(1.0),
            "P = {p}, brute force = {expect}"
        );
    }

    #[test]
    fn compressed_lj_crystal_has_positive_pressure() {
        // FCC at a lattice constant well below equilibrium: strongly
        // repulsive, large positive virial.
        let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(6, 1.3), 0.0, 1);
        let lj = LennardJones::reduced(2.5);
        let p = pair_virial_pressure(&store, &bbox, &lj);
        assert!(p > 1.0, "compressed crystal pressure {p}");
        let mut sim = Simulation::builder(store, bbox)
            .pair_potential(Box::new(lj))
            .method(Method::ShiftCollapse)
            .build()
            .unwrap();
        sim.compute_forces();
    }
}
