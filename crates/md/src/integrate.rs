//! Time integration: velocity Verlet and a Berendsen-style thermostat.

use sc_cell::AtomStore;
use sc_geom::SimulationBox;

/// One velocity-Verlet step, split for force recomputation in the middle:
///
/// this function performs the **first half** — half-kick + drift — leaving
/// the caller to recompute forces at the new positions and then call
/// [`velocity_verlet_finish`] for the second half-kick. Positions are
/// wrapped back into the periodic box after the drift.
pub fn velocity_verlet_start(store: &mut AtomStore, bbox: &SimulationBox, dt: f64) {
    let n = store.len();
    for i in 0..n {
        let m = store.mass(i as u32);
        let a = store.forces()[i] / m;
        store.velocities_mut()[i] += a * (0.5 * dt);
        let v = store.velocities()[i];
        store.positions_mut()[i] += v * dt;
    }
    store.wrap_positions(bbox);
}

/// The second velocity-Verlet half-kick, using the freshly computed forces.
pub fn velocity_verlet_finish(store: &mut AtomStore, dt: f64) {
    let n = store.len();
    for i in 0..n {
        let m = store.mass(i as u32);
        let a = store.forces()[i] / m;
        store.velocities_mut()[i] += a * (0.5 * dt);
    }
}

/// A convenience whole step for callers that recompute forces via a closure:
/// half-kick, drift, `recompute_forces`, half-kick.
pub fn velocity_verlet_step(
    store: &mut AtomStore,
    bbox: &SimulationBox,
    dt: f64,
    recompute_forces: impl FnOnce(&mut AtomStore),
) {
    velocity_verlet_start(store, bbox, dt);
    store.zero_forces();
    recompute_forces(store);
    velocity_verlet_finish(store, dt);
}

/// Berendsen weak-coupling velocity rescale toward `t_target` with coupling
/// ratio `dt / tau` (0 = no coupling, 1 = instantaneous rescale).
pub fn berendsen_rescale(store: &mut AtomStore, t_target: f64, dt_over_tau: f64) {
    let t = store.temperature();
    if t <= 0.0 {
        return;
    }
    let lambda = (1.0 + dt_over_tau * (t_target / t - 1.0)).max(0.0).sqrt();
    for v in store.velocities_mut() {
        *v *= lambda;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_cell::Species;
    use sc_geom::Vec3;

    /// Harmonic oscillator via a force closure: a particle tethered to the
    /// box centre. Velocity Verlet must conserve energy to O(dt²).
    #[test]
    fn verlet_conserves_harmonic_energy() {
        let bbox = SimulationBox::cubic(100.0);
        let centre = Vec3::splat(50.0);
        let k = 1.0;
        let mut store = AtomStore::single_species();
        store.push(0, Species::DEFAULT, centre + Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
        let spring = |s: &mut AtomStore| {
            let d = s.positions()[0] - centre;
            s.forces_mut()[0] = -d * k;
        };
        // Prime forces.
        spring(&mut store);
        let energy =
            |s: &AtomStore| s.kinetic_energy() + 0.5 * k * (s.positions()[0] - centre).norm_sq();
        let e0 = energy(&store);
        let dt = 0.01;
        for _ in 0..10_000 {
            velocity_verlet_step(&mut store, &bbox, dt, spring);
        }
        let e1 = energy(&store);
        assert!(((e1 - e0) / e0).abs() < 1e-4, "harmonic energy drift: {e0} → {e1}");
        // And the oscillator actually oscillates (period 2π, 100 s ≈ 15.9 periods).
        assert!((store.positions()[0] - centre).norm() <= 1.0 + 1e-6);
    }

    #[test]
    fn free_particle_moves_ballistically() {
        let bbox = SimulationBox::cubic(10.0);
        let mut store = AtomStore::single_species();
        store.push(0, Species::DEFAULT, Vec3::splat(5.0), Vec3::new(1.0, 0.0, 0.0));
        for _ in 0..100 {
            velocity_verlet_step(&mut store, &bbox, 0.01, |_| {});
        }
        // Travelled 1.0 in x.
        assert!((store.positions()[0].x - 6.0).abs() < 1e-9);
    }

    #[test]
    fn drift_wraps_positions() {
        let bbox = SimulationBox::cubic(10.0);
        let mut store = AtomStore::single_species();
        store.push(0, Species::DEFAULT, Vec3::new(9.95, 5.0, 5.0), Vec3::new(10.0, 0.0, 0.0));
        velocity_verlet_step(&mut store, &bbox, 0.01, |_| {});
        assert!(bbox.contains(store.positions()[0]));
        assert!(store.positions()[0].x < 1.0);
    }

    #[test]
    fn berendsen_moves_temperature_toward_target() {
        let mut store = AtomStore::single_species();
        let mut push = |i: u64, v: Vec3| store.push(i, Species::DEFAULT, Vec3::ZERO, v);
        push(0, Vec3::new(1.0, 0.0, 0.0));
        push(1, Vec3::new(-1.0, 2.0, 0.0));
        push(2, Vec3::new(0.0, -2.0, 3.0));
        push(3, Vec3::new(0.0, 0.0, -3.0));
        let t0 = store.temperature();
        let target = t0 * 4.0;
        berendsen_rescale(&mut store, target, 0.5);
        let t1 = store.temperature();
        assert!(t1 > t0 && t1 < target, "t0={t0}, t1={t1}, target={target}");
        // Full coupling reaches the target exactly.
        berendsen_rescale(&mut store, target, 1.0);
        assert!((store.temperature() - target).abs() < 1e-10);
    }
}
