//! Shared-memory parallel substrate: a persistent worker pool plus reusable
//! force accumulators.
//!
//! The force engine used to fold over cells with rayon, allocating a fresh
//! `vec![Vec3::ZERO; n]` per thread-task in the fold identity and reducing
//! O(N) vectors pairwise — the accumulation anti-pattern cell-decomposition
//! MD literature warns about. This module replaces it with:
//!
//! * [`ThreadPool`] — a small persistent pool. Dispatching a job performs no
//!   heap allocation: the caller publishes a raw pointer to a borrowed
//!   `dyn Fn(usize)` closure under a mutex, bumps an epoch, and blocks (while
//!   cooperating on the task counter) until every worker has drained the
//!   shared atomic task queue, so the borrow never escapes the call frame.
//! * [`ForceAccumulator`] / [`AccumulatorPool`] — per-lane scratch buffers
//!   that are *never* bulk-zeroed between uses. A per-slot stamp array marks
//!   which entries belong to the current use epoch; the first touch of a slot
//!   overwrites instead of accumulating and records the slot in a dirty list,
//!   so both the merge into the global force array and the logical reset are
//!   O(touched), not O(N). The pool hands buffers out lane-by-lane and counts
//!   every allocation or growth event, which lets tests assert that steady-
//!   state steps allocate nothing.

use crate::engine::VisitStats;
use sc_geom::Vec3;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Raw pointer to the borrowed job closure. The `'static` bound is a lie we
/// tell the type system; [`ThreadPool::run`] guarantees the pointee outlives
/// every dereference by blocking until all workers finish the epoch.
type Job = *const (dyn Fn(usize) + Sync + 'static);

struct JobSlot(Job);
// SAFETY: the pointee is `Sync` and only dereferenced while the publishing
// caller is blocked inside `run`, keeping the borrow alive.
unsafe impl Send for JobSlot {}

struct PoolState {
    job: Option<JobSlot>,
    tasks: usize,
    epoch: u64,
    running: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
    next: AtomicUsize,
}

/// Persistent barrier-synced worker pool with zero-allocation job dispatch.
///
/// `lanes` is the number of parallel execution lanes: the calling thread is
/// always lane 0 and `lanes − 1` workers are spawned. With one lane the pool
/// degenerates to inline serial execution (no threads, no synchronisation).
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl ThreadPool {
    /// Builds a pool with `lanes` parallel lanes (clamped to ≥ 1).
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                tasks: 0,
                epoch: 0,
                running: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let workers = (1..lanes)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sc-md-lane-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers, lanes }
    }

    /// Pool sized to the host's available parallelism.
    pub fn auto() -> Self {
        Self::new(std::thread::available_parallelism().map(usize::from).unwrap_or(1))
    }

    /// Number of parallel lanes (callers partition work into this many
    /// tasks for a statically balanced split).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Calls `job(i)` exactly once for every `i in 0..tasks`, distributing
    /// the calls over all lanes. Task indices are claimed dynamically from a
    /// shared counter; the caller participates as lane 0 and returns only
    /// after every task has finished. Performs no heap allocation.
    pub fn run(&self, tasks: usize, job: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() || tasks <= 1 {
            for i in 0..tasks {
                job(i);
            }
            return;
        }
        // SAFETY: extends the borrow to 'static for storage only; `run`
        // blocks below until `running == 0`, so no worker touches the
        // pointer after this frame ends.
        let job_ptr: Job = unsafe { std::mem::transmute(job as *const (dyn Fn(usize) + Sync)) };
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.running == 0 && st.job.is_none());
            // The counter reset is ordered before the workers' epoch read by
            // the mutex release/acquire pair.
            self.shared.next.store(0, Ordering::Relaxed);
            st.job = Some(JobSlot(job_ptr));
            st.tasks = tasks;
            st.running = self.workers.len();
            st.epoch = st.epoch.wrapping_add(1);
            self.shared.work.notify_all();
        }
        loop {
            let i = self.shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            job(i);
        }
        let mut st = self.shared.state.lock().unwrap();
        while st.running > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, tasks) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break (st.job.as_ref().expect("job set with epoch").0, st.tasks);
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // SAFETY: the publishing caller blocks until `running` hits zero,
        // which happens strictly after the last dereference below.
        let f = unsafe { &*job };
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            f(i);
        }
        let mut st = shared.state.lock().unwrap();
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_one();
        }
    }
}

/// Reusable per-lane force/energy/virial scratch with dirty-slot tracking.
///
/// Slots are stamped with the accumulator's use epoch: the first [`add`] to
/// a slot in an epoch *overwrites* the stale value and records the slot in
/// the dirty list, so neither acquisition nor release ever zeroes the O(N)
/// force array. [`merge_into`] and the reset on release both walk only the
/// dirty list.
///
/// [`add`]: ForceAccumulator::add
/// [`merge_into`]: ForceAccumulator::merge_into
pub struct ForceAccumulator {
    forces: Vec<Vec3>,
    stamp: Vec<u32>,
    dirty: Vec<u32>,
    epoch: u32,
    /// Accumulated potential energy for this lane.
    pub energy: f64,
    /// Accumulated virial for this lane.
    pub virial: f64,
    /// Seconds spent inside potential evaluations (only filled when the
    /// caller times evaluations; summed per-lane CPU time, not wall time).
    pub eval_s: f64,
    /// Total seconds this lane spent in its task (enumeration + evaluation).
    pub lane_s: f64,
    /// Tuple-search statistics for this lane.
    pub stats: VisitStats,
}

impl Default for ForceAccumulator {
    fn default() -> Self {
        Self::with_len(0)
    }
}

impl ForceAccumulator {
    /// Standalone accumulator covering `n` slots (outside any pool — e.g.
    /// one persistent scratch buffer per distributed rank).
    pub fn with_len(n: usize) -> Self {
        ForceAccumulator {
            forces: vec![Vec3::ZERO; n],
            stamp: vec![0; n],
            dirty: Vec::new(),
            epoch: 1,
            energy: 0.0,
            virial: 0.0,
            eval_s: 0.0,
            lane_s: 0.0,
            stats: VisitStats::default(),
        }
    }

    /// Adds `f` to `slot`, first-touch-overwriting stale contents.
    #[inline]
    pub fn add(&mut self, slot: u32, f: Vec3) {
        let s = slot as usize;
        if self.stamp[s] == self.epoch {
            self.forces[s] += f;
        } else {
            self.stamp[s] = self.epoch;
            self.forces[s] = f;
            self.dirty.push(slot);
        }
    }

    /// Subtracts `f` from `slot` (convenience for action–reaction pairs).
    #[inline]
    pub fn sub(&mut self, slot: u32, f: Vec3) {
        self.add(slot, -f);
    }

    /// Number of distinct slots touched this epoch.
    pub fn touched(&self) -> usize {
        self.dirty.len()
    }

    /// Adds every touched slot into `out` (dirty-list order, deterministic
    /// for a fixed task → lane assignment).
    pub fn merge_into(&self, out: &mut [Vec3]) {
        for &slot in &self.dirty {
            out[slot as usize] += self.forces[slot as usize];
        }
    }

    /// Logical clear: bumps the epoch (invalidating every stamped slot at
    /// once) and resets the scalar tallies. O(1) except on epoch wrap.
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.dirty.clear();
        self.energy = 0.0;
        self.virial = 0.0;
        self.eval_s = 0.0;
        self.lane_s = 0.0;
        self.stats = VisitStats::default();
    }

    /// Grows the buffer to cover at least `n` slots, returning whether a
    /// reallocation happened. Never shrinks.
    pub fn ensure_len(&mut self, n: usize) -> bool {
        if self.forces.len() >= n {
            return false;
        }
        self.forces.resize(n, Vec3::ZERO);
        self.stamp.resize(n, 0);
        true
    }
}

/// Pool of [`ForceAccumulator`]s shared by all force-kernel invocations of a
/// simulation. Counts allocation events so tests can assert the steady state
/// allocates nothing.
#[derive(Default)]
pub struct AccumulatorPool {
    free: Mutex<Vec<ForceAccumulator>>,
    alloc_events: AtomicU64,
}

impl AccumulatorPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a buffer covering at least `n` slots, reusing a pooled one when
    /// possible. Creating or growing a buffer counts as an allocation event.
    pub fn acquire(&self, n: usize) -> ForceAccumulator {
        let reused = self.free.lock().unwrap().pop();
        match reused {
            Some(mut acc) => {
                if acc.ensure_len(n) {
                    self.alloc_events.fetch_add(1, Ordering::Relaxed);
                }
                acc
            }
            None => {
                self.alloc_events.fetch_add(1, Ordering::Relaxed);
                ForceAccumulator::with_len(n)
            }
        }
    }

    /// Resets `acc` and returns it to the pool.
    pub fn release(&self, mut acc: ForceAccumulator) {
        acc.reset();
        self.free.lock().unwrap().push(acc);
    }

    /// Number of buffer creations + growths since construction. Flat across
    /// steps ⇔ the steady state performs no scratch allocation.
    pub fn allocation_events(&self) -> u64 {
        self.alloc_events.load(Ordering::Relaxed)
    }
}

/// Copyable raw-pointer wrapper for handing a disjointly-indexed mutable
/// buffer to pool lanes. Callers must guarantee each element is accessed by
/// at most one lane.
#[derive(Clone, Copy)]
pub struct LaneSlots<T>(*mut T);
// SAFETY: lanes index disjoint elements; synchronisation is provided by the
// pool's dispatch/completion protocol.
unsafe impl<T: Send> Send for LaneSlots<T> {}
unsafe impl<T: Send> Sync for LaneSlots<T> {}

impl<T> LaneSlots<T> {
    /// Wraps the base pointer of a buffer whose elements the lanes index
    /// disjointly.
    pub fn new(base: *mut T) -> Self {
        LaneSlots(base)
    }

    /// Pointer to element `i`. Accessing it through a method (rather than a
    /// public field) also keeps closures capturing the whole `Sync` wrapper
    /// instead of the bare pointer under RFC 2229 disjoint capture.
    ///
    /// # Safety
    /// `i` must be in bounds of the buffer this was created from, and no two
    /// lanes may use the same index concurrently.
    pub unsafe fn get(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_covers_every_task_exactly_once() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.lanes(), 4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        for round in 0..50 {
            pool.run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), round + 1, "task {i}");
            }
        }
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let mut sum = 0u64;
        let cell = std::sync::Mutex::new(&mut sum);
        pool.run(10, &|i| {
            **cell.lock().unwrap() += i as u64;
        });
        assert_eq!(sum, 45);
    }

    #[test]
    fn accumulator_first_touch_overwrites_stale_state() {
        let pool = AccumulatorPool::new();
        let mut acc = pool.acquire(8);
        acc.add(3, Vec3::new(1.0, 0.0, 0.0));
        acc.add(3, Vec3::new(1.0, 0.0, 0.0));
        acc.add(5, Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(acc.touched(), 2);
        let mut out = vec![Vec3::ZERO; 8];
        acc.merge_into(&mut out);
        assert_eq!(out[3], Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(out[5], Vec3::new(0.0, 2.0, 0.0));
        pool.release(acc);
        // Re-acquired buffer sees clean slots without any bulk zeroing.
        let mut acc = pool.acquire(8);
        acc.add(3, Vec3::new(0.5, 0.0, 0.0));
        let mut out2 = vec![Vec3::ZERO; 8];
        acc.merge_into(&mut out2);
        assert_eq!(out2[3], Vec3::new(0.5, 0.0, 0.0));
        assert_eq!(pool.allocation_events(), 1, "reuse must not allocate");
    }

    #[test]
    fn pool_grows_buffers_and_counts_it() {
        let pool = AccumulatorPool::new();
        let acc = pool.acquire(4);
        pool.release(acc);
        let acc = pool.acquire(16);
        assert_eq!(pool.allocation_events(), 2);
        pool.release(acc);
        let acc = pool.acquire(8);
        assert_eq!(pool.allocation_events(), 2, "shrinking reuse is free");
        pool.release(acc);
    }

    #[test]
    fn parallel_accumulation_matches_serial() {
        let n = 256usize;
        let tasks = 64usize;
        let pool = ThreadPool::new(3);
        let accs = AccumulatorPool::new();
        let mut lanes: Vec<ForceAccumulator> = (0..pool.lanes()).map(|_| accs.acquire(n)).collect();
        let slots = LaneSlots::new(lanes.as_mut_ptr());
        let lanes_n = pool.lanes();
        pool.run(lanes_n, &move |t| {
            let acc = unsafe { &mut *slots.get(t) };
            let lo = t * tasks / lanes_n;
            let hi = (t + 1) * tasks / lanes_n;
            for task in lo..hi {
                for k in 0..n {
                    if (task + k) % 3 == 0 {
                        acc.add(k as u32, Vec3::new(1.0, -1.0, 0.5));
                        acc.energy += 1.0;
                    }
                }
            }
        });
        let mut out = vec![Vec3::ZERO; n];
        let mut energy = 0.0;
        for acc in &lanes {
            acc.merge_into(&mut out);
            energy += acc.energy;
        }
        for acc in lanes.drain(..) {
            accs.release(acc);
        }
        let mut expect = vec![Vec3::ZERO; n];
        let mut expect_e = 0.0;
        for task in 0..tasks {
            for (k, slot) in expect.iter_mut().enumerate() {
                if (task + k) % 3 == 0 {
                    *slot += Vec3::new(1.0, -1.0, 0.5);
                    expect_e += 1.0;
                }
            }
        }
        assert_eq!(out, expect);
        assert_eq!(energy, expect_e);
    }
}
