//! Typed configuration errors for the simulation builder.

use std::fmt;

/// Why a [`crate::SimulationBuilder`] refused to build.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// No potential term was supplied.
    NoTerms,
    /// Hybrid-MD requires a pair potential (its Verlet list is built from
    /// the pair cutoff).
    HybridNeedsPair,
    /// An n ≥ 3 cutoff exceeds the pair cutoff, so Hybrid's pair list
    /// cannot cover the term.
    CutoffOrder {
        /// The offending tuple order.
        n: usize,
        /// Its cutoff.
        rcut_n: f64,
        /// The pair cutoff it exceeds.
        rcut2: f64,
    },
    /// The periodic box cannot host the cell lattice a term needs (fewer
    /// than 3 cutoffs per axis, or reach-k offsets would alias through the
    /// wrap).
    BoxTooSmall {
        /// The tuple order whose lattice failed.
        n: usize,
        /// The term's cutoff.
        rcut: f64,
        /// The configured cell subdivision.
        subdivision: i32,
    },
    /// The integration timestep is not a positive finite number.
    BadTimestep(
        /// The offending timestep.
        f64,
    ),
    /// An initial position or velocity is NaN or infinite.
    NonFiniteAtom {
        /// Store index of the offending atom.
        index: usize,
        /// Which component was non-finite (`"position"` or `"velocity"`).
        what: &'static str,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoTerms => {
                write!(f, "simulation needs at least one potential term")
            }
            BuildError::HybridNeedsPair => {
                write!(f, "Hybrid-MD requires a pair potential (the Verlet list is built from it)")
            }
            BuildError::CutoffOrder { n, rcut_n, rcut2 } => {
                write!(f, "Hybrid-MD needs rcut{n} ({rcut_n}) ≤ rcut2 ({rcut2})")
            }
            BuildError::BoxTooSmall { n, rcut, subdivision } => write!(
                f,
                "box too small for the n={n} lattice with cutoff {rcut} (subdivision {subdivision})"
            ),
            BuildError::BadTimestep(dt) => {
                write!(f, "timestep {dt} must be positive and finite")
            }
            BuildError::NonFiniteAtom { index, what } => {
                write!(f, "atom {index} has a non-finite {what}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(BuildError::NoTerms.to_string().contains("potential term"));
        assert!(BuildError::HybridNeedsPair.to_string().contains("pair"));
        assert!(BuildError::CutoffOrder { n: 3, rcut_n: 2.0, rcut2: 1.0 }
            .to_string()
            .contains("rcut3"));
        assert!(BuildError::BoxTooSmall { n: 2, rcut: 2.5, subdivision: 1 }
            .to_string()
            .contains("too small"));
        assert!(BuildError::BadTimestep(-0.5).to_string().contains("positive"));
        assert!(BuildError::NonFiniteAtom { index: 4, what: "velocity" }
            .to_string()
            .contains("atom 4"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(BuildError::NoTerms);
        assert!(!e.to_string().is_empty());
    }
}
