//! Typed configuration errors for the simulation builder, and the unified
//! top-level [`Error`] every binary can funnel a whole run through.

use crate::checkpoint::CheckpointError;
use crate::io::XyzError;
use crate::supervisor::SupervisorError;
use std::fmt;

/// Why a [`crate::SimulationBuilder`] refused to build.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// No potential term was supplied.
    NoTerms,
    /// Hybrid-MD requires a pair potential (its Verlet list is built from
    /// the pair cutoff).
    HybridNeedsPair,
    /// An n ≥ 3 cutoff exceeds the pair cutoff, so Hybrid's pair list
    /// cannot cover the term.
    CutoffOrder {
        /// The offending tuple order.
        n: usize,
        /// Its cutoff.
        rcut_n: f64,
        /// The pair cutoff it exceeds.
        rcut2: f64,
    },
    /// The periodic box cannot host the cell lattice a term needs (fewer
    /// than 3 cutoffs per axis, or reach-k offsets would alias through the
    /// wrap).
    BoxTooSmall {
        /// The tuple order whose lattice failed.
        n: usize,
        /// The term's cutoff.
        rcut: f64,
        /// The configured cell subdivision.
        subdivision: i32,
    },
    /// A scalar configuration field carries an invalid value. `field` names
    /// the offending [`crate::RuntimeConfig`] / builder knob (`"timestep"`,
    /// `"verlet_skin"`, …) so callers can report exactly what to fix.
    Config {
        /// The offending configuration field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An initial position or velocity is NaN or infinite.
    NonFiniteAtom {
        /// Store index of the offending atom.
        index: usize,
        /// Which component was non-finite (`"position"` or `"velocity"`).
        what: &'static str,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoTerms => {
                write!(f, "simulation needs at least one potential term")
            }
            BuildError::HybridNeedsPair => {
                write!(f, "Hybrid-MD requires a pair potential (the Verlet list is built from it)")
            }
            BuildError::CutoffOrder { n, rcut_n, rcut2 } => {
                write!(f, "Hybrid-MD needs rcut{n} ({rcut_n}) ≤ rcut2 ({rcut2})")
            }
            BuildError::BoxTooSmall { n, rcut, subdivision } => write!(
                f,
                "box too small for the n={n} lattice with cutoff {rcut} (subdivision {subdivision})"
            ),
            BuildError::Config { field, value } => {
                write!(f, "invalid {field} {value}: must be positive and finite")
            }
            BuildError::NonFiniteAtom { index, what } => {
                write!(f, "atom {index} has a non-finite {what}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Why a command line could not be interpreted. Produced by the `scmd`
/// front-end's flag parser and funnelled through [`Error::Cli`], so a
/// malformed invocation exits through the same typed chain as every other
/// failure — naming the offending flag instead of panicking into a generic
/// usage dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The first argument is not a known subcommand.
    UnknownSubcommand(
        /// The unrecognised subcommand as typed.
        String,
    ),
    /// No subcommand was given at all.
    MissingSubcommand,
    /// A positional argument appeared where only `--flag value` pairs are
    /// accepted.
    UnexpectedArg(
        /// The offending argument as typed.
        String,
    ),
    /// A `--flag` was given without the value it requires.
    MissingValue(
        /// The flag name (without the leading dashes).
        String,
    ),
    /// A flag's value failed to parse as the type the flag expects.
    BadFlagValue {
        /// The flag name (without the leading dashes).
        flag: String,
        /// The rejected value as typed.
        value: String,
        /// What the flag expects (e.g. `"a positive integer"`).
        expected: &'static str,
    },
    /// A flag's value is not in the flag's closed set of alternatives.
    UnknownValue {
        /// The flag name (without the leading dashes).
        flag: String,
        /// The rejected value as typed.
        value: String,
        /// The accepted alternatives, for the error message.
        allowed: &'static str,
    },
    /// A flag that the subcommand requires was not supplied.
    MissingFlag(
        /// The flag name (without the leading dashes).
        String,
    ),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownSubcommand(cmd) => write!(f, "unknown subcommand {cmd:?}"),
            CliError::MissingSubcommand => write!(f, "missing subcommand"),
            CliError::UnexpectedArg(arg) => {
                write!(f, "unexpected argument {arg:?} (expected --flag value pairs)")
            }
            CliError::MissingValue(flag) => write!(f, "--{flag} needs a value"),
            CliError::BadFlagValue { flag, value, expected } => {
                write!(f, "bad value for --{flag}: {value:?} (expected {expected})")
            }
            CliError::UnknownValue { flag, value, allowed } => {
                write!(f, "unknown value for --{flag}: {value:?} (expected {allowed})")
            }
            CliError::MissingFlag(flag) => write!(f, "missing required flag --{flag}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The unified top-level error of the MD stack.
///
/// Every fallible entry point converts into this via `From`, so a binary's
/// whole setup-run-output pipeline is one `?`-chain:
/// build ([`BuildError`]), trajectory I/O ([`XyzError`], [`std::io::Error`]),
/// checkpointing ([`CheckpointError`]), supervised recovery
/// ([`SupervisorError`]), and the distributed executors' setup/runtime
/// failures (type-erased behind [`Error::Setup`] / [`Error::Runtime`];
/// `sc-parallel` provides the `From` impls, keeping the crate layering
/// acyclic). See DESIGN.md §6 for the stability contract.
#[derive(Debug)]
pub enum Error {
    /// The command line itself was malformed (see [`CliError`]).
    Cli(CliError),
    /// Simulation configuration was rejected at build time.
    Build(BuildError),
    /// XYZ trajectory I/O failed.
    Xyz(XyzError),
    /// Checkpoint save/load failed.
    Checkpoint(CheckpointError),
    /// The supervisor exhausted its recovery budget.
    Supervisor(SupervisorError),
    /// A distributed executor rejected its configuration (e.g.
    /// `sc-parallel`'s `SetupError`).
    Setup(Box<dyn std::error::Error + Send + Sync>),
    /// A runtime fault escaped recovery (e.g. `sc-parallel`'s
    /// `RuntimeError`).
    Runtime(Box<dyn std::error::Error + Send + Sync>),
    /// Plain I/O failure (metrics output, trajectory files, …).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Cli(e) => write!(f, "cli: {e}"),
            Error::Build(e) => write!(f, "build: {e}"),
            Error::Xyz(e) => write!(f, "xyz: {e}"),
            Error::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            Error::Supervisor(e) => write!(f, "supervisor: {e}"),
            Error::Setup(e) => write!(f, "setup: {e}"),
            Error::Runtime(e) => write!(f, "runtime: {e}"),
            Error::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Cli(e) => Some(e),
            Error::Build(e) => Some(e),
            Error::Xyz(e) => Some(e),
            Error::Checkpoint(e) => Some(e),
            Error::Supervisor(e) => Some(e),
            Error::Setup(e) | Error::Runtime(e) => Some(e.as_ref()),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Error::Build(e)
    }
}

impl From<CliError> for Error {
    fn from(e: CliError) -> Self {
        Error::Cli(e)
    }
}

impl From<XyzError> for Error {
    fn from(e: XyzError) -> Self {
        Error::Xyz(e)
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Self {
        Error::Checkpoint(e)
    }
}

impl From<SupervisorError> for Error {
    fn from(e: SupervisorError) -> Self {
        Error::Supervisor(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(BuildError::NoTerms.to_string().contains("potential term"));
        assert!(BuildError::HybridNeedsPair.to_string().contains("pair"));
        assert!(BuildError::CutoffOrder { n: 3, rcut_n: 2.0, rcut2: 1.0 }
            .to_string()
            .contains("rcut3"));
        assert!(BuildError::BoxTooSmall { n: 2, rcut: 2.5, subdivision: 1 }
            .to_string()
            .contains("too small"));
        assert!(BuildError::NonFiniteAtom { index: 4, what: "velocity" }
            .to_string()
            .contains("atom 4"));
    }

    #[test]
    fn config_errors_carry_the_field_name() {
        let e = BuildError::Config { field: "timestep", value: -0.5 };
        assert!(e.to_string().contains("timestep"));
        assert!(e.to_string().contains("positive"));
        let e = BuildError::Config { field: "verlet_skin", value: f64::NAN };
        assert!(e.to_string().contains("verlet_skin"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(BuildError::NoTerms);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn cli_errors_name_the_offending_flag() {
        let e = CliError::BadFlagValue {
            flag: "steps".into(),
            value: "lots".into(),
            expected: "a positive integer",
        };
        assert!(e.to_string().contains("--steps"), "{e}");
        assert!(e.to_string().contains("lots"), "{e}");
        let e = CliError::UnknownValue {
            flag: "method".into(),
            value: "magic".into(),
            allowed: "sc|fs|hybrid",
        };
        assert!(e.to_string().contains("--method"), "{e}");
        assert!(e.to_string().contains("sc|fs|hybrid"), "{e}");
        assert!(CliError::MissingValue("out".into()).to_string().contains("--out"));
        assert!(CliError::MissingFlag("spec".into()).to_string().contains("--spec"));
        let top: Error = CliError::UnknownSubcommand("frobnicate".into()).into();
        assert!(top.to_string().starts_with("cli:"), "{top}");
        assert!(std::error::Error::source(&top).is_some());
    }

    #[test]
    fn unified_error_wraps_and_chains() {
        let e: Error = BuildError::NoTerms.into();
        assert!(e.to_string().starts_with("build:"));
        assert!(std::error::Error::source(&e).is_some());
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        let e = Error::Setup("boxed setup failure".into());
        assert!(e.to_string().starts_with("setup:"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
