//! Deterministic workload builders for examples, tests, and benchmarks.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sc_cell::{AtomStore, Species};
use sc_geom::{SimulationBox, Vec3};

/// Specification of a cubic crystal workload.
#[derive(Debug, Clone, Copy)]
pub struct LatticeSpec {
    /// Unit cells per axis.
    pub cells: usize,
    /// Lattice constant (edge of one unit cell).
    pub a: f64,
}

impl LatticeSpec {
    /// A cubic lattice of `cells³` unit cells with lattice constant `a`.
    pub fn cubic(cells: usize, a: f64) -> Self {
        assert!(cells >= 1 && a > 0.0);
        LatticeSpec { cells, a }
    }

    /// Box edge length.
    pub fn box_edge(&self) -> f64 {
        self.cells as f64 * self.a
    }
}

/// Builds an FCC crystal of single-species atoms (4 per unit cell) with
/// small Gaussian-ish velocity noise of scale `v_scale`, drift removed —
/// the standard Lennard-Jones starting configuration.
///
/// Returns the store and its periodic box.
pub fn build_fcc_lattice(
    spec: &LatticeSpec,
    v_scale: f64,
    seed: u64,
) -> (AtomStore, SimulationBox) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut store = AtomStore::single_species();
    let bbox = SimulationBox::cubic(spec.box_edge());
    let basis = [
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(0.5, 0.5, 0.0),
        Vec3::new(0.5, 0.0, 0.5),
        Vec3::new(0.0, 0.5, 0.5),
    ];
    let mut id = 0u64;
    for cx in 0..spec.cells {
        for cy in 0..spec.cells {
            for cz in 0..spec.cells {
                let corner = Vec3::new(cx as f64, cy as f64, cz as f64) * spec.a;
                for b in basis {
                    let r = corner + b * spec.a;
                    let v = Vec3::new(
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ) * v_scale;
                    store.push(id, Species::DEFAULT, bbox.wrap(r), v);
                    id += 1;
                }
            }
        }
    }
    store.remove_drift();
    (store, bbox)
}

/// Builds a β-cristobalite-like SiO₂ configuration: Si on a diamond
/// lattice, O at the midpoint of every Si–Si nearest-neighbour bond —
/// giving the 2:1 O:Si stoichiometry and tetrahedral O–Si–O angles the
/// Vashishta 3-body term expects. Velocities are small random noise with
/// drift removed.
///
/// `cells` is the number of conventional diamond cells per axis and `a` the
/// cell constant (≈ 7.16 Å gives silica-like density). Returns the store
/// (masses in `sc_potential`-style Si/O ordering: species 0 = Si,
/// 1 = O) and its box.
pub fn build_silica_like(
    cells: usize,
    a: f64,
    masses: [f64; 2],
    v_scale: f64,
    seed: u64,
) -> (AtomStore, SimulationBox) {
    assert!(cells >= 1 && a > 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut store = AtomStore::new(vec![masses[0], masses[1]]);
    let bbox = SimulationBox::cubic(cells as f64 * a);
    // Diamond lattice = FCC + basis (¼,¼,¼).
    let fcc = [
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(0.5, 0.5, 0.0),
        Vec3::new(0.5, 0.0, 0.5),
        Vec3::new(0.0, 0.5, 0.5),
    ];
    let mut si_sites: Vec<Vec3> = Vec::new();
    for cx in 0..cells {
        for cy in 0..cells {
            for cz in 0..cells {
                let corner = Vec3::new(cx as f64, cy as f64, cz as f64) * a;
                for b in fcc {
                    si_sites.push(corner + b * a);
                    si_sites.push(corner + (b + Vec3::splat(0.25)) * a);
                }
            }
        }
    }
    let mut id = 0u64;
    let rand_v = |rng: &mut ChaCha8Rng| {
        Vec3::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            * v_scale
    };
    for &r in &si_sites {
        store.push(id, Species::SI, bbox.wrap(r), rand_v(&mut rng));
        id += 1;
    }
    // O at each Si→(+¼,+¼,+¼)-type bond midpoint: every second diamond site
    // has 4 bonds along (±¼,±¼,±¼)·a; place O on the 4 bonds emanating from
    // the FCC sublattice sites to count each bond once.
    for cx in 0..cells {
        for cy in 0..cells {
            for cz in 0..cells {
                let corner = Vec3::new(cx as f64, cy as f64, cz as f64) * a;
                for b in fcc {
                    let si = corner + b * a;
                    for d in [
                        Vec3::new(0.25, 0.25, 0.25),
                        Vec3::new(0.25, -0.25, -0.25),
                        Vec3::new(-0.25, 0.25, -0.25),
                        Vec3::new(-0.25, -0.25, 0.25),
                    ] {
                        let o = si + d * (a * 0.5);
                        store.push(id, Species::O, bbox.wrap(o), rand_v(&mut rng));
                        id += 1;
                    }
                }
            }
        }
    }
    store.remove_drift();
    (store, bbox)
}

/// Draws Maxwell-Boltzmann velocities at temperature `t` (k_B = 1) via
/// Box-Muller, removes the centre-of-mass drift, and rescales so the
/// instantaneous temperature is exactly `t` — the standard MD velocity
/// initialization.
pub fn thermalize(store: &mut AtomStore, t: f64, seed: u64) {
    assert!(t >= 0.0);
    if store.is_empty() || t == 0.0 {
        return;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let gauss = move |rng: &mut ChaCha8Rng| -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    for i in 0..store.len() {
        let sigma = (t / store.mass(i as u32)).sqrt();
        store.velocities_mut()[i] =
            Vec3::new(sigma * gauss(&mut rng), sigma * gauss(&mut rng), sigma * gauss(&mut rng));
    }
    store.remove_drift();
    store.rescale_to_temperature(t);
}

/// A clustered (inhomogeneous) single-species gas: `n` atoms distributed
/// round-robin over `clusters` Gaussian blobs whose centres are drawn
/// uniformly in a cubic box of edge `box_l`, with per-axis standard
/// deviation `spread`. This is the strongly non-uniform density profile of
/// Ferrell & Bertschinger's inhomogeneous-distribution study (PAPERS.md) —
/// the workload that breaks the uniform-density assumption behind the
/// paper's Lemma 5 cost estimates and stresses per-rank load balance.
/// Deterministic per seed; velocities are zero (thermalize separately).
///
/// Overlapping draws are re-sampled with a minimum separation of 0.8 so the
/// configuration is steep but integrable with an LJ-like pair term.
pub fn build_clustered_gas(
    n: usize,
    box_l: f64,
    clusters: usize,
    spread: f64,
    seed: u64,
) -> (AtomStore, SimulationBox) {
    assert!(n >= 1 && clusters >= 1 && box_l > 0.0 && spread > 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bbox = SimulationBox::cubic(box_l);
    let mut store = AtomStore::single_species();
    let centers: Vec<Vec3> = (0..clusters)
        .map(|_| {
            Vec3::new(
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
            )
        })
        .collect();
    let gauss = move |rng: &mut ChaCha8Rng| -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let min_sep_sq = 0.8 * 0.8;
    let mut placed: Vec<Vec3> = Vec::with_capacity(n);
    for id in 0..n {
        let center = centers[id % clusters];
        // Rejection-sample a position at least min_sep from every previous
        // atom; after a bounded number of tries fall back to a uniform draw
        // (keeps dense blobs from looping forever while staying
        // deterministic).
        let mut r = Vec3::ZERO;
        let mut ok = false;
        for attempt in 0..64 {
            r = if attempt < 48 {
                bbox.wrap(
                    center + Vec3::new(gauss(&mut rng), gauss(&mut rng), gauss(&mut rng)) * spread,
                )
            } else {
                Vec3::new(
                    rng.gen_range(0.0..box_l),
                    rng.gen_range(0.0..box_l),
                    rng.gen_range(0.0..box_l),
                )
            };
            if placed.iter().all(|&p| bbox.dist_sq(r, p) >= min_sep_sq) {
                ok = true;
                break;
            }
        }
        assert!(ok, "clustered gas too dense: could not place atom {id} of {n}");
        placed.push(r);
        store.push(id as u64, Species::DEFAULT, r, Vec3::ZERO);
    }
    (store, bbox)
}

/// A uniform random single-species gas of `n` atoms in a cubic box of edge
/// `box_l` — the workload for enumeration correctness tests and Fig. 7
/// (uniform atom distribution, as the paper's Lemma 5 assumes).
pub fn random_gas(n: usize, box_l: f64, seed: u64) -> (AtomStore, SimulationBox) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bbox = SimulationBox::cubic(box_l);
    let mut store = AtomStore::single_species();
    for id in 0..n {
        let r = Vec3::new(
            rng.gen_range(0.0..box_l),
            rng.gen_range(0.0..box_l),
            rng.gen_range(0.0..box_l),
        );
        store.push(id as u64, Species::DEFAULT, r, Vec3::ZERO);
    }
    (store, bbox)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcc_counts_and_box() {
        let spec = LatticeSpec::cubic(3, 1.6);
        let (store, bbox) = build_fcc_lattice(&spec, 0.1, 1);
        assert_eq!(store.len(), 4 * 27);
        assert!((bbox.lengths().x - 4.8).abs() < 1e-12);
        // Zero net momentum after drift removal.
        assert!(store.net_momentum().norm() < 1e-10);
        // All positions inside the box.
        assert!(store.positions().iter().all(|&r| bbox.contains(r)));
    }

    #[test]
    fn fcc_is_deterministic_per_seed() {
        let spec = LatticeSpec::cubic(2, 1.6);
        let (a, _) = build_fcc_lattice(&spec, 0.1, 42);
        let (b, _) = build_fcc_lattice(&spec, 0.1, 42);
        let (c, _) = build_fcc_lattice(&spec, 0.1, 43);
        assert_eq!(a.velocities(), b.velocities());
        assert_ne!(a.velocities(), c.velocities());
    }

    #[test]
    fn silica_stoichiometry() {
        let (store, _) = build_silica_like(2, 7.16, [28.0855, 15.999], 0.01, 5);
        let n_si = store.species().iter().filter(|s| **s == Species::SI).count();
        let n_o = store.species().iter().filter(|s| **s == Species::O).count();
        assert_eq!(n_si, 8 * 8); // 8 diamond sites per cell × 2³ cells
        assert_eq!(n_o, 2 * n_si); // SiO₂
    }

    #[test]
    fn silica_bond_geometry() {
        // Every O must sit ~a·√3/8 from its two Si neighbours.
        let a = 7.16;
        let (store, bbox) = build_silica_like(2, a, [28.0855, 15.999], 0.0, 5);
        let bond = a * 0.25 * 3f64.sqrt() * 0.5;
        let si: Vec<Vec3> = store
            .positions()
            .iter()
            .zip(store.species())
            .filter(|(_, s)| **s == Species::SI)
            .map(|(r, _)| *r)
            .collect();
        for (r, s) in store.positions().iter().zip(store.species()) {
            if *s != Species::O {
                continue;
            }
            let close = si.iter().filter(|&&p| (bbox.dist_sq(*r, p)).sqrt() < bond + 1e-6).count();
            assert_eq!(close, 2, "O atom at {r:?} has {close} Si neighbours at bond length");
        }
    }

    #[test]
    fn thermalize_hits_temperature_with_zero_drift() {
        let (mut store, _) = build_silica_like(2, 7.16, [28.0855, 15.999], 0.0, 3);
        thermalize(&mut store, 0.05, 11);
        assert!((store.temperature() - 0.05).abs() < 1e-12);
        assert!(store.net_momentum().norm() < 1e-10);
        // Velocity components look Gaussian-ish: kinetic energy split
        // roughly equally across heavy and light species per equipartition.
        let mut ek = [0.0f64; 2];
        let mut n = [0usize; 2];
        for i in 0..store.len() {
            let s = store.species()[i].index();
            ek[s] += 0.5 * store.mass(i as u32) * store.velocities()[i].norm_sq();
            n[s] += 1;
        }
        let per_atom = [ek[0] / n[0] as f64, ek[1] / n[1] as f64];
        assert!(
            (per_atom[0] / per_atom[1] - 1.0).abs() < 0.3,
            "equipartition violated: {per_atom:?}"
        );
    }

    #[test]
    fn clustered_gas_is_inhomogeneous_and_deterministic() {
        let (store, bbox) = build_clustered_gas(120, 14.0, 3, 0.9, 7);
        assert_eq!(store.len(), 120);
        assert!(store.positions().iter().all(|&r| bbox.contains(r)));
        // Minimum separation respected (wrapped metric).
        let pos = store.positions();
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                assert!(bbox.dist_sq(pos[i], pos[j]) >= 0.8 * 0.8 - 1e-12);
            }
        }
        // Same seed reproduces bitwise; different seed differs.
        let (again, _) = build_clustered_gas(120, 14.0, 3, 0.9, 7);
        assert_eq!(store.positions(), again.positions());
        let (other, _) = build_clustered_gas(120, 14.0, 3, 0.9, 8);
        assert_ne!(store.positions(), other.positions());
        // Inhomogeneity: occupancy across an 8-octant split is far from
        // uniform (a uniform gas of 120 atoms has ~15 per octant).
        let half = 7.0;
        let mut occ = [0usize; 8];
        for &r in pos {
            let idx = (r.x >= half) as usize
                | ((r.y >= half) as usize) << 1
                | ((r.z >= half) as usize) << 2;
            occ[idx] += 1;
        }
        let (min, max) = (occ.iter().min().unwrap(), occ.iter().max().unwrap());
        assert!(max - min > 10, "expected clustered occupancy, got {occ:?}");
    }

    #[test]
    fn random_gas_in_box() {
        let (store, bbox) = random_gas(50, 4.0, 9);
        assert_eq!(store.len(), 50);
        assert!(store.positions().iter().all(|&r| bbox.contains(r)));
    }
}
