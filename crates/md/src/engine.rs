//! Cell-based n-tuple enumeration: the executable form of the paper's UCP
//! algorithm (Table 1) with chain-cutoff filtering.
//!
//! For each cell `c(q)` of the lattice and each path `p = (v0…v_{n-1})` of
//! the computation pattern, the visitor enumerates candidate tuples with the
//! k-th atom drawn from `c(q + v_k)`, filters them by the chain-cutoff
//! condition `r_{k,k+1} < r_cut-n` (Eq. 6), rejects repeated atoms, and
//! applies the reflective-duplicate guard so that **every undirected tuple
//! is visited exactly once** regardless of the pattern's redundancy:
//!
//! * [`Dedup::Collapsed`] — for R-COLLAPSE'd patterns (SC, HS): only
//!   *self-reflective* paths generate each tuple twice (once per direction),
//!   so only those paths carry the canonical-order guard.
//! * [`Dedup::Guarded`] — for redundant patterns (FS): every undirected
//!   tuple is generated twice (by a path and its reflective twin), so the
//!   guard applies to every path. This is exactly the "filtering out the
//!   unnecessary tuples" whose cost Eq. 12 charges to FS-MD.
//!
//! The guard compares **global atom ids**, not local slots, so the same
//! rule stays consistent when tuples straddle rank boundaries in the
//! distributed runtime: for a pair owned by two different ranks, exactly one
//! rank's directed generation passes the guard.
//!
//! Enumeration is generic over [`TupleSource`] — the serial engine runs it
//! on a periodic [`CellLattice`] (minimum-image displacements), the
//! distributed runtime on a rank-local ghost lattice (plain differences,
//! since ghosts are image-shifted into the local frame).

use sc_cell::{AtomStore, CellLattice};
use sc_core::{Path, Pattern};
use sc_geom::{IVec3, Vec3};

/// How reflective tuple duplicates are suppressed during enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dedup {
    /// The pattern has been R-COLLAPSE'd: guard only self-reflective paths.
    Collapsed,
    /// The pattern retains reflective twins (e.g. full shell): guard every
    /// path with the canonical-order test.
    Guarded,
}

/// A pattern compiled for enumeration: per-path offsets plus the
/// reflective-duplicate guard flag.
#[derive(Debug, Clone)]
pub struct PatternPlan {
    n: usize,
    paths: Vec<(Vec<IVec3>, bool)>,
}

impl PatternPlan {
    /// Compiles `pattern` for the given dedup mode.
    pub fn new(pattern: &Pattern, dedup: Dedup) -> Self {
        let paths = pattern
            .iter()
            .map(|p: &Path| {
                let guard = match dedup {
                    Dedup::Guarded => true,
                    Dedup::Collapsed => p.is_self_reflective(),
                };
                (p.offsets().to_vec(), guard)
            })
            .collect();
        PatternPlan { n: pattern.n(), paths }
    }

    /// The tuple order n.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the plan has no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Enumeration statistics: the search-cost observables of the paper's
/// Lemma 5 / Fig. 7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VisitStats {
    /// Candidate tuples examined (the size of the searched space `S_cell`).
    pub candidates: u64,
    /// Tuples that passed cutoff, distinctness, and guard — i.e. members of
    /// the filtered force set handed to the potential.
    pub accepted: u64,
}

impl VisitStats {
    /// Accumulates another stats record.
    pub fn merge(&mut self, o: VisitStats) {
        self.candidates += o.candidates;
        self.accepted += o.accepted;
    }
}

/// What tuple enumeration needs from the world: cell bins, positions,
/// global ids, and a displacement rule.
pub trait TupleSource {
    /// Atom slots binned into cell `q` (indexing convention is the
    /// implementor's — periodic for the global lattice, bounded-local for
    /// ghost lattices).
    fn atoms_in(&self, q: IVec3) -> &[u32];
    /// Position of slot `i`.
    fn pos(&self, i: u32) -> Vec3;
    /// Stable global id of slot `i` (guards compare these).
    fn gid(&self, i: u32) -> u64;
    /// Displacement `r_j − r_i` under this source's geometry.
    fn disp(&self, i: u32, j: u32) -> Vec3;
}

/// [`TupleSource`] over the global periodic lattice: minimum-image
/// displacements.
pub struct PeriodicSource<'a> {
    lat: &'a CellLattice,
    store: &'a AtomStore,
}

impl<'a> PeriodicSource<'a> {
    /// Wraps a lattice + store.
    pub fn new(lat: &'a CellLattice, store: &'a AtomStore) -> Self {
        PeriodicSource { lat, store }
    }
}

impl TupleSource for PeriodicSource<'_> {
    #[inline]
    fn atoms_in(&self, q: IVec3) -> &[u32] {
        self.lat.cell_atoms(q)
    }
    #[inline]
    fn pos(&self, i: u32) -> Vec3 {
        self.store.positions()[i as usize]
    }
    #[inline]
    fn gid(&self, i: u32) -> u64 {
        self.store.ids()[i as usize]
    }
    #[inline]
    fn disp(&self, i: u32, j: u32) -> Vec3 {
        self.lat.bbox().min_image(self.pos(i), self.pos(j))
    }
}

/// Visits every undirected pair generated by `plan` at base cell `q`.
///
/// The callback receives `(i, j, d_ij, r)` with `d_ij` the displacement
/// `r_j − r_i` and `r = |d_ij| < rcut`.
pub fn visit_pairs_in_cell_src(
    src: &impl TupleSource,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    mut f: impl FnMut(u32, u32, Vec3, f64),
) -> VisitStats {
    debug_assert_eq!(plan.n, 2);
    let rc2 = rcut * rcut;
    let mut stats = VisitStats::default();
    for (offsets, guard) in &plan.paths {
        let cell_i = src.atoms_in(q + offsets[0]);
        let cell_j = src.atoms_in(q + offsets[1]);
        for &i in cell_i {
            for &j in cell_j {
                stats.candidates += 1;
                if i == j || (*guard && src.gid(i) > src.gid(j)) {
                    continue;
                }
                let d = src.disp(i, j);
                let r2 = d.norm_sq();
                if r2 < rc2 {
                    stats.accepted += 1;
                    f(i, j, d, r2.sqrt());
                }
            }
        }
    }
    stats
}

/// Visits every undirected chain triplet `(i0, i1, i2)` generated by `plan`
/// at base cell `q`, with both legs shorter than `rcut`.
///
/// The callback receives `(i0, i1, i2, d01, d12)` where `d01 = r1 − r0` and
/// `d12 = r2 − r1` are link displacement vectors.
pub fn visit_triplets_in_cell_src(
    src: &impl TupleSource,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    mut f: impl FnMut(u32, u32, u32, Vec3, Vec3),
) -> VisitStats {
    debug_assert_eq!(plan.n, 3);
    let rc2 = rcut * rcut;
    let mut stats = VisitStats::default();
    for (offsets, guard) in &plan.paths {
        let cell_0 = src.atoms_in(q + offsets[0]);
        let cell_1 = src.atoms_in(q + offsets[1]);
        let cell_2 = src.atoms_in(q + offsets[2]);
        for &i0 in cell_0 {
            for &i1 in cell_1 {
                if i1 == i0 {
                    stats.candidates += cell_2.len() as u64;
                    continue;
                }
                let d01 = src.disp(i0, i1);
                if d01.norm_sq() >= rc2 {
                    stats.candidates += cell_2.len() as u64;
                    continue;
                }
                for &i2 in cell_2 {
                    stats.candidates += 1;
                    if i2 == i1 || i2 == i0 || (*guard && src.gid(i0) > src.gid(i2)) {
                        continue;
                    }
                    let d12 = src.disp(i1, i2);
                    if d12.norm_sq() < rc2 {
                        stats.accepted += 1;
                        f(i0, i1, i2, d01, d12);
                    }
                }
            }
        }
    }
    stats
}

/// Visits every undirected chain quadruplet generated by `plan` at base cell
/// `q`, with all three links shorter than `rcut`.
///
/// The callback receives `(ids, d01, d12, d23)`.
pub fn visit_quadruplets_in_cell_src(
    src: &impl TupleSource,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    mut f: impl FnMut([u32; 4], Vec3, Vec3, Vec3),
) -> VisitStats {
    debug_assert_eq!(plan.n, 4);
    let rc2 = rcut * rcut;
    let mut stats = VisitStats::default();
    for (offsets, guard) in &plan.paths {
        let cell_0 = src.atoms_in(q + offsets[0]);
        let cell_1 = src.atoms_in(q + offsets[1]);
        let cell_2 = src.atoms_in(q + offsets[2]);
        let cell_3 = src.atoms_in(q + offsets[3]);
        for &i0 in cell_0 {
            for &i1 in cell_1 {
                if i1 == i0 {
                    stats.candidates += (cell_2.len() * cell_3.len()) as u64;
                    continue;
                }
                let d01 = src.disp(i0, i1);
                if d01.norm_sq() >= rc2 {
                    stats.candidates += (cell_2.len() * cell_3.len()) as u64;
                    continue;
                }
                for &i2 in cell_2 {
                    if i2 == i1 || i2 == i0 {
                        stats.candidates += cell_3.len() as u64;
                        continue;
                    }
                    let d12 = src.disp(i1, i2);
                    if d12.norm_sq() >= rc2 {
                        stats.candidates += cell_3.len() as u64;
                        continue;
                    }
                    for &i3 in cell_3 {
                        stats.candidates += 1;
                        if i3 == i2 || i3 == i1 || i3 == i0 || (*guard && src.gid(i0) > src.gid(i3))
                        {
                            continue;
                        }
                        let d23 = src.disp(i2, i3);
                        if d23.norm_sq() < rc2 {
                            stats.accepted += 1;
                            f([i0, i1, i2, i3], d01, d12, d23);
                        }
                    }
                }
            }
        }
    }
    stats
}

/// Visits every undirected chain n-tuple for **arbitrary n** at base cell
/// `q` — the fully general form of the paper's UCP search (ReaxFF-style
/// force fields reach n = 6 through chain-rule terms, §1). The callback
/// receives the atom slots of each accepted chain.
///
/// The specialized n = 2..4 visitors above are what the force loops use;
/// this recursive form serves statistics and enumeration at higher n.
pub fn visit_ntuples_in_cell_src(
    src: &impl TupleSource,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    mut f: impl FnMut(&[u32]),
) -> VisitStats {
    let n = plan.n;
    let rc2 = rcut * rcut;
    let mut stats = VisitStats::default();
    let mut chain: Vec<u32> = Vec::with_capacity(n);

    fn descend(
        src: &impl TupleSource,
        cells: &[IVec3],
        guard: bool,
        rc2: f64,
        chain: &mut Vec<u32>,
        stats: &mut VisitStats,
        f: &mut impl FnMut(&[u32]),
    ) {
        let depth = chain.len();
        let n = cells.len();
        if depth == n {
            stats.accepted += 1;
            f(chain);
            return;
        }
        let last = chain.last().copied();
        for &i in src.atoms_in(cells[depth]) {
            // Count the candidate subtree size when pruning at the leaf
            // level only (cheap approximation: count leaves).
            if depth == n - 1 {
                stats.candidates += 1;
            }
            if chain.contains(&i) {
                continue;
            }
            if let Some(prev) = last {
                if src.disp(prev, i).norm_sq() >= rc2 {
                    continue;
                }
            }
            if depth == n - 1 && guard && src.gid(chain[0]) > src.gid(i) {
                continue;
            }
            chain.push(i);
            descend(src, cells, guard, rc2, chain, stats, f);
            chain.pop();
        }
    }

    for (offsets, guard) in &plan.paths {
        let cells: Vec<IVec3> = offsets.iter().map(|&v| q + v).collect();
        descend(src, &cells, *guard, rc2, &mut chain, &mut stats, &mut f);
    }
    stats
}

/// Runs the arbitrary-n visitor over every cell of the lattice (serial).
pub fn visit_ntuples(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    mut f: impl FnMut(&[u32]),
) -> VisitStats {
    let src = PeriodicSource::new(lat, store);
    let mut stats = VisitStats::default();
    for q in lat.cells() {
        stats.merge(visit_ntuples_in_cell_src(&src, plan, rcut, q, &mut f));
    }
    stats
}

/// Per-cell pair visitor over the global periodic lattice.
pub fn visit_pairs_in_cell(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    f: impl FnMut(u32, u32, Vec3, f64),
) -> VisitStats {
    visit_pairs_in_cell_src(&PeriodicSource::new(lat, store), plan, rcut, q, f)
}

/// Per-cell triplet visitor over the global periodic lattice.
pub fn visit_triplets_in_cell(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    f: impl FnMut(u32, u32, u32, Vec3, Vec3),
) -> VisitStats {
    visit_triplets_in_cell_src(&PeriodicSource::new(lat, store), plan, rcut, q, f)
}

/// Per-cell quadruplet visitor over the global periodic lattice.
pub fn visit_quadruplets_in_cell(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    f: impl FnMut([u32; 4], Vec3, Vec3, Vec3),
) -> VisitStats {
    visit_quadruplets_in_cell_src(&PeriodicSource::new(lat, store), plan, rcut, q, f)
}

/// Runs a pair visitor over every cell of the lattice (serial).
pub fn visit_pairs(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    mut f: impl FnMut(u32, u32, Vec3, f64),
) -> VisitStats {
    let mut stats = VisitStats::default();
    for q in lat.cells() {
        stats.merge(visit_pairs_in_cell(lat, store, plan, rcut, q, &mut f));
    }
    stats
}

/// Runs a triplet visitor over every cell of the lattice (serial).
pub fn visit_triplets(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    mut f: impl FnMut(u32, u32, u32, Vec3, Vec3),
) -> VisitStats {
    let mut stats = VisitStats::default();
    for q in lat.cells() {
        stats.merge(visit_triplets_in_cell(lat, store, plan, rcut, q, &mut f));
    }
    stats
}

/// Runs a quadruplet visitor over every cell of the lattice (serial).
pub fn visit_quadruplets(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    mut f: impl FnMut([u32; 4], Vec3, Vec3, Vec3),
) -> VisitStats {
    let mut stats = VisitStats::default();
    for q in lat.cells() {
        stats.merge(visit_quadruplets_in_cell(lat, store, plan, rcut, q, &mut f));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_gas;
    use sc_core::{generate_fs, shift_collapse};
    use std::collections::HashSet;

    fn setup(n_atoms: usize, box_l: f64, rcut: f64) -> (CellLattice, AtomStore) {
        let (store, bbox) = random_gas(n_atoms, box_l, 7);
        let mut lat = CellLattice::new(bbox, rcut);
        lat.rebuild(&store);
        (lat, store)
    }

    fn pair_set(
        lat: &CellLattice,
        store: &AtomStore,
        plan: &PatternPlan,
        rcut: f64,
    ) -> HashSet<(u32, u32)> {
        let mut out = HashSet::new();
        visit_pairs(lat, store, plan, rcut, |i, j, _, _| {
            let key = (i.min(j), i.max(j));
            assert!(out.insert(key), "pair {key:?} visited twice");
        });
        out
    }

    #[test]
    fn fs_and_sc_visit_identical_pair_sets() {
        let rcut = 1.0;
        let (lat, store) = setup(120, 4.0, rcut);
        let fs = PatternPlan::new(&generate_fs(2), Dedup::Guarded);
        let sc = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
        let a = pair_set(&lat, &store, &fs, rcut);
        let b = pair_set(&lat, &store, &sc, rcut);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn fs_and_sc_visit_identical_triplet_sets() {
        let rcut = 1.0;
        let (lat, store) = setup(80, 4.0, rcut);
        let collect = |plan: &PatternPlan| {
            let mut out = HashSet::new();
            visit_triplets(&lat, &store, plan, rcut, |i, j, k, _, _| {
                let key = (i.min(k), j, i.max(k));
                assert!(out.insert(key), "triplet {key:?} visited twice");
            });
            out
        };
        let a = collect(&PatternPlan::new(&generate_fs(3), Dedup::Guarded));
        let b = collect(&PatternPlan::new(&shift_collapse(3), Dedup::Collapsed));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn fs_and_sc_visit_identical_quadruplet_sets() {
        let rcut = 1.0;
        let (lat, store) = setup(40, 4.0, rcut);
        let collect = |plan: &PatternPlan| {
            let mut out = HashSet::new();
            visit_quadruplets(&lat, &store, plan, rcut, |ids, _, _, _| {
                let key = if ids[0] < ids[3] { ids } else { [ids[3], ids[2], ids[1], ids[0]] };
                assert!(out.insert(key), "quad {key:?} visited twice");
            });
            out
        };
        let a = collect(&PatternPlan::new(&generate_fs(4), Dedup::Guarded));
        let b = collect(&PatternPlan::new(&shift_collapse(4), Dedup::Collapsed));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn fs_examines_about_twice_the_candidates_of_sc() {
        // The search-cost halving of Eq. 29, observed on real data (Fig. 7).
        let rcut = 1.0;
        let (lat, store) = setup(200, 4.0, rcut);
        let fs = PatternPlan::new(&generate_fs(3), Dedup::Guarded);
        let sc = PatternPlan::new(&shift_collapse(3), Dedup::Collapsed);
        let s_fs = visit_triplets(&lat, &store, &fs, rcut, |_, _, _, _, _| {});
        let s_sc = visit_triplets(&lat, &store, &sc, rcut, |_, _, _, _, _| {});
        let ratio = s_fs.candidates as f64 / s_sc.candidates as f64;
        assert!(
            (1.7..2.2).contains(&ratio),
            "FS/SC candidate ratio {ratio}, expected ≈ 729/378 = 1.93"
        );
        // Both accept the same number of (undirected) tuples.
        assert_eq!(s_fs.accepted, s_sc.accepted);
    }

    #[test]
    fn accepted_pairs_respect_cutoff() {
        let rcut = 0.8;
        let (lat, store) = setup(100, 4.0, rcut);
        let sc = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
        visit_pairs(&lat, &store, &sc, rcut, |i, j, d, r| {
            assert!(r < rcut);
            assert!(i != j);
            assert!((d.norm() - r).abs() < 1e-12);
            // d is the minimum-image displacement.
            let expect =
                lat.bbox().min_image(store.positions()[i as usize], store.positions()[j as usize]);
            assert!((d - expect).norm() < 1e-12);
        });
    }

    #[test]
    fn generic_visitor_agrees_with_specialized_ones() {
        let rcut = 1.0;
        let (lat, store) = setup(60, 4.0, rcut);
        for n in [2usize, 3, 4] {
            let plan = PatternPlan::new(&shift_collapse(n), Dedup::Collapsed);
            let mut generic: Vec<Vec<u32>> = vec![];
            visit_ntuples(&lat, &store, &plan, rcut, |chain| {
                let mut c = chain.to_vec();
                let mut r = c.clone();
                r.reverse();
                if r < c {
                    c = r;
                }
                generic.push(c);
            });
            generic.sort();
            let mut specialized: Vec<Vec<u32>> = vec![];
            match n {
                2 => {
                    visit_pairs(&lat, &store, &plan, rcut, |i, j, _, _| {
                        specialized.push(vec![i.min(j), i.max(j)]);
                    });
                }
                3 => {
                    visit_triplets(&lat, &store, &plan, rcut, |i, j, k, _, _| {
                        specialized.push(vec![i.min(k), j, i.max(k)]);
                    });
                }
                4 => {
                    visit_quadruplets(&lat, &store, &plan, rcut, |ids, _, _, _| {
                        let mut c = ids.to_vec();
                        let mut r = c.clone();
                        r.reverse();
                        if r < c {
                            c = r;
                        }
                        specialized.push(c);
                    });
                }
                _ => unreachable!(),
            }
            specialized.sort();
            assert_eq!(generic, specialized, "n = {n}");
        }
    }

    #[test]
    fn generic_visitor_reaches_n5() {
        // n = 5 chains (ReaxFF-regime statistics): SC(5) and FS(5) must
        // find the same undirected chain set.
        let rcut = 1.0;
        let (store, bbox) = random_gas(14, 5.0, 3);
        let mut lat = CellLattice::new(bbox, rcut);
        lat.rebuild(&store);
        let collect = |plan: &PatternPlan| {
            let mut out: Vec<Vec<u32>> = vec![];
            visit_ntuples(&lat, &store, plan, rcut, |chain| {
                let mut c = chain.to_vec();
                let mut r = c.clone();
                r.reverse();
                if r < c {
                    c = r;
                }
                out.push(c);
            });
            out.sort();
            out.dedup();
            out
        };
        let sc = collect(&PatternPlan::new(&shift_collapse(5), Dedup::Collapsed));
        let fs = collect(&PatternPlan::new(&generate_fs(5), Dedup::Guarded));
        assert_eq!(sc, fs);
    }

    #[test]
    fn guard_uses_global_ids_not_slots() {
        // Two atoms whose slot order and id order disagree: the pair must
        // still be visited exactly once under the Guarded mode.
        let bbox = sc_geom::SimulationBox::cubic(4.0);
        let mut store = AtomStore::single_species();
        store.push(100, sc_cell::Species::DEFAULT, Vec3::new(1.0, 1.0, 1.0), Vec3::ZERO);
        store.push(5, sc_cell::Species::DEFAULT, Vec3::new(1.4, 1.0, 1.0), Vec3::ZERO);
        let mut lat = CellLattice::new(bbox, 1.0);
        lat.rebuild(&store);
        let fs = PatternPlan::new(&generate_fs(2), Dedup::Guarded);
        let mut hits = vec![];
        visit_pairs(&lat, &store, &fs, 1.0, |i, j, _, _| hits.push((i, j)));
        assert_eq!(hits.len(), 1);
        // The accepted direction runs from the smaller gid (atom slot 1).
        assert_eq!(hits[0], (1, 0));
    }

    #[test]
    fn plan_metadata() {
        let p = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
        assert_eq!(p.n(), 2);
        assert_eq!(p.len(), 14);
        assert!(!p.is_empty());
    }
}
