//! Cell-based n-tuple enumeration: the executable form of the paper's UCP
//! algorithm (Table 1) with chain-cutoff filtering.
//!
//! For each cell `c(q)` of the lattice and each path `p = (v0…v_{n-1})` of
//! the computation pattern, the visitor enumerates candidate tuples with the
//! k-th atom drawn from `c(q + v_k)`, filters them by the chain-cutoff
//! condition `r_{k,k+1} < r_cut-n` (Eq. 6), rejects repeated atoms, and
//! applies the reflective-duplicate guard so that **every undirected tuple
//! is visited exactly once** regardless of the pattern's redundancy:
//!
//! * [`Dedup::Collapsed`] — for R-COLLAPSE'd patterns (SC, HS): only
//!   *self-reflective* paths generate each tuple twice (once per direction),
//!   so only those paths carry the canonical-order guard.
//! * [`Dedup::Guarded`] — for redundant patterns (FS): every undirected
//!   tuple is generated twice (by a path and its reflective twin), so the
//!   guard applies to every path. This is exactly the "filtering out the
//!   unnecessary tuples" whose cost Eq. 12 charges to FS-MD.
//!
//! The guard compares **global atom ids**, not local slots, so the same
//! rule stays consistent when tuples straddle rank boundaries in the
//! distributed runtime: for a pair owned by two different ranks, exactly one
//! rank's directed generation passes the guard.
//!
//! Enumeration is generic over [`TupleSource`] — the serial engine runs it
//! on a periodic [`CellLattice`] (minimum-image displacements), the
//! distributed runtime on a rank-local ghost lattice (plain differences,
//! since ghosts are image-shifted into the local frame).

use sc_cell::{AtomStore, CellLattice};
use sc_core::{Path, Pattern};
use sc_geom::{IVec3, Vec3};

/// How reflective tuple duplicates are suppressed during enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dedup {
    /// The pattern has been R-COLLAPSE'd: guard only self-reflective paths.
    Collapsed,
    /// The pattern retains reflective twins (e.g. full shell): guard every
    /// path with the canonical-order test.
    Guarded,
}

/// Triplet paths sharing one `(v0, v1)` prefix: the first leg's cell
/// lookups and `d01` cutoff check run once per group instead of once per
/// path. SC(3) collapses 378 paths into 63 groups, FS(3) 729 into 27 — the
/// dominant per-cell enumeration cost in triplet-heavy workloads (silica).
#[derive(Debug, Clone)]
struct PrefixGroup {
    prefix: [IVec3; 2],
    /// `(v2, guard)` per member path, in path order.
    suffixes: Vec<(IVec3, bool)>,
}

/// A pattern compiled for enumeration: per-path offsets plus the
/// reflective-duplicate guard flag.
#[derive(Debug, Clone)]
pub struct PatternPlan {
    n: usize,
    paths: Vec<(Vec<IVec3>, bool)>,
    /// Populated for n = 3 only; empty otherwise.
    triplet_groups: Vec<PrefixGroup>,
}

impl PatternPlan {
    /// Compiles `pattern` for the given dedup mode.
    pub fn new(pattern: &Pattern, dedup: Dedup) -> Self {
        let paths: Vec<(Vec<IVec3>, bool)> = pattern
            .iter()
            .map(|p: &Path| {
                let guard = match dedup {
                    Dedup::Guarded => true,
                    Dedup::Collapsed => p.is_self_reflective(),
                };
                (p.offsets().to_vec(), guard)
            })
            .collect();
        let mut triplet_groups: Vec<PrefixGroup> = Vec::new();
        if pattern.n() == 3 {
            // First-seen prefix order, suffixes in path order: the grouping
            // is a pure reordering of the path list, so enumeration stays
            // deterministic.
            for (offsets, guard) in &paths {
                let prefix = [offsets[0], offsets[1]];
                match triplet_groups.iter_mut().find(|g| g.prefix == prefix) {
                    Some(g) => g.suffixes.push((offsets[2], *guard)),
                    None => triplet_groups
                        .push(PrefixGroup { prefix, suffixes: vec![(offsets[2], *guard)] }),
                }
            }
        }
        PatternPlan { n: pattern.n(), paths, triplet_groups }
    }

    /// The tuple order n.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the plan has no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Enumeration statistics: the search-cost observables of the paper's
/// Lemma 5 / Fig. 7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VisitStats {
    /// Candidate tuples examined (the size of the searched space `S_cell`).
    pub candidates: u64,
    /// Tuples that passed cutoff, distinctness, and guard — i.e. members of
    /// the filtered force set handed to the potential.
    pub accepted: u64,
}

impl VisitStats {
    /// Accumulates another stats record.
    pub fn merge(&mut self, o: VisitStats) {
        self.candidates += o.candidates;
        self.accepted += o.accepted;
    }
}

/// What tuple enumeration needs from the world: cell bins, positions,
/// global ids, and a displacement rule.
pub trait TupleSource {
    /// Atom slots binned into cell `q` (indexing convention is the
    /// implementor's — periodic for the global lattice, bounded-local for
    /// ghost lattices).
    fn atoms_in(&self, q: IVec3) -> &[u32];
    /// Position of slot `i`.
    fn pos(&self, i: u32) -> Vec3;
    /// Stable global id of slot `i` (guards compare these).
    fn gid(&self, i: u32) -> u64;
    /// Displacement `r_j − r_i` under this source's geometry.
    fn disp(&self, i: u32, j: u32) -> Vec3;
    /// Box edge lengths if displacements are minimum-image, `None` if they
    /// are plain differences (rank-local frames with image-shifted ghosts).
    /// The batched kernels use this to apply the same displacement rule as
    /// [`TupleSource::disp`] across a whole lane block at once.
    fn pbc_lengths(&self) -> Option<Vec3> {
        None
    }
}

/// [`TupleSource`] over the global periodic lattice: minimum-image
/// displacements.
pub struct PeriodicSource<'a> {
    lat: &'a CellLattice,
    store: &'a AtomStore,
}

impl<'a> PeriodicSource<'a> {
    /// Wraps a lattice + store.
    ///
    /// Debug builds assert the lattice's bins were built against the store's
    /// current slot layout ([`CellLattice::is_current`]): any structural
    /// mutation — `push`, `swap_remove` (which moves the last atom into the
    /// vacated slot while its old lattice entry still points there), a
    /// Morton re-sort — silently invalidates every binned slot index, and
    /// enumerating through stale bins reads the wrong atoms.
    pub fn new(lat: &'a CellLattice, store: &'a AtomStore) -> Self {
        debug_assert!(
            lat.is_current(store),
            "cell lattice is stale: the store's slot layout changed since the last rebuild"
        );
        PeriodicSource { lat, store }
    }
}

impl TupleSource for PeriodicSource<'_> {
    #[inline]
    fn atoms_in(&self, q: IVec3) -> &[u32] {
        self.lat.cell_atoms(q)
    }
    #[inline]
    fn pos(&self, i: u32) -> Vec3 {
        self.store.positions()[i as usize]
    }
    #[inline]
    fn gid(&self, i: u32) -> u64 {
        self.store.ids()[i as usize]
    }
    #[inline]
    fn disp(&self, i: u32, j: u32) -> Vec3 {
        self.lat.bbox().min_image(self.pos(i), self.pos(j))
    }
    #[inline]
    fn pbc_lengths(&self) -> Option<Vec3> {
        Some(self.lat.bbox().lengths())
    }
}

/// Lane width of the batched distance kernels: gathered coordinates are
/// processed in fixed-size blocks so the per-lane loops compile to packed
/// f64 vector code (f64x4 on AVX2, f64x8 on AVX-512) without any explicit
/// SIMD dependency. 32 lanes cover a typical cell's population (ρ_cell ≈
/// 5–20 for the paper's benchmark systems) in a single block.
const BATCH: usize = 32;

/// Below this many candidates in the gathered cell, the visitors take the
/// plain scalar inner loop: filling lanes for a near-empty cell (common in
/// triplet/quadruplet lattices, whose cells shrink to the shorter cutoffs)
/// costs more than it saves. Both paths produce bitwise-identical calls in
/// identical order — a cell below `BATCH` is a single chunk, so the batched
/// loop degenerates to the same iteration order the scalar loop uses.
const BATCH_MIN: usize = 16;

/// A gathered block of candidate atoms: SoA coordinates plus the global ids
/// the reflective-duplicate guard compares. Filling it from a Morton-sorted
/// store is a near-contiguous copy, which is what makes the lane loops pay.
struct Gather {
    x: [f64; BATCH],
    y: [f64; BATCH],
    z: [f64; BATCH],
    gid: [u64; BATCH],
}

impl Gather {
    #[inline]
    fn new() -> Self {
        Gather { x: [0.0; BATCH], y: [0.0; BATCH], z: [0.0; BATCH], gid: [0; BATCH] }
    }

    /// Loads `chunk` (≤ `BATCH` slots) from the source.
    #[inline]
    fn load(&mut self, src: &impl TupleSource, chunk: &[u32]) {
        for (k, &j) in chunk.iter().enumerate() {
            let p = src.pos(j);
            self.x[k] = p.x;
            self.y[k] = p.y;
            self.z[k] = p.z;
            self.gid[k] = src.gid(j);
        }
    }
}

/// Per-axis displacement rule for the lane loops: minimum-image when the
/// source is periodic, plain difference otherwise (encoded as `l = 0`,
/// `half = ∞`, which makes both corrections dead).
///
/// Bitwise identical to [`sc_geom::SimulationBox::min_image`]: the two
/// corrections can never both fire for wrapped positions (|d| < L, so after
/// `d -= L` the result is > −L/2), and the untaken arms add `0.0` / `−0.0`,
/// which preserve every `f64` — including signed zeros — exactly.
#[derive(Clone, Copy)]
struct DispRule {
    l: Vec3,
    half: Vec3,
}

impl DispRule {
    #[inline]
    fn of(src: &impl TupleSource) -> Self {
        match src.pbc_lengths() {
            Some(l) => DispRule { l, half: l * 0.5 },
            None => DispRule { l: Vec3::ZERO, half: Vec3::splat(f64::INFINITY) },
        }
    }
}

#[inline]
fn min_image1(mut d: f64, l: f64, half: f64) -> f64 {
    d -= if d > half { l } else { 0.0 };
    d += if d < -half { l } else { -0.0 };
    d
}

/// Displacements and squared distances from `origin` to the first `m` lanes
/// of a [`Gather`]. The `k` loops are branch-free straight-line f64
/// arithmetic — exactly the shape LLVM's loop vectorizer turns into packed
/// lanes with select-based masking.
struct Lanes {
    dx: [f64; BATCH],
    dy: [f64; BATCH],
    dz: [f64; BATCH],
    r2: [f64; BATCH],
}

impl Lanes {
    #[inline]
    fn new() -> Self {
        Lanes { dx: [0.0; BATCH], dy: [0.0; BATCH], dz: [0.0; BATCH], r2: [0.0; BATCH] }
    }

    #[inline]
    fn compute(&mut self, origin: Vec3, g: &Gather, m: usize, rule: DispRule) {
        for k in 0..m {
            self.dx[k] = min_image1(g.x[k] - origin.x, rule.l.x, rule.half.x);
            self.dy[k] = min_image1(g.y[k] - origin.y, rule.l.y, rule.half.y);
            self.dz[k] = min_image1(g.z[k] - origin.z, rule.l.z, rule.half.z);
            self.r2[k] =
                self.dx[k] * self.dx[k] + self.dy[k] * self.dy[k] + self.dz[k] * self.dz[k];
        }
    }

    #[inline]
    fn disp(&self, k: usize) -> Vec3 {
        Vec3::new(self.dx[k], self.dy[k], self.dz[k])
    }
}

/// Visits every undirected pair generated by `plan` at base cell `q`.
///
/// The callback receives `(i, j, d_ij, r)` with `d_ij` the displacement
/// `r_j − r_i` and `r = |d_ij| < rcut`.
pub fn visit_pairs_in_cell_src(
    src: &impl TupleSource,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    mut f: impl FnMut(u32, u32, Vec3, f64),
) -> VisitStats {
    debug_assert_eq!(plan.n, 2);
    let rc2 = rcut * rcut;
    let rule = DispRule::of(src);
    let mut stats = VisitStats::default();
    let mut g = Gather::new();
    let mut lanes = Lanes::new();
    for (offsets, guard) in &plan.paths {
        let cell_i = src.atoms_in(q + offsets[0]);
        let cell_j = src.atoms_in(q + offsets[1]);
        if cell_i.is_empty() {
            continue;
        }
        if cell_j.len() < BATCH_MIN {
            for &i in cell_i {
                let gi = src.gid(i);
                stats.candidates += cell_j.len() as u64;
                for &j in cell_j {
                    if i == j || (*guard && gi > src.gid(j)) {
                        continue;
                    }
                    let d = src.disp(i, j);
                    let r2 = d.norm_sq();
                    if r2 < rc2 {
                        stats.accepted += 1;
                        f(i, j, d, r2.sqrt());
                    }
                }
            }
            continue;
        }
        for chunk in cell_j.chunks(BATCH) {
            let m = chunk.len();
            g.load(src, chunk);
            for &i in cell_i {
                let pi = src.pos(i);
                let gi = src.gid(i);
                stats.candidates += m as u64;
                lanes.compute(pi, &g, m, rule);
                for (k, &j) in chunk.iter().enumerate() {
                    if i == j || (*guard && gi > g.gid[k]) {
                        continue;
                    }
                    let r2 = lanes.r2[k];
                    if r2 < rc2 {
                        stats.accepted += 1;
                        f(i, j, lanes.disp(k), r2.sqrt());
                    }
                }
            }
        }
    }
    stats
}

/// Visits every undirected chain triplet `(i0, i1, i2)` generated by `plan`
/// at base cell `q`, with both legs shorter than `rcut`.
///
/// The callback receives `(i0, i1, i2, d01, d12)` where `d01 = r1 − r0` and
/// `d12 = r2 − r1` are link displacement vectors.
pub fn visit_triplets_in_cell_src(
    src: &impl TupleSource,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    mut f: impl FnMut(u32, u32, u32, Vec3, Vec3),
) -> VisitStats {
    debug_assert_eq!(plan.n, 3);
    let rc2 = rcut * rcut;
    let rule = DispRule::of(src);
    let mut stats = VisitStats::default();
    let mut g = Gather::new();
    let mut lanes = Lanes::new();
    // Suffix cells resolved once per (group, base cell); reused across
    // every (i0, i1) pair of the group.
    let mut cells_2: Vec<(&[u32], bool)> = Vec::new();
    for group in &plan.triplet_groups {
        let cell_0 = src.atoms_in(q + group.prefix[0]);
        if cell_0.is_empty() {
            continue;
        }
        let cell_1 = src.atoms_in(q + group.prefix[1]);
        if cell_1.is_empty() {
            continue;
        }
        // `total` counts every suffix slot — including empty cells — so the
        // per-(i0,i1) candidate accounting stays exactly what the per-path
        // loop charged: Σ_paths |cell_2(path)|.
        cells_2.clear();
        let mut total: u64 = 0;
        for &(v2, guard) in &group.suffixes {
            let c = src.atoms_in(q + v2);
            total += c.len() as u64;
            if !c.is_empty() {
                cells_2.push((c, guard));
            }
        }
        if total == 0 {
            continue;
        }
        for &i0 in cell_0 {
            let g0 = src.gid(i0);
            for &i1 in cell_1 {
                stats.candidates += total;
                if i1 == i0 {
                    continue;
                }
                let d01 = src.disp(i0, i1);
                if d01.norm_sq() >= rc2 {
                    continue;
                }
                let p1 = src.pos(i1);
                for &(cell_2, guard) in &cells_2 {
                    if cell_2.len() < BATCH_MIN {
                        for &i2 in cell_2 {
                            if i2 == i1 || i2 == i0 || (guard && g0 > src.gid(i2)) {
                                continue;
                            }
                            let d12 = src.disp(i1, i2);
                            if d12.norm_sq() < rc2 {
                                stats.accepted += 1;
                                f(i0, i1, i2, d01, d12);
                            }
                        }
                        continue;
                    }
                    for chunk in cell_2.chunks(BATCH) {
                        let m = chunk.len();
                        g.load(src, chunk);
                        lanes.compute(p1, &g, m, rule);
                        for (k, &i2) in chunk.iter().enumerate() {
                            if i2 == i1 || i2 == i0 || (guard && g0 > g.gid[k]) {
                                continue;
                            }
                            if lanes.r2[k] < rc2 {
                                stats.accepted += 1;
                                f(i0, i1, i2, d01, lanes.disp(k));
                            }
                        }
                    }
                }
            }
        }
    }
    stats
}

/// Visits every undirected chain quadruplet generated by `plan` at base cell
/// `q`, with all three links shorter than `rcut`.
///
/// The callback receives `(ids, d01, d12, d23)`.
pub fn visit_quadruplets_in_cell_src(
    src: &impl TupleSource,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    mut f: impl FnMut([u32; 4], Vec3, Vec3, Vec3),
) -> VisitStats {
    debug_assert_eq!(plan.n, 4);
    let rc2 = rcut * rcut;
    let rule = DispRule::of(src);
    let mut stats = VisitStats::default();
    let mut g = Gather::new();
    let mut lanes = Lanes::new();
    for (offsets, guard) in &plan.paths {
        let cell_0 = src.atoms_in(q + offsets[0]);
        let cell_1 = src.atoms_in(q + offsets[1]);
        let cell_2 = src.atoms_in(q + offsets[2]);
        let cell_3 = src.atoms_in(q + offsets[3]);
        if cell_0.is_empty() || cell_1.is_empty() || cell_2.is_empty() {
            continue;
        }
        if cell_3.len() < BATCH_MIN {
            for &i0 in cell_0 {
                let g0 = src.gid(i0);
                for &i1 in cell_1 {
                    if i1 == i0 {
                        stats.candidates += cell_2.len() as u64 * cell_3.len() as u64;
                        continue;
                    }
                    let d01 = src.disp(i0, i1);
                    if d01.norm_sq() >= rc2 {
                        stats.candidates += cell_2.len() as u64 * cell_3.len() as u64;
                        continue;
                    }
                    for &i2 in cell_2 {
                        stats.candidates += cell_3.len() as u64;
                        if i2 == i1 || i2 == i0 {
                            continue;
                        }
                        let d12 = src.disp(i1, i2);
                        if d12.norm_sq() >= rc2 {
                            continue;
                        }
                        for &i3 in cell_3 {
                            if i3 == i2 || i3 == i1 || i3 == i0 || (*guard && g0 > src.gid(i3)) {
                                continue;
                            }
                            let d23 = src.disp(i2, i3);
                            if d23.norm_sq() < rc2 {
                                stats.accepted += 1;
                                f([i0, i1, i2, i3], d01, d12, d23);
                            }
                        }
                    }
                }
            }
            continue;
        }
        for chunk in cell_3.chunks(BATCH) {
            let m = chunk.len() as u64;
            g.load(src, chunk);
            for &i0 in cell_0 {
                let g0 = src.gid(i0);
                for &i1 in cell_1 {
                    if i1 == i0 {
                        stats.candidates += cell_2.len() as u64 * m;
                        continue;
                    }
                    let d01 = src.disp(i0, i1);
                    if d01.norm_sq() >= rc2 {
                        stats.candidates += cell_2.len() as u64 * m;
                        continue;
                    }
                    for &i2 in cell_2 {
                        if i2 == i1 || i2 == i0 {
                            stats.candidates += m;
                            continue;
                        }
                        let d12 = src.disp(i1, i2);
                        if d12.norm_sq() >= rc2 {
                            stats.candidates += m;
                            continue;
                        }
                        stats.candidates += m;
                        lanes.compute(src.pos(i2), &g, chunk.len(), rule);
                        for (k, &i3) in chunk.iter().enumerate() {
                            if i3 == i2 || i3 == i1 || i3 == i0 || (*guard && g0 > g.gid[k]) {
                                continue;
                            }
                            if lanes.r2[k] < rc2 {
                                stats.accepted += 1;
                                f([i0, i1, i2, i3], d01, d12, lanes.disp(k));
                            }
                        }
                    }
                }
            }
        }
    }
    stats
}

/// Visits every undirected chain n-tuple for **arbitrary n** at base cell
/// `q` — the fully general form of the paper's UCP search (ReaxFF-style
/// force fields reach n = 6 through chain-rule terms, §1). The callback
/// receives the atom slots of each accepted chain.
///
/// The specialized n = 2..4 visitors above are what the force loops use;
/// this recursive form serves statistics and enumeration at higher n.
pub fn visit_ntuples_in_cell_src(
    src: &impl TupleSource,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    mut f: impl FnMut(&[u32]),
) -> VisitStats {
    let n = plan.n;
    let rc2 = rcut * rcut;
    let rule = DispRule::of(src);
    let mut stats = VisitStats::default();
    let mut chain: Vec<u32> = Vec::with_capacity(n);
    let mut g = Gather::new();
    let mut lanes = Lanes::new();

    #[allow(clippy::too_many_arguments)]
    fn descend(
        src: &impl TupleSource,
        cells: &[IVec3],
        guard: bool,
        rc2: f64,
        rule: DispRule,
        chain: &mut Vec<u32>,
        g: &mut Gather,
        lanes: &mut Lanes,
        stats: &mut VisitStats,
        f: &mut impl FnMut(&[u32]),
    ) {
        let depth = chain.len();
        let n = cells.len();
        if depth == n - 1 {
            // Leaf level: batched distance checks against the last chain
            // atom. Candidates are counted per lane block — the same "count
            // leaves" accounting as the scalar form.
            let prev = chain.last().copied();
            for chunk in src.atoms_in(cells[depth]).chunks(BATCH) {
                let m = chunk.len();
                stats.candidates += m as u64;
                g.load(src, chunk);
                if let Some(prev) = prev {
                    lanes.compute(src.pos(prev), g, m, rule);
                }
                for (k, &i) in chunk.iter().enumerate() {
                    if chain.contains(&i) {
                        continue;
                    }
                    if prev.is_some() && lanes.r2[k] >= rc2 {
                        continue;
                    }
                    if guard && src.gid(chain[0]) > g.gid[k] {
                        continue;
                    }
                    stats.accepted += 1;
                    chain.push(i);
                    f(chain);
                    chain.pop();
                }
            }
            return;
        }
        let last = chain.last().copied();
        for &i in src.atoms_in(cells[depth]) {
            if chain.contains(&i) {
                continue;
            }
            if let Some(prev) = last {
                if src.disp(prev, i).norm_sq() >= rc2 {
                    continue;
                }
            }
            chain.push(i);
            descend(src, cells, guard, rc2, rule, chain, g, lanes, stats, f);
            chain.pop();
        }
    }

    for (offsets, guard) in &plan.paths {
        let cells: Vec<IVec3> = offsets.iter().map(|&v| q + v).collect();
        descend(src, &cells, *guard, rc2, rule, &mut chain, &mut g, &mut lanes, &mut stats, &mut f);
    }
    stats
}

/// Runs the arbitrary-n visitor over every cell of the lattice (serial).
pub fn visit_ntuples(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    mut f: impl FnMut(&[u32]),
) -> VisitStats {
    let src = PeriodicSource::new(lat, store);
    let mut stats = VisitStats::default();
    for q in lat.cells() {
        stats.merge(visit_ntuples_in_cell_src(&src, plan, rcut, q, &mut f));
    }
    stats
}

/// Per-cell pair visitor over the global periodic lattice.
pub fn visit_pairs_in_cell(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    f: impl FnMut(u32, u32, Vec3, f64),
) -> VisitStats {
    visit_pairs_in_cell_src(&PeriodicSource::new(lat, store), plan, rcut, q, f)
}

/// Per-cell triplet visitor over the global periodic lattice.
pub fn visit_triplets_in_cell(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    f: impl FnMut(u32, u32, u32, Vec3, Vec3),
) -> VisitStats {
    visit_triplets_in_cell_src(&PeriodicSource::new(lat, store), plan, rcut, q, f)
}

/// Per-cell quadruplet visitor over the global periodic lattice.
pub fn visit_quadruplets_in_cell(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    q: IVec3,
    f: impl FnMut([u32; 4], Vec3, Vec3, Vec3),
) -> VisitStats {
    visit_quadruplets_in_cell_src(&PeriodicSource::new(lat, store), plan, rcut, q, f)
}

/// Runs a pair visitor over every cell of the lattice (serial).
pub fn visit_pairs(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    mut f: impl FnMut(u32, u32, Vec3, f64),
) -> VisitStats {
    let mut stats = VisitStats::default();
    for q in lat.cells() {
        stats.merge(visit_pairs_in_cell(lat, store, plan, rcut, q, &mut f));
    }
    stats
}

/// Runs a triplet visitor over every cell of the lattice (serial).
pub fn visit_triplets(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    mut f: impl FnMut(u32, u32, u32, Vec3, Vec3),
) -> VisitStats {
    let mut stats = VisitStats::default();
    for q in lat.cells() {
        stats.merge(visit_triplets_in_cell(lat, store, plan, rcut, q, &mut f));
    }
    stats
}

/// Runs a quadruplet visitor over every cell of the lattice (serial).
pub fn visit_quadruplets(
    lat: &CellLattice,
    store: &AtomStore,
    plan: &PatternPlan,
    rcut: f64,
    mut f: impl FnMut([u32; 4], Vec3, Vec3, Vec3),
) -> VisitStats {
    let mut stats = VisitStats::default();
    for q in lat.cells() {
        stats.merge(visit_quadruplets_in_cell(lat, store, plan, rcut, q, &mut f));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_gas;
    use sc_core::{generate_fs, shift_collapse};
    use std::collections::HashSet;

    fn setup(n_atoms: usize, box_l: f64, rcut: f64) -> (CellLattice, AtomStore) {
        let (store, bbox) = random_gas(n_atoms, box_l, 7);
        let mut lat = CellLattice::new(bbox, rcut);
        lat.rebuild(&store);
        (lat, store)
    }

    fn pair_set(
        lat: &CellLattice,
        store: &AtomStore,
        plan: &PatternPlan,
        rcut: f64,
    ) -> HashSet<(u32, u32)> {
        let mut out = HashSet::new();
        visit_pairs(lat, store, plan, rcut, |i, j, _, _| {
            let key = (i.min(j), i.max(j));
            assert!(out.insert(key), "pair {key:?} visited twice");
        });
        out
    }

    #[test]
    fn fs_and_sc_visit_identical_pair_sets() {
        let rcut = 1.0;
        let (lat, store) = setup(120, 4.0, rcut);
        let fs = PatternPlan::new(&generate_fs(2), Dedup::Guarded);
        let sc = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
        let a = pair_set(&lat, &store, &fs, rcut);
        let b = pair_set(&lat, &store, &sc, rcut);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn fs_and_sc_visit_identical_triplet_sets() {
        let rcut = 1.0;
        let (lat, store) = setup(80, 4.0, rcut);
        let collect = |plan: &PatternPlan| {
            let mut out = HashSet::new();
            visit_triplets(&lat, &store, plan, rcut, |i, j, k, _, _| {
                let key = (i.min(k), j, i.max(k));
                assert!(out.insert(key), "triplet {key:?} visited twice");
            });
            out
        };
        let a = collect(&PatternPlan::new(&generate_fs(3), Dedup::Guarded));
        let b = collect(&PatternPlan::new(&shift_collapse(3), Dedup::Collapsed));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn fs_and_sc_visit_identical_quadruplet_sets() {
        let rcut = 1.0;
        let (lat, store) = setup(40, 4.0, rcut);
        let collect = |plan: &PatternPlan| {
            let mut out = HashSet::new();
            visit_quadruplets(&lat, &store, plan, rcut, |ids, _, _, _| {
                let key = if ids[0] < ids[3] { ids } else { [ids[3], ids[2], ids[1], ids[0]] };
                assert!(out.insert(key), "quad {key:?} visited twice");
            });
            out
        };
        let a = collect(&PatternPlan::new(&generate_fs(4), Dedup::Guarded));
        let b = collect(&PatternPlan::new(&shift_collapse(4), Dedup::Collapsed));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn fs_examines_about_twice_the_candidates_of_sc() {
        // The search-cost halving of Eq. 29, observed on real data (Fig. 7).
        let rcut = 1.0;
        let (lat, store) = setup(200, 4.0, rcut);
        let fs = PatternPlan::new(&generate_fs(3), Dedup::Guarded);
        let sc = PatternPlan::new(&shift_collapse(3), Dedup::Collapsed);
        let s_fs = visit_triplets(&lat, &store, &fs, rcut, |_, _, _, _, _| {});
        let s_sc = visit_triplets(&lat, &store, &sc, rcut, |_, _, _, _, _| {});
        let ratio = s_fs.candidates as f64 / s_sc.candidates as f64;
        assert!(
            (1.7..2.2).contains(&ratio),
            "FS/SC candidate ratio {ratio}, expected ≈ 729/378 = 1.93"
        );
        // Both accept the same number of (undirected) tuples.
        assert_eq!(s_fs.accepted, s_sc.accepted);
    }

    #[test]
    fn accepted_pairs_respect_cutoff() {
        let rcut = 0.8;
        let (lat, store) = setup(100, 4.0, rcut);
        let sc = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
        visit_pairs(&lat, &store, &sc, rcut, |i, j, d, r| {
            assert!(r < rcut);
            assert!(i != j);
            assert!((d.norm() - r).abs() < 1e-12);
            // d is the minimum-image displacement.
            let expect =
                lat.bbox().min_image(store.positions()[i as usize], store.positions()[j as usize]);
            assert!((d - expect).norm() < 1e-12);
        });
    }

    #[test]
    fn generic_visitor_agrees_with_specialized_ones() {
        let rcut = 1.0;
        let (lat, store) = setup(60, 4.0, rcut);
        for n in [2usize, 3, 4] {
            let plan = PatternPlan::new(&shift_collapse(n), Dedup::Collapsed);
            let mut generic: Vec<Vec<u32>> = vec![];
            visit_ntuples(&lat, &store, &plan, rcut, |chain| {
                let mut c = chain.to_vec();
                let mut r = c.clone();
                r.reverse();
                if r < c {
                    c = r;
                }
                generic.push(c);
            });
            generic.sort();
            let mut specialized: Vec<Vec<u32>> = vec![];
            match n {
                2 => {
                    visit_pairs(&lat, &store, &plan, rcut, |i, j, _, _| {
                        specialized.push(vec![i.min(j), i.max(j)]);
                    });
                }
                3 => {
                    visit_triplets(&lat, &store, &plan, rcut, |i, j, k, _, _| {
                        specialized.push(vec![i.min(k), j, i.max(k)]);
                    });
                }
                4 => {
                    visit_quadruplets(&lat, &store, &plan, rcut, |ids, _, _, _| {
                        let mut c = ids.to_vec();
                        let mut r = c.clone();
                        r.reverse();
                        if r < c {
                            c = r;
                        }
                        specialized.push(c);
                    });
                }
                _ => unreachable!(),
            }
            specialized.sort();
            assert_eq!(generic, specialized, "n = {n}");
        }
    }

    #[test]
    fn generic_visitor_reaches_n5() {
        // n = 5 chains (ReaxFF-regime statistics): SC(5) and FS(5) must
        // find the same undirected chain set.
        let rcut = 1.0;
        let (store, bbox) = random_gas(14, 5.0, 3);
        let mut lat = CellLattice::new(bbox, rcut);
        lat.rebuild(&store);
        let collect = |plan: &PatternPlan| {
            let mut out: Vec<Vec<u32>> = vec![];
            visit_ntuples(&lat, &store, plan, rcut, |chain| {
                let mut c = chain.to_vec();
                let mut r = c.clone();
                r.reverse();
                if r < c {
                    c = r;
                }
                out.push(c);
            });
            out.sort();
            out.dedup();
            out
        };
        let sc = collect(&PatternPlan::new(&shift_collapse(5), Dedup::Collapsed));
        let fs = collect(&PatternPlan::new(&generate_fs(5), Dedup::Guarded));
        assert_eq!(sc, fs);
    }

    #[test]
    fn guard_uses_global_ids_not_slots() {
        // Two atoms whose slot order and id order disagree: the pair must
        // still be visited exactly once under the Guarded mode.
        let bbox = sc_geom::SimulationBox::cubic(4.0);
        let mut store = AtomStore::single_species();
        store.push(100, sc_cell::Species::DEFAULT, Vec3::new(1.0, 1.0, 1.0), Vec3::ZERO);
        store.push(5, sc_cell::Species::DEFAULT, Vec3::new(1.4, 1.0, 1.0), Vec3::ZERO);
        let mut lat = CellLattice::new(bbox, 1.0);
        lat.rebuild(&store);
        let fs = PatternPlan::new(&generate_fs(2), Dedup::Guarded);
        let mut hits = vec![];
        visit_pairs(&lat, &store, &fs, 1.0, |i, j, _, _| hits.push((i, j)));
        assert_eq!(hits.len(), 1);
        // The accepted direction runs from the smaller gid (atom slot 1).
        assert_eq!(hits[0], (1, 0));
    }

    #[test]
    fn plan_metadata() {
        let p = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
        assert_eq!(p.n(), 2);
        assert_eq!(p.len(), 14);
        assert!(!p.is_empty());
    }

    /// The scalar pair loop the batched kernel replaced, kept as the
    /// semantic reference: identical candidate/accepted counters and
    /// bitwise-identical displacements are the contract.
    fn scalar_pairs(
        src: &impl TupleSource,
        plan: &PatternPlan,
        rcut: f64,
        q: IVec3,
        f: &mut impl FnMut(u32, u32, Vec3, f64),
    ) -> VisitStats {
        let rc2 = rcut * rcut;
        let mut stats = VisitStats::default();
        for (offsets, guard) in &plan.paths {
            let cell_i = src.atoms_in(q + offsets[0]);
            let cell_j = src.atoms_in(q + offsets[1]);
            for &i in cell_i {
                for &j in cell_j {
                    stats.candidates += 1;
                    if i == j || (*guard && src.gid(i) > src.gid(j)) {
                        continue;
                    }
                    let d = src.disp(i, j);
                    let r2 = d.norm_sq();
                    if r2 < rc2 {
                        stats.accepted += 1;
                        f(i, j, d, r2.sqrt());
                    }
                }
            }
        }
        stats
    }

    #[test]
    fn batched_pairs_match_scalar_reference_bitwise() {
        let rcut = 1.1;
        let (lat, store) = setup(300, 4.0, rcut); // ρ_cell high enough to span chunks
        let src = PeriodicSource::new(&lat, &store);
        for plan in [
            PatternPlan::new(&shift_collapse(2), Dedup::Collapsed),
            PatternPlan::new(&generate_fs(2), Dedup::Guarded),
        ] {
            let mut batched: Vec<(u32, u32, [u64; 3], u64)> = vec![];
            let mut scalar: Vec<(u32, u32, [u64; 3], u64)> = vec![];
            let mut total_b = VisitStats::default();
            let mut total_s = VisitStats::default();
            for q in lat.cells() {
                total_b.merge(visit_pairs_in_cell_src(&src, &plan, rcut, q, |i, j, d, r| {
                    batched.push((
                        i,
                        j,
                        [d.x.to_bits(), d.y.to_bits(), d.z.to_bits()],
                        r.to_bits(),
                    ));
                }));
                total_s.merge(scalar_pairs(&src, &plan, rcut, q, &mut |i, j, d, r| {
                    scalar.push((i, j, [d.x.to_bits(), d.y.to_bits(), d.z.to_bits()], r.to_bits()));
                }));
            }
            assert_eq!(total_b, total_s, "counters must match the scalar loop exactly");
            // Chunking may reorder visits within a cell; the visited
            // multiset with bitwise displacements must be identical.
            batched.sort_unstable();
            scalar.sort_unstable();
            assert_eq!(batched, scalar);
        }
    }

    #[test]
    fn batched_kernels_are_exact_on_local_frames() {
        // A plain-difference (no-PBC) source exercises the dead-correction
        // encoding of the displacement rule: l = 0, half = ∞ must be a
        // bitwise no-op, never NaN.
        struct Plain<'a> {
            lat: &'a CellLattice,
            store: &'a AtomStore,
        }
        impl TupleSource for Plain<'_> {
            fn atoms_in(&self, q: IVec3) -> &[u32] {
                self.lat.cell_atoms(q)
            }
            fn pos(&self, i: u32) -> Vec3 {
                self.store.positions()[i as usize]
            }
            fn gid(&self, i: u32) -> u64 {
                self.store.ids()[i as usize]
            }
            fn disp(&self, i: u32, j: u32) -> Vec3 {
                self.pos(j) - self.pos(i)
            }
        }
        let rcut = 1.0;
        let (lat, store) = setup(120, 4.0, rcut);
        let src = Plain { lat: &lat, store: &store };
        let plan = PatternPlan::new(&shift_collapse(2), Dedup::Collapsed);
        let mut seen = 0u64;
        for q in lat.cells() {
            visit_pairs_in_cell_src(&src, &plan, rcut, q, |i, j, d, r| {
                seen += 1;
                let expect = src.disp(i, j);
                assert_eq!(d.x.to_bits(), expect.x.to_bits());
                assert_eq!(d.y.to_bits(), expect.y.to_bits());
                assert_eq!(d.z.to_bits(), expect.z.to_bits());
                assert!(r.is_finite());
            });
        }
        assert!(seen > 0);
    }
}
