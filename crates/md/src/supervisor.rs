//! Fault-recovery supervision: per-step physics guardrails plus
//! checkpoint/rollback orchestration over any [`Recoverable`] engine.
//!
//! The supervisor sits between a driver loop and a simulation. After every
//! step it checks invariants no healthy MD trajectory violates — finite
//! state, conserved atom count, bounded total-energy drift — and on a
//! violation *or* an unrecovered communication fault it rolls the engine
//! back to the last [`Checkpoint`] and replays, optionally with a reduced
//! timestep (graceful degradation). Engines stay decoupled: the serial
//! [`crate::Simulation`] and the distributed executors in `sc-parallel`
//! both implement [`Recoverable`].
//!
//! The escalation ladder, mildest rung first:
//!
//! 1. **rollback** — replay the interval from the last checkpoint;
//! 2. **dt backoff** — physics violations compound a timestep reduction
//!    ([`SupervisorConfig::dt_backoff`]), restored after
//!    [`SupervisorConfig::recovery_intervals`] clean intervals;
//! 3. **re-decomposition** — a fault naming a permanently dead rank
//!    ([`Recoverable::dead_rank`]) skips the rollback loop entirely and
//!    restores the last checkpoint onto the surviving ranks
//!    ([`Recoverable::restore_excluding`]), budgeted by
//!    [`SupervisorConfig::max_redecompositions`];
//! 4. **abort** — budgets exhausted; [`SupervisorError`] carries the
//!    diagnostics.

use crate::checkpoint::{Checkpoint, CheckpointError};
use sc_obs::trace::EventKind;
use sc_obs::{Registry, TraceSink, Tracer};
use std::fmt;
use std::path::PathBuf;

/// An engine the [`Supervisor`] can drive, roll back, and degrade.
pub trait Recoverable {
    /// The engine's unrecovered-fault type ([`std::convert::Infallible`]
    /// for engines that cannot fail mid-step).
    type Fault: std::error::Error;

    /// Advances one step, surfacing unrecovered faults. After an `Err` the
    /// engine state is unspecified; [`restore`](Recoverable::restore) must
    /// run before the next step.
    fn try_step(&mut self) -> Result<(), Self::Fault>;

    /// Snapshots the full phase-space state.
    fn checkpoint(&self) -> Checkpoint;

    /// Rewinds to a snapshot taken by [`checkpoint`](Recoverable::checkpoint).
    fn restore(&mut self, cp: &Checkpoint);

    /// Atoms currently in the simulation (conserved in a healthy run).
    fn atom_count(&self) -> usize;

    /// Total energy from the most recent force computation (no recompute).
    fn total_energy_estimate(&self) -> f64;

    /// Whether all positions, velocities, and forces are finite.
    fn state_is_finite(&self) -> bool;

    /// The integration timestep.
    fn timestep(&self) -> f64;

    /// Changes the integration timestep.
    fn set_timestep(&mut self, dt: f64);

    /// Steps completed.
    fn steps_done(&self) -> u64;

    /// When `fault` means a rank is permanently dead (rollback cannot
    /// help — replaying delivers into the same silence), the dead rank's
    /// index. The default — engines with no notion of rank death — is
    /// `None`, which routes every fault down the rollback path.
    fn dead_rank(_fault: &Self::Fault) -> Option<usize> {
        None
    }

    /// Restores `cp` onto a decomposition that excludes `exclude`,
    /// re-partitioning the snapshot over the survivors. Engines that cannot
    /// re-decompose keep the default, which refuses (the supervisor then
    /// aborts with [`SupervisorError::RankLost`]).
    ///
    /// # Errors
    /// A human-readable reason re-decomposition is impossible (no feasible
    /// surviving grid, unsupported engine, …).
    fn restore_excluding(&mut self, _cp: &Checkpoint, _exclude: &[usize]) -> Result<(), String> {
        Err("engine does not support re-decomposition onto survivors".to_string())
    }
}

/// Supervision policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Steps between checkpoints.
    pub checkpoint_every: u64,
    /// Consecutive rollbacks (without completing a checkpoint interval)
    /// before giving up.
    pub max_rollbacks: u32,
    /// Relative total-energy drift allowed between checkpoints (`None`
    /// disables the energy guardrail — e.g. for thermostatted runs).
    pub energy_drift_tol: Option<f64>,
    /// Timestep multiplier applied on each physics-invariant rollback
    /// (1.0 = no degradation). Compounds across repeated violations.
    pub dt_backoff: f64,
    /// Floor for the degraded timestep.
    pub min_dt: f64,
    /// Clean checkpoint intervals (no rollback in between) after which a
    /// backed-off timestep is restored to its original value. `0` disables
    /// restoration: once degraded, the run stays degraded.
    pub recovery_intervals: u32,
    /// Re-decompositions onto a surviving rank set before giving up (each
    /// lost rank spends one).
    pub max_redecompositions: u32,
    /// When set, every checkpoint is also written to
    /// `<dir>/checkpoint-<step>.sc` for out-of-process recovery.
    pub checkpoint_dir: Option<PathBuf>,
    /// Metrics registry the supervisor reports recovery events into
    /// (`supervisor.checkpoints_saved`, `supervisor.rollbacks`,
    /// `supervisor.comm_faults`, `supervisor.invariant_violations`).
    /// Disabled by default — [`RecoveryStats`] stays authoritative either
    /// way.
    pub metrics: Registry,
    /// Event tracer recovery markers (checkpoint / rollback / fault) are
    /// emitted into, stamped with the engine's current step. Disabled by
    /// default.
    pub tracer: Tracer,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            checkpoint_every: 10,
            max_rollbacks: 8,
            energy_drift_tol: None,
            dt_backoff: 1.0,
            min_dt: 0.0,
            recovery_intervals: 0,
            max_redecompositions: 2,
            checkpoint_dir: None,
            metrics: Registry::disabled(),
            tracer: Tracer::disabled(),
        }
    }
}

/// Recovery accounting, the supervision counterpart of the per-step
/// [`crate::Telemetry`] snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Checkpoints taken.
    pub checkpoints_saved: u64,
    /// Rollback-and-replay events.
    pub rollbacks: u64,
    /// Rollbacks caused by unrecovered communication faults.
    pub comm_faults: u64,
    /// Rollbacks caused by physics-invariant violations.
    pub invariant_violations: u64,
    /// Re-decompositions onto a surviving rank set after a rank death.
    pub redecompositions: u64,
    /// Ranks excluded across all re-decompositions.
    pub ranks_lost: u64,
    /// Backed-off timesteps restored after clean running.
    pub dt_restores: u64,
}

/// Why supervision gave up.
#[derive(Debug)]
pub enum SupervisorError {
    /// The engine kept faulting: the rollback budget was exhausted without
    /// completing a checkpoint interval.
    RollbacksExhausted {
        /// Rollbacks spent on the failing interval.
        rollbacks: u32,
        /// Description of the final fault or violation.
        last_fault: String,
    },
    /// A rank died and recovery by re-decomposition was impossible (budget
    /// exhausted or the engine/grid cannot shrink further).
    RankLost {
        /// The dead rank.
        rank: usize,
        /// Why re-decomposition could not proceed.
        detail: String,
    },
    /// A checkpoint could not be written to disk.
    Checkpoint(CheckpointError),
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::RollbacksExhausted { rollbacks, last_fault } => {
                write!(f, "gave up after {rollbacks} rollbacks; last fault: {last_fault}")
            }
            SupervisorError::RankLost { rank, detail } => {
                write!(f, "rank {rank} lost and not recoverable: {detail}")
            }
            SupervisorError::Checkpoint(e) => write!(f, "checkpointing failed: {e}"),
        }
    }
}

impl std::error::Error for SupervisorError {}

impl From<CheckpointError> for SupervisorError {
    fn from(e: CheckpointError) -> Self {
        SupervisorError::Checkpoint(e)
    }
}

/// Drives a [`Recoverable`] engine with guardrails and rollback recovery.
pub struct Supervisor {
    config: SupervisorConfig,
    /// The supervisor's event sink (tagged rank 0, lane
    /// [`u32::MAX`] so recovery markers sit on their own timeline row).
    tsink: TraceSink,
    stats: RecoveryStats,
    last_good: Option<Checkpoint>,
    /// Total energy at the last checkpoint, the drift reference.
    ref_energy: f64,
    /// Atom count captured at the first checkpoint (the conservation
    /// baseline).
    baseline_atoms: Option<usize>,
    /// Rollbacks since the last completed checkpoint interval.
    consecutive_rollbacks: u32,
    /// Compounding timestep degradation factor.
    dt_scale: f64,
    /// The undegraded timestep, captured at the first checkpoint (the
    /// dt-restore target).
    baseline_dt: Option<f64>,
    /// Checkpoint intervals completed without a rollback while degraded.
    clean_intervals: u32,
    /// Re-decompositions performed so far (spends the budget).
    redecompositions: u32,
}

impl Supervisor {
    /// Creates a supervisor with the given policy.
    pub fn new(config: SupervisorConfig) -> Self {
        Supervisor {
            tsink: config.tracer.sink(0, u32::MAX),
            config,
            stats: RecoveryStats::default(),
            last_good: None,
            ref_energy: 0.0,
            baseline_atoms: None,
            consecutive_rollbacks: 0,
            dt_scale: 1.0,
            baseline_dt: None,
            clean_intervals: 0,
            redecompositions: 0,
        }
    }

    /// Recovery accounting so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The most recent good snapshot, if any.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.last_good.as_ref()
    }

    fn save_checkpoint<S: Recoverable>(&mut self, sim: &mut S) -> Result<(), SupervisorError> {
        self.baseline_dt.get_or_insert(sim.timestep());
        // dt restoration happens *before* the snapshot, so the checkpoint
        // carries the restored timestep and a later rollback keeps it.
        if self.dt_scale < 1.0 && self.config.recovery_intervals > 0 {
            self.clean_intervals += 1;
            if self.clean_intervals >= self.config.recovery_intervals {
                self.dt_scale = 1.0;
                self.clean_intervals = 0;
                if let Some(dt) = self.baseline_dt {
                    sim.set_timestep(dt);
                }
                self.stats.dt_restores += 1;
                self.config.metrics.counter("supervisor.dt_restores").inc();
            }
        }
        let cp = sim.checkpoint();
        if let Some(dir) = &self.config.checkpoint_dir {
            cp.save(&dir.join(format!("checkpoint-{}.sc", cp.step)))?;
        }
        self.ref_energy = sim.total_energy_estimate();
        self.baseline_atoms.get_or_insert(sim.atom_count());
        self.last_good = Some(cp);
        self.stats.checkpoints_saved += 1;
        self.config.metrics.counter("supervisor.checkpoints_saved").inc();
        self.tsink.instant(sim.steps_done(), EventKind::Checkpoint);
        self.consecutive_rollbacks = 0;
        Ok(())
    }

    /// The physics guardrails; `None` means the step looks healthy.
    fn invariant_violation<S: Recoverable>(&self, sim: &S) -> Option<String> {
        if !sim.state_is_finite() {
            return Some("non-finite position, velocity, or force".to_string());
        }
        if let Some(base) = self.baseline_atoms {
            let now = sim.atom_count();
            if now != base {
                return Some(format!("atom count changed: {base} -> {now}"));
            }
        }
        if let Some(tol) = self.config.energy_drift_tol {
            let e = sim.total_energy_estimate();
            let drift = (e - self.ref_energy).abs();
            if drift > tol * self.ref_energy.abs().max(1.0) {
                return Some(format!(
                    "energy drift {drift:.3e} exceeds tolerance (reference {:.6e})",
                    self.ref_energy
                ));
            }
        }
        None
    }

    fn rollback<S: Recoverable>(
        &mut self,
        sim: &mut S,
        physics: bool,
        why: String,
    ) -> Result<(), SupervisorError> {
        if self.consecutive_rollbacks >= self.config.max_rollbacks {
            return Err(SupervisorError::RollbacksExhausted {
                rollbacks: self.consecutive_rollbacks,
                last_fault: why,
            });
        }
        self.consecutive_rollbacks += 1;
        self.clean_intervals = 0;
        self.stats.rollbacks += 1;
        self.config.metrics.counter("supervisor.rollbacks").inc();
        self.tsink.instant(sim.steps_done(), EventKind::Rollback);
        if !physics {
            self.tsink.instant(sim.steps_done(), EventKind::Fault);
        }
        if physics {
            self.stats.invariant_violations += 1;
            self.config.metrics.counter("supervisor.invariant_violations").inc();
        } else {
            self.stats.comm_faults += 1;
            self.config.metrics.counter("supervisor.comm_faults").inc();
        }
        let cp = self.last_good.as_ref().expect("rollback without a checkpoint");
        sim.restore(cp);
        if physics && self.config.dt_backoff < 1.0 {
            self.dt_scale *= self.config.dt_backoff;
            let dt = (self.baseline_dt.unwrap_or(cp.dt) * self.dt_scale).max(self.config.min_dt);
            sim.set_timestep(dt);
        }
        Ok(())
    }

    /// Recovery for a permanently dead rank: restore the last checkpoint
    /// onto the surviving rank set. Rollback is pointless here (every
    /// replay delivers into the same dead rank), so this rung neither
    /// spends nor requires rollback budget — and a successful
    /// re-decomposition resets it, since the failing rank is gone.
    fn handle_dead_rank<S: Recoverable>(
        &mut self,
        sim: &mut S,
        rank: usize,
        why: String,
    ) -> Result<(), SupervisorError> {
        if self.redecompositions >= self.config.max_redecompositions {
            return Err(SupervisorError::RankLost {
                rank,
                detail: format!(
                    "re-decomposition budget ({}) exhausted; {why}",
                    self.config.max_redecompositions
                ),
            });
        }
        let cp = self.last_good.clone().expect("dead-rank recovery without a checkpoint");
        self.tsink
            .instant(sim.steps_done(), EventKind::Redecompose { rank: rank as u32, lost: true });
        sim.restore_excluding(&cp, &[rank])
            .map_err(|detail| SupervisorError::RankLost { rank, detail })?;
        self.redecompositions += 1;
        self.stats.redecompositions += 1;
        self.stats.ranks_lost += 1;
        self.config.metrics.counter("supervisor.redecompositions").inc();
        self.consecutive_rollbacks = 0;
        self.clean_intervals = 0;
        Ok(())
    }

    /// Runs `steps` supervised steps on top of wherever `sim` currently is.
    /// Takes an initial checkpoint if none exists yet, then steps, checks,
    /// and recovers until the target step count is reached.
    ///
    /// # Errors
    /// [`SupervisorError::RollbacksExhausted`] when the same checkpoint
    /// interval keeps failing, [`SupervisorError::Checkpoint`] when a
    /// snapshot cannot be written to the configured directory.
    pub fn run<S: Recoverable>(&mut self, sim: &mut S, steps: u64) -> Result<(), SupervisorError> {
        if self.last_good.is_none() {
            self.save_checkpoint(sim)?;
        }
        let target = sim.steps_done() + steps;
        while sim.steps_done() < target {
            match sim.try_step() {
                Ok(()) => {
                    if let Some(why) = self.invariant_violation(sim) {
                        self.rollback(sim, true, why)?;
                        continue;
                    }
                    let since = sim.steps_done() - self.last_good.as_ref().map_or(0, |cp| cp.step);
                    if since >= self.config.checkpoint_every {
                        self.save_checkpoint(sim)?;
                    }
                }
                Err(e) => match S::dead_rank(&e) {
                    Some(rank) => self.handle_dead_rank(sim, rank, e.to_string())?,
                    None => self.rollback(sim, false, e.to_string())?,
                },
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_geom::Vec3;

    #[derive(Debug)]
    enum MockFault {
        Comm(&'static str),
        Dead(usize),
    }
    impl fmt::Display for MockFault {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                MockFault::Comm(s) => write!(f, "{s}"),
                MockFault::Dead(r) => write!(f, "rank {r} dead"),
            }
        }
    }
    impl std::error::Error for MockFault {}

    /// A scriptable engine: a step counter with injectable comm faults and
    /// one-shot invariant violations.
    struct MockSim {
        step: u64,
        dt: f64,
        atoms: usize,
        energy: f64,
        finite: bool,
        /// Steps whose `try_step` fails once (consumed on trigger).
        comm_fail_at: Vec<u64>,
        /// Steps after which the state turns non-finite once.
        blowup_at: Vec<u64>,
        /// `(step, rank)` pairs: stepping at `step` reports `rank` dead
        /// (consumed when the supervisor excludes the rank).
        dead_at: Vec<(u64, usize)>,
        /// When set, every step reports this rank dead (budget tests).
        always_dead: Option<usize>,
        /// When true, every step fails (for budget-exhaustion tests).
        always_fail: bool,
        /// Whether the mock honours `restore_excluding`.
        can_redecompose: bool,
        restores: u32,
        excluded: Vec<usize>,
    }

    impl MockSim {
        fn new() -> Self {
            MockSim {
                step: 0,
                dt: 1.0,
                atoms: 100,
                energy: -50.0,
                finite: true,
                comm_fail_at: vec![],
                blowup_at: vec![],
                dead_at: vec![],
                always_dead: None,
                always_fail: false,
                can_redecompose: true,
                restores: 0,
                excluded: vec![],
            }
        }
    }

    impl Recoverable for MockSim {
        type Fault = MockFault;
        fn try_step(&mut self) -> Result<(), MockFault> {
            if self.always_fail {
                return Err(MockFault::Comm("persistent fault"));
            }
            if let Some(r) = self.always_dead {
                return Err(MockFault::Dead(r));
            }
            if let Some(&(_, r)) = self.dead_at.iter().find(|&&(s, _)| s == self.step) {
                return Err(MockFault::Dead(r));
            }
            if let Some(i) = self.comm_fail_at.iter().position(|&s| s == self.step) {
                self.comm_fail_at.swap_remove(i);
                return Err(MockFault::Comm("scripted comm fault"));
            }
            self.step += 1;
            if let Some(i) = self.blowup_at.iter().position(|&s| s == self.step) {
                self.blowup_at.swap_remove(i);
                self.finite = false;
            }
            Ok(())
        }
        fn checkpoint(&self) -> Checkpoint {
            Checkpoint {
                layout: crate::checkpoint::SnapshotLayout::Serial,
                label: String::new(),
                step: self.step,
                dt: self.dt,
                box_lengths: Vec3::splat(1.0),
                species_masses: vec![1.0],
                ids: vec![],
                species: vec![],
                positions: vec![],
                velocities: vec![],
                forces: vec![],
            }
        }
        fn restore(&mut self, cp: &Checkpoint) {
            self.step = cp.step;
            self.dt = cp.dt;
            self.finite = true;
            self.restores += 1;
        }
        fn atom_count(&self) -> usize {
            self.atoms
        }
        fn total_energy_estimate(&self) -> f64 {
            self.energy
        }
        fn state_is_finite(&self) -> bool {
            self.finite
        }
        fn timestep(&self) -> f64 {
            self.dt
        }
        fn set_timestep(&mut self, dt: f64) {
            self.dt = dt;
        }
        fn steps_done(&self) -> u64 {
            self.step
        }
        fn dead_rank(fault: &MockFault) -> Option<usize> {
            match fault {
                MockFault::Dead(r) => Some(*r),
                MockFault::Comm(_) => None,
            }
        }
        fn restore_excluding(&mut self, cp: &Checkpoint, exclude: &[usize]) -> Result<(), String> {
            if !self.can_redecompose {
                return Err("mock cannot shrink".to_string());
            }
            self.excluded.extend_from_slice(exclude);
            self.dead_at.retain(|(_, r)| !exclude.contains(r));
            self.step = cp.step;
            self.dt = cp.dt;
            self.finite = true;
            self.restores += 1;
            Ok(())
        }
    }

    #[test]
    fn clean_run_checkpoints_and_finishes() {
        let mut sim = MockSim::new();
        let mut sup =
            Supervisor::new(SupervisorConfig { checkpoint_every: 5, ..Default::default() });
        sup.run(&mut sim, 20).unwrap();
        assert_eq!(sim.step, 20);
        // 1 initial + at steps 5, 10, 15, 20.
        assert_eq!(sup.stats().checkpoints_saved, 5);
        assert_eq!(sup.stats().rollbacks, 0);
    }

    #[test]
    fn comm_fault_rolls_back_and_replays() {
        let reg = Registry::new();
        let mut sim = MockSim::new();
        sim.comm_fail_at = vec![7];
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint_every: 5,
            metrics: reg.clone(),
            ..Default::default()
        });
        sup.run(&mut sim, 10).unwrap();
        assert_eq!(sim.step, 10);
        assert_eq!(sim.restores, 1);
        let s = sup.stats();
        assert_eq!(s.rollbacks, 1);
        assert_eq!(s.comm_faults, 1);
        assert_eq!(s.invariant_violations, 0);
        // The registry mirrors RecoveryStats.
        assert_eq!(reg.counter("supervisor.rollbacks").get(), 1);
        assert_eq!(reg.counter("supervisor.comm_faults").get(), 1);
        assert_eq!(reg.counter("supervisor.invariant_violations").get(), 0);
        assert_eq!(reg.counter("supervisor.checkpoints_saved").get(), s.checkpoints_saved);
    }

    #[test]
    fn recovery_markers_reach_the_tracer() {
        let tracer = Tracer::new();
        let mut sim = MockSim::new();
        sim.comm_fail_at = vec![3];
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint_every: 2,
            tracer: tracer.clone(),
            ..Default::default()
        });
        sup.run(&mut sim, 6).unwrap();
        let events = tracer.events();
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
        assert_eq!(count(EventKind::Checkpoint), sup.stats().checkpoints_saved);
        assert_eq!(count(EventKind::Rollback), sup.stats().rollbacks);
        assert_eq!(count(EventKind::Fault), sup.stats().comm_faults);
        // Markers live on the supervisor's own timeline row.
        assert!(events.iter().all(|e| e.rank == 0 && e.lane == u32::MAX));
    }

    #[test]
    fn invariant_violation_degrades_timestep() {
        let mut sim = MockSim::new();
        sim.blowup_at = vec![3];
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint_every: 10,
            dt_backoff: 0.5,
            min_dt: 0.1,
            ..Default::default()
        });
        sup.run(&mut sim, 6).unwrap();
        assert_eq!(sim.step, 6);
        assert_eq!(sup.stats().invariant_violations, 1);
        assert_eq!(sim.dt, 0.5, "timestep halved after the physics rollback");
    }

    #[test]
    fn rollback_budget_exhaustion_is_terminal() {
        let mut sim = MockSim::new();
        sim.always_fail = true;
        let mut sup = Supervisor::new(SupervisorConfig { max_rollbacks: 3, ..Default::default() });
        let err = sup.run(&mut sim, 5).unwrap_err();
        assert!(matches!(err, SupervisorError::RollbacksExhausted { rollbacks: 3, .. }), "{err}");
        assert_eq!(sup.stats().rollbacks, 3);
    }

    #[test]
    fn energy_drift_guardrail_fires() {
        let mut sim = MockSim::new();
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint_every: 100,
            energy_drift_tol: Some(0.01),
            max_rollbacks: 1,
            ..Default::default()
        });
        // Prime the reference, then shift the energy beyond 1%.
        sup.save_checkpoint(&mut sim).unwrap();
        sim.energy = -40.0;
        let err = sup.run(&mut sim, 5).unwrap_err();
        assert!(err.to_string().contains("energy drift"), "{err}");
        assert_eq!(sup.stats().invariant_violations, 1);
    }

    #[test]
    fn dead_rank_triggers_redecomposition_not_rollback() {
        let tracer = Tracer::new();
        let mut sim = MockSim::new();
        sim.dead_at = vec![(4, 2)];
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint_every: 3,
            tracer: tracer.clone(),
            ..Default::default()
        });
        sup.run(&mut sim, 10).unwrap();
        assert_eq!(sim.step, 10);
        assert_eq!(sim.excluded, vec![2]);
        let s = sup.stats();
        assert_eq!(s.redecompositions, 1);
        assert_eq!(s.ranks_lost, 1);
        assert_eq!(s.rollbacks, 0, "rank death takes the re-decomposition rung, not rollback");
        let marks = tracer
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Redecompose { rank: 2, lost: true })
            .count();
        assert_eq!(marks, 1);
    }

    #[test]
    fn redecomposition_budget_is_terminal() {
        let mut sim = MockSim::new();
        sim.always_dead = Some(1);
        let mut sup =
            Supervisor::new(SupervisorConfig { max_redecompositions: 2, ..Default::default() });
        let err = sup.run(&mut sim, 5).unwrap_err();
        assert!(matches!(err, SupervisorError::RankLost { rank: 1, .. }), "{err}");
        assert!(err.to_string().contains("budget"), "{err}");
        assert_eq!(sup.stats().redecompositions, 2);
    }

    #[test]
    fn engine_refusing_to_shrink_aborts_with_diagnostics() {
        let mut sim = MockSim::new();
        sim.dead_at = vec![(2, 0)];
        sim.can_redecompose = false;
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let err = sup.run(&mut sim, 5).unwrap_err();
        assert!(matches!(err, SupervisorError::RankLost { rank: 0, .. }), "{err}");
        assert!(err.to_string().contains("cannot shrink"), "{err}");
    }

    #[test]
    fn backed_off_timestep_restores_after_clean_intervals() {
        let mut sim = MockSim::new();
        sim.blowup_at = vec![2];
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint_every: 5,
            dt_backoff: 0.5,
            recovery_intervals: 2,
            ..Default::default()
        });
        // The blowup at step 2 backs dt off to 0.5; the checkpoint at 5 is
        // the first clean interval — not enough to restore yet.
        sup.run(&mut sim, 7).unwrap();
        assert_eq!(sim.dt, 0.5, "still degraded after one clean interval");
        // The checkpoint at 10 completes the second clean interval: dt is
        // restored *before* the snapshot, so the checkpoint carries it.
        sup.run(&mut sim, 3).unwrap();
        assert_eq!(sim.dt, 1.0, "restored after two clean intervals");
        assert_eq!(sup.stats().dt_restores, 1);
        assert_eq!(sup.last_checkpoint().unwrap().dt, 1.0);
        // A later comm rollback replays with the restored timestep.
        sim.comm_fail_at = vec![12];
        sup.run(&mut sim, 5).unwrap();
        assert_eq!(sim.dt, 1.0);
    }

    #[test]
    fn checkpoints_reach_disk_when_configured() {
        let dir = std::env::temp_dir().join(format!("sc-supervisor-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut sim = MockSim::new();
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint_every: 5,
            checkpoint_dir: Some(dir.clone()),
            ..Default::default()
        });
        sup.run(&mut sim, 5).unwrap();
        let cp = Checkpoint::load(&dir.join("checkpoint-5.sc")).unwrap();
        assert_eq!(cp.step, 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
