//! # sc-md — the UCP molecular-dynamics engine
//!
//! This crate turns the abstract computation-pattern algebra of `sc-core`
//! into a working MD engine: dynamic range-limited n-tuple enumeration over
//! a cell lattice, force evaluation for many-body potentials, and the three
//! simulation drivers the paper benchmarks against each other (§5):
//!
//! * **SC-MD** ([`Method::ShiftCollapse`]) — per-n shift-collapse patterns,
//!   redundancy-free enumeration, per-term cell lattices sized to each
//!   cutoff.
//! * **FS-MD** ([`Method::FullShell`]) — full-shell patterns with explicit
//!   reflective-duplicate filtering (the paper's naive baseline).
//! * **Hybrid-MD** ([`Method::Hybrid`]) — the production-code baseline: a
//!   Verlet pair neighbour list built from the full-shell pair pattern, with
//!   triplets (and quadruplets) pruned *from the pair list* instead of the
//!   cell structure, exploiting `r_cut-3 < r_cut-2`.
//!
//! The engine layers:
//!
//! * [`engine`] — per-cell tuple visitors for n = 2, 3, 4 with chain-cutoff
//!   filtering and per-path reflective-duplicate guards.
//! * [`methods`] — the method drivers mapping [`Method`] to patterns, dedup
//!   modes, and neighbour-list strategies.
//! * [`Simulation`] — the user-facing facade: velocity-Verlet NVE (plus an
//!   optional Berendsen thermostat), per-step force computation, energy and
//!   tuple-count accounting.
//! * [`mod@reference`] — O(Nⁿ) brute-force tuple enumeration and forces, the
//!   ground truth the test suite compares every method against.
//! * workload builders ([`build_fcc_lattice`], [`build_silica_like`],
//!   [`build_clustered_gas`],
//!   [`random_gas`]) for the benchmark systems.
//! * [`checkpoint`] / [`supervisor`] — fault-tolerant runtime support:
//!   checksummed binary snapshots of the full dynamic state and a
//!   physics-invariant supervisor that rolls a [`supervisor::Recoverable`]
//!   simulation back to the last good checkpoint when a step fails or an
//!   invariant (finiteness, atom conservation, energy drift) breaks.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod diagnostics;
pub mod engine;
pub mod io;
pub mod methods;
pub mod par;
pub mod reference;
pub mod supervisor;

mod error;
mod integrate;
mod sim;
mod stats;
mod telemetry;
mod workload;

pub use checkpoint::{Checkpoint, CheckpointError, SnapshotLayout};
pub use diagnostics::{
    chain_statistics, coordination_histogram, pair_virial_pressure, pair_virial_tensor,
    BondAngleDistribution, MeanSquaredDisplacement, RadialDistribution,
};
pub use engine::{Dedup, PatternPlan};
pub use error::{BuildError, CliError, Error};
pub use integrate::{berendsen_rescale, velocity_verlet_step};
pub use io::{read_xyz, write_xyz, XyzError};
pub use methods::Method;
pub use par::{AccumulatorPool, ForceAccumulator, LaneSlots, ThreadPool};
pub use sim::{RuntimeConfig, Simulation, SimulationBuilder};
pub use stats::{EnergyBreakdown, TupleCounts};
pub use supervisor::{Recoverable, RecoveryStats, Supervisor, SupervisorConfig, SupervisorError};
pub use telemetry::{Observer, Telemetry};
pub use workload::{
    build_clustered_gas, build_fcc_lattice, build_silica_like, random_gas, thermalize, LatticeSpec,
};
