//! Trajectory I/O: the extended-XYZ format every MD visualizer reads.

use sc_cell::{AtomStore, Species};
use sc_geom::{SimulationBox, Vec3};
use std::io::{self, BufRead, Write};

/// Default species → element-symbol mapping (Si/O for the silica system,
/// Ar for single-species runs beyond index 1).
fn symbol(species: Species, n_species: usize) -> &'static str {
    if n_species >= 2 {
        match species.index() {
            0 => "Si",
            1 => "O",
            _ => "X",
        }
    } else {
        "Ar"
    }
}

/// Writes one snapshot in extended-XYZ: atom count, a comment line carrying
/// the cubic box edge (`Lattice="L 0 0 0 L 0 0 0 L"`), then
/// `symbol x y z vx vy vz` rows in id order.
pub fn write_xyz(
    out: &mut impl Write,
    store: &AtomStore,
    bbox: &SimulationBox,
    comment: &str,
) -> io::Result<()> {
    let l = bbox.lengths();
    writeln!(out, "{}", store.len())?;
    writeln!(
        out,
        "Lattice=\"{} 0 0 0 {} 0 0 0 {}\" Properties=species:S:1:pos:R:3:vel:R:3 {comment}",
        l.x, l.y, l.z
    )?;
    let ns = store.species_masses().len();
    // Emit in id order so snapshots are comparable across runs.
    let mut order: Vec<usize> = (0..store.len()).collect();
    order.sort_by_key(|&i| store.ids()[i]);
    for i in order {
        let r = store.positions()[i];
        let v = store.velocities()[i];
        writeln!(
            out,
            "{} {:.12} {:.12} {:.12} {:.12} {:.12} {:.12}",
            symbol(store.species()[i], ns),
            r.x,
            r.y,
            r.z,
            v.x,
            v.y,
            v.z
        )?;
    }
    Ok(())
}

/// Reads one extended-XYZ snapshot written by [`write_xyz`]. Returns the
/// store (ids assigned in row order) and the box parsed from the lattice
/// header. `masses` supplies the per-species mass table (symbols map back
/// to indices: Si→0, O→1, anything else→0).
pub fn read_xyz(
    input: &mut impl BufRead,
    masses: Vec<f64>,
) -> io::Result<(AtomStore, SimulationBox)> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut line = String::new();
    input.read_line(&mut line)?;
    let n: usize = line.trim().parse().map_err(|_| bad("bad atom count"))?;
    line.clear();
    input.read_line(&mut line)?;
    let lat_start = line.find("Lattice=\"").ok_or_else(|| bad("missing Lattice"))? + 9;
    let lat_end = line[lat_start..].find('"').ok_or_else(|| bad("unterminated Lattice"))?;
    let nums: Vec<f64> = line[lat_start..lat_start + lat_end]
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| bad("bad lattice number")))
        .collect::<Result<_, _>>()?;
    if nums.len() != 9 {
        return Err(bad("lattice needs 9 numbers"));
    }
    let bbox = SimulationBox::new(Vec3::new(nums[0], nums[4], nums[8]));
    let multi = masses.len() >= 2;
    let mut store = AtomStore::new(masses);
    for id in 0..n {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Err(bad("truncated snapshot"));
        }
        let mut tok = line.split_whitespace();
        let sym = tok.next().ok_or_else(|| bad("missing symbol"))?;
        let sp = if multi && sym == "O" { Species::O } else { Species(0) };
        let mut vals = [0.0f64; 6];
        for v in &mut vals {
            *v = tok
                .next()
                .ok_or_else(|| bad("missing coordinate"))?
                .parse()
                .map_err(|_| bad("bad coordinate"))?;
        }
        store.push(
            id as u64,
            sp,
            Vec3::new(vals[0], vals[1], vals[2]),
            Vec3::new(vals[3], vals[4], vals[5]),
        );
    }
    Ok((store, bbox))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::build_silica_like;
    use std::io::BufReader;

    #[test]
    fn xyz_roundtrip_preserves_everything() {
        let (store, bbox) = build_silica_like(2, 7.16, [28.0855, 15.999], 0.3, 9);
        let mut buf = Vec::new();
        write_xyz(&mut buf, &store, &bbox, "step=42").unwrap();
        let (back, bbox2) =
            read_xyz(&mut BufReader::new(buf.as_slice()), vec![28.0855, 15.999]).unwrap();
        assert_eq!(back.len(), store.len());
        assert_eq!(bbox2.lengths(), bbox.lengths());
        for i in 0..store.len() {
            assert_eq!(back.species()[i], store.species()[i]);
            assert!((back.positions()[i] - store.positions()[i]).norm() < 1e-9);
            assert!((back.velocities()[i] - store.velocities()[i]).norm() < 1e-9);
        }
    }

    #[test]
    fn header_carries_comment_and_counts() {
        let (store, bbox) = build_silica_like(2, 7.16, [28.0855, 15.999], 0.0, 9);
        let mut buf = Vec::new();
        write_xyz(&mut buf, &store, &bbox, "test-comment").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap().trim(), store.len().to_string());
        let header = lines.next().unwrap();
        assert!(header.contains("Lattice="));
        assert!(header.contains("test-comment"));
        // Si and O both present.
        assert!(text.lines().any(|l| l.starts_with("Si ")));
        assert!(text.lines().any(|l| l.starts_with("O ")));
    }

    #[test]
    fn malformed_input_is_rejected() {
        let cases =
            ["", "3\nno lattice here\n", "2\nLattice=\"1 0 0 0 1 0 0 0 1\"\nAr 0 0 0 0 0 0\n"];
        for c in cases {
            assert!(
                read_xyz(&mut BufReader::new(c.as_bytes()), vec![1.0]).is_err(),
                "case {c:?} should fail"
            );
        }
    }
}
