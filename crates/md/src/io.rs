//! Trajectory I/O: the extended-XYZ format every MD visualizer reads.

use sc_cell::{AtomStore, Species};
use sc_geom::{SimulationBox, Vec3};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Default species → element-symbol mapping (Si/O for the silica system,
/// Ar for single-species runs beyond index 1).
fn symbol(species: Species, n_species: usize) -> &'static str {
    if n_species >= 2 {
        match species.index() {
            0 => "Si",
            1 => "O",
            _ => "X",
        }
    } else {
        "Ar"
    }
}

/// Writes one snapshot in extended-XYZ: atom count, a comment line carrying
/// the cubic box edge (`Lattice="L 0 0 0 L 0 0 0 L"`), then
/// `symbol x y z vx vy vz` rows in id order.
pub fn write_xyz(
    out: &mut impl Write,
    store: &AtomStore,
    bbox: &SimulationBox,
    comment: &str,
) -> io::Result<()> {
    let l = bbox.lengths();
    writeln!(out, "{}", store.len())?;
    writeln!(
        out,
        "Lattice=\"{} 0 0 0 {} 0 0 0 {}\" Properties=species:S:1:pos:R:3:vel:R:3 {comment}",
        l.x, l.y, l.z
    )?;
    let ns = store.species_masses().len();
    // Emit in id order so snapshots are comparable across runs.
    let mut order: Vec<usize> = (0..store.len()).collect();
    order.sort_by_key(|&i| store.ids()[i]);
    for i in order {
        let r = store.positions()[i];
        let v = store.velocities()[i];
        writeln!(
            out,
            "{} {:.12} {:.12} {:.12} {:.12} {:.12} {:.12}",
            symbol(store.species()[i], ns),
            r.x,
            r.y,
            r.z,
            v.x,
            v.y,
            v.z
        )?;
    }
    Ok(())
}

/// Why an extended-XYZ snapshot could not be read: I/O failure or one of
/// the malformed-input cases, each naming the offending row.
#[derive(Debug)]
pub enum XyzError {
    /// Underlying reader failure.
    Io(io::Error),
    /// The first line is not a non-negative atom count.
    BadAtomCount,
    /// The header has no parseable `Lattice="..."` entry of 9 numbers.
    BadLattice,
    /// The lattice diagonal is not positive and finite.
    DegenerateBox,
    /// The snapshot ended before all declared atoms were read.
    Truncated {
        /// Atoms the header declared.
        expected: usize,
        /// Complete rows actually present.
        got: usize,
    },
    /// An atom row is missing its symbol or one of its 6 numbers.
    ShortRow {
        /// 0-based atom row index.
        row: usize,
    },
    /// An atom row holds a token that does not parse as a number.
    BadNumber {
        /// 0-based atom row index.
        row: usize,
    },
    /// A coordinate or velocity is NaN or infinite.
    NonFinite {
        /// 0-based atom row index.
        row: usize,
    },
}

impl fmt::Display for XyzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XyzError::Io(e) => write!(f, "xyz read failed: {e}"),
            XyzError::BadAtomCount => write!(f, "first line is not an atom count"),
            XyzError::BadLattice => write!(f, "header has no Lattice=\"...\" with 9 numbers"),
            XyzError::DegenerateBox => {
                write!(f, "lattice diagonal must be positive and finite")
            }
            XyzError::Truncated { expected, got } => {
                write!(f, "snapshot truncated: {got} of {expected} atom rows")
            }
            XyzError::ShortRow { row } => {
                write!(f, "atom row {row} is missing fields (need symbol + 6 numbers)")
            }
            XyzError::BadNumber { row } => write!(f, "atom row {row} has an unparseable number"),
            XyzError::NonFinite { row } => {
                write!(f, "atom row {row} has a non-finite coordinate or velocity")
            }
        }
    }
}

impl std::error::Error for XyzError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XyzError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for XyzError {
    fn from(e: io::Error) -> Self {
        XyzError::Io(e)
    }
}

/// Reads one extended-XYZ snapshot written by [`write_xyz`]. Returns the
/// store (ids assigned in row order) and the box parsed from the lattice
/// header. `masses` supplies the per-species mass table (symbols map back
/// to indices: Si→0, O→1, anything else→0).
///
/// # Errors
/// [`XyzError`] naming the malformed element: bad counts, missing or
/// degenerate lattice, truncated snapshots, short rows, and non-finite
/// coordinates are all rejected instead of producing a poisoned store.
pub fn read_xyz(
    input: &mut impl BufRead,
    masses: Vec<f64>,
) -> Result<(AtomStore, SimulationBox), XyzError> {
    let mut line = String::new();
    input.read_line(&mut line)?;
    let n: usize = line.trim().parse().map_err(|_| XyzError::BadAtomCount)?;
    line.clear();
    input.read_line(&mut line)?;
    let lat_start = line.find("Lattice=\"").ok_or(XyzError::BadLattice)? + 9;
    let lat_end = line[lat_start..].find('"').ok_or(XyzError::BadLattice)?;
    let nums: Vec<f64> = line[lat_start..lat_start + lat_end]
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| XyzError::BadLattice))
        .collect::<Result<_, _>>()?;
    if nums.len() != 9 {
        return Err(XyzError::BadLattice);
    }
    let diag = Vec3::new(nums[0], nums[4], nums[8]);
    if !(diag.is_finite() && diag.x > 0.0 && diag.y > 0.0 && diag.z > 0.0) {
        return Err(XyzError::DegenerateBox);
    }
    let bbox = SimulationBox::new(diag);
    let multi = masses.len() >= 2;
    let mut store = AtomStore::new(masses);
    for id in 0..n {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Err(XyzError::Truncated { expected: n, got: id });
        }
        let mut tok = line.split_whitespace();
        let sym = tok.next().ok_or(XyzError::ShortRow { row: id })?;
        let sp = if multi && sym == "O" { Species::O } else { Species(0) };
        let mut vals = [0.0f64; 6];
        for v in &mut vals {
            *v = tok
                .next()
                .ok_or(XyzError::ShortRow { row: id })?
                .parse()
                .map_err(|_| XyzError::BadNumber { row: id })?;
        }
        if vals.iter().any(|v| !v.is_finite()) {
            return Err(XyzError::NonFinite { row: id });
        }
        store.push(
            id as u64,
            sp,
            Vec3::new(vals[0], vals[1], vals[2]),
            Vec3::new(vals[3], vals[4], vals[5]),
        );
    }
    Ok((store, bbox))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::build_silica_like;
    use std::io::BufReader;

    #[test]
    fn xyz_roundtrip_preserves_everything() {
        let (store, bbox) = build_silica_like(2, 7.16, [28.0855, 15.999], 0.3, 9);
        let mut buf = Vec::new();
        write_xyz(&mut buf, &store, &bbox, "step=42").unwrap();
        let (back, bbox2) =
            read_xyz(&mut BufReader::new(buf.as_slice()), vec![28.0855, 15.999]).unwrap();
        assert_eq!(back.len(), store.len());
        assert_eq!(bbox2.lengths(), bbox.lengths());
        for i in 0..store.len() {
            assert_eq!(back.species()[i], store.species()[i]);
            assert!((back.positions()[i] - store.positions()[i]).norm() < 1e-9);
            assert!((back.velocities()[i] - store.velocities()[i]).norm() < 1e-9);
        }
    }

    #[test]
    fn header_carries_comment_and_counts() {
        let (store, bbox) = build_silica_like(2, 7.16, [28.0855, 15.999], 0.0, 9);
        let mut buf = Vec::new();
        write_xyz(&mut buf, &store, &bbox, "test-comment").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap().trim(), store.len().to_string());
        let header = lines.next().unwrap();
        assert!(header.contains("Lattice="));
        assert!(header.contains("test-comment"));
        // Si and O both present.
        assert!(text.lines().any(|l| l.starts_with("Si ")));
        assert!(text.lines().any(|l| l.starts_with("O ")));
    }

    #[test]
    fn malformed_input_gets_typed_errors() {
        let lat = "Lattice=\"1 0 0 0 1 0 0 0 1\"";
        type Check = fn(&XyzError) -> bool;
        let cases: Vec<(String, Check)> = vec![
            (String::new(), |e| matches!(e, XyzError::BadAtomCount)),
            ("x\n".into(), |e| matches!(e, XyzError::BadAtomCount)),
            ("3\nno lattice here\n".into(), |e| matches!(e, XyzError::BadLattice)),
            ("1\nLattice=\"1 0 0\"\n".into(), |e| matches!(e, XyzError::BadLattice)),
            ("1\nLattice=\"0 0 0 0 1 0 0 0 1\"\nAr 0 0 0 0 0 0\n".into(), |e| {
                matches!(e, XyzError::DegenerateBox)
            }),
            ("1\nLattice=\"nan 0 0 0 1 0 0 0 1\"\nAr 0 0 0 0 0 0\n".into(), |e| {
                matches!(e, XyzError::DegenerateBox)
            }),
            (format!("2\n{lat}\nAr 0 0 0 0 0 0\n"), |e| {
                matches!(e, XyzError::Truncated { expected: 2, got: 1 })
            }),
            (format!("1\n{lat}\nAr 0 0\n"), |e| matches!(e, XyzError::ShortRow { row: 0 })),
            (format!("1\n{lat}\nAr 0 0 zero 0 0 0\n"), |e| {
                matches!(e, XyzError::BadNumber { row: 0 })
            }),
            (format!("1\n{lat}\nAr 0 0 inf 0 0 0\n"), |e| {
                matches!(e, XyzError::NonFinite { row: 0 })
            }),
            (format!("1\n{lat}\nAr 0 0 0 0 NaN 0\n"), |e| {
                matches!(e, XyzError::NonFinite { row: 0 })
            }),
        ];
        for (input, check) in cases {
            let err = read_xyz(&mut BufReader::new(input.as_bytes()), vec![1.0])
                .expect_err(&format!("case {input:?} should fail"));
            assert!(check(&err), "case {input:?} gave {err:?}");
        }
    }
}
