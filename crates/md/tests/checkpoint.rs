//! Checkpoint/rollback contract for the serial engine: a restored
//! simulation must continue the trajectory bitwise-identically to one that
//! was never interrupted, and the supervisor must recover injected
//! physics-invariant violations from the last snapshot.

use sc_geom::Vec3;
use sc_md::supervisor::{Recoverable, Supervisor, SupervisorConfig};
use sc_md::{build_fcc_lattice, BuildError, LatticeSpec, Method, Simulation};
use sc_potential::LennardJones;

fn mk_sim() -> Simulation {
    let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(5, 1.5599), 0.1, 42);
    Simulation::builder(store, bbox)
        .pair_potential(Box::new(LennardJones::reduced(2.5)))
        .method(Method::ShiftCollapse)
        .timestep(0.002)
        .build()
        .unwrap()
}

fn state_bits(sim: &Simulation) -> Vec<[u64; 6]> {
    let s = sim.store();
    (0..s.len())
        .map(|i| {
            let r = s.positions()[i];
            let v = s.velocities()[i];
            [
                r.x.to_bits(),
                r.y.to_bits(),
                r.z.to_bits(),
                v.x.to_bits(),
                v.y.to_bits(),
                v.z.to_bits(),
            ]
        })
        .collect()
}

/// Save, wreck the live state, restore (through a disk round-trip), and
/// continue: the trajectory must be bitwise identical to an uninterrupted
/// run of the same length.
#[test]
fn restore_continues_bitwise_identically() {
    let mut reference = mk_sim();
    reference.run(10);
    let expected = state_bits(&reference);

    let mut sim = mk_sim();
    sim.run(5);
    let cp = sim.checkpoint();
    assert_eq!(cp.step, 5);

    // Round-trip the snapshot through disk before trusting it.
    let path = std::env::temp_dir().join(format!("sc-ckpt-test-{}.sc", std::process::id()));
    cp.save(&path).unwrap();
    let loaded = sc_md::Checkpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Wreck the live state: the restore must not depend on anything left
    // behind.
    for r in sim.store_mut().positions_mut() {
        *r = Vec3::new(f64::NAN, 1e30, -7.0);
    }
    for v in sim.store_mut().velocities_mut() {
        *v = Vec3::new(9.9, f64::INFINITY, 0.0);
    }
    sim.set_timestep(0.04);

    sim.restore(&loaded);
    assert_eq!(sim.steps_done(), 5);
    assert_eq!(Recoverable::timestep(&sim), 0.002);
    sim.run(5);
    assert_eq!(state_bits(&sim), expected, "restored trajectory diverged bitwise");
}

/// The supervisor detects a non-finite state mid-run, rolls back to its
/// last checkpoint, and finishes the requested number of steps.
#[test]
fn supervisor_recovers_injected_blowup() {
    let mut reference = mk_sim();
    reference.run(8);
    let expected = state_bits(&reference);

    let mut sim = mk_sim();
    let mut sup =
        Supervisor::new(SupervisorConfig { checkpoint_every: 2, ..SupervisorConfig::default() });
    sup.run(&mut sim, 4).unwrap();
    // Inject a blowup: one atom's velocity goes non-finite.
    sim.store_mut().velocities_mut()[0] = Vec3::new(f64::NAN, 0.0, 0.0);
    sup.run(&mut sim, 4).unwrap();
    assert_eq!(sim.steps_done(), 8);
    assert!(sup.stats().rollbacks >= 1, "the injected NaN must trigger a rollback");
    assert!(sup.stats().invariant_violations >= 1);
    // Rollback replays from the last snapshot of the same trajectory, so
    // the recovered run still matches the clean one bitwise.
    assert_eq!(state_bits(&sim), expected, "recovered trajectory diverged");
}

#[test]
fn builder_rejects_degenerate_timestep_and_atoms() {
    let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(5, 1.5599), 0.1, 1);
    let build = |store, dt| {
        Simulation::builder(store, bbox)
            .pair_potential(Box::new(LennardJones::reduced(2.5)))
            .timestep(dt)
            .build()
    };
    for dt in [0.0, -0.001, f64::NAN, f64::INFINITY] {
        assert!(
            matches!(build(store.clone(), dt), Err(BuildError::Config { field: "timestep", .. })),
            "dt {dt} must be rejected"
        );
    }
    let mut bad = store.clone();
    bad.positions_mut()[3].y = f64::NAN;
    assert!(matches!(
        build(bad, 0.001),
        Err(BuildError::NonFiniteAtom { index: 3, what: "position" })
    ));
    let mut bad = store;
    bad.velocities_mut()[5].z = f64::INFINITY;
    assert!(matches!(
        build(bad, 0.001),
        Err(BuildError::NonFiniteAtom { index: 5, what: "velocity" })
    ));
}
