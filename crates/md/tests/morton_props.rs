//! Property-based tests of the Morton-ordered atom layout: re-sorting the
//! store along the Z-order curve is a *pure permutation* of slots. Every
//! physical observable — energies, per-species populations, net momentum —
//! and every tuple-enumeration counter must be unchanged, because the
//! filtered n-tuple force set is a set of atom *ids*, not slots.

use proptest::prelude::*;
use sc_cell::{AtomStore, CellLattice, Species};
use sc_geom::{SimulationBox, Vec3};
use sc_md::{Method, RuntimeConfig, Simulation};
use sc_potential::{LennardJones, StillingerWeber};

/// Random two-species gas in a cubic box large enough for the test cutoffs
/// (pair 1.6, triplet 0.9: the 3-cutoff minimum-image guard needs L ≥ 4.8).
fn store_strategy() -> impl Strategy<Value = (AtomStore, SimulationBox)> {
    (
        6.0f64..12.0,
        proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, -1.0f64..1.0, 0u8..2),
            8..64,
        ),
    )
        .prop_map(|(l, rows)| {
            let bbox = SimulationBox::cubic(l);
            let mut store = AtomStore::new(vec![1.0, 2.5]);
            for (i, &(x, y, z, v, s)) in rows.iter().enumerate() {
                store.push(
                    i as u64,
                    Species(s),
                    Vec3::new(x * l, y * l, z * l),
                    Vec3::new(v, -0.7 * v, 0.3 * v),
                );
            }
            (store, bbox)
        })
}

fn build_sim(store: AtomStore, bbox: SimulationBox, method: Method) -> Simulation {
    let sw = {
        let mut s = StillingerWeber::silicon();
        let scale = 0.9 / (s.a * s.sigma);
        s.sigma *= scale;
        s
    };
    // resort_every: 0 — the test controls the layout explicitly; the engine
    // must not re-sort behind our back before the "unsorted" baseline runs.
    Simulation::builder(store, bbox)
        .pair_potential(Box::new(LennardJones::reduced(1.6)))
        .triplet_potential(Box::new(sw))
        .method(method)
        .runtime(RuntimeConfig { resort_every: 0, ..RuntimeConfig::default() })
        .build()
        .unwrap()
}

fn species_counts(store: &AtomStore) -> [usize; 2] {
    let mut c = [0usize; 2];
    for s in store.species() {
        c[s.0 as usize] += 1;
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The permutation itself is pure: after `sort_by_cell` the store holds
    /// exactly the same (id, species, position, velocity) rows, bitwise,
    /// just in a different slot order — and sorting twice is a no-op.
    #[test]
    fn morton_sort_is_a_pure_permutation((store, bbox) in store_strategy()) {
        let mut sorted = store.clone();
        let lat = CellLattice::new(bbox, 1.6);
        sorted.sort_by_cell(&lat);
        prop_assert_eq!(sorted.len(), store.len());
        prop_assert_eq!(species_counts(&sorted), species_counts(&store));
        // Momentum is a sum over slots; permutation-invariance to 1e-12.
        prop_assert!((sorted.net_momentum() - store.net_momentum()).norm() < 1e-12);
        prop_assert!((sorted.kinetic_energy() - store.kinetic_energy()).abs() < 1e-12);
        // Undo through the id sort: rows must match the original bitwise.
        let mut back = sorted.clone();
        back.sort_by_id();
        let mut orig = store.clone();
        orig.sort_by_id();
        for i in 0..orig.len() {
            prop_assert_eq!(back.ids()[i], orig.ids()[i]);
            prop_assert_eq!(back.species()[i], orig.species()[i]);
            prop_assert_eq!(back.positions()[i].x.to_bits(), orig.positions()[i].x.to_bits());
            prop_assert_eq!(back.positions()[i].y.to_bits(), orig.positions()[i].y.to_bits());
            prop_assert_eq!(back.positions()[i].z.to_bits(), orig.positions()[i].z.to_bits());
            prop_assert_eq!(back.velocities()[i].x.to_bits(), orig.velocities()[i].x.to_bits());
        }
        // Idempotent: a second sort with the same lattice changes nothing.
        let mut twice = sorted.clone();
        twice.sort_by_cell(&lat);
        prop_assert_eq!(twice.ids(), sorted.ids());
    }

    /// Physics is layout-blind: a force computation on the Morton-sorted
    /// store visits exactly the same tuple set (identical `VisitStats`
    /// counters) and reproduces energies and net momentum to summation
    /// round-off, for every traversal method.
    #[test]
    fn resort_preserves_observables_and_tuple_counters(
        (store, bbox) in store_strategy(),
        method_ix in 0usize..3,
    ) {
        let method = Method::ALL[method_ix];
        let mut sorted_store = store.clone();
        sorted_store.sort_by_cell(&CellLattice::new(bbox, 1.6));

        let mut a = build_sim(store, bbox, method);
        let mut b = build_sim(sorted_store, bbox, method);
        let sa = a.compute_forces();
        let sb = b.compute_forces();

        // Tuple enumeration counters are *exactly* identical: the filtered
        // n-tuple set is defined on atom ids and cutoffs, never on slots.
        prop_assert_eq!(sa.tuples.pair.candidates, sb.tuples.pair.candidates);
        prop_assert_eq!(sa.tuples.pair.accepted, sb.tuples.pair.accepted);
        prop_assert_eq!(sa.tuples.triplet.candidates, sb.tuples.triplet.candidates);
        prop_assert_eq!(sa.tuples.triplet.accepted, sb.tuples.triplet.accepted);
        prop_assert_eq!(sa.tuples.quadruplet.accepted, sb.tuples.quadruplet.accepted);

        // Scalars agree to accumulation-order round-off.
        let tol = 1e-12;
        prop_assert!((sa.energy.pair - sb.energy.pair).abs() <= tol * sa.energy.pair.abs().max(1.0));
        prop_assert!(
            (sa.energy.triplet - sb.energy.triplet).abs()
                <= tol * sa.energy.triplet.abs().max(1.0)
        );
        prop_assert!((sa.virial - sb.virial).abs() <= tol * sa.virial.abs().max(1.0));
        prop_assert!((a.store().net_momentum() - b.store().net_momentum()).norm() < 1e-12);

        // Per-atom forces line up through the id → slot indirection. A
        // random gas has near-overlapping pairs with enormous r⁻¹³ forces,
        // so round-off tolerances must scale with the largest force in the
        // system, not with unity.
        let mut fa = a.store().clone();
        let mut fb = b.store().clone();
        fa.sort_by_id();
        fb.sort_by_id();
        let fmax = fa.forces().iter().map(|f| f.norm()).fold(1.0f64, f64::max);
        let n = fa.len() as f64;
        prop_assert!(
            (a.store().net_force() - b.store().net_force()).norm() <= 1e-12 * fmax * n
        );
        for i in 0..fa.len() {
            prop_assert_eq!(fa.ids()[i], fb.ids()[i]);
            let df = (fa.forces()[i] - fb.forces()[i]).norm();
            prop_assert!(df <= 1e-12 * fmax, "atom {} force mismatch {}", fa.ids()[i], df);
        }
    }
}
