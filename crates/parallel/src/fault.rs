//! Deterministic, seedable fault injection for the distributed runtime.
//!
//! A [`FaultPlan`] scripts transport failures per `(step, rank, channel)`:
//! dropped payloads, payloads delayed by one delivery attempt, bit
//! corruption (payload or header), and stalled ranks. The BSP executor
//! routes every send through [`FaultPlan::transmit`], so integration tests
//! can script any failure and assert that validation + retry + rollback
//! recover it. `FaultPlan::none()` is a guaranteed no-op: every message
//! passes through untouched.
//!
//! Faults are **one-shot**: each scripted fault fires once and is consumed.
//! [`FaultKind::Stall`] is attempt-based (it swallows the next `attempts`
//! delivery attempts from the rank) rather than step-based, so recovery by
//! rollback — which replays the same step numbers — converges instead of
//! re-triggering forever.
//!
//! The one exception is [`FaultKind::Crash`]: once fired it retires the
//! rank permanently — every later transmission from it is swallowed, across
//! rollbacks and replays, until [`FaultPlan::retire_rank`] removes the rank
//! from the plan (which the recovery layer does when it re-decomposes onto
//! the survivors).

use crate::msg::{Channel, Message, Payload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What a scripted fault does to the matched transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The payload vanishes; the receiver sees nothing for the slot.
    Drop,
    /// The payload is withheld for one delivery attempt and arrives on the
    /// next matching transmission (the retry) instead.
    Delay,
    /// The payload is delivered with flipped bits. With `header: false` a
    /// coordinate bit flips (caught by the checksum); with `header: true`
    /// the epoch stamp is altered (caught as an epoch mismatch).
    Corrupt {
        /// Corrupt the epoch stamp instead of the payload body.
        header: bool,
    },
    /// The rank goes unresponsive: its next `attempts` delivery attempts
    /// (across all channels) are swallowed. `attempts` ≤ the retry budget
    /// recovers in-step; more escalates to a rollback.
    Stall {
        /// Number of consecutive delivery attempts to swallow.
        attempts: u32,
    },
    /// The rank dies: it never transmits again. Unlike every other kind the
    /// effect is permanent — every delivery attempt from the rank is
    /// swallowed from the firing step on, including rollback replays — so
    /// only rank exclusion (re-decomposition over the survivors) recovers.
    Crash,
}

/// One scripted fault: fires the first time `rank` transmits on a matching
/// channel at or after `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// First step (epoch) at which the fault can fire.
    pub step: u64,
    /// The sending rank the fault applies to.
    pub rank: usize,
    /// Restrict to one communication slot; `None` matches any channel.
    pub channel: Option<Channel>,
    /// What happens to the matched transmission.
    pub kind: FaultKind,
}

impl Fault {
    /// Whether the fault fires on this transmission. A batched frame matches
    /// when *any* of its sections fills the scripted channel, so channel-
    /// targeted faults keep firing when the executor aggregates per-neighbor
    /// messages.
    fn matches(&self, step: u64, rank: usize, msg: &Message) -> bool {
        if step < self.step || rank != self.rank {
            return false;
        }
        let Some(want) = self.channel else { return true };
        match &msg.payload {
            Payload::Batch(sections) => sections.iter().any(|s| want.matches(s.channel)),
            _ => want.matches(msg.channel),
        }
    }
}

/// What the transport did to a message.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery {
    /// The message (possibly corrupted) reaches the receiver.
    Deliver(Message),
    /// Nothing reaches the receiver this attempt.
    Lost {
        /// The loss came from a stalled rank (escalates as
        /// [`crate::RuntimeError::RankStalled`] rather than `MissingHop`).
        stalled: bool,
    },
}

/// A record of one injected fault, for test assertions and fault-overhead
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The step (epoch) the fault fired in.
    pub step: u64,
    /// The sending rank.
    pub rank: usize,
    /// The communication slot that was hit.
    pub channel: Channel,
    /// The fault that fired.
    pub kind: FaultKind,
}

/// A deterministic schedule of transport faults. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Pending one-shot faults; fired faults are removed.
    faults: Vec<Fault>,
    /// Messages withheld by [`FaultKind::Delay`], keyed by sender + slot.
    held: Vec<(usize, Channel, Message)>,
    /// Ranks retired by a fired [`FaultKind::Crash`]: every transmission
    /// from them is swallowed until [`FaultPlan::retire_rank`].
    crashed: Vec<usize>,
    /// Log of every fault that fired (a crash is logged once, when it
    /// fires, not per swallowed attempt).
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: every transmission is delivered untouched.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds one scripted fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Whether any scripted *transient* fault is still pending. Crashed
    /// ranks are permanent state, not pending work, so they do not count.
    pub fn is_exhausted(&self) -> bool {
        self.faults.is_empty() && self.held.is_empty()
    }

    /// Whether the plan can still affect any transmission: pending faults,
    /// held (delayed) messages, or crashed ranks that swallow sends. An
    /// inert plan lets the transport skip the per-delivery retransmission
    /// copy entirely — the hot path for production runs.
    pub fn is_inert(&self) -> bool {
        self.faults.is_empty() && self.held.is_empty() && self.crashed.is_empty()
    }

    /// Every fault that has fired so far, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Scripted faults that have not fired yet (for reproducer bundles).
    pub fn pending(&self) -> &[Fault] {
        &self.faults
    }

    /// Ranks retired by a fired [`FaultKind::Crash`], in firing order.
    pub fn crashed_ranks(&self) -> &[usize] {
        &self.crashed
    }

    /// Removes `rank` from the plan entirely: its crashed status, its
    /// pending faults, and any messages held from it. The recovery layer
    /// calls this when it excludes the rank and re-decomposes — rank
    /// indices are renumbered over the survivors, so faults scripted for
    /// the dead rank must not re-fire against whichever rank inherits the
    /// index.
    pub fn retire_rank(&mut self, rank: usize) {
        self.crashed.retain(|&r| r != rank);
        self.faults.retain(|f| f.rank != rank);
        self.held.retain(|(r, _, _)| *r != rank);
    }

    /// A seed-derived plan of `count` single faults spread over
    /// `steps` steps and `ranks` ranks — for randomized robustness tests.
    /// The same seed always produces the same plan.
    pub fn random(seed: u64, count: usize, steps: u64, ranks: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::none();
        for _ in 0..count {
            let step = rng.gen_range(0..steps.max(1));
            let rank = rng.gen_range(0..ranks.max(1));
            let kind = match rng.gen_range(0u32..4) {
                0 => FaultKind::Drop,
                1 => FaultKind::Delay,
                2 => FaultKind::Corrupt { header: rng.gen_range(0u32..2) == 1 },
                _ => FaultKind::Stall { attempts: rng.gen_range(1u32..=2) },
            };
            plan = plan.with(Fault { step, rank, channel: None, kind });
        }
        plan
    }

    /// A seed-derived fault *storm* mixing all five kinds — including
    /// [`FaultKind::Crash`] — for chaos soak runs. Crashes are capped at
    /// `max_crashes` (and at `ranks - 1`, so at least one rank survives);
    /// the remaining `count` slots draw from the four transient kinds. The
    /// same seed always produces the same storm.
    pub fn storm(seed: u64, count: usize, steps: u64, ranks: usize, max_crashes: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::none();
        let mut crashes = 0usize;
        let crash_budget = max_crashes.min(ranks.saturating_sub(1));
        for _ in 0..count {
            let step = rng.gen_range(0..steps.max(1));
            let rank = rng.gen_range(0..ranks.max(1));
            let kind = match rng.gen_range(0u32..5) {
                0 => FaultKind::Drop,
                1 => FaultKind::Delay,
                2 => FaultKind::Corrupt { header: rng.gen_range(0u32..2) == 1 },
                3 => FaultKind::Stall { attempts: rng.gen_range(1u32..=2) },
                _ if crashes < crash_budget => {
                    crashes += 1;
                    FaultKind::Crash
                }
                _ => FaultKind::Drop,
            };
            plan = plan.with(Fault { step, rank, channel: None, kind });
        }
        plan
    }

    /// Routes one delivery attempt through the plan. `step` is the sender's
    /// epoch, `from` the sending rank; the channel is read off the message
    /// stamp. Consumes at most one pending fault.
    pub fn transmit(&mut self, step: u64, from: usize, msg: Message) -> Delivery {
        let channel = msg.channel;
        // A crashed rank never transmits again: every attempt is swallowed
        // (and nothing it held is released).
        if self.crashed.contains(&from) {
            return Delivery::Lost { stalled: true };
        }
        // A message withheld by an earlier Delay fault is released by the
        // next matching attempt (the retry carries a fresh copy; the held
        // original is what "arrives late").
        if let Some(i) = self.held.iter().position(|(r, c, _)| *r == from && c.matches(channel)) {
            let (_, _, held) = self.held.swap_remove(i);
            return Delivery::Deliver(held);
        }
        let Some(i) = self.faults.iter().position(|f| f.matches(step, from, &msg)) else {
            return Delivery::Deliver(msg);
        };
        let kind = self.faults[i].kind;
        let target = self.faults[i].channel;
        self.events.push(FaultEvent { step, rank: from, channel, kind });
        match kind {
            FaultKind::Drop => {
                self.faults.swap_remove(i);
                Delivery::Lost { stalled: false }
            }
            FaultKind::Delay => {
                self.faults.swap_remove(i);
                self.held.push((from, channel, msg));
                Delivery::Lost { stalled: false }
            }
            FaultKind::Corrupt { header } => {
                self.faults.swap_remove(i);
                Delivery::Deliver(corrupt(msg, header, target))
            }
            FaultKind::Stall { attempts } => {
                if attempts <= 1 {
                    self.faults.swap_remove(i);
                } else {
                    self.faults[i].kind = FaultKind::Stall { attempts: attempts - 1 };
                }
                Delivery::Lost { stalled: true }
            }
            FaultKind::Crash => {
                self.faults.swap_remove(i);
                self.crashed.push(from);
                Delivery::Lost { stalled: true }
            }
        }
    }
}

/// Flips bits in a message without re-stamping, so verification fails.
/// Inside a batched frame the body corruption lands on the first section
/// matching the fault's `target` channel (or the first section when the
/// fault was unscoped), so a corrupt-channel fault still localizes to the
/// per-channel section it scripted.
fn corrupt(mut msg: Message, header: bool, target: Option<Channel>) -> Message {
    if header {
        msg.epoch = msg.epoch.wrapping_add(1);
        return msg;
    }
    match &mut msg.payload {
        Payload::Migrate(v) if !v.is_empty() => {
            v[0].position.x = flip_low_bit(v[0].position.x);
        }
        Payload::Ghosts(v) if !v.is_empty() => {
            v[0].position.x = flip_low_bit(v[0].position.x);
        }
        Payload::Forces(v) if !v.is_empty() => {
            v[0].force.x = flip_low_bit(v[0].force.x);
        }
        Payload::Batch(sections) if !sections.is_empty() => {
            let i = sections
                .iter()
                .position(|s| target.is_none_or(|c| c.matches(s.channel)))
                .unwrap_or(0);
            let hit = std::mem::replace(
                &mut sections[i],
                Message::stamped(0, 0, Channel::Ghosts { hop: 0 }, Payload::Ghosts(vec![])),
            );
            sections[i] = corrupt(hit, false, None);
        }
        // An empty payload has no body bits; corrupt the checksum itself.
        _ => msg.checksum ^= 1,
    }
    msg
}

fn flip_low_bit(x: f64) -> f64 {
    f64::from_bits(x.to_bits() ^ 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(epoch: u64, channel: Channel) -> Message {
        Message::stamped(0, epoch, channel, Payload::Ghosts(vec![]))
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut plan = FaultPlan::none();
        let ch = Channel::Ghosts { hop: 0 };
        let m = msg(3, ch);
        assert_eq!(plan.transmit(3, 0, m.clone()), Delivery::Deliver(m));
        assert!(plan.events().is_empty());
        assert!(plan.is_exhausted());
    }

    #[test]
    fn drop_fires_once_on_matching_slot() {
        let ch = Channel::Ghosts { hop: 1 };
        let mut plan = FaultPlan::none().with(Fault {
            step: 2,
            rank: 1,
            channel: Some(ch),
            kind: FaultKind::Drop,
        });
        // Wrong rank / too-early step / wrong channel pass through.
        assert!(matches!(plan.transmit(2, 0, msg(2, ch)), Delivery::Deliver(_)));
        assert!(matches!(plan.transmit(1, 1, msg(1, ch)), Delivery::Deliver(_)));
        assert!(matches!(
            plan.transmit(2, 1, msg(2, Channel::Forces { hop: 1 })),
            Delivery::Deliver(_)
        ));
        // Matching attempt is dropped, then the fault is spent.
        assert_eq!(plan.transmit(2, 1, msg(2, ch)), Delivery::Lost { stalled: false });
        assert!(matches!(plan.transmit(2, 1, msg(2, ch)), Delivery::Deliver(_)));
        assert_eq!(plan.events().len(), 1);
        assert!(plan.is_exhausted());
    }

    #[test]
    fn delay_releases_original_on_retry() {
        let ch = Channel::Migrate { axis: 0, dir: 1 };
        let mut plan = FaultPlan::none().with(Fault {
            step: 0,
            rank: 0,
            channel: Some(ch),
            kind: FaultKind::Delay,
        });
        let original = msg(0, ch);
        assert_eq!(plan.transmit(0, 0, original.clone()), Delivery::Lost { stalled: false });
        assert!(!plan.is_exhausted(), "held message still pending");
        // The retry's copy is discarded; the held original arrives late.
        assert_eq!(plan.transmit(0, 0, original.clone()), Delivery::Deliver(original));
        assert!(plan.is_exhausted());
    }

    #[test]
    fn corrupt_breaks_verification() {
        let ch = Channel::Ghosts { hop: 0 };
        let body = Payload::Ghosts(vec![crate::msg::GhostMsg {
            id: 9,
            species: sc_cell::Species(0),
            position: sc_geom::Vec3::new(1.0, 2.0, 3.0),
        }]);
        let mut plan = FaultPlan::none().with(Fault {
            step: 0,
            rank: 0,
            channel: None,
            kind: FaultKind::Corrupt { header: false },
        });
        let m = Message::stamped(0, 0, ch, body.clone());
        let Delivery::Deliver(bad) = plan.transmit(0, 0, m) else { panic!("corrupt delivers") };
        assert!(matches!(bad.verify(1, 0, ch), Err(crate::RuntimeError::ChecksumMismatch { .. })));

        let mut plan = FaultPlan::none().with(Fault {
            step: 0,
            rank: 0,
            channel: None,
            kind: FaultKind::Corrupt { header: true },
        });
        let m = Message::stamped(0, 0, ch, body);
        let Delivery::Deliver(bad) = plan.transmit(0, 0, m) else { panic!("corrupt delivers") };
        assert!(matches!(bad.verify(1, 0, ch), Err(crate::RuntimeError::EpochMismatch { .. })));
    }

    #[test]
    fn corrupting_empty_payload_still_detected() {
        let ch = Channel::Forces { hop: 2 };
        let mut plan = FaultPlan::none().with(Fault {
            step: 0,
            rank: 0,
            channel: None,
            kind: FaultKind::Corrupt { header: false },
        });
        let Delivery::Deliver(bad) = plan.transmit(0, 0, msg(0, ch)) else { panic!() };
        assert!(bad.verify(1, 0, ch).is_err());
    }

    #[test]
    fn stall_swallows_n_attempts_then_recovers() {
        let mut plan = FaultPlan::none().with(Fault {
            step: 1,
            rank: 2,
            channel: None,
            kind: FaultKind::Stall { attempts: 2 },
        });
        let ch = Channel::Ghosts { hop: 0 };
        assert_eq!(plan.transmit(1, 2, msg(1, ch)), Delivery::Lost { stalled: true });
        assert_eq!(plan.transmit(1, 2, msg(1, ch)), Delivery::Lost { stalled: true });
        assert!(matches!(plan.transmit(1, 2, msg(1, ch)), Delivery::Deliver(_)));
        assert_eq!(plan.events().len(), 2);
    }

    #[test]
    fn crash_is_permanent_until_retired() {
        let ch = Channel::Ghosts { hop: 0 };
        let mut plan = FaultPlan::none().with(Fault {
            step: 3,
            rank: 1,
            channel: None,
            kind: FaultKind::Crash,
        });
        // Before the firing step the rank transmits normally.
        assert!(matches!(plan.transmit(2, 1, msg(2, ch)), Delivery::Deliver(_)));
        // The crash fires and is logged exactly once...
        assert_eq!(plan.transmit(3, 1, msg(3, ch)), Delivery::Lost { stalled: true });
        assert_eq!(plan.events().len(), 1);
        assert_eq!(plan.crashed_ranks(), &[1]);
        // ...then every later attempt is swallowed silently, across steps,
        // channels, and rollback replays of earlier steps.
        for step in [3u64, 4, 5, 0, 3] {
            assert_eq!(
                plan.transmit(step, 1, msg(step, Channel::Forces { hop: 1 })),
                Delivery::Lost { stalled: true }
            );
        }
        assert_eq!(plan.events().len(), 1, "a crash is logged once, not per attempt");
        // Other ranks are unaffected, and the plan counts as exhausted:
        // crashed state is permanent, not pending work.
        assert!(matches!(plan.transmit(3, 0, msg(3, ch)), Delivery::Deliver(_)));
        assert!(plan.is_exhausted());
        // Retiring the rank clears the crashed status.
        plan.retire_rank(1);
        assert!(plan.crashed_ranks().is_empty());
        assert!(matches!(plan.transmit(9, 1, msg(9, ch)), Delivery::Deliver(_)));
    }

    #[test]
    fn retire_rank_clears_pending_faults_and_held_messages() {
        let ch = Channel::Migrate { axis: 0, dir: 0 };
        let mut plan = FaultPlan::none()
            .with(Fault { step: 0, rank: 2, channel: None, kind: FaultKind::Delay })
            .with(Fault { step: 5, rank: 2, channel: None, kind: FaultKind::Drop })
            .with(Fault { step: 5, rank: 0, channel: None, kind: FaultKind::Drop });
        // Fire the delay so a message is held from rank 2.
        assert_eq!(plan.transmit(0, 2, msg(0, ch)), Delivery::Lost { stalled: false });
        assert!(!plan.is_exhausted());
        plan.retire_rank(2);
        // Rank 2's pending drop and held message are gone; rank 0's fault
        // survives.
        assert_eq!(plan.pending().len(), 1);
        assert_eq!(plan.pending()[0].rank, 0);
        assert!(matches!(plan.transmit(6, 2, msg(6, ch)), Delivery::Deliver(_)));
        assert_eq!(plan.transmit(6, 0, msg(6, ch)), Delivery::Lost { stalled: false });
    }

    #[test]
    fn storm_is_seed_deterministic_and_caps_crashes() {
        let a = FaultPlan::storm(11, 40, 200, 8, 2);
        let b = FaultPlan::storm(11, 40, 200, 8, 2);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.faults.len(), 40);
        let crashes = a.faults.iter().filter(|f| f.kind == FaultKind::Crash).count();
        assert!(crashes <= 2, "crash budget respected, got {crashes}");
        for f in &a.faults {
            assert!(f.step < 200);
            assert!(f.rank < 8);
        }
        // With a big enough draw some storm contains a crash.
        let any_crash = (0..16).any(|s| {
            FaultPlan::storm(s, 40, 200, 8, 2).faults.iter().any(|f| f.kind == FaultKind::Crash)
        });
        assert!(any_crash, "storms can script crashes");
        // A one-rank world never crashes its only rank.
        let solo = FaultPlan::storm(11, 40, 200, 1, 4);
        assert!(solo.faults.iter().all(|f| f.kind != FaultKind::Crash));
    }

    #[test]
    fn random_plan_is_seed_deterministic() {
        let a = FaultPlan::random(7, 5, 100, 8);
        let b = FaultPlan::random(7, 5, 100, 8);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.faults.len(), 5);
        let c = FaultPlan::random(8, 5, 100, 8);
        assert_ne!(a.faults, c.faults, "different seed, different plan");
        for f in &a.faults {
            assert!(f.step < 100);
            assert!(f.rank < 8);
        }
    }
}
