//! Threaded executor: one OS thread per rank, crossbeam channels as the
//! interconnect — true concurrent message passing with the same per-phase
//! protocol (and therefore bitwise-identical physics) as the BSP executor.

use crate::comm::{CommStats, GhostPlan};
use crate::error::SetupError;
use crate::grid::RankGrid;
use crate::msg::{AtomMsg, Message, Payload};
use crate::rank::{halo_width_for, ForceField, RankState};
use crossbeam_channel::{unbounded, Receiver, Sender};
use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox};
use sc_md::EnergyBreakdown;
use std::sync::Arc;

/// A phase-tagged wire message.
type Wire = (usize, Message);

/// Buffers out-of-phase messages: a fast neighbour may send phase k+1
/// traffic while this rank still waits on phase k from a slow one.
struct Mailbox {
    rx: Receiver<Wire>,
    pending: Vec<Wire>,
}

impl Mailbox {
    fn recv_phase(&mut self, phase: u64) -> (usize, Payload) {
        if let Some(pos) = self.pending.iter().position(|(_, m)| m.phase == phase) {
            let (from, m) = self.pending.swap_remove(pos);
            return (from, m.payload);
        }
        loop {
            let (from, m) = self.rx.recv().expect("rank channel closed early");
            if m.phase == phase {
                return (from, m.payload);
            }
            self.pending.push((from, m));
        }
    }
}

/// Runs a distributed simulation with one thread per rank. One-shot: builds
/// the rank states, runs `steps` velocity-Verlet steps, and returns the
/// gathered store (sorted by id), the final-step global energy breakdown,
/// and aggregated communication statistics.
pub struct ThreadedSim;

impl ThreadedSim {
    /// Executes the simulation. See [`crate::DistributedSim::new`] for the
    /// validity requirements (shared via the same constructor checks).
    pub fn run(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
        steps: usize,
    ) -> Result<(AtomStore, EnergyBreakdown, CommStats), SetupError> {
        // Reuse the BSP constructor's validation by building it (cheap) —
        // the threaded run then constructs its own states.
        let grid = RankGrid::new(pdims, bbox);
        let width = halo_width_for(&ff, &grid);
        let sub = grid.rank_box_lengths();
        for a in 0..3 {
            if width > sub[a] + 1e-12 {
                return Err(SetupError::HaloTooDeep { halo: width, sub_box: sub[a], axis: a });
            }
        }
        let plan = GhostPlan::for_method(ff.method, width);
        let ff = Arc::new(ff);
        let nranks = grid.len();
        let mut txs: Vec<Sender<Wire>> = Vec::with_capacity(nranks);
        let mut rxs: Vec<Receiver<Wire>> = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let states: Vec<RankState> =
            (0..nranks).map(|r| RankState::new(r, grid, &store, &ff)).collect();

        let results: Vec<(RankState, EnergyBreakdown)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for (rank, state) in states.into_iter().enumerate() {
                let txs = txs.clone();
                let rx = rxs.remove(0);
                let plan = plan.clone();
                let ff = Arc::clone(&ff);
                handles.push(
                    scope.spawn(move || rank_main(state, rank, grid, plan, ff, txs, rx, dt, steps)),
                );
            }
            handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
        });

        let mut energy = EnergyBreakdown::default();
        let mut stats = CommStats::default();
        let mut atoms: Vec<AtomMsg> = Vec::new();
        let mut masses = vec![1.0];
        for (state, e) in &results {
            energy.pair += e.pair;
            energy.triplet += e.triplet;
            energy.quadruplet += e.quadruplet;
            stats.merge(&state.stats);
            atoms.extend(state.owned_atoms());
            masses = state.store().species_masses().to_vec();
        }
        atoms.sort_by_key(|a| a.id);
        let mut out = AtomStore::new(masses);
        for a in &atoms {
            out.push(a.id, a.species, a.position, a.velocity);
        }
        Ok((out, energy, stats))
    }
}

/// The per-rank thread body: the same phase sequence as the BSP executor.
#[allow(clippy::too_many_arguments)]
fn rank_main(
    mut state: RankState,
    rank: usize,
    grid: RankGrid,
    plan: GhostPlan,
    ff: Arc<ForceField>,
    txs: Vec<Sender<Wire>>,
    rx: Receiver<Wire>,
    dt: f64,
    steps: usize,
) -> (RankState, EnergyBreakdown) {
    let mut mailbox = Mailbox { rx, pending: Vec::new() };
    let mut phase = 0u64;
    let mut last_energy = EnergyBreakdown::default();

    let send = |state: &mut RankState, to: usize, phase: u64, payload: Payload| {
        state.stats.record_send(to, payload.wire_bytes());
        txs[to].send((rank, Message { phase, payload })).expect("send failed");
    };

    let exchange_and_compute =
        |state: &mut RankState, phase: &mut u64, mailbox: &mut Mailbox| -> EnergyBreakdown {
            let t_exchange = std::time::Instant::now();
            state.drop_ghosts();
            for (hop, &(axis, recv_dir)) in plan.hops.iter().enumerate() {
                let band = state.collect_ghost_band(&plan, axis, recv_dir);
                let to = grid.neighbor(rank, axis, -recv_dir);
                send(state, to, *phase, Payload::Ghosts(band));
                let (from, payload) = mailbox.recv_phase(*phase);
                match payload {
                    Payload::Ghosts(g) => state.absorb_ghosts(hop, from, &g),
                    other => panic!("expected ghosts in phase {}, got {other:?}", *phase),
                }
                *phase += 1;
            }
            state.stats.phases.exchange_s += t_exchange.elapsed().as_secs_f64();
            let (energy, _tuples, _phases) = state.compute_forces(&ff);
            let t_reduce = std::time::Instant::now();
            for hop in (0..plan.hops.len()).rev() {
                let (axis, recv_dir) = plan.hops[hop];
                let (forces, to) = state.collect_ghost_forces(hop);
                let to = to.unwrap_or_else(|| grid.neighbor(rank, axis, recv_dir));
                send(state, to, *phase, Payload::Forces(forces));
                let (_, payload) = mailbox.recv_phase(*phase);
                match payload {
                    Payload::Forces(f) => state.absorb_ghost_forces(hop, &f),
                    other => panic!("expected forces in phase {}, got {other:?}", *phase),
                }
                *phase += 1;
            }
            // The reverse ghost-force reduction is communication too; fold
            // it into the exchange phase of this rank's breakdown.
            state.stats.phases.exchange_s += t_reduce.elapsed().as_secs_f64();
            energy
        };

    for step in 0..steps {
        if step == 0 {
            // Prime forces; the energy is superseded by the in-step cycle.
            let _ = exchange_and_compute(&mut state, &mut phase, &mut mailbox);
        }
        state.vv_start(dt);
        state.drop_ghosts();
        // Migration, axis by axis.
        for axis in 0..3 {
            let (to_minus, to_plus) = state.collect_migrants(axis);
            let minus = grid.neighbor(rank, axis, -1);
            let plus = grid.neighbor(rank, axis, 1);
            send(&mut state, minus, phase, Payload::Migrate(to_minus));
            send(&mut state, plus, phase, Payload::Migrate(to_plus));
            for _ in 0..2 {
                let (_, payload) = mailbox.recv_phase(phase);
                match payload {
                    Payload::Migrate(a) => state.absorb_migrants(&a),
                    other => panic!("expected migrants in phase {phase}, got {other:?}"),
                }
            }
            phase += 1;
        }
        last_energy = exchange_and_compute(&mut state, &mut phase, &mut mailbox);
        state.vv_finish(dt);
    }
    (state, last_energy)
}
