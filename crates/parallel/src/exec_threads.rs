//! Threaded executor: one OS thread per rank, crossbeam channels as the
//! interconnect — true concurrent message passing with the same per-phase
//! protocol (and therefore bitwise-identical physics) as the BSP executor.
//!
//! Every message is stamped (epoch, channel, checksum) and verified on
//! receipt, same as the BSP executor. Deterministic fault *injection* lives
//! in the BSP executor only — scripted faults need a reproducible delivery
//! order, which concurrent threads cannot provide — but validation here
//! protects against the same protocol-confusion failure modes.

use crate::comm::{CommStats, GhostPlan};
use crate::error::{RunError, RuntimeError};
use crate::grid::RankGrid;
use crate::health::{HealthConfig, HealthTracker, RankHealth};
use crate::msg::{AtomMsg, Channel, Message, Payload};
use crate::rank::{validate_decomposition, ForceField, RankState, DEFAULT_RESORT_EVERY};
use crossbeam_channel::{unbounded, Receiver, Sender};
use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox};
use sc_md::EnergyBreakdown;
use sc_obs::trace::EventKind;
use sc_obs::{Phase, Registry, TraceSink, Tracer};
use std::sync::Arc;

/// A wire message tagged with its sending rank.
type Wire = (usize, Message);

/// Buffers out-of-phase messages: a fast neighbour may send phase k+1
/// traffic while this rank still waits on phase k from a slow one.
struct Mailbox {
    rank: usize,
    rx: Receiver<Wire>,
    pending: Vec<Wire>,
    /// Per-peer health watchdog — protocol parity with the BSP executor:
    /// a stamp failure marks the sender suspect, and the flap breaker can
    /// declare a peer dead from the receive path alone.
    health: HealthTracker,
    tsink: TraceSink,
}

impl Mailbox {
    /// Receives the message for `phase` and verifies its stamp against the
    /// expected epoch and channel, feeding the sender's health watchdog.
    fn recv_validated(
        &mut self,
        phase: u64,
        epoch: u64,
        channel: Channel,
    ) -> Result<(usize, Payload), RuntimeError> {
        let (from, m) = if let Some(pos) = self.pending.iter().position(|(_, m)| m.phase == phase) {
            self.pending.swap_remove(pos)
        } else {
            loop {
                // A closed channel means a peer unwound mid-protocol; the
                // slot can never fill.
                let Ok((from, m)) = self.rx.recv() else {
                    return Err(RuntimeError::MissingHop {
                        rank: self.rank,
                        channel,
                        epoch,
                        attempts: 1,
                    });
                };
                if m.phase == phase {
                    break (from, m);
                }
                self.pending.push((from, m));
            }
        };
        match m.verify(self.rank, epoch, channel) {
            Ok(()) => {
                if let Some(s) = self.health.record_success(from, channel.trace_class(), epoch) {
                    self.tsink
                        .instant(epoch, EventKind::Health { peer: from as u32, state: s.code() });
                    if s == RankHealth::Dead {
                        return Err(RuntimeError::RankDead { rank: from, step: epoch, epoch });
                    }
                }
                Ok((from, m.payload))
            }
            Err(e) => {
                if let Some(s) = self.health.record_failure(from, channel.trace_class(), epoch) {
                    self.tsink
                        .instant(epoch, EventKind::Health { peer: from as u32, state: s.code() });
                    if s == RankHealth::Dead {
                        return Err(RuntimeError::RankDead { rank: from, step: epoch, epoch });
                    }
                }
                Err(e)
            }
        }
    }
}

/// Runs a distributed simulation with one thread per rank. One-shot: builds
/// the rank states, runs `steps` velocity-Verlet steps, and returns the
/// gathered store (sorted by id), the final-step global energy breakdown,
/// and aggregated communication statistics.
pub struct ThreadedSim;

impl ThreadedSim {
    /// Executes the simulation. See [`crate::DistributedSim::new`] for the
    /// validity requirements (shared via the same constructor checks).
    ///
    /// # Errors
    /// [`RunError::Setup`] for rejected configurations; [`RunError::Runtime`]
    /// when a rank's validated exchange failed mid-run.
    pub fn run(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
        steps: usize,
    ) -> Result<(AtomStore, EnergyBreakdown, CommStats), RunError> {
        Self::run_inner(store, bbox, pdims, ff, dt, steps, &Tracer::disabled())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
        steps: usize,
        tracer: &Tracer,
    ) -> Result<(AtomStore, EnergyBreakdown, CommStats), RunError> {
        // Same feasibility checks as the BSP constructor (shared helper).
        let grid = RankGrid::try_new(pdims, bbox)?;
        let width = validate_decomposition(&ff, &grid)?;
        let plan = GhostPlan::for_method(ff.method, width)?;
        let ff = Arc::new(ff);
        let nranks = grid.len();
        let mut txs: Vec<Sender<Wire>> = Vec::with_capacity(nranks);
        let mut rxs: Vec<Receiver<Wire>> = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let states: Vec<RankState> =
            (0..nranks).map(|r| RankState::new(r, grid, &store, &ff)).collect();

        let results: Vec<Result<(RankState, EnergyBreakdown), RuntimeError>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(nranks);
                for (rank, state) in states.into_iter().enumerate() {
                    let txs = txs.clone();
                    let rx = rxs.remove(0);
                    let plan = plan.clone();
                    let ff = Arc::clone(&ff);
                    let tsink = tracer.sink(rank as u32, 0);
                    handles.push(scope.spawn(move || {
                        rank_main(state, rank, grid, plan, ff, txs, rx, dt, steps, tsink)
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
            });

        let mut energy = EnergyBreakdown::default();
        let mut stats = CommStats::default();
        let mut atoms: Vec<AtomMsg> = Vec::new();
        let mut masses = vec![1.0];
        for result in results {
            let (state, e) = result?;
            energy.pair += e.pair;
            energy.triplet += e.triplet;
            energy.quadruplet += e.quadruplet;
            stats.merge(&state.stats);
            atoms.extend(state.owned_atoms());
            masses = state.store().species_masses().to_vec();
        }
        atoms.sort_by_key(|a| a.id);
        let mut out = AtomStore::new(masses);
        for a in &atoms {
            out.push(a.id, a.species, a.position, a.velocity);
        }
        Ok((out, energy, stats))
    }

    /// Like [`ThreadedSim::run`], additionally reporting the aggregated
    /// run totals into `registry`: the `comm.*` counter series (whole-run
    /// totals — the executor is one-shot, so there is no per-step stream)
    /// and the merged per-rank phase breakdown.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_metrics(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
        steps: usize,
        registry: &Registry,
    ) -> Result<(AtomStore, EnergyBreakdown, CommStats), RunError> {
        Self::run_observed(store, bbox, pdims, ff, dt, steps, registry, &Tracer::disabled())
    }

    /// Like [`ThreadedSim::run_with_metrics`], additionally routing
    /// event-level traces through `tracer`: each rank thread writes its
    /// phase intervals and comm send/recv events into its own per-thread
    /// sink, so the merged timeline shows the true concurrent schedule.
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
        steps: usize,
        registry: &Registry,
        tracer: &Tracer,
    ) -> Result<(AtomStore, EnergyBreakdown, CommStats), RunError> {
        let (out, energy, stats) =
            ThreadedSim::run_inner(store, bbox, pdims, ff, dt, steps, tracer)?;
        registry.counter("dist.steps").add(steps as u64);
        registry.counter("comm.messages").add(stats.messages);
        registry.counter("comm.bytes").add(stats.bytes);
        registry.counter("comm.ghosts_imported").add(stats.ghosts_imported);
        registry.counter("comm.atoms_migrated").add(stats.atoms_migrated);
        registry.counter("comm.retries").add(stats.retries);
        registry.counter("comm.faults_detected").add(stats.faults_detected);
        for (phase, secs) in stats.phases.iter() {
            registry.record_phase(phase, secs);
        }
        Ok((out, energy, stats))
    }
}

/// The per-rank thread body: the same phase sequence as the BSP executor.
/// Returning `Err` drops this rank's channel endpoints, which unblocks any
/// peer waiting on it with a [`RuntimeError::MissingHop`].
#[allow(clippy::too_many_arguments)]
fn rank_main(
    mut state: RankState,
    rank: usize,
    grid: RankGrid,
    plan: GhostPlan,
    ff: Arc<ForceField>,
    txs: Vec<Sender<Wire>>,
    rx: Receiver<Wire>,
    dt: f64,
    steps: usize,
    tsink: TraceSink,
) -> Result<(RankState, EnergyBreakdown), RuntimeError> {
    let mut mailbox = Mailbox {
        rank,
        rx,
        pending: Vec::new(),
        health: HealthTracker::new(grid.len(), HealthConfig::default()),
        tsink: tsink.clone(),
    };
    let mut phase = 0u64;
    let mut last_energy = EnergyBreakdown::default();

    let send = |state: &mut RankState,
                to: usize,
                phase: u64,
                epoch: u64,
                channel: Channel,
                payload: Payload| {
        let bytes = payload.wire_bytes();
        state.stats.record_send(to, bytes);
        tsink.send(epoch, channel.trace_class(), to as u32, bytes, epoch);
        // A send can fail only when the peer already unwound with its own
        // error; this rank then errors on its next receive.
        let _ = txs[to].send((rank, Message::stamped(phase, epoch, channel, payload)));
    };

    let exchange_and_compute = |state: &mut RankState,
                                phase: &mut u64,
                                epoch: u64,
                                mailbox: &mut Mailbox|
     -> Result<EnergyBreakdown, RuntimeError> {
        let t_exchange = std::time::Instant::now();
        let ex0 = tsink.now_ns();
        state.drop_ghosts();
        for (hop, &(axis, recv_dir)) in plan.hops.iter().enumerate() {
            let band = state.collect_ghost_band(&plan, axis, recv_dir);
            let to = grid.neighbor(rank, axis, -recv_dir);
            let channel = Channel::Ghosts { hop };
            send(state, to, *phase, epoch, channel, Payload::Ghosts(band));
            let (from, payload) = mailbox.recv_validated(*phase, epoch, channel)?;
            tsink.recv(epoch, channel.trace_class(), from as u32, payload.wire_bytes(), epoch);
            let Payload::Ghosts(g) = payload else {
                return Err(RuntimeError::WrongPayload { rank, channel });
            };
            state.absorb_ghosts(hop, from, &g);
            *phase += 1;
        }
        state.stats.phases.add(Phase::Exchange, t_exchange.elapsed().as_secs_f64());
        tsink.phase(epoch, Phase::Exchange, ex0, tsink.now_ns().saturating_sub(ex0));
        let c0 = tsink.now_ns();
        let (energy, _tuples, phases) = state.compute_forces(&ff);
        if tsink.enabled() {
            // Fine-grained compute sub-phases, laid out cumulatively from
            // the compute start on this rank's own timeline row.
            let mut cursor = c0;
            for (p, secs) in phases.iter() {
                let dur_ns = (secs * 1e9) as u64;
                if dur_ns > 0 {
                    tsink.phase(epoch, p, cursor, dur_ns);
                    cursor += dur_ns;
                }
            }
        }
        let t_reduce = std::time::Instant::now();
        let r0 = tsink.now_ns();
        for hop in (0..plan.hops.len()).rev() {
            let (axis, recv_dir) = plan.hops[hop];
            let (forces, to) = state.collect_ghost_forces(hop);
            let to = to.unwrap_or_else(|| grid.neighbor(rank, axis, recv_dir));
            let channel = Channel::Forces { hop };
            send(state, to, *phase, epoch, channel, Payload::Forces(forces));
            let (from, payload) = mailbox.recv_validated(*phase, epoch, channel)?;
            tsink.recv(epoch, channel.trace_class(), from as u32, payload.wire_bytes(), epoch);
            let Payload::Forces(f) = payload else {
                return Err(RuntimeError::WrongPayload { rank, channel });
            };
            state.absorb_ghost_forces(hop, &f)?;
            *phase += 1;
        }
        // The reverse ghost-force reduction is communication too; fold
        // it into the exchange phase of this rank's breakdown.
        state.stats.phases.add(Phase::Exchange, t_reduce.elapsed().as_secs_f64());
        tsink.phase(epoch, Phase::Reduce, r0, tsink.now_ns().saturating_sub(r0));
        Ok(energy)
    };

    for step in 0..steps {
        let epoch = step as u64;
        if step == 0 {
            // Prime forces; the energy is superseded by the in-step cycle.
            let _ = exchange_and_compute(&mut state, &mut phase, epoch, &mut mailbox)?;
        }
        let i0 = tsink.now_ns();
        state.vv_start(dt);
        state.drop_ghosts();
        // Ghost-free point: same re-sort schedule as the BSP executor, so
        // slot layouts (and hence accumulation order) stay identical.
        if epoch.is_multiple_of(DEFAULT_RESORT_EVERY) {
            state.resort_owned();
        }
        tsink.phase(epoch, Phase::Integrate, i0, tsink.now_ns().saturating_sub(i0));
        // Migration, axis by axis.
        let m0 = tsink.now_ns();
        for axis in 0..3 {
            let (to_minus, to_plus) = state.collect_migrants(axis);
            let minus = grid.neighbor(rank, axis, -1);
            let plus = grid.neighbor(rank, axis, 1);
            let channel = Channel::Migrate { axis, dir: -1 };
            send(&mut state, minus, phase, epoch, channel, Payload::Migrate(to_minus));
            send(
                &mut state,
                plus,
                phase,
                epoch,
                Channel::Migrate { axis, dir: 1 },
                Payload::Migrate(to_plus),
            );
            for _ in 0..2 {
                // Two deliveries share this phase (one per side); the stamp
                // check matches on the axis.
                let (from, payload) = mailbox.recv_validated(phase, epoch, channel)?;
                tsink.recv(epoch, channel.trace_class(), from as u32, payload.wire_bytes(), epoch);
                let Payload::Migrate(a) = payload else {
                    return Err(RuntimeError::WrongPayload { rank, channel });
                };
                state.absorb_migrants(&a);
            }
            phase += 1;
        }
        tsink.phase(epoch, Phase::Migrate, m0, tsink.now_ns().saturating_sub(m0));
        last_energy = exchange_and_compute(&mut state, &mut phase, epoch, &mut mailbox)?;
        let f0 = tsink.now_ns();
        state.vv_finish(dt);
        tsink.phase(epoch, Phase::Integrate, f0, tsink.now_ns().saturating_sub(f0));
    }
    Ok((state, last_energy))
}
