//! Threaded executor: one OS thread per rank, crossbeam channels as the
//! interconnect — true concurrent message passing with the same merged-phase
//! transport schedule (and therefore bitwise-identical physics) as the BSP
//! executor.
//!
//! The executor is persistent: worker threads live across steps and are
//! driven by a per-rank command channel, so the executor can step, gather,
//! checkpoint, and restore like [`crate::DistributedSim`] and both hide
//! behind one `Executor` surface in `sc-spec`. Every wire unit is stamped
//! (epoch, channel, checksum) and verified on receipt — per section for
//! aggregated frames. Deterministic fault *injection* lives in the BSP
//! executor only (scripted faults need a reproducible delivery order, which
//! concurrent threads cannot provide), but validation here protects against
//! the same protocol-confusion failure modes.

use crate::comm::GhostPlan;
use crate::error::{RunError, RuntimeError, SetupError};
use crate::grid::RankGrid;
use crate::health::{HealthConfig, HealthTracker, RankHealth};
use crate::msg::{AtomMsg, Channel, Message, Payload};
use crate::rank::{validate_decomposition, ForceField, RankState, DEFAULT_RESORT_EVERY};
use crate::transport::{self, CommConfig, Slot};
use crossbeam_channel::{unbounded, Receiver, Sender};
use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox};
use sc_md::checkpoint::{Checkpoint, SnapshotLayout};
use sc_md::supervisor::Recoverable;
use sc_md::{EnergyBreakdown, Telemetry, TupleCounts};
use sc_obs::trace::EventKind;
use sc_obs::{CommCounters, Phase, Registry, TraceSink, Tracer};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A wire message tagged with its sending rank.
type Wire = (usize, Message);

/// Sentinel phase the controller broadcasts to unblock workers whose peer
/// unwound mid-protocol; a mailbox seeing it fails its pending receive.
const POISON_PHASE: u64 = u64::MAX;

/// A command from the controller to one worker thread. Workers process
/// commands strictly in order; every `Step` / `Energy` / `Gather` produces
/// exactly one reply.
enum Cmd {
    /// Run one velocity-Verlet step (priming forces first if needed).
    Step { dt: f64, resort: bool, comm: CommConfig },
    /// Recompute forces without integrating and report fresh energies.
    Energy { comm: CommConfig },
    /// Report this rank's owned atoms for a global gather.
    Gather,
    /// Install a new trace sink (fire-and-forget, no reply).
    Sink(TraceSink),
    /// Exit the worker loop.
    Stop,
}

/// A worker's per-step report back to the controller: everything the
/// executor needs to serve telemetry, supervision invariants, and energy
/// queries without another round-trip.
#[derive(Clone, Default)]
struct StepView {
    energy: EnergyBreakdown,
    tuples: TupleCounts,
    kinetic: f64,
    owned: usize,
    finite: bool,
    stats: CommCounters,
}

/// One reply per `Step` / `Energy` / `Gather` command, tagged with the
/// worker's rank on the shared reply channel.
enum Reply {
    Step(Box<StepView>),
    Gather { atoms: Vec<AtomMsg>, masses: Vec<f64> },
    Failed(RuntimeError),
}

/// Buffers out-of-phase messages: a fast neighbour may send phase k+1
/// traffic while this rank still waits on phase k from a slow one.
struct Mailbox {
    rank: usize,
    rx: Receiver<Wire>,
    pending: Vec<Wire>,
    /// Per-peer health watchdog — protocol parity with the BSP executor:
    /// a stamp failure marks the sender suspect, and the flap breaker can
    /// declare a peer dead from the receive path alone.
    health: HealthTracker,
    tsink: TraceSink,
}

impl Mailbox {
    /// Pulls the next wire unit stamped with `phase`, from the pending
    /// buffer or the channel. A poison sentinel or a closed channel means a
    /// peer unwound mid-protocol and the slot can never fill.
    fn next_unit(&mut self, phase: u64, epoch: u64, slot0: Channel) -> Result<Wire, RuntimeError> {
        let missing = |rank| RuntimeError::MissingHop { rank, channel: slot0, epoch, attempts: 1 };
        if let Some(pos) =
            self.pending.iter().position(|(_, m)| m.phase == phase || m.phase == POISON_PHASE)
        {
            let (from, m) = self.pending.swap_remove(pos);
            if m.phase == POISON_PHASE {
                return Err(missing(self.rank));
            }
            return Ok((from, m));
        }
        loop {
            let Ok((from, m)) = self.rx.recv() else {
                return Err(missing(self.rank));
            };
            if m.phase == POISON_PHASE {
                return Err(missing(self.rank));
            }
            if m.phase == phase {
                return Ok((from, m));
            }
            self.pending.push((from, m));
        }
    }

    /// Verifies a wire unit's outer stamp against the expected channel —
    /// and each section's stamp for aggregated frames — feeding the
    /// sender's health watchdog with the outcome.
    fn verify_unit(
        &mut self,
        m: &Message,
        from: usize,
        channel: Channel,
        epoch: u64,
    ) -> Result<(), RuntimeError> {
        let res = m.verify(self.rank, epoch, channel).and_then(|()| {
            if let Payload::Batch(secs) = &m.payload {
                for s in secs {
                    s.verify(self.rank, epoch, s.channel)?;
                }
            }
            Ok(())
        });
        let outcome = match &res {
            Ok(()) => self.health.record_success(from, channel.trace_class(), epoch),
            Err(_) => self.health.record_failure(from, channel.trace_class(), epoch),
        };
        if let Some(s) = outcome {
            self.tsink.instant(epoch, EventKind::Health { peer: from as u32, state: s.code() });
            if s == RankHealth::Dead {
                return Err(RuntimeError::RankDead { rank: from, step: epoch, epoch });
            }
        }
        res
    }
}

/// The per-rank worker: rank state plus its end of the interconnect.
struct Worker {
    state: RankState,
    rank: usize,
    grid: RankGrid,
    plan: GhostPlan,
    ff: Arc<ForceField>,
    txs: Vec<Sender<Wire>>,
    mailbox: Mailbox,
    tsink: TraceSink,
    phase: u64,
    steps_done: u64,
    needs_prime: bool,
}

impl Worker {
    /// Frames this phase's stamped sections per destination and puts them
    /// on the wire. Bytes and section counts are recorded once per wire
    /// unit, mirroring the BSP executor's counter discipline. A send can
    /// fail only when the peer already unwound with its own error; this
    /// rank then errors on its next receive.
    fn send_frames(&mut self, aggregation: bool, epoch: u64, secs: Vec<(usize, Message)>) {
        for (to, unit) in transport::frame_sections(aggregation, self.phase, epoch, secs) {
            let bytes = unit.payload.wire_bytes();
            let nsec = unit.payload.section_count() as u16;
            self.state.stats.record_send(to, bytes);
            self.tsink.send(epoch, unit.channel.trace_class(), to as u32, bytes, nsec, epoch);
            let _ = self.txs[to].send((self.rank, unit));
        }
    }

    /// Receives the phase's expected wire units (in whatever order they
    /// arrive), verifies each against the canonical slot it must fill, and
    /// returns the payloads in canonical slot order.
    fn recv_phase(
        &mut self,
        aggregation: bool,
        epoch: u64,
        rx_slots: &[Slot],
    ) -> Result<Vec<Payload>, RuntimeError> {
        let expected = transport::expected_units(aggregation, rx_slots);
        let mut units: Vec<Wire> = Vec::with_capacity(expected.len());
        while units.len() < expected.len() {
            let (from, m) = self.mailbox.next_unit(self.phase, epoch, rx_slots[0].channel)?;
            // The k-th unit from `from` fills the k-th canonical expected
            // unit from that source (k > 0 only without aggregation;
            // per-sender channel order is FIFO, so arrival order per source
            // equals send order).
            let already = units.iter().filter(|(f, _)| *f == from).count();
            let channel = expected
                .iter()
                .filter(|(p, _)| *p == from)
                .nth(already)
                .map(|(_, c)| *c)
                .unwrap_or(m.channel);
            self.mailbox.verify_unit(&m, from, channel, epoch)?;
            self.tsink.recv(
                epoch,
                channel.trace_class(),
                from as u32,
                m.payload.wire_bytes(),
                m.payload.section_count() as u16,
                epoch,
            );
            units.push((from, m));
        }
        transport::match_sections(self.mailbox.rank, epoch, rx_slots, units)
    }

    /// One full ghost-exchange + force-computation + reduction cycle on
    /// this rank — the same merged-phase schedule as the BSP executor, so
    /// counters and physics agree bitwise. With overlap on, the interior
    /// tuples are computed between putting the first (axis 0) ghost phase
    /// on the wire and blocking on its arrivals, hiding peer latency.
    fn exchange_and_compute(
        &mut self,
        comm: CommConfig,
        epoch: u64,
    ) -> Result<(EnergyBreakdown, TupleCounts), RuntimeError> {
        let t_ex = std::time::Instant::now();
        let ex0 = self.tsink.now_ns();
        self.state.drop_ghosts();
        let mut interior_secs = 0.0;
        for (gi, hops) in transport::ghost_phase_groups(&self.plan).into_iter().enumerate() {
            self.phase += 1;
            let (slots, rx_slots) =
                transport::ghost_phase(&self.grid, &self.plan, self.rank, &hops);
            let mut secs = Vec::with_capacity(slots.len());
            for (slot, &hop) in slots.iter().zip(&hops) {
                let (axis, recv_dir) = self.plan.hops[hop];
                let band = self.state.collect_ghost_band(&self.plan, axis, recv_dir);
                secs.push((
                    slot.peer,
                    Message::stamped(self.phase, epoch, slot.channel, Payload::Ghosts(band)),
                ));
            }
            self.send_frames(comm.aggregation, epoch, secs);
            if gi == 0 && comm.overlap {
                // The axis-0 bands left from the still-ghost-free store;
                // compute interior tuples before blocking on the arrivals.
                let t_int = std::time::Instant::now();
                let mut task = self.state.begin_interior();
                RankState::run_interior(&mut task, &self.state, &self.ff);
                self.state.finish_interior(task);
                interior_secs = t_int.elapsed().as_secs_f64();
            }
            let payloads = self.recv_phase(comm.aggregation, epoch, &rx_slots)?;
            for ((slot, &hop), payload) in rx_slots.iter().zip(&hops).zip(payloads) {
                let Payload::Ghosts(g) = payload else {
                    return Err(RuntimeError::WrongPayload {
                        rank: self.rank,
                        channel: slot.channel,
                    });
                };
                self.state.absorb_ghosts(hop, slot.peer, &g);
            }
        }
        // The interior pass is compute, not communication, even though it
        // ran inside the exchange window.
        let exchange_secs = (t_ex.elapsed().as_secs_f64() - interior_secs).max(0.0);
        self.state.stats.phases.add(Phase::Exchange, exchange_secs);
        self.tsink.phase(epoch, Phase::Exchange, ex0, self.tsink.now_ns().saturating_sub(ex0));
        let c0 = self.tsink.now_ns();
        let (energy, tuples, phases) = self.state.compute_forces(&self.ff);
        if self.tsink.enabled() {
            // Fine-grained compute sub-phases, laid out cumulatively from
            // the compute start on this rank's own timeline row.
            let mut cursor = c0;
            for (p, secs) in phases.iter() {
                let dur_ns = (secs * 1e9) as u64;
                if dur_ns > 0 {
                    self.tsink.phase(epoch, p, cursor, dur_ns);
                    cursor += dur_ns;
                }
            }
        }
        let t_red = std::time::Instant::now();
        let r0 = self.tsink.now_ns();
        for hops in transport::force_phase_groups(&self.plan) {
            self.phase += 1;
            let (slots, rx_slots) =
                transport::force_phase(&self.grid, &self.plan, self.rank, &hops);
            let mut secs = Vec::with_capacity(slots.len());
            for (slot, &hop) in slots.iter().zip(&hops) {
                let (forces, recorded) = self.state.collect_ghost_forces(hop);
                debug_assert!(
                    recorded.is_none_or(|t| t == slot.peer),
                    "ghost origin disagrees with the routing schedule"
                );
                secs.push((
                    slot.peer,
                    Message::stamped(self.phase, epoch, slot.channel, Payload::Forces(forces)),
                ));
            }
            self.send_frames(comm.aggregation, epoch, secs);
            let payloads = self.recv_phase(comm.aggregation, epoch, &rx_slots)?;
            for ((_slot, &hop), payload) in rx_slots.iter().zip(&hops).zip(payloads) {
                let Payload::Forces(f) = payload else {
                    return Err(RuntimeError::WrongPayload {
                        rank: self.rank,
                        channel: Channel::Forces { hop },
                    });
                };
                self.state.absorb_ghost_forces(hop, &f)?;
            }
        }
        // The reverse ghost-force reduction is communication too; fold it
        // into the exchange slot of this rank's breakdown.
        self.state.stats.phases.add(Phase::Exchange, t_red.elapsed().as_secs_f64());
        self.tsink.phase(epoch, Phase::Reduce, r0, self.tsink.now_ns().saturating_sub(r0));
        Ok((energy, tuples))
    }

    /// One velocity-Verlet step (priming forces first when needed).
    fn step(
        &mut self,
        dt: f64,
        resort: bool,
        comm: CommConfig,
    ) -> Result<Box<StepView>, RuntimeError> {
        let epoch = self.steps_done;
        if self.needs_prime {
            self.exchange_and_compute(comm, epoch)?;
            self.needs_prime = false;
        }
        let t0 = std::time::Instant::now();
        let i0 = self.tsink.now_ns();
        self.state.vv_start(dt);
        self.state.drop_ghosts();
        // Ghost-free point: same re-sort schedule as the BSP executor, so
        // slot layouts (and hence accumulation order) stay identical.
        if resort {
            self.state.resort_owned();
        }
        self.state.stats.phases.add(Phase::Integrate, t0.elapsed().as_secs_f64());
        self.tsink.phase(epoch, Phase::Integrate, i0, self.tsink.now_ns().saturating_sub(i0));
        let t1 = std::time::Instant::now();
        let m0 = self.tsink.now_ns();
        for axis in 0..3 {
            self.phase += 1;
            let (slots, rx_slots) = transport::migrate_phase(&self.grid, self.rank, axis);
            let (to_minus, to_plus) = self.state.collect_migrants(axis);
            let secs = slots
                .into_iter()
                .zip([to_minus, to_plus])
                .map(|(slot, atoms)| {
                    let msg =
                        Message::stamped(self.phase, epoch, slot.channel, Payload::Migrate(atoms));
                    (slot.peer, msg)
                })
                .collect();
            self.send_frames(comm.aggregation, epoch, secs);
            let payloads = self.recv_phase(comm.aggregation, epoch, &rx_slots)?;
            for (slot, payload) in rx_slots.iter().zip(payloads) {
                let Payload::Migrate(a) = payload else {
                    return Err(RuntimeError::WrongPayload {
                        rank: self.rank,
                        channel: slot.channel,
                    });
                };
                self.state.absorb_migrants(&a);
            }
        }
        self.state.stats.phases.add(Phase::Migrate, t1.elapsed().as_secs_f64());
        self.tsink.phase(epoch, Phase::Migrate, m0, self.tsink.now_ns().saturating_sub(m0));
        let (energy, tuples) = self.exchange_and_compute(comm, epoch)?;
        let t2 = std::time::Instant::now();
        let f0 = self.tsink.now_ns();
        self.state.vv_finish(dt);
        self.state.stats.phases.add(Phase::Integrate, t2.elapsed().as_secs_f64());
        self.tsink.phase(epoch, Phase::Integrate, f0, self.tsink.now_ns().saturating_sub(f0));
        self.steps_done += 1;
        Ok(self.view(energy, tuples))
    }

    /// The post-command report: fresh energies plus the supervision
    /// invariants (atom count, finiteness) so the controller never needs a
    /// second round-trip to answer them.
    fn view(&self, energy: EnergyBreakdown, tuples: TupleCounts) -> Box<StepView> {
        let s = self.state.store();
        let finite = (0..self.state.owned()).all(|i| {
            s.positions()[i].is_finite()
                && s.velocities()[i].is_finite()
                && s.forces()[i].is_finite()
        });
        Box::new(StepView {
            energy,
            tuples,
            kinetic: self.state.kinetic_energy(),
            owned: self.state.owned(),
            finite,
            stats: self.state.stats.clone(),
        })
    }
}

/// The worker thread body: drain commands until `Stop` or a failed step.
/// A failed step replies `Failed` and exits, dropping this rank's channel
/// endpoints; the controller then poisons the survivors so nobody blocks
/// on a slot that can never fill.
fn worker_main(mut w: Worker, cmd_rx: Receiver<Cmd>, reply_tx: Sender<(usize, Reply)>) {
    loop {
        let Ok(cmd) = cmd_rx.recv() else { return };
        match cmd {
            Cmd::Stop => return,
            Cmd::Sink(sink) => {
                w.tsink = sink.clone();
                w.mailbox.tsink = sink;
            }
            Cmd::Step { dt, resort, comm } => match w.step(dt, resort, comm) {
                Ok(view) => {
                    let _ = reply_tx.send((w.rank, Reply::Step(view)));
                }
                Err(e) => {
                    let _ = reply_tx.send((w.rank, Reply::Failed(e)));
                    return;
                }
            },
            Cmd::Energy { comm } => {
                // Fresh forces without integrating; deliberately does NOT
                // clear the priming flag, matching the BSP executor's
                // total_energy (so both executors run the same number of
                // exchange cycles over a run).
                match w.exchange_and_compute(comm, w.steps_done) {
                    Ok((energy, tuples)) => {
                        let view = w.view(energy, tuples);
                        let _ = reply_tx.send((w.rank, Reply::Step(view)));
                    }
                    Err(e) => {
                        let _ = reply_tx.send((w.rank, Reply::Failed(e)));
                        return;
                    }
                }
            }
            Cmd::Gather => {
                let reply = Reply::Gather {
                    atoms: w.state.owned_atoms(),
                    masses: w.state.store().species_masses().to_vec(),
                };
                let _ = reply_tx.send((w.rank, reply));
            }
        }
    }
}

/// A distributed MD simulation with one persistent OS thread per rank and
/// channels as the interconnect. Steps, telemetry, gather, checkpoint, and
/// restore mirror [`crate::DistributedSim`]; physics is bitwise-identical
/// between the two executors (and across all [`CommConfig`] packing modes).
pub struct ThreadedSim {
    grid: RankGrid,
    ff: Arc<ForceField>,
    dt: f64,
    resort_every: u64,
    comm: CommConfig,
    steps_done: u64,
    cmd_txs: Vec<Sender<Cmd>>,
    reply_rx: Receiver<(usize, Reply)>,
    reply_tx: Sender<(usize, Reply)>,
    /// Controller-held clones of the data senders, used to poison blocked
    /// workers when one fails mid-protocol.
    data_txs: Vec<Sender<Wire>>,
    handles: Vec<JoinHandle<()>>,
    /// Per-rank report from the most recent step/energy command.
    cached: Vec<StepView>,
    /// Set when the worker pool died mid-step; only `restore` revives it.
    dead: Option<RuntimeError>,
    registry: Registry,
    tracer: Tracer,
    /// Aggregate counters at the last metrics feed (delta source).
    last_totals: CommCounters,
}

impl ThreadedSim {
    /// Decomposes `store` over a `pdims` rank grid and spawns one worker
    /// thread per rank.
    ///
    /// # Errors
    /// The same feasibility checks as [`crate::DistributedSim::new`]
    /// (shared helpers).
    pub fn new(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
    ) -> Result<Self, SetupError> {
        let grid = RankGrid::try_new(pdims, bbox)?;
        validate_decomposition(&ff, &grid)?;
        let (reply_tx, reply_rx) = unbounded();
        let mut sim = ThreadedSim {
            grid,
            ff: Arc::new(ff),
            dt,
            resort_every: DEFAULT_RESORT_EVERY,
            comm: CommConfig::default(),
            steps_done: 0,
            cmd_txs: Vec::new(),
            reply_rx,
            reply_tx,
            data_txs: Vec::new(),
            handles: Vec::new(),
            cached: Vec::new(),
            dead: None,
            registry: Registry::disabled(),
            tracer: Tracer::disabled(),
            last_totals: CommCounters::default(),
        };
        sim.spawn_pool(&store, 0)?;
        Ok(sim)
    }

    /// (Re)builds the worker pool from a full store: rank states, channels,
    /// threads. Any previous pool must already be shut down.
    fn spawn_pool(&mut self, store: &AtomStore, start_step: u64) -> Result<(), SetupError> {
        let width = validate_decomposition(&self.ff, &self.grid)?;
        let plan = GhostPlan::for_method(self.ff.method, width)?;
        let nranks = self.grid.len();
        let states: Vec<RankState> =
            (0..nranks).map(|r| RankState::new(r, self.grid.clone(), store, &self.ff)).collect();
        let total: usize = states.iter().map(|r| r.owned()).sum();
        if total != store.len() {
            return Err(SetupError::AtomsLost { expected: store.len(), claimed: total });
        }
        let mut txs: Vec<Sender<Wire>> = Vec::with_capacity(nranks);
        let mut rxs: Vec<Receiver<Wire>> = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        self.data_txs = txs.clone();
        self.cmd_txs = Vec::with_capacity(nranks);
        self.handles = Vec::with_capacity(nranks);
        self.cached = vec![StepView::default(); nranks];
        self.dead = None;
        for (rank, state) in states.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            self.cmd_txs.push(cmd_tx);
            let tsink = self.tracer.sink(rank as u32, 0);
            let worker = Worker {
                state,
                rank,
                grid: self.grid.clone(),
                plan: plan.clone(),
                ff: Arc::clone(&self.ff),
                txs: txs.clone(),
                mailbox: Mailbox {
                    rank,
                    rx: rxs.remove(0),
                    pending: Vec::new(),
                    health: HealthTracker::new(nranks, HealthConfig::default()),
                    tsink: tsink.clone(),
                },
                tsink,
                phase: 0,
                steps_done: start_step,
                needs_prime: true,
            };
            let reply_tx = self.reply_tx.clone();
            self.handles.push(std::thread::spawn(move || worker_main(worker, cmd_rx, reply_tx)));
        }
        Ok(())
    }

    /// Stops and joins the worker pool (dead workers are already gone).
    fn shutdown_pool(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Stop);
        }
        // Unblock anyone stuck mid-protocol (a peer may have died between
        // our Stop landing and its next receive).
        self.poison();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.cmd_txs.clear();
        self.data_txs.clear();
    }

    /// Broadcasts the poison sentinel so workers blocked on a dead peer's
    /// slot fail their receive instead of waiting forever.
    fn poison(&self) {
        for tx in &self.data_txs {
            let msg = Message::stamped(
                POISON_PHASE,
                0,
                Channel::Migrate { axis: 0, dir: -1 },
                Payload::Migrate(Vec::new()),
            );
            let _ = tx.send((usize::MAX, msg));
        }
    }

    /// Broadcasts a command and collects exactly one `Step`-shaped reply
    /// per rank. On any failure the survivors are poisoned, all replies are
    /// drained, and the pool is marked dead.
    fn command_round(&mut self, make: impl Fn() -> Cmd) -> Result<(), RuntimeError> {
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        for tx in &self.cmd_txs {
            let _ = tx.send(make());
        }
        let nranks = self.cmd_txs.len();
        let mut first_err: Option<RuntimeError> = None;
        for _ in 0..nranks {
            match self.reply_rx.recv() {
                Ok((rank, Reply::Step(view))) => self.cached[rank] = *view,
                Ok((_, Reply::Failed(e))) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                        // Unblock workers waiting on the failed rank so
                        // they too reply (with their own error) and exit.
                        self.poison();
                    }
                }
                Ok((_, Reply::Gather { .. })) | Err(_) => break,
            }
        }
        if let Some(e) = first_err {
            self.dead = Some(e.clone());
            return Err(e);
        }
        Ok(())
    }

    /// Replaces the communication configuration (per-neighbor aggregation,
    /// compute/communication overlap). The rebalance cadence is ignored —
    /// adaptive re-decomposition lives in the BSP executor. All settings
    /// are bitwise-neutral.
    pub fn set_comm_config(&mut self, comm: CommConfig) {
        self.comm = comm;
    }

    /// The communication configuration in force.
    pub fn comm_config(&self) -> CommConfig {
        self.comm
    }

    /// Sets the Morton re-sort cadence (0 disables; default 8, matching the
    /// BSP executor).
    pub fn set_resort_every(&mut self, every: u64) {
        self.resort_every = every;
    }

    /// Routes the per-step communication deltas into `registry`.
    pub fn set_metrics(&mut self, registry: Registry) {
        self.registry = registry;
        self.last_totals = self.comm_stats();
    }

    /// The metrics registry in use.
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// Routes event-level tracing through `tracer`: each worker writes its
    /// phase intervals and comm events into its own per-rank sink, so the
    /// merged timeline shows the true concurrent schedule.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for (rank, tx) in self.cmd_txs.iter().enumerate() {
            let _ = tx.send(Cmd::Sink(tracer.sink(rank as u32, 0)));
        }
        self.tracer = tracer;
    }

    /// The tracer in use.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The rank grid.
    pub fn grid(&self) -> &RankGrid {
        &self.grid
    }

    /// Steps completed since construction (or the restored checkpoint).
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// The integration timestep.
    pub fn timestep(&self) -> f64 {
        self.dt
    }

    /// Changes the integration timestep.
    pub fn set_timestep(&mut self, dt: f64) {
        self.dt = dt;
    }

    /// One velocity-Verlet step, surfacing unrecovered faults.
    ///
    /// # Errors
    /// Any [`RuntimeError`] a worker hit. The pool is dead afterwards;
    /// [`Recoverable::restore`] rebuilds it from a checkpoint.
    pub fn try_step(&mut self) -> Result<(), RuntimeError> {
        let resort = self.resort_every != 0 && self.steps_done.is_multiple_of(self.resort_every);
        let (dt, comm) = (self.dt, self.comm);
        self.command_round(|| Cmd::Step { dt, resort, comm })?;
        self.steps_done += 1;
        self.feed_metrics();
        Ok(())
    }

    /// One velocity-Verlet step.
    ///
    /// # Panics
    /// Panics on an unrecovered communication fault; use
    /// [`ThreadedSim::try_step`] in fault-tolerant loops.
    pub fn step(&mut self) {
        self.try_step().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Runs `n` steps. Panics like [`ThreadedSim::step`] on faults.
    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Feeds the step's communication deltas into the registry.
    fn feed_metrics(&mut self) {
        if !self.registry.enabled() {
            return;
        }
        let now = self.comm_stats();
        self.registry.counter("dist.steps").inc();
        self.registry.counter("comm.messages").add(now.messages - self.last_totals.messages);
        self.registry.counter("comm.bytes").add(now.bytes - self.last_totals.bytes);
        self.registry
            .counter("comm.ghosts_imported")
            .add(now.ghosts_imported - self.last_totals.ghosts_imported);
        self.registry
            .counter("comm.atoms_migrated")
            .add(now.atoms_migrated - self.last_totals.atoms_migrated);
        self.registry.counter("comm.retries").add(now.retries - self.last_totals.retries);
        self.registry
            .counter("comm.faults_detected")
            .add(now.faults_detected - self.last_totals.faults_detected);
        self.last_totals = now;
    }

    /// Aggregated communication statistics since the pool was (re)built.
    pub fn comm_stats(&self) -> CommCounters {
        let mut total = CommCounters::default();
        for v in &self.cached {
            total.merge(&v.stats);
        }
        total
    }

    /// The unified telemetry snapshot, served from the workers' most recent
    /// step reports. The threaded executor has no central wall clock, so
    /// the phase breakdown is the merged per-rank one (the reverse force
    /// reduction folds into the exchange slot).
    pub fn telemetry(&self) -> Telemetry {
        let comm = self.comm_stats();
        let mut energy = EnergyBreakdown::default();
        let mut tuples = TupleCounts::default();
        for v in &self.cached {
            energy.pair += v.energy.pair;
            energy.triplet += v.energy.triplet;
            energy.quadruplet += v.energy.quadruplet;
            tuples.pair.merge(v.tuples.pair);
            tuples.triplet.merge(v.tuples.triplet);
            tuples.quadruplet.merge(v.tuples.quadruplet);
        }
        Telemetry {
            step: self.steps_done,
            energy,
            tuples,
            virial: 0.0,
            phases: comm.phases,
            total_phases: comm.phases,
            per_rank: self.cached.iter().map(|v| v.stats.clone()).collect(),
            comm,
            alloc_events: self.registry.allocation_events(),
            degraded: false,
        }
    }

    /// Total energy; recomputes forces on every rank.
    ///
    /// # Panics
    /// Panics on an unrecovered communication fault.
    pub fn total_energy(&mut self) -> f64 {
        let comm = self.comm;
        self.command_round(|| Cmd::Energy { comm }).unwrap_or_else(|e| panic!("{e}"));
        self.cached.iter().map(|v| v.energy.total() + v.kinetic).sum()
    }

    /// Gathers all owned atoms into one store, sorted by global id — the
    /// same canonical form as [`crate::DistributedSim::gather`]. A dead
    /// pool yields an empty store (restore from a checkpoint instead).
    pub fn gather(&self) -> AtomStore {
        let mut atoms: Vec<AtomMsg> = Vec::new();
        let mut masses = vec![1.0];
        if self.dead.is_none() {
            for tx in &self.cmd_txs {
                let _ = tx.send(Cmd::Gather);
            }
            for _ in 0..self.cmd_txs.len() {
                if let Ok((_, Reply::Gather { atoms: a, masses: m })) = self.reply_rx.recv() {
                    atoms.extend(a);
                    masses = m;
                }
            }
        }
        atoms.sort_by_key(|a| a.id);
        let mut out = AtomStore::new(masses);
        for a in &atoms {
            out.push(a.id, a.species, a.position, a.velocity);
        }
        out
    }
}

impl Drop for ThreadedSim {
    fn drop(&mut self) {
        self.shutdown_pool();
    }
}

impl Recoverable for ThreadedSim {
    type Fault = RuntimeError;

    fn try_step(&mut self) -> Result<(), RuntimeError> {
        ThreadedSim::try_step(self)
    }

    fn checkpoint(&self) -> Checkpoint {
        let p = self.grid.pdims();
        Checkpoint::from_store(self.steps_done, self.dt, self.grid.bbox(), &self.gather())
            .with_layout(SnapshotLayout::Grid { pdims: [p.x, p.y, p.z] })
    }

    fn restore(&mut self, cp: &Checkpoint) {
        // Rebuild the whole pool from the snapshot: the cheap, always-valid
        // recovery for an interconnect whose threads may have unwound.
        self.shutdown_pool();
        self.dt = cp.dt;
        self.steps_done = cp.step;
        self.last_totals = CommCounters::default();
        let store = cp.to_store();
        self.spawn_pool(&store, cp.step).expect("restore onto the original grid cannot fail");
    }

    fn atom_count(&self) -> usize {
        self.cached.iter().map(|v| v.owned).sum()
    }

    fn total_energy_estimate(&self) -> f64 {
        let e: f64 = self.cached.iter().map(|v| v.energy.total() + v.kinetic).sum();
        e
    }

    fn state_is_finite(&self) -> bool {
        self.cached.iter().all(|v| v.finite)
    }

    fn timestep(&self) -> f64 {
        self.dt
    }

    fn set_timestep(&mut self, dt: f64) {
        self.dt = dt;
    }

    fn steps_done(&self) -> u64 {
        self.steps_done
    }

    fn dead_rank(fault: &RuntimeError) -> Option<usize> {
        match fault {
            RuntimeError::RankDead { rank, .. } => Some(*rank),
            _ => None,
        }
    }

    fn restore_excluding(&mut self, _cp: &Checkpoint, _exclude: &[usize]) -> Result<(), String> {
        Err("the threaded executor cannot re-decompose over survivors".to_string())
    }
}

impl ThreadedSim {
    /// One-shot convenience: builds the executor, runs `steps` steps, and
    /// returns the gathered store (sorted by id), the final-step global
    /// energy breakdown, and aggregated communication statistics.
    ///
    /// # Errors
    /// [`RunError::Setup`] for rejected configurations; [`RunError::Runtime`]
    /// when a rank's validated exchange failed mid-run.
    pub fn run(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
        steps: usize,
    ) -> Result<(AtomStore, EnergyBreakdown, CommCounters), RunError> {
        Self::run_observed(
            store,
            bbox,
            pdims,
            ff,
            dt,
            steps,
            &Registry::disabled(),
            &Tracer::disabled(),
        )
    }

    /// Like [`ThreadedSim::run`], additionally reporting the aggregated
    /// run totals into `registry`: the `comm.*` counter series (whole-run
    /// totals) and the merged per-rank phase breakdown.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_metrics(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
        steps: usize,
        registry: &Registry,
    ) -> Result<(AtomStore, EnergyBreakdown, CommCounters), RunError> {
        Self::run_observed(store, bbox, pdims, ff, dt, steps, registry, &Tracer::disabled())
    }

    /// Like [`ThreadedSim::run_with_metrics`], additionally routing
    /// event-level traces through `tracer`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
        steps: usize,
        registry: &Registry,
        tracer: &Tracer,
    ) -> Result<(AtomStore, EnergyBreakdown, CommCounters), RunError> {
        let mut sim = ThreadedSim::new(store, bbox, pdims, ff, dt)?;
        sim.set_tracer(tracer.clone());
        for _ in 0..steps {
            sim.try_step()?;
        }
        let stats = sim.comm_stats();
        let tel = sim.telemetry();
        let out = sim.gather();
        registry.counter("dist.steps").add(steps as u64);
        registry.counter("comm.messages").add(stats.messages);
        registry.counter("comm.bytes").add(stats.bytes);
        registry.counter("comm.ghosts_imported").add(stats.ghosts_imported);
        registry.counter("comm.atoms_migrated").add(stats.atoms_migrated);
        registry.counter("comm.retries").add(stats.retries);
        registry.counter("comm.faults_detected").add(stats.faults_detected);
        for (phase, secs) in stats.phases.iter() {
            registry.record_phase(phase, secs);
        }
        Ok((out, tel.energy, stats))
    }
}
