//! Per-rank state and the message-level algorithms: band collection, ghost
//! absorption, local force computation, and ghost-force reduction.

use crate::comm::{CommCounters, GhostPlan};
use crate::error::RuntimeError;
use crate::grid::RankGrid;
use crate::msg::{AtomMsg, ForceMsg, GhostMsg};
use sc_cell::{AtomStore, GhostLattice, Species};
use sc_geom::{IVec3, Vec3};
use sc_md::engine::{self, Dedup, PatternPlan, TupleSource, VisitStats};
use sc_md::methods::NeighborList;
use sc_md::{EnergyBreakdown, ForceAccumulator, Method, TupleCounts};
use sc_obs::{Phase, PhaseBreakdown};
use sc_potential::{PairPotential, QuadrupletPotential, TripletPotential};
use std::collections::HashMap;
use std::time::Instant;

/// Default Morton re-sort cadence (steps between owned-atom re-sorts).
/// Shared by both executors — the threaded executor promises bitwise-identical
/// physics to the BSP executor, which requires identical slot layouts and
/// hence identical re-sort schedules.
pub const DEFAULT_RESORT_EVERY: u64 = 8;

/// The shared, immutable force-field configuration every rank evaluates.
pub struct ForceField {
    /// Pair term.
    pub pair: Option<Box<dyn PairPotential>>,
    /// Triplet term.
    pub triplet: Option<Box<dyn TripletPotential>>,
    /// Quadruplet term.
    pub quadruplet: Option<Box<dyn QuadrupletPotential>>,
    /// n-tuple search method.
    pub method: Method,
}

impl ForceField {
    /// Active `(n, cutoff)` pairs.
    pub fn terms(&self) -> Vec<(usize, f64)> {
        let mut t = vec![];
        if let Some(p) = &self.pair {
            t.push((2, p.cutoff()));
        }
        if let Some(p) = &self.triplet {
            t.push((3, p.cutoff()));
        }
        if let Some(p) = &self.quadruplet {
            t.push((4, p.cutoff()));
        }
        t
    }
}

/// One term's rank-local search structure, with its owned cells split into
/// an *interior* set (tuple enumeration provably touches only owned atoms —
/// computable before any ghost arrives) and the complementary *frontier*
/// set. Sweeps always visit interior cells first, then frontier cells, so
/// the overlapped two-pass computation is bitwise-identical to the
/// single-pass one.
struct TermLattice {
    n: usize,
    rcut: f64,
    plan: PatternPlan,
    lat: GhostLattice,
    /// Owned cells whose pattern sweep stays inside the owned region.
    interior: Vec<IVec3>,
    /// Owned cells whose sweep may read ghost cells.
    frontier: Vec<IVec3>,
}

/// The banked result of an interior-cell pass, merged into the full result
/// once the boundary exchange completes.
#[derive(Default)]
struct ComputePartial {
    energy: EnergyBreakdown,
    tuples: TupleCounts,
    phases: PhaseBreakdown,
}

/// The mutable pieces of an interior-cell pass, extracted from
/// [`RankState`] (via [`RankState::begin_interior`]) so an executor can run
/// interior compute on worker lanes while another thread concurrently reads
/// the same `RankState` for boundary-band collection.
pub struct InteriorTask {
    terms: Vec<TermLattice>,
    scratch: ForceAccumulator,
    partial: ComputePartial,
}

/// Where a ghost came from, for the reverse force reduction: the routing
/// hop index it arrived in and the rank that sent it.
#[derive(Debug, Clone, Copy)]
struct GhostOrigin {
    hop: usize,
    from_rank: usize,
}

/// [`TupleSource`] over a rank-local ghost lattice: displacements are plain
/// differences because ghosts are image-shifted into the local frame.
struct LocalSource<'a> {
    lat: &'a GhostLattice,
    store: &'a AtomStore,
}

impl<'a> LocalSource<'a> {
    /// Wraps a lattice + store, asserting (debug builds) that the bins were
    /// built against the store's current slot layout — migration's
    /// `swap_remove`, ghost import, and Morton re-sorts all move atoms
    /// between slots, and enumerating through stale bins reads the wrong
    /// atoms (see [`GhostLattice::is_current`]).
    fn new(lat: &'a GhostLattice, store: &'a AtomStore) -> Self {
        debug_assert!(
            lat.is_current(store),
            "ghost lattice is stale: the store's slot layout changed since the last rebuild"
        );
        LocalSource { lat, store }
    }
}

impl TupleSource for LocalSource<'_> {
    #[inline]
    fn atoms_in(&self, q: IVec3) -> &[u32] {
        self.lat.cell_atoms_or_empty(q)
    }
    #[inline]
    fn pos(&self, i: u32) -> Vec3 {
        self.store.positions()[i as usize]
    }
    #[inline]
    fn gid(&self, i: u32) -> u64 {
        self.store.ids()[i as usize]
    }
    #[inline]
    fn disp(&self, i: u32, j: u32) -> Vec3 {
        self.pos(j) - self.pos(i)
    }
}

/// The full state of one rank: owned atoms (slots `0..owned`), ghosts
/// appended behind them, per-term search lattices, and communication
/// accounting.
pub struct RankState {
    /// This rank's id.
    pub rank: usize,
    grid: RankGrid,
    store: AtomStore,
    owned: usize,
    ghost_origin: Vec<GhostOrigin>,
    terms: Vec<TermLattice>,
    hybrid_pair_lat: Option<GhostLattice>,
    /// Persistent force scratch, reused (and grown, never shrunk) across
    /// steps so the steady state allocates no per-step force buffer.
    scratch: ForceAccumulator,
    /// Banked interior-pass result awaiting the post-exchange frontier
    /// pass (`None` outside an overlap window).
    pending: Option<ComputePartial>,
    /// Per-step communication statistics.
    pub stats: CommCounters,
}

impl RankState {
    /// Creates the rank state, claiming from `all` the atoms whose wrapped
    /// position this rank owns (subdivision 1 — the paper's main setting).
    pub fn new(rank: usize, grid: RankGrid, all: &AtomStore, ff: &ForceField) -> Self {
        Self::new_subdivided(rank, grid, all, ff, 1)
    }

    /// Creates the rank state with `k`-fold subdivided cells and reach-k
    /// patterns (paper §6) for the cell-sweep methods.
    pub fn new_subdivided(
        rank: usize,
        grid: RankGrid,
        all: &AtomStore,
        ff: &ForceField,
        k: i32,
    ) -> Self {
        assert!((1..=3).contains(&k));
        let mut store = AtomStore::new(all.species_masses().to_vec());
        for i in 0..all.len() {
            let r = grid.bbox().wrap(all.positions()[i]);
            if grid.owner_of(r) == rank {
                store.push(all.ids()[i], all.species()[i], r, all.velocities()[i]);
            }
        }
        let owned = store.len();
        let origin = grid.origin_of(rank);
        let sub = grid.rank_box_lengths_of(rank);
        let mut terms = Vec::new();
        let mut hybrid_pair_lat = None;
        for (n, rcut) in ff.terms() {
            // Local cells: the largest grid with edge ≥ rcut/k.
            let edge = rcut / k as f64;
            let ext = IVec3::new(
                ((sub.x / edge).floor() as i32).max(1),
                ((sub.y / edge).floor() as i32).max(1),
                ((sub.z / edge).floor() as i32).max(1),
            );
            let cell = Vec3::new(sub.x / ext.x as f64, sub.y / ext.y as f64, sub.z / ext.z as f64);
            let m = k * ((n as i32) - 1);
            let (lo, hi) = match ff.method {
                Method::ShiftCollapse => (IVec3::ZERO, IVec3::splat(m)),
                Method::FullShell | Method::Hybrid => (IVec3::splat(m), IVec3::splat(m)),
            };
            if ff.method == Method::Hybrid {
                if n == 2 {
                    // Hybrid bins everything into the pair lattice; margins
                    // must hold the full halo width.
                    let width = halo_width_for(ff, &grid);
                    let mc = IVec3::new(
                        (width / cell.x).ceil() as i32,
                        (width / cell.y).ceil() as i32,
                        (width / cell.z).ceil() as i32,
                    );
                    hybrid_pair_lat = Some(GhostLattice::new(origin, cell, ext, mc, mc));
                }
                continue;
            }
            let pattern = match ff.method {
                Method::ShiftCollapse => sc_core::shift_collapse_reach(n, k),
                _ => sc_core::generate_fs_reach(n, k),
            };
            let dedup = match ff.method {
                Method::ShiftCollapse => Dedup::Collapsed,
                _ => Dedup::Guarded,
            };
            // Interior cells: the pattern sweep from cell `q` reads cells
            // within the ghost margins, so `q` is interior exactly when it
            // sits at least the margin away from every ghosted side (SC
            // ghosts only the high sides; FS both). Interior-first sweep
            // order is the contract the overlap path relies on.
            let (mut interior, mut frontier) = (Vec::new(), Vec::new());
            for q in sc_geom::CellRegion::new(IVec3::ZERO, ext).iter() {
                let inside = (0..3).all(|a| q[a] >= lo[a] && q[a] < ext[a] - hi[a]);
                if inside {
                    interior.push(q);
                } else {
                    frontier.push(q);
                }
            }
            terms.push(TermLattice {
                n,
                rcut,
                plan: PatternPlan::new(&pattern, dedup),
                lat: GhostLattice::new(origin, cell, ext, lo, hi),
                interior,
                frontier,
            });
        }
        RankState {
            rank,
            grid,
            store,
            owned,
            ghost_origin: Vec::new(),
            terms,
            hybrid_pair_lat,
            scratch: ForceAccumulator::default(),
            pending: None,
            stats: CommCounters::default(),
        }
    }

    /// Owned-atom count.
    pub fn owned(&self) -> usize {
        self.owned
    }

    /// The atom store (owned atoms first, then ghosts).
    pub fn store(&self) -> &AtomStore {
        &self.store
    }

    /// Drops all ghosts (start of a new exchange cycle).
    pub fn drop_ghosts(&mut self) {
        self.store.truncate(self.owned);
        self.ghost_origin.clear();
    }

    /// First velocity-Verlet half-step (half-kick + drift) on owned atoms.
    /// Positions are *not* wrapped — migration moves boundary-crossers to
    /// their new owner, which re-expresses them in its frame.
    pub fn vv_start(&mut self, dt: f64) {
        for i in 0..self.owned {
            let m = self.store.mass(i as u32);
            let a = self.store.forces()[i] / m;
            self.store.velocities_mut()[i] += a * (0.5 * dt);
            let v = self.store.velocities()[i];
            self.store.positions_mut()[i] += v * dt;
        }
    }

    /// Second velocity-Verlet half-kick on owned atoms.
    pub fn vv_finish(&mut self, dt: f64) {
        for i in 0..self.owned {
            let m = self.store.mass(i as u32);
            let a = self.store.forces()[i] / m;
            self.store.velocities_mut()[i] += a * (0.5 * dt);
        }
    }

    /// Permutes this rank's owned atoms into the Morton order of its first
    /// term lattice (Hybrid: the pair lattice), so that atoms binned into
    /// neighbouring cells sit in neighbouring slots for the batched distance
    /// kernels. Must be called while the store is ghost-free — ghost
    /// provenance ([`GhostOrigin`]) is slot-indexed — i.e. after
    /// [`RankState::drop_ghosts`] and before migration/exchange. All term
    /// lattices are rebuilt on the next force computation, so no binned slot
    /// index survives the permutation.
    pub fn resort_owned(&mut self) {
        debug_assert_eq!(self.store.len(), self.owned, "re-sort with ghosts present");
        let lat = self.terms.first().map(|t| &t.lat).or(self.hybrid_pair_lat.as_ref());
        if let Some(lat) = lat {
            let perm = lat.morton_permutation(&self.store, self.owned);
            self.store.apply_permutation(&perm);
        }
    }

    /// Kinetic energy of owned atoms.
    pub fn kinetic_energy(&self) -> f64 {
        (0..self.owned)
            .map(|i| 0.5 * self.store.mass(i as u32) * self.store.velocities()[i].norm_sq())
            .sum()
    }

    /// Collects atoms that left the owned box along `axis`, as
    /// `(to_minus, to_plus)` message lists with positions shifted into the
    /// receivers' frames. The atoms are removed from this rank.
    ///
    /// Each removal is an [`AtomStore::swap_remove`], which moves the last
    /// atom into the vacated slot — every lattice binned before this call is
    /// stale afterwards (its bins still point the moved atom at its old
    /// slot). The store's generation counter records this: all term lattices
    /// report `!is_current` until their rebuild at the next force
    /// computation, and the [`LocalSource`] constructor asserts on it.
    pub fn collect_migrants(&mut self, axis: usize) -> (Vec<AtomMsg>, Vec<AtomMsg>) {
        debug_assert_eq!(self.store.len(), self.owned, "migrate with ghosts present");
        let origin = self.grid.origin_of(self.rank);
        let sub = self.grid.rank_box_lengths_of(self.rank);
        let lo = origin[axis];
        let hi = origin[axis] + sub[axis];
        let mut to_minus = Vec::new();
        let mut to_plus = Vec::new();
        let mut i = 0;
        while i < self.store.len() {
            let x = self.store.positions()[i][axis];
            let dir = if x < lo {
                -1
            } else if x >= hi {
                1
            } else {
                i += 1;
                continue;
            };
            let (id, sp, mut r, v) = self.store.swap_remove(i as u32);
            r += self.grid.send_shift(self.rank, axis, dir);
            let msg = AtomMsg { id, species: sp, position: r, velocity: v };
            if dir < 0 {
                to_minus.push(msg);
            } else {
                to_plus.push(msg);
            }
            self.stats.atoms_migrated += 1;
        }
        self.owned = self.store.len();
        (to_minus, to_plus)
    }

    /// Absorbs migrated atoms as owned.
    pub fn absorb_migrants(&mut self, atoms: &[AtomMsg]) {
        debug_assert_eq!(self.store.len(), self.owned);
        for a in atoms {
            self.store.push(a.id, a.species, a.position, a.velocity);
        }
        self.owned = self.store.len();
    }

    /// Collects the boundary band for one routing hop `(axis, recv_dir)`:
    /// the atoms this rank must send to its `-recv_dir` neighbour, positions
    /// shifted into that neighbour's frame.
    ///
    /// Forwarded routing includes previously received ghosts — but only
    /// those that arrived on a *strictly earlier axis*. Forwarding a ghost
    /// back along the axis it arrived on would bounce it to its sender as a
    /// coincident duplicate of an owned atom.
    pub fn collect_ghost_band(
        &self,
        plan: &GhostPlan,
        axis: usize,
        recv_dir: i32,
    ) -> Vec<GhostMsg> {
        let origin = self.grid.origin_of(self.rank);
        let sub = self.grid.rank_box_lengths_of(self.rank);
        let send_dir = -recv_dir;
        let shift = self.grid.send_shift(self.rank, axis, send_dir);
        let mut out = Vec::new();
        for i in 0..self.store.len() {
            if i >= self.owned {
                let arrived_axis = plan.hops[self.ghost_origin[i - self.owned].hop].0;
                if arrived_axis >= axis {
                    continue;
                }
            }
            let x = self.store.positions()[i][axis];
            let in_band = if recv_dir > 0 {
                // Receiver needs my low band (its upper ghost region).
                x < origin[axis] + plan.hi_width
            } else {
                // Receiver needs my high band (its lower ghost region).
                x >= origin[axis] + sub[axis] - plan.lo_width
            };
            if in_band {
                out.push(GhostMsg {
                    id: self.store.ids()[i],
                    species: self.store.species()[i],
                    position: self.store.positions()[i] + shift,
                });
            }
        }
        out
    }

    /// [`RankState::collect_ghost_band`] for an overlapped exchange, where
    /// received ghosts are *staged* in a side inbox instead of absorbed
    /// into the store (the store is concurrently read by the interior
    /// compute pass and must stay ghost-free). Owned atoms come from the
    /// store; forwarded ghosts come from `staged` — `(hop, from, ghosts)`
    /// entries in canonical absorb order, positions already in this rank's
    /// frame — under the same strictly-earlier-axis rule and band
    /// predicate, so the staged exchange ships exactly the bytes the
    /// in-line one does.
    pub fn collect_ghost_band_staged(
        &self,
        plan: &GhostPlan,
        axis: usize,
        recv_dir: i32,
        staged: &[(usize, usize, Vec<GhostMsg>)],
    ) -> Vec<GhostMsg> {
        debug_assert_eq!(self.store.len(), self.owned, "staged collection runs ghost-free");
        let origin = self.grid.origin_of(self.rank);
        let sub = self.grid.rank_box_lengths_of(self.rank);
        let shift = self.grid.send_shift(self.rank, axis, -recv_dir);
        let mut out = self.collect_ghost_band(plan, axis, recv_dir);
        for (hop, _from, ghosts) in staged {
            if plan.hops[*hop].0 >= axis {
                continue;
            }
            for g in ghosts {
                let x = g.position[axis];
                let in_band = if recv_dir > 0 {
                    x < origin[axis] + plan.hi_width
                } else {
                    x >= origin[axis] + sub[axis] - plan.lo_width
                };
                if in_band {
                    out.push(GhostMsg {
                        id: g.id,
                        species: g.species,
                        position: g.position + shift,
                    });
                }
            }
        }
        out
    }

    /// Absorbs ghosts received in routing hop `hop` from `from_rank`.
    pub fn absorb_ghosts(&mut self, hop: usize, from_rank: usize, ghosts: &[GhostMsg]) {
        for g in ghosts {
            self.store.push(g.id, g.species, g.position, Vec3::ZERO);
            self.ghost_origin.push(GhostOrigin { hop, from_rank });
            self.stats.ghosts_imported += 1;
        }
    }

    /// Collects the accumulated forces of all ghosts that arrived in `hop`,
    /// as messages for the rank they came from, and returns that rank.
    /// Returns `None` when no ghosts arrived in that hop (an empty message
    /// must still be sent to keep the executors' message counts fixed —
    /// callers use the hop's neighbour in that case).
    pub fn collect_ghost_forces(&self, hop: usize) -> (Vec<ForceMsg>, Option<usize>) {
        let mut out = Vec::new();
        let mut to = None;
        for (k, origin) in self.ghost_origin.iter().enumerate() {
            if origin.hop != hop {
                continue;
            }
            let slot = self.owned + k;
            to = Some(origin.from_rank);
            out.push(ForceMsg { id: self.store.ids()[slot], force: self.store.forces()[slot] });
        }
        (out, to)
    }

    /// Accumulates reduced ghost forces: each force lands on the owned atom
    /// with that id, or — if this rank only holds the atom as an
    /// earlier-hop ghost (multi-hop forwarding) — on that ghost slot, whose
    /// own reduction hop will forward it onward.
    ///
    /// # Errors
    /// [`RuntimeError::UnknownForceTarget`] when a force arrives for an atom
    /// this rank neither owns nor holds as an earlier-hop ghost — the
    /// exchange delivered inconsistent routing data.
    pub fn absorb_ghost_forces(
        &mut self,
        current_hop: usize,
        forces: &[ForceMsg],
    ) -> Result<(), RuntimeError> {
        if forces.is_empty() {
            return Ok(());
        }
        // Owned atoms win; otherwise the earliest-hop ghost gets it (its
        // reduction hop is still ahead of us because hops reduce in reverse
        // order).
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        for i in 0..self.owned {
            slot_of.insert(self.store.ids()[i], i);
        }
        for (k, origin) in self.ghost_origin.iter().enumerate() {
            if origin.hop < current_hop {
                let id = self.store.ids()[self.owned + k];
                slot_of.entry(id).or_insert(self.owned + k);
            }
        }
        for f in forces {
            let slot = *slot_of
                .get(&f.id)
                .ok_or(RuntimeError::UnknownForceTarget { rank: self.rank, id: f.id })?;
            self.store.forces_mut()[slot] += f.force;
        }
        Ok(())
    }

    /// Starts an interior-cell pass: zeroes forces, extracts the term
    /// lattices and force scratch into an [`InteriorTask`], leaving this
    /// `RankState` free to be *shared* (band collection reads positions)
    /// while [`RankState::run_interior`] computes on the task. Must be
    /// called while the store is ghost-free.
    pub fn begin_interior(&mut self) -> InteriorTask {
        debug_assert_eq!(self.store.len(), self.owned, "interior pass with ghosts present");
        self.store.zero_forces();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.reset();
        scratch.ensure_len(self.store.len());
        InteriorTask {
            terms: std::mem::take(&mut self.terms),
            scratch,
            partial: ComputePartial::default(),
        }
    }

    /// Runs the interior-cell sweeps of `task` against `rank`'s owned
    /// atoms. Reads `rank` immutably — concurrent boundary-band collection
    /// on the same `rank` is safe. Hybrid has no cell sweep, so its
    /// interior pass is empty (`task.terms` is empty) and the whole
    /// computation happens post-exchange.
    pub fn run_interior(task: &mut InteriorTask, rank: &RankState, ff: &ForceField) {
        let species = rank.store.species().to_vec();
        let p = &mut task.partial;
        for term in &mut task.terms {
            let t_bin = Instant::now();
            term.lat.rebuild(&rank.store, rank.owned);
            p.phases.add(Phase::Bin, t_bin.elapsed().as_secs_f64());
            let src = LocalSource::new(&term.lat, &rank.store);
            let t_enum = Instant::now();
            sweep_cells(
                ff,
                term.n,
                &term.plan,
                term.rcut,
                &src,
                &species,
                &term.interior,
                &mut task.scratch,
                &mut p.energy,
                &mut p.tuples,
            );
            p.phases.add(Phase::Enumerate, t_enum.elapsed().as_secs_f64());
        }
    }

    /// Banks a finished interior pass: the next [`RankState::compute_forces`]
    /// call runs only the frontier cells and merges.
    pub fn finish_interior(&mut self, task: InteriorTask) {
        self.terms = task.terms;
        self.scratch = task.scratch;
        self.pending = Some(task.partial);
    }

    /// Single-threaded convenience: the whole interior pass in one call.
    pub fn compute_interior(&mut self, ff: &ForceField) {
        let mut task = self.begin_interior();
        Self::run_interior(&mut task, self, ff);
        self.finish_interior(task);
    }

    /// Rebuilds the per-term lattices and computes forces over this rank's
    /// owned base cells — interior cells first, then frontier cells, so an
    /// interior pass banked via [`RankState::begin_interior`] (compute/comm
    /// overlap) continues here with only the frontier sweep and produces
    /// bitwise-identical results. Forces accumulate on owned *and ghost*
    /// slots; the reverse reduction ships the ghost parts home.
    ///
    /// Also returns the step-phase breakdown (binning / enumeration /
    /// scratch reduction) and folds it into [`CommCounters::phases`].
    pub fn compute_forces(
        &mut self,
        ff: &ForceField,
    ) -> (EnergyBreakdown, TupleCounts, PhaseBreakdown) {
        let pending = self.pending.take();
        let fresh = pending.is_none();
        // With a banked interior pass the forces were zeroed at
        // `begin_interior` and ghosts arrive force-free, so this is a
        // no-op re-zero; without one it clears the previous step.
        self.store.zero_forces();
        let (mut energy, mut tuples, mut phases) = match pending {
            Some(p) => (p.energy, p.tuples, p.phases),
            None => Default::default(),
        };
        let mut acc = std::mem::take(&mut self.scratch);
        if fresh {
            acc.reset();
        }
        acc.ensure_len(self.store.len());
        if ff.method == Method::Hybrid {
            self.compute_forces_hybrid(ff, &mut acc, &mut energy, &mut tuples, &mut phases);
        } else {
            self.compute_forces_cells(ff, &mut acc, &mut energy, &mut tuples, &mut phases, fresh);
        }
        let t_reduce = Instant::now();
        acc.merge_into(self.store.forces_mut());
        phases.add(Phase::Reduce, t_reduce.elapsed().as_secs_f64());
        self.scratch = acc;
        self.stats.phases.accumulate(&phases);
        (energy, tuples, phases)
    }

    /// Cell-sweep (SC / FS) force computation into the scratch accumulator:
    /// interior cells when `with_interior` (skipped if a banked interior
    /// pass already covered them), then frontier cells.
    fn compute_forces_cells(
        &mut self,
        ff: &ForceField,
        acc: &mut ForceAccumulator,
        energy: &mut EnergyBreakdown,
        tuples: &mut TupleCounts,
        phases: &mut PhaseBreakdown,
        with_interior: bool,
    ) {
        let species = self.store.species().to_vec();
        // Rebuild every term lattice first (split borrow: take the lattice
        // out, rebuild against the store, put it back), then sweep *all*
        // interiors before *any* frontier. The banked overlap path runs the
        // interior sweeps of every term up front, so the fresh path must
        // accumulate in the same term order or multi-term force sums (pair +
        // triplet on the same atom) drift by an ulp.
        for ti in 0..self.terms.len() {
            let mut lat = std::mem::replace(
                &mut self.terms[ti].lat,
                GhostLattice::new(
                    Vec3::ZERO,
                    Vec3::splat(1.0),
                    IVec3::splat(1),
                    IVec3::ZERO,
                    IVec3::ZERO,
                ),
            );
            let t_bin = Instant::now();
            lat.rebuild(&self.store, self.owned);
            phases.add(Phase::Bin, t_bin.elapsed().as_secs_f64());
            self.terms[ti].lat = lat;
        }
        let t_enum = Instant::now();
        if with_interior {
            for term in &self.terms {
                let src = LocalSource::new(&term.lat, &self.store);
                sweep_cells(
                    ff,
                    term.n,
                    &term.plan,
                    term.rcut,
                    &src,
                    &species,
                    &term.interior,
                    acc,
                    energy,
                    tuples,
                );
            }
        }
        for term in &self.terms {
            let src = LocalSource::new(&term.lat, &self.store);
            sweep_cells(
                ff,
                term.n,
                &term.plan,
                term.rcut,
                &src,
                &species,
                &term.frontier,
                acc,
                energy,
                tuples,
            );
        }
        phases.add(Phase::Enumerate, t_enum.elapsed().as_secs_f64());
    }

    /// Hybrid-MD force computation: local Verlet list, then vertex- and
    /// bond-owner rules keep every global tuple computed by exactly one
    /// rank.
    fn compute_forces_hybrid(
        &mut self,
        ff: &ForceField,
        acc: &mut ForceAccumulator,
        energy: &mut EnergyBreakdown,
        tuples: &mut TupleCounts,
        phases: &mut PhaseBreakdown,
    ) {
        let pot = ff.pair.as_deref().expect("hybrid has a pair term");
        let mut lat = self.hybrid_pair_lat.take().expect("hybrid pair lattice");
        let t_bin = Instant::now();
        lat.rebuild(&self.store, self.owned);
        let plan = PatternPlan::new(&sc_core::generate_fs(2), Dedup::Guarded);
        let src = LocalSource::new(&lat, &self.store);
        // Sweep *all* local cells so ghost-ghost pairs near the boundary are
        // in the list too (needed for chain ends of n ≥ 3 tuples).
        let all_cells: Vec<IVec3> = lat.extended_region().iter().collect();
        let (nl, pair_stats) =
            NeighborList::build_from_cells(&src, &all_cells, self.store.len(), &plan, pot.cutoff());
        phases.add(Phase::Bin, t_bin.elapsed().as_secs_f64());
        tuples.pair.merge(pair_stats);
        let species = self.store.species().to_vec();
        let ids = self.store.ids().to_vec();
        let owned = self.owned as u32;
        let t_enum = Instant::now();

        // Pair forces: owned rows, gid guard (cross-rank unique).
        let mut e2 = 0.0;
        for i in 0..owned {
            let si = species[i as usize];
            for &(j, d) in nl.neighbors(i) {
                let owned_j = j < owned;
                if owned_j && ids[j as usize] <= ids[i as usize] {
                    continue; // counted from the other owned row
                }
                if !owned_j && ids[j as usize] < ids[i as usize] {
                    continue; // the ghost's owner computes it
                }
                let sj = species[j as usize];
                if !pot.applies(si, sj) {
                    continue;
                }
                let r = d.norm();
                let (u, du) = pot.eval(si, sj, r);
                e2 += u;
                let fj = d * (-(du / r));
                acc.add(j, fj);
                acc.sub(i, fj);
            }
        }
        energy.pair += e2;

        // Triplets: owned-vertex rule.
        if let Some(t) = &ff.triplet {
            let rc2 = t.cutoff() * t.cutoff();
            let mut e3 = 0.0;
            let mut stats = VisitStats::default();
            for j in 0..owned {
                let nbrs = nl.neighbors(j);
                for (a, &(i, d_ji)) in nbrs.iter().enumerate() {
                    if d_ji.norm_sq() >= rc2 {
                        continue;
                    }
                    for &(k, d_jk) in &nbrs[a + 1..] {
                        stats.candidates += 1;
                        if d_jk.norm_sq() >= rc2 {
                            continue;
                        }
                        stats.accepted += 1;
                        let (s0, s1, s2) =
                            (species[i as usize], species[j as usize], species[k as usize]);
                        if !t.applies(s0, s1, s2) {
                            continue;
                        }
                        let (u, f0, f1, f2) = t.eval(s0, s1, s2, d_ji, d_jk);
                        e3 += u;
                        acc.add(i, f0);
                        acc.add(j, f1);
                        acc.add(k, f2);
                    }
                }
            }
            energy.triplet += e3;
            tuples.triplet.merge(stats);
        }

        // Quadruplets: owned centre-bond rule (owner of the smaller-gid
        // bond atom computes the chain).
        if let Some(qp) = &ff.quadruplet {
            let rc2 = qp.cutoff() * qp.cutoff();
            let mut e4 = 0.0;
            let mut stats = VisitStats::default();
            for j in 0..owned {
                for &(k, d_jk) in nl.neighbors(j) {
                    if d_jk.norm_sq() >= rc2 {
                        continue;
                    }
                    let gid_j = ids[j as usize];
                    let gid_k = ids[k as usize];
                    let k_owned = k < owned;
                    // Unique owner of the centre bond: the rank owning the
                    // smaller-gid endpoint. Both-owned bonds use the gid
                    // order to avoid double counting within this rank.
                    if k_owned && gid_k <= gid_j {
                        continue;
                    }
                    if !k_owned && gid_k < gid_j {
                        continue;
                    }
                    for &(i, d_ji) in nl.neighbors(j) {
                        if i == k || d_ji.norm_sq() >= rc2 {
                            continue;
                        }
                        for &(l, d_kl) in nl.neighbors(k) {
                            stats.candidates += 1;
                            if l == j || l == i || d_kl.norm_sq() >= rc2 {
                                continue;
                            }
                            stats.accepted += 1;
                            let sp = [
                                species[i as usize],
                                species[j as usize],
                                species[k as usize],
                                species[l as usize],
                            ];
                            if !qp.applies(sp) {
                                continue;
                            }
                            let (u, f4) = qp.eval(sp, -d_ji, d_jk, d_kl);
                            e4 += u;
                            acc.add(i, f4[0]);
                            acc.add(j, f4[1]);
                            acc.add(k, f4[2]);
                            acc.add(l, f4[3]);
                        }
                    }
                }
            }
            energy.quadruplet += e4;
            tuples.quadruplet.merge(stats);
        }

        phases.add(Phase::Enumerate, t_enum.elapsed().as_secs_f64());
        self.hybrid_pair_lat = Some(lat);
    }

    /// Gathers this rank's owned atoms (positions wrapped into the global
    /// box) for result collection.
    pub fn owned_atoms(&self) -> Vec<AtomMsg> {
        (0..self.owned)
            .map(|i| AtomMsg {
                id: self.store.ids()[i],
                species: self.store.species()[i],
                position: self.grid.bbox().wrap(self.store.positions()[i]),
                velocity: self.store.velocities()[i],
            })
            .collect()
    }
}

/// One cell-list sweep of one term: enumerates every n-tuple with a base
/// atom in `cells` and accumulates forces into `acc` and energies/counts
/// into `energy`/`tuples`. Each call folds its own energy partial sum in
/// one shot, so splitting a sweep into interior + frontier calls is
/// bitwise-identical to any other split with the same cell order.
#[allow(clippy::too_many_arguments)]
fn sweep_cells(
    ff: &ForceField,
    n: usize,
    plan: &PatternPlan,
    rcut: f64,
    src: &LocalSource<'_>,
    species: &[Species],
    cells: &[IVec3],
    acc: &mut ForceAccumulator,
    energy: &mut EnergyBreakdown,
    tuples: &mut TupleCounts,
) {
    let mut stats = VisitStats::default();
    match n {
        2 => {
            let pot = ff.pair.as_deref().expect("pair term");
            let mut e = 0.0;
            for q in cells {
                stats.merge(engine::visit_pairs_in_cell_src(src, plan, rcut, *q, |i, j, d, r| {
                    let (si, sj) = (species[i as usize], species[j as usize]);
                    if !pot.applies(si, sj) {
                        return;
                    }
                    let (u, du) = pot.eval(si, sj, r);
                    e += u;
                    let fj = d * (-(du / r));
                    acc.add(j, fj);
                    acc.sub(i, fj);
                }));
            }
            energy.pair += e;
            tuples.pair.merge(stats);
        }
        3 => {
            let pot = ff.triplet.as_deref().expect("triplet term");
            let mut e = 0.0;
            for q in cells {
                stats.merge(engine::visit_triplets_in_cell_src(
                    src,
                    plan,
                    rcut,
                    *q,
                    |i0, i1, i2, d01, d12| {
                        let (s0, s1, s2) =
                            (species[i0 as usize], species[i1 as usize], species[i2 as usize]);
                        if !pot.applies(s0, s1, s2) {
                            return;
                        }
                        let (u, f0, f1, f2) = pot.eval(s0, s1, s2, -d01, d12);
                        e += u;
                        acc.add(i0, f0);
                        acc.add(i1, f1);
                        acc.add(i2, f2);
                    },
                ));
            }
            energy.triplet += e;
            tuples.triplet.merge(stats);
        }
        4 => {
            let pot = ff.quadruplet.as_deref().expect("quadruplet term");
            let mut e = 0.0;
            for q in cells {
                stats.merge(engine::visit_quadruplets_in_cell_src(
                    src,
                    plan,
                    rcut,
                    *q,
                    |ids, d01, d12, d23| {
                        let sp = [
                            species[ids[0] as usize],
                            species[ids[1] as usize],
                            species[ids[2] as usize],
                            species[ids[3] as usize],
                        ];
                        if !pot.applies(sp) {
                            return;
                        }
                        let (u, f4) = pot.eval(sp, d01, d12, d23);
                        e += u;
                        for (slot, force) in ids.iter().zip(f4) {
                            acc.add(*slot, force);
                        }
                    },
                ));
            }
            energy.quadruplet += e;
            tuples.quadruplet.merge(stats);
        }
        n => unreachable!("unsupported tuple order {n}"),
    }
}

/// The real-space halo depth a force field needs: `max_n (n−1)·cell_edge_n`
/// over the active terms, with each term's local cell edge computed from
/// the rank sub-box exactly as [`RankState::new`] does — maximised over
/// every rank's slab widths, so weighted grids get a band deep enough for
/// their widest-celled rank.
pub fn halo_width_for(ff: &ForceField, grid: &RankGrid) -> f64 {
    let mut w: f64 = 0.0;
    for (n, rcut) in ff.terms() {
        for axis in 0..3 {
            for s in grid.slab_widths(axis) {
                let ext = ((s / rcut).floor() as i32).max(1);
                let cell = s / ext as f64;
                w = w.max((n as f64 - 1.0) * cell);
            }
        }
    }
    w
}

/// Checks that `grid` can host `ff` under forwarded routing: the halo no
/// deeper than one rank sub-box, every sub-box at least one cutoff wide, and
/// the union of rank lattices large enough that pattern offsets do not alias
/// through the periodic wrap. Returns the halo width on success. This is the
/// same gate `DistributedSim::new` applies at construction, factored out so
/// online re-decomposition can test candidate grids before committing.
pub fn validate_decomposition(
    ff: &ForceField,
    grid: &RankGrid,
) -> Result<f64, crate::error::SetupError> {
    use crate::error::SetupError;
    let width = halo_width_for(ff, grid);
    // Forwarded routing only delivers nearest-neighbour data, so every
    // individual slab — not just the average — must host the halo.
    let sub = grid.min_slab_lengths();
    for a in 0..3 {
        if width > sub[a] + 1e-12 {
            return Err(SetupError::HaloTooDeep { halo: width, sub_box: sub[a], axis: a });
        }
    }
    for (n, rcut) in ff.terms() {
        for a in 0..3 {
            if sub[a] < rcut {
                return Err(SetupError::SubBoxBelowCutoff { rcut, sub_box: sub[a], axis: a });
            }
            let global: i32 =
                grid.slab_widths(a).iter().map(|s| ((s / rcut).floor() as i32).max(1)).sum();
            if global < (n as i32).max(3) {
                return Err(SetupError::LatticeTooSmall {
                    global_cells: global,
                    needed: (n as i32).max(3),
                    axis: a,
                });
            }
        }
    }
    Ok(width)
}

/// The largest feasible rank grid using at most `max_ranks` ranks for `ff`
/// over `bbox`: among all factorizations `px·py·pz ≤ max_ranks` that pass
/// [`validate_decomposition`], prefers more ranks, then the most cubic
/// split, then the lexicographically smallest dims — a deterministic choice
/// so re-decomposition after a rank death is reproducible. `None` when even
/// 1×1×1 is infeasible.
pub fn best_grid_for(
    ff: &ForceField,
    bbox: sc_geom::SimulationBox,
    max_ranks: usize,
) -> Option<IVec3> {
    let max_ranks = max_ranks.max(1) as i32;
    let mut best: Option<(i32, i32, IVec3)> = None; // (ranks, spread, dims)
    for px in 1..=max_ranks {
        for py in 1..=max_ranks / px {
            for pz in 1..=max_ranks / (px * py) {
                let dims = IVec3::new(px, py, pz);
                let ranks = px * py * pz;
                let spread = px.max(py).max(pz) - px.min(py).min(pz);
                let better = match best {
                    None => true,
                    Some((r, s, d)) => {
                        (ranks, -spread, [-dims.x, -dims.y, -dims.z]) > (r, -s, [-d.x, -d.y, -d.z])
                    }
                };
                if !better {
                    continue;
                }
                let Ok(grid) = RankGrid::try_new(dims, bbox) else { continue };
                if validate_decomposition(ff, &grid).is_ok() {
                    best = Some((ranks, spread, dims));
                }
            }
        }
    }
    best.map(|(_, _, dims)| dims)
}
