//! Per-rank health tracking: the deadline watchdog that separates a
//! recoverable stall from a permanently dead rank.
//!
//! Transient faults (drop / delay / corrupt / bounded stall) are absorbed by
//! the validated-retry path and, when the retry budget is exhausted, by a
//! supervisor rollback. A *crashed* rank defeats both: every replay delivers
//! into the same silence. The executors therefore feed every delivery
//! outcome into a [`HealthTracker`], which runs a three-state machine per
//! peer rank:
//!
//! ```text
//! Healthy --consecutive failures >= suspect_after--> Suspect
//! Suspect --first successful delivery-------------> Healthy   (a "flap")
//! Suspect --consecutive failures >= dead_after----> Dead
//! Suspect --flaps in window > max_flaps-----------> Dead      (breaker trip)
//! ```
//!
//! `Dead` is terminal for the tracker: only [`HealthTracker::reset`] — called
//! when the recovery layer re-decomposes onto the survivors and rank indices
//! are renumbered — clears it. The flap circuit breaker is per
//! `(rank, channel class)`: a link that keeps oscillating between failing
//! and working is as useless as a silent one, and declaring it dead bounds
//! the time the runtime spends re-proving that.
//!
//! The thresholds are measured in *consecutive failed delivery attempts*,
//! which ties them to the executor's retry budget: one exhausted budget is
//! `1 + MAX_RETRIES` attempts, so `suspect_after` equal to that marks a rank
//! suspect the first time it wedges a step, and `dead_after` of several
//! budgets distinguishes a long-but-bounded stall (which drains) from a
//! crash (which does not).

use sc_obs::CommChannel;

/// Health state of one peer rank, as seen by the delivery watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankHealth {
    /// Deliveries from the rank are succeeding.
    Healthy,
    /// The rank has missed enough consecutive deliveries to be on the
    /// deadline watchlist, but may still recover.
    Suspect,
    /// The rank is declared permanently dead; only re-decomposition over
    /// the survivors (which resets the tracker) recovers.
    Dead,
}

impl RankHealth {
    /// Stable wire code for trace events (0 healthy, 1 suspect, 2 dead).
    pub fn code(self) -> u8 {
        match self {
            RankHealth::Healthy => 0,
            RankHealth::Suspect => 1,
            RankHealth::Dead => 2,
        }
    }
}

/// Thresholds for the health state machine. All counts are consecutive
/// failed delivery attempts; the flap window is in steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Consecutive failures before `Healthy → Suspect`.
    pub suspect_after: u32,
    /// Consecutive failures before `Suspect → Dead`.
    pub dead_after: u32,
    /// `Suspect → Healthy` recoveries tolerated per channel class within
    /// [`HealthConfig::flap_window`] before the circuit breaker declares the
    /// link dead.
    pub max_flaps: u32,
    /// Width (in steps) of the sliding window the breaker counts flaps in.
    pub flap_window: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        // suspect_after = one exhausted retry budget (1 + MAX_RETRIES = 3
        // attempts); dead_after = six budgets, comfortably above the longest
        // scripted recoverable stall the tests use (12 attempts) and below
        // the supervisor's default rollback budget for a real crash.
        HealthConfig { suspect_after: 3, dead_after: 18, max_flaps: 4, flap_window: 16 }
    }
}

/// Cumulative transition counts, for observability deltas. Monotonic across
/// [`HealthTracker::reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// `Healthy → Suspect` transitions.
    pub suspects: u64,
    /// Declared deaths (deadline expiries and breaker trips).
    pub deaths: u64,
    /// `Suspect → Healthy` recoveries.
    pub recoveries: u64,
    /// Deaths caused by the flap circuit breaker specifically.
    pub breaker_trips: u64,
}

/// The per-rank health state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    config: HealthConfig,
    states: Vec<RankHealth>,
    consecutive: Vec<u32>,
    /// Recent flap steps per rank per channel class (migrate/ghosts/forces).
    flaps: Vec<[Vec<u64>; 3]>,
    counters: HealthCounters,
}

impl HealthTracker {
    /// A tracker for `ranks` peers, all initially healthy.
    pub fn new(ranks: usize, config: HealthConfig) -> Self {
        HealthTracker {
            config,
            states: vec![RankHealth::Healthy; ranks],
            consecutive: vec![0; ranks],
            flaps: vec![Default::default(); ranks],
            counters: HealthCounters::default(),
        }
    }

    /// Forgets all per-rank state (used after re-decomposition renumbers the
    /// ranks) while keeping the cumulative counters.
    pub fn reset(&mut self, ranks: usize) {
        self.states = vec![RankHealth::Healthy; ranks];
        self.consecutive = vec![0; ranks];
        self.flaps = vec![Default::default(); ranks];
    }

    /// Current state of `rank`.
    pub fn state(&self, rank: usize) -> RankHealth {
        self.states[rank]
    }

    /// Whether `rank` has been declared dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.states[rank] == RankHealth::Dead
    }

    /// Ranks currently declared dead, in index order.
    pub fn dead_ranks(&self) -> Vec<usize> {
        (0..self.states.len()).filter(|&r| self.is_dead(r)).collect()
    }

    /// Cumulative transition counts.
    pub fn counters(&self) -> HealthCounters {
        self.counters
    }

    /// Records one failed delivery attempt from `rank` on `channel` at
    /// `step`. Returns the new state if this failure caused a transition.
    pub fn record_failure(
        &mut self,
        rank: usize,
        _channel: CommChannel,
        _step: u64,
    ) -> Option<RankHealth> {
        if self.states[rank] == RankHealth::Dead {
            return None;
        }
        self.consecutive[rank] = self.consecutive[rank].saturating_add(1);
        let n = self.consecutive[rank];
        match self.states[rank] {
            RankHealth::Healthy if n >= self.config.suspect_after => {
                self.states[rank] = RankHealth::Suspect;
                self.counters.suspects += 1;
                Some(RankHealth::Suspect)
            }
            RankHealth::Suspect if n >= self.config.dead_after => {
                self.states[rank] = RankHealth::Dead;
                self.counters.deaths += 1;
                Some(RankHealth::Dead)
            }
            _ => None,
        }
    }

    /// Records one successful delivery from `rank` on `channel` at `step`.
    /// A suspect rank recovers (one flap for the breaker); too many flaps in
    /// the window trips the breaker and the returned state is `Dead`.
    pub fn record_success(
        &mut self,
        rank: usize,
        channel: CommChannel,
        step: u64,
    ) -> Option<RankHealth> {
        if self.states[rank] == RankHealth::Dead {
            return None;
        }
        self.consecutive[rank] = 0;
        if self.states[rank] != RankHealth::Suspect {
            return None;
        }
        let class = match channel {
            CommChannel::Migrate => 0,
            CommChannel::Ghosts => 1,
            CommChannel::Forces => 2,
        };
        let window = &mut self.flaps[rank][class];
        window.retain(|&s| s + self.config.flap_window > step);
        window.push(step);
        if window.len() as u32 > self.config.max_flaps {
            self.states[rank] = RankHealth::Dead;
            self.counters.deaths += 1;
            self.counters.breaker_trips += 1;
            Some(RankHealth::Dead)
        } else {
            self.states[rank] = RankHealth::Healthy;
            self.counters.recoveries += 1;
            Some(RankHealth::Healthy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> CommChannel {
        CommChannel::Ghosts
    }

    #[test]
    fn deadline_escalates_healthy_suspect_dead() {
        let mut t = HealthTracker::new(
            4,
            HealthConfig { suspect_after: 2, dead_after: 5, ..Default::default() },
        );
        assert_eq!(t.state(1), RankHealth::Healthy);
        assert_eq!(t.record_failure(1, ch(), 0), None);
        assert_eq!(t.record_failure(1, ch(), 0), Some(RankHealth::Suspect));
        assert_eq!(t.record_failure(1, ch(), 1), None);
        assert_eq!(t.record_failure(1, ch(), 1), None);
        assert_eq!(t.record_failure(1, ch(), 2), Some(RankHealth::Dead));
        assert!(t.is_dead(1));
        // Terminal: neither more failures nor a late success changes it.
        assert_eq!(t.record_failure(1, ch(), 3), None);
        assert_eq!(t.record_success(1, ch(), 3), None);
        assert!(t.is_dead(1));
        assert_eq!(t.dead_ranks(), vec![1]);
        // Other ranks unaffected.
        assert_eq!(t.state(0), RankHealth::Healthy);
        let c = t.counters();
        assert_eq!((c.suspects, c.deaths, c.recoveries, c.breaker_trips), (1, 1, 0, 0));
    }

    #[test]
    fn success_recovers_a_suspect_and_resets_the_deadline() {
        let mut t = HealthTracker::new(
            2,
            HealthConfig { suspect_after: 2, dead_after: 4, ..Default::default() },
        );
        t.record_failure(0, ch(), 0);
        assert_eq!(t.record_failure(0, ch(), 0), Some(RankHealth::Suspect));
        assert_eq!(t.record_success(0, ch(), 1), Some(RankHealth::Healthy));
        assert_eq!(t.counters().recoveries, 1);
        // The consecutive count restarted: three more failures only reach
        // Suspect, not Dead.
        t.record_failure(0, ch(), 2);
        assert_eq!(t.record_failure(0, ch(), 2), Some(RankHealth::Suspect));
        assert_eq!(t.record_failure(0, ch(), 3), None);
        assert_eq!(t.state(0), RankHealth::Suspect);
    }

    #[test]
    fn flapping_link_trips_the_breaker() {
        let cfg = HealthConfig { suspect_after: 1, dead_after: 100, max_flaps: 2, flap_window: 50 };
        let mut t = HealthTracker::new(2, cfg);
        // Two flaps tolerated, the third within the window trips the breaker.
        for step in 0..2u64 {
            assert_eq!(t.record_failure(1, ch(), step), Some(RankHealth::Suspect));
            assert_eq!(t.record_success(1, ch(), step), Some(RankHealth::Healthy));
        }
        assert_eq!(t.record_failure(1, ch(), 2), Some(RankHealth::Suspect));
        assert_eq!(t.record_success(1, ch(), 2), Some(RankHealth::Dead));
        assert!(t.is_dead(1));
        let c = t.counters();
        assert_eq!(c.breaker_trips, 1);
        assert_eq!(c.deaths, 1);
        assert_eq!(c.recoveries, 2);
    }

    #[test]
    fn flaps_outside_the_window_are_forgotten() {
        let cfg = HealthConfig { suspect_after: 1, dead_after: 100, max_flaps: 1, flap_window: 10 };
        let mut t = HealthTracker::new(1, cfg);
        t.record_failure(0, ch(), 0);
        assert_eq!(t.record_success(0, ch(), 0), Some(RankHealth::Healthy));
        // Far enough apart, the earlier flap has aged out.
        t.record_failure(0, ch(), 100);
        assert_eq!(t.record_success(0, ch(), 100), Some(RankHealth::Healthy));
        assert!(!t.is_dead(0));
        // But flaps on *different channel classes* do not pool: each class
        // has its own breaker.
        t.record_failure(0, ch(), 101);
        assert_eq!(t.record_success(0, CommChannel::Forces, 101), Some(RankHealth::Healthy));
        assert!(!t.is_dead(0));
    }

    #[test]
    fn reset_clears_states_but_keeps_counters() {
        let mut t = HealthTracker::new(
            3,
            HealthConfig { suspect_after: 1, dead_after: 2, ..Default::default() },
        );
        t.record_failure(2, ch(), 0);
        t.record_failure(2, ch(), 0);
        assert!(t.is_dead(2));
        t.reset(2);
        assert_eq!(t.state(0), RankHealth::Healthy);
        assert_eq!(t.state(1), RankHealth::Healthy);
        assert_eq!(t.dead_ranks(), Vec::<usize>::new());
        assert_eq!(t.counters().deaths, 1, "counters survive the reset");
    }
}
