//! The communication-optimal exchange schedule shared by both executors.
//!
//! The legacy schedule sent one message per channel per step: 3 migrate
//! phases × 2 directions, plus one ghost message and one force message per
//! routing hop — 12 (SC) or 18 (FS) messages per rank per step. This module
//! restructures that into *merged phases* with *per-neighbor framing*:
//!
//! * Same-axis hop pairs of the FS/Hybrid plan are provably independent
//!   (forwarded routing only re-exports ghosts that arrived on a strictly
//!   earlier axis), so both directions of an axis share one exchange phase.
//! * Within a phase, every per-channel payload bound for the same neighbor
//!   rank is packed into one framed [`Payload::Batch`] message. Sections
//!   keep their own stamps and checksums, so validation and fault injection
//!   still localize per channel while the latency term of Eq. 31
//!   (`c_lat · n_msg`) pays once per neighbor instead of once per channel.
//! * Receivers absorb sections in *canonical slot order* (migration by
//!   direction, ghosts by ascending hop, forces by descending hop) — never
//!   in arrival order — which makes the aggregated and per-channel wire
//!   modes bitwise-identical and keeps the BSP and threaded executors in
//!   exact agreement.

use crate::comm::GhostPlan;
use crate::grid::RankGrid;
use crate::msg::{Channel, Message, Payload};

/// Runtime communication configuration, settable per scenario via the
/// `comm` spec block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommConfig {
    /// Aggregate all per-channel payloads bound for the same neighbor into
    /// one framed message per phase (default on).
    pub aggregation: bool,
    /// Compute interior-cell tuples while the boundary exchange is in
    /// flight (default on). Off and on are bitwise-identical; the flag only
    /// moves when the interior pass runs.
    pub overlap: bool,
    /// Re-evaluate the rank decomposition against measured per-rank compute
    /// seconds every this many steps (0 disables adaptive load balance).
    pub rebalance_every: u64,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig { aggregation: true, overlap: true, rebalance_every: 0 }
    }
}

/// One send or receive slot within an exchange phase: the channel it fills
/// and the peer rank on the other end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// The per-channel slot this section fills.
    pub channel: Channel,
    /// Send: destination rank. Receive: source rank.
    pub peer: usize,
}

/// Groups the plan's hops into merged exchange phases: maximal runs of
/// consecutive same-axis hops. For the SC plan this is one hop per phase;
/// for FS/Hybrid both directions of an axis share a phase.
pub fn ghost_phase_groups(plan: &GhostPlan) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (hop, &(axis, _)) in plan.hops.iter().enumerate() {
        match groups.last_mut() {
            Some(g) if plan.hops[g[0]].0 == axis => g.push(hop),
            _ => groups.push(vec![hop]),
        }
    }
    groups
}

/// The reverse (force-reduction) phase groups: the ghost groups visited in
/// reverse, hops descending inside each group — the exact reverse of the
/// forward routing, so multi-hop forwarded forces drain outward correctly.
pub fn force_phase_groups(plan: &GhostPlan) -> Vec<Vec<usize>> {
    let mut groups = ghost_phase_groups(plan);
    groups.reverse();
    for g in &mut groups {
        g.reverse();
    }
    groups
}

/// The migration phase for `axis`: send slots in direction order `[-1, +1]`
/// and the matching canonical receive slots (a `dir` send arrives from the
/// receiver's `-dir` neighbor... i.e. the receiver hears `Migrate{dir}` from
/// its `+... -dir`-opposite side).
pub fn migrate_phase(grid: &RankGrid, rank: usize, axis: usize) -> (Vec<Slot>, Vec<Slot>) {
    let sends = vec![
        Slot { channel: Channel::Migrate { axis, dir: -1 }, peer: grid.neighbor(rank, axis, -1) },
        Slot { channel: Channel::Migrate { axis, dir: 1 }, peer: grid.neighbor(rank, axis, 1) },
    ];
    // A `dir = -1` migration is received from the +1 neighbor and vice
    // versa. Canonical absorb order mirrors the send order.
    let recvs = vec![
        Slot { channel: Channel::Migrate { axis, dir: -1 }, peer: grid.neighbor(rank, axis, 1) },
        Slot { channel: Channel::Migrate { axis, dir: 1 }, peer: grid.neighbor(rank, axis, -1) },
    ];
    (sends, recvs)
}

/// The ghost-export phase for one hop group: bands go to the `-recv_dir`
/// neighbor and arrive from the `recv_dir` neighbor, hops in ascending
/// order on both sides.
pub fn ghost_phase(
    grid: &RankGrid,
    plan: &GhostPlan,
    rank: usize,
    hops: &[usize],
) -> (Vec<Slot>, Vec<Slot>) {
    let mut sends = Vec::with_capacity(hops.len());
    let mut recvs = Vec::with_capacity(hops.len());
    for &hop in hops {
        let (axis, recv_dir) = plan.hops[hop];
        let channel = Channel::Ghosts { hop };
        sends.push(Slot { channel, peer: grid.neighbor(rank, axis, -recv_dir) });
        recvs.push(Slot { channel, peer: grid.neighbor(rank, axis, recv_dir) });
    }
    (sends, recvs)
}

/// The force-return phase for one (already reversed) hop group: forces for
/// hop `h` flow back to the rank the ghosts came from (`recv_dir` neighbor)
/// and arrive from the rank the band was exported to.
pub fn force_phase(
    grid: &RankGrid,
    plan: &GhostPlan,
    rank: usize,
    hops: &[usize],
) -> (Vec<Slot>, Vec<Slot>) {
    let mut sends = Vec::with_capacity(hops.len());
    let mut recvs = Vec::with_capacity(hops.len());
    for &hop in hops {
        let (axis, recv_dir) = plan.hops[hop];
        let channel = Channel::Forces { hop };
        sends.push(Slot { channel, peer: grid.neighbor(rank, axis, recv_dir) });
        recvs.push(Slot { channel, peer: grid.neighbor(rank, axis, -recv_dir) });
    }
    (sends, recvs)
}

/// Packs the phase's stamped sections (one per send slot, in canonical slot
/// order) into wire messages: with aggregation, one framed [`Payload::Batch`]
/// per destination (sections keep their canonical order inside the frame);
/// without, the sections travel unchanged. Returns `(destination, message)`
/// pairs in first-seen destination order.
pub fn frame_sections(
    aggregation: bool,
    phase: u64,
    epoch: u64,
    sections: Vec<(usize, Message)>,
) -> Vec<(usize, Message)> {
    if !aggregation {
        return sections;
    }
    let mut frames: Vec<(usize, Vec<Message>)> = Vec::new();
    for (to, msg) in sections {
        match frames.iter_mut().find(|(d, _)| *d == to) {
            Some((_, secs)) => secs.push(msg),
            None => frames.push((to, vec![msg])),
        }
    }
    frames
        .into_iter()
        .map(|(to, secs)| {
            let channel = secs[0].channel;
            (to, Message::stamped(phase, epoch, channel, Payload::Batch(secs)))
        })
        .collect()
}

/// The outer channel a receiver expects on the wire unit arriving from
/// `source` in a phase with canonical receive slots `recvs`: the first slot
/// from that source (frames carry their first section's channel as the
/// outer stamp, and senders frame in the same canonical order).
pub fn expected_outer_channel(recvs: &[Slot], source: usize) -> Option<Channel> {
    recvs.iter().find(|s| s.peer == source).map(|s| s.channel)
}

/// The wire units a receiver expects in one phase: one frame per distinct
/// source when aggregating, one message per slot otherwise. Returns
/// `(source, expected outer channel)` in canonical order.
pub fn expected_units(aggregation: bool, recvs: &[Slot]) -> Vec<(usize, Channel)> {
    if !aggregation {
        return recvs.iter().map(|s| (s.peer, s.channel)).collect();
    }
    let mut units: Vec<(usize, Channel)> = Vec::new();
    for s in recvs {
        if !units.iter().any(|(p, _)| *p == s.peer) {
            units.push((s.peer, s.channel));
        }
    }
    units
}

/// Matches the phase's received sections against the canonical receive
/// slots. `units` holds the delivery-verified wire units tagged with their
/// source rank — both executors verify the outer stamp *and* every batch
/// section's own stamp at delivery (that is what localizes in-frame
/// corruption and retries at frame granularity), so this function only
/// unpacks and orders; it never re-hashes content. Returns the payloads in
/// canonical slot order — the order receivers absorb in, regardless of
/// arrival order.
///
/// # Errors
/// [`crate::RuntimeError::WrongPayload`] when a slot has no matching
/// section.
pub fn match_sections(
    rank: usize,
    epoch: u64,
    recvs: &[Slot],
    units: Vec<(usize, Message)>,
) -> Result<Vec<Payload>, crate::RuntimeError> {
    let _ = epoch;
    let mut sections: Vec<(usize, Message)> = Vec::new();
    for (from, unit) in units {
        match unit.payload {
            Payload::Batch(secs) => sections.extend(secs.into_iter().map(|s| (from, s))),
            _ => sections.push((from, unit)),
        }
    }
    let mut out = Vec::with_capacity(recvs.len());
    let mut used = vec![false; sections.len()];
    for slot in recvs {
        let mut picked = None;
        for (i, (from, s)) in sections.iter().enumerate() {
            if !used[i] && *from == slot.peer && slot.channel.matches(s.channel) {
                picked = Some(i);
                break;
            }
        }
        let Some(i) = picked else {
            return Err(crate::RuntimeError::WrongPayload { rank, channel: slot.channel });
        };
        used[i] = true;
        out.push(i);
    }
    // Extract in canonical order without cloning payloads.
    let mut taken: Vec<Option<Message>> = sections.into_iter().map(|(_, s)| Some(s)).collect();
    Ok(out.into_iter().map(|i| taken[i].take().expect("slot used once").payload).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_geom::{IVec3, SimulationBox, Vec3};
    use sc_md::Method;

    fn grid222() -> RankGrid {
        RankGrid::new(IVec3::splat(2), SimulationBox::new(Vec3::splat(8.0)))
    }

    #[test]
    fn sc_plan_merges_to_one_hop_per_phase() {
        let plan = GhostPlan::for_method(Method::ShiftCollapse, 2.0).unwrap();
        assert_eq!(ghost_phase_groups(&plan), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(force_phase_groups(&plan), vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn fs_plan_merges_axis_pairs() {
        let plan = GhostPlan::for_method(Method::FullShell, 2.0).unwrap();
        assert_eq!(ghost_phase_groups(&plan), vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
        assert_eq!(force_phase_groups(&plan), vec![vec![5, 4], vec![3, 2], vec![1, 0]]);
    }

    #[test]
    fn framing_packs_one_message_per_destination() {
        let mk = |hop| Message::stamped(1, 0, Channel::Ghosts { hop }, Payload::Ghosts(vec![]));
        // Two sections to rank 3, one to rank 5.
        let wire = frame_sections(true, 1, 0, vec![(3, mk(0)), (5, mk(1)), (3, mk(2))]);
        assert_eq!(wire.len(), 2);
        assert_eq!(wire[0].0, 3);
        assert_eq!(wire[0].1.payload.section_count(), 2);
        assert_eq!(wire[0].1.channel, Channel::Ghosts { hop: 0 });
        assert_eq!(wire[1].0, 5);
        // Aggregation off: sections pass through untouched.
        let wire = frame_sections(false, 1, 0, vec![(3, mk(0)), (5, mk(1))]);
        assert_eq!(wire.len(), 2);
        assert!(!matches!(wire[0].1.payload, Payload::Batch(_)));
    }

    #[test]
    fn expected_units_collapse_per_source_when_aggregating() {
        let recvs = vec![
            Slot { channel: Channel::Ghosts { hop: 0 }, peer: 1 },
            Slot { channel: Channel::Ghosts { hop: 1 }, peer: 1 },
        ];
        assert_eq!(expected_units(true, &recvs), vec![(1, Channel::Ghosts { hop: 0 })]);
        assert_eq!(expected_units(false, &recvs).len(), 2);
        assert_eq!(expected_outer_channel(&recvs, 1), Some(Channel::Ghosts { hop: 0 }));
        assert_eq!(expected_outer_channel(&recvs, 9), None);
    }

    #[test]
    fn match_sections_orders_canonically_regardless_of_arrival() {
        let epoch = 4;
        let mk = |hop, n| {
            Message::stamped(
                1,
                epoch,
                Channel::Ghosts { hop },
                Payload::Ghosts(vec![
                    crate::msg::GhostMsg {
                        id: n,
                        species: sc_cell::Species(0),
                        position: Vec3::ZERO,
                    };
                    1
                ]),
            )
        };
        let recvs = vec![
            Slot { channel: Channel::Ghosts { hop: 0 }, peer: 2 },
            Slot { channel: Channel::Ghosts { hop: 1 }, peer: 7 },
        ];
        // Arrival order reversed vs canonical; sections still come back in
        // slot order.
        let units = vec![(7usize, mk(1, 100)), (2usize, mk(0, 200))];
        let payloads = match_sections(0, epoch, &recvs, units).unwrap();
        let Payload::Ghosts(g0) = &payloads[0] else { panic!() };
        let Payload::Ghosts(g1) = &payloads[1] else { panic!() };
        assert_eq!(g0[0].id, 200);
        assert_eq!(g1[0].id, 100);
        // A missing slot is a typed error.
        let units = vec![(7usize, mk(1, 100))];
        assert!(matches!(
            match_sections(0, epoch, &recvs, units),
            Err(crate::RuntimeError::WrongPayload { .. })
        ));
    }

    #[test]
    fn migrate_phase_slots_are_symmetric() {
        let g = grid222();
        let (sends, recvs) = migrate_phase(&g, 0, 0);
        assert_eq!(sends.len(), 2);
        // On a 2-wide axis both directions reach the same neighbor.
        assert_eq!(sends[0].peer, sends[1].peer);
        // What rank 0 sends with dir -1, its -1 neighbor expects from its
        // +1 side — i.e. from rank 0.
        let minus = sends[0].peer;
        let (_, nrecvs) = migrate_phase(&g, minus, 0);
        assert!(nrecvs
            .iter()
            .any(|s| s.peer == 0 && s.channel == (Channel::Migrate { axis: 0, dir: -1 })));
        let _ = recvs;
    }
}
