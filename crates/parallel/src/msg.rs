//! Message types exchanged between ranks.

use sc_cell::Species;
use sc_geom::Vec3;
use serde::{Deserialize, Serialize};

/// A migrating atom: full dynamical state, ownership transfers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtomMsg {
    /// Stable global id.
    pub id: u64,
    /// Species.
    pub species: Species,
    /// Position, already shifted into the receiver's coordinate frame.
    pub position: Vec3,
    /// Velocity.
    pub velocity: Vec3,
}

impl AtomMsg {
    /// Serialized size in bytes (id + species + 6 doubles) — used for
    /// bandwidth accounting.
    pub const WIRE_BYTES: u64 = 8 + 1 + 48;
}

/// A ghost (cached) atom: position-only copy for force computation
/// (the paper's atom-caching import, §1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GhostMsg {
    /// Stable global id (used to route reduced forces back).
    pub id: u64,
    /// Species.
    pub species: Species,
    /// Position in the receiver's coordinate frame.
    pub position: Vec3,
}

impl GhostMsg {
    /// Serialized size in bytes (id + species + 3 doubles).
    pub const WIRE_BYTES: u64 = 8 + 1 + 24;
}

/// A reduced force contribution flowing back to an atom's owner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForceMsg {
    /// Global id of the atom the force belongs to.
    pub id: u64,
    /// Accumulated force contribution.
    pub force: Vec3,
}

impl ForceMsg {
    /// Serialized size in bytes.
    pub const WIRE_BYTES: u64 = 8 + 24;
}

/// The bulk payloads a rank can send in one hop.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Migration along one axis.
    Migrate(Vec<AtomMsg>),
    /// Ghost-position export for one routing step.
    Ghosts(Vec<GhostMsg>),
    /// Ghost-force return for one routing step.
    Forces(Vec<ForceMsg>),
}

impl Payload {
    /// Wire size in bytes for bandwidth accounting.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Payload::Migrate(v) => v.len() as u64 * AtomMsg::WIRE_BYTES,
            Payload::Ghosts(v) => v.len() as u64 * GhostMsg::WIRE_BYTES,
            Payload::Forces(v) => v.len() as u64 * ForceMsg::WIRE_BYTES,
        }
    }
}

/// A phase-tagged message: executors match phases so that out-of-order
/// delivery (possible with the threaded executor) never mixes payloads from
/// different communication steps.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Monotone phase counter (each routing step of each MD step is one
    /// phase).
    pub phase: u64,
    /// The payload.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let m = Payload::Migrate(vec![AtomMsg {
            id: 1,
            species: Species(0),
            position: Vec3::ZERO,
            velocity: Vec3::ZERO,
        }]);
        assert_eq!(m.wire_bytes(), 57);
        let g =
            Payload::Ghosts(vec![GhostMsg { id: 1, species: Species(0), position: Vec3::ZERO }; 3]);
        assert_eq!(g.wire_bytes(), 3 * 33);
        let f = Payload::Forces(vec![]);
        assert_eq!(f.wire_bytes(), 0);
    }
}
