//! Message types exchanged between ranks, with the validation metadata
//! (epoch, channel, checksum) every payload is stamped with.

use crate::error::RuntimeError;
use sc_cell::Species;
use sc_geom::Vec3;
use serde::{Deserialize, Serialize};

/// A migrating atom: full dynamical state, ownership transfers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtomMsg {
    /// Stable global id.
    pub id: u64,
    /// Species.
    pub species: Species,
    /// Position, already shifted into the receiver's coordinate frame.
    pub position: Vec3,
    /// Velocity.
    pub velocity: Vec3,
}

impl AtomMsg {
    /// Serialized size in bytes (id + species + 6 doubles) — used for
    /// bandwidth accounting.
    pub const WIRE_BYTES: u64 = 8 + 1 + 48;
}

/// A ghost (cached) atom: position-only copy for force computation
/// (the paper's atom-caching import, §1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GhostMsg {
    /// Stable global id (used to route reduced forces back).
    pub id: u64,
    /// Species.
    pub species: Species,
    /// Position in the receiver's coordinate frame.
    pub position: Vec3,
}

impl GhostMsg {
    /// Serialized size in bytes (id + species + 3 doubles).
    pub const WIRE_BYTES: u64 = 8 + 1 + 24;
}

/// A reduced force contribution flowing back to an atom's owner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForceMsg {
    /// Global id of the atom the force belongs to.
    pub id: u64,
    /// Accumulated force contribution.
    pub force: Vec3,
}

impl ForceMsg {
    /// Serialized size in bytes.
    pub const WIRE_BYTES: u64 = 8 + 24;
}

/// The communication slot a payload fills within one step: which exchange
/// of the step's fixed schedule it belongs to. Receivers verify the stamped
/// channel against the slot they are filling, so a payload delayed by a hop
/// (or routed to the wrong phase) is detected instead of absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Channel {
    /// Migration along `axis`, sent toward `dir` (±1).
    Migrate {
        /// The exchange axis (0 = x).
        axis: usize,
        /// The send direction.
        dir: i32,
    },
    /// Ghost-position export for routing hop `hop` of the ghost plan.
    Ghosts {
        /// The hop index in [`crate::GhostPlan::hops`].
        hop: usize,
    },
    /// Ghost-force return for routing hop `hop` (reduced in reverse order).
    Forces {
        /// The hop index in [`crate::GhostPlan::hops`].
        hop: usize,
    },
}

impl Channel {
    /// The trace channel class of this message channel (the taxonomy the
    /// event tracer records with each send/recv).
    pub fn trace_class(self) -> sc_obs::CommChannel {
        match self {
            Channel::Migrate { .. } => sc_obs::CommChannel::Migrate,
            Channel::Ghosts { .. } => sc_obs::CommChannel::Ghosts,
            Channel::Forces { .. } => sc_obs::CommChannel::Forces,
        }
    }

    /// Folds the channel identity into a checksum accumulator.
    fn hash_into(self, h: &mut u64) {
        match self {
            Channel::Migrate { axis, dir } => {
                fnv1a(h, &[0u8, axis as u8, dir as u8]);
            }
            Channel::Ghosts { hop } => fnv1a(h, &[1u8, hop as u8]),
            Channel::Forces { hop } => fnv1a(h, &[2u8, hop as u8]),
        }
    }

    /// Whether this channel fills the same slot as `other` from the
    /// receiver's point of view. Migration payloads converge two-per-axis
    /// (one from each side), so the receiver checks the axis only.
    pub fn matches(self, other: Channel) -> bool {
        match (self, other) {
            (Channel::Migrate { axis: a, .. }, Channel::Migrate { axis: b, .. }) => a == b,
            _ => self == other,
        }
    }
}

/// FNV-1a 64-bit accumulation step.
#[inline]
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

#[inline]
fn hash_u64(h: &mut u64, v: u64) {
    fnv1a(h, &v.to_le_bytes());
}

#[inline]
fn hash_vec3(h: &mut u64, v: Vec3) {
    hash_u64(h, v.x.to_bits());
    hash_u64(h, v.y.to_bits());
    hash_u64(h, v.z.to_bits());
}

/// The bulk payloads a rank can send in one hop.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Migration along one axis.
    Migrate(Vec<AtomMsg>),
    /// Ghost-position export for one routing step.
    Ghosts(Vec<GhostMsg>),
    /// Ghost-force return for one routing step.
    Forces(Vec<ForceMsg>),
    /// A neighbor batch: every per-channel payload destined for the same
    /// neighbor rank in one exchange phase, framed as a single message. Each
    /// section is a fully stamped [`Message`] and keeps its own channel and
    /// checksum, so a corrupt-channel fault inside a frame still localizes
    /// to the section it hit. The frame's own checksum folds the section
    /// stamps, protecting the frame header and section ordering.
    Batch(Vec<Message>),
}

impl Payload {
    /// Wire size in bytes for bandwidth accounting. A batch counts only the
    /// payload bytes of its sections — framing is bookkeeping, not traffic —
    /// so aggregated and per-channel exchanges report identical byte totals
    /// and differ only in message count.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Payload::Migrate(v) => v.len() as u64 * AtomMsg::WIRE_BYTES,
            Payload::Ghosts(v) => v.len() as u64 * GhostMsg::WIRE_BYTES,
            Payload::Forces(v) => v.len() as u64 * ForceMsg::WIRE_BYTES,
            Payload::Batch(v) => v.iter().map(|m| m.payload.wire_bytes()).sum(),
        }
    }

    /// Number of per-channel sections this payload carries (1 for a plain
    /// payload).
    pub fn section_count(&self) -> usize {
        match self {
            Payload::Batch(v) => v.len(),
            _ => 1,
        }
    }

    /// FNV-1a checksum over the payload's wire content (exact f64 bit
    /// patterns), domain-separated by payload kind.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        match self {
            Payload::Migrate(v) => {
                fnv1a(&mut h, &[0u8]);
                for a in v {
                    hash_u64(&mut h, a.id);
                    fnv1a(&mut h, &[a.species.0]);
                    hash_vec3(&mut h, a.position);
                    hash_vec3(&mut h, a.velocity);
                }
            }
            Payload::Ghosts(v) => {
                fnv1a(&mut h, &[1u8]);
                for g in v {
                    hash_u64(&mut h, g.id);
                    fnv1a(&mut h, &[g.species.0]);
                    hash_vec3(&mut h, g.position);
                }
            }
            Payload::Forces(v) => {
                fnv1a(&mut h, &[2u8]);
                for f in v {
                    hash_u64(&mut h, f.id);
                    hash_vec3(&mut h, f.force);
                }
            }
            Payload::Batch(v) => {
                // Fold each section's stamp (not its content): the sections
                // carry their own content checksums, so the frame checksum
                // only needs to pin the headers and their order.
                fnv1a(&mut h, &[3u8]);
                for m in v {
                    hash_u64(&mut h, m.epoch);
                    m.channel.hash_into(&mut h);
                    hash_u64(&mut h, m.checksum);
                }
            }
        }
        h
    }
}

/// A stamped message: every payload carries the step epoch it belongs to,
/// the communication slot it fills, a monotone phase counter (used by the
/// threaded executor to order concurrent deliveries), and a checksum over
/// its content. Receivers [`verify`](Message::verify) all three before
/// absorbing, so out-of-order delivery, stale retransmits, and bit
/// corruption surface as typed [`RuntimeError`]s instead of silently
/// poisoning the n-tuple computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Monotone phase counter (each routing step of each MD step is one
    /// phase; the threaded executor matches on it).
    pub phase: u64,
    /// The MD step this payload belongs to.
    pub epoch: u64,
    /// The communication slot this payload fills.
    pub channel: Channel,
    /// FNV-1a checksum of `(epoch, channel, payload)` at send time.
    pub checksum: u64,
    /// The payload.
    pub payload: Payload,
}

impl Message {
    /// Stamps a payload with its epoch, channel, and checksum.
    pub fn stamped(phase: u64, epoch: u64, channel: Channel, payload: Payload) -> Self {
        let checksum = Self::expected_checksum(epoch, channel, &payload);
        Message { phase, epoch, channel, checksum, payload }
    }

    /// The checksum a well-formed message with this content carries. The
    /// header fields are folded in so header corruption is detected even
    /// when the payload survives intact.
    fn expected_checksum(epoch: u64, channel: Channel, payload: &Payload) -> u64 {
        let mut h = payload.checksum();
        hash_u64(&mut h, epoch);
        channel.hash_into(&mut h);
        h
    }

    /// Verifies the stamp against the slot `rank` is currently filling.
    ///
    /// # Errors
    /// [`RuntimeError::EpochMismatch`] for a stale or relabeled epoch,
    /// [`RuntimeError::WrongPayload`] when the channel fills a different
    /// slot, [`RuntimeError::ChecksumMismatch`] when content or header bits
    /// changed in transit.
    pub fn verify(&self, rank: usize, epoch: u64, channel: Channel) -> Result<(), RuntimeError> {
        if self.epoch != epoch {
            return Err(RuntimeError::EpochMismatch { rank, expected: epoch, got: self.epoch });
        }
        if !self.channel.matches(channel) {
            return Err(RuntimeError::WrongPayload { rank, channel });
        }
        if Self::expected_checksum(self.epoch, self.channel, &self.payload) != self.checksum {
            return Err(RuntimeError::ChecksumMismatch { rank, channel, epoch });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let m = Payload::Migrate(vec![AtomMsg {
            id: 1,
            species: Species(0),
            position: Vec3::ZERO,
            velocity: Vec3::ZERO,
        }]);
        assert_eq!(m.wire_bytes(), 57);
        let g =
            Payload::Ghosts(vec![GhostMsg { id: 1, species: Species(0), position: Vec3::ZERO }; 3]);
        assert_eq!(g.wire_bytes(), 3 * 33);
        let f = Payload::Forces(vec![]);
        assert_eq!(f.wire_bytes(), 0);
    }

    #[test]
    fn checksum_is_content_sensitive() {
        let mk = |x: f64| {
            Payload::Ghosts(vec![GhostMsg {
                id: 7,
                species: Species(1),
                position: Vec3::new(x, 2.0, 3.0),
            }])
        };
        assert_eq!(mk(1.0).checksum(), mk(1.0).checksum());
        // A single flipped mantissa bit (an ulp) must change the checksum.
        assert_ne!(mk(1.0).checksum(), mk(f64::from_bits(1.0f64.to_bits() ^ 1)).checksum());
        // Kind is domain-separated: an empty ghosts payload differs from an
        // empty forces payload.
        assert_ne!(Payload::Ghosts(vec![]).checksum(), Payload::Forces(vec![]).checksum());
    }

    #[test]
    fn verify_accepts_clean_and_rejects_tampered() {
        let ch = Channel::Ghosts { hop: 1 };
        let msg = Message::stamped(0, 5, ch, Payload::Ghosts(vec![]));
        assert_eq!(msg.verify(0, 5, ch), Ok(()));
        // Stale epoch.
        assert!(matches!(
            msg.verify(0, 6, ch),
            Err(RuntimeError::EpochMismatch { expected: 6, got: 5, .. })
        ));
        // Wrong slot.
        assert!(matches!(
            msg.verify(0, 5, Channel::Forces { hop: 1 }),
            Err(RuntimeError::WrongPayload { .. })
        ));
        // Payload corruption.
        let mut bad = Message::stamped(
            0,
            5,
            ch,
            Payload::Ghosts(vec![GhostMsg { id: 1, species: Species(0), position: Vec3::ZERO }]),
        );
        if let Payload::Ghosts(v) = &mut bad.payload {
            v[0].position.x = f64::from_bits(v[0].position.x.to_bits() ^ 0x1);
        }
        assert!(matches!(bad.verify(0, 5, ch), Err(RuntimeError::ChecksumMismatch { .. })));
        // Header corruption: epoch relabeled to what the receiver expects
        // still fails the checksum.
        let mut relabeled = Message::stamped(0, 4, ch, Payload::Ghosts(vec![]));
        relabeled.epoch = 5;
        assert!(matches!(relabeled.verify(0, 5, ch), Err(RuntimeError::ChecksumMismatch { .. })));
    }

    #[test]
    fn batch_frames_count_section_payload_bytes_once() {
        let ghosts =
            Payload::Ghosts(vec![GhostMsg { id: 1, species: Species(0), position: Vec3::ZERO }; 3]);
        let forces = Payload::Forces(vec![ForceMsg { id: 1, force: Vec3::ZERO }; 2]);
        let per_channel = ghosts.wire_bytes() + forces.wire_bytes();
        let batch = Payload::Batch(vec![
            Message::stamped(4, 7, Channel::Ghosts { hop: 0 }, ghosts),
            Message::stamped(4, 7, Channel::Ghosts { hop: 1 }, forces),
        ]);
        assert_eq!(batch.wire_bytes(), per_channel);
        assert_eq!(batch.section_count(), 2);
    }

    #[test]
    fn batch_verify_localizes_corruption_to_the_section() {
        let mk = || {
            let sections = vec![
                Message::stamped(
                    4,
                    7,
                    Channel::Ghosts { hop: 0 },
                    Payload::Ghosts(vec![GhostMsg {
                        id: 1,
                        species: Species(0),
                        position: Vec3::new(1.0, 2.0, 3.0),
                    }]),
                ),
                Message::stamped(4, 7, Channel::Ghosts { hop: 1 }, Payload::Ghosts(vec![])),
            ];
            Message::stamped(4, 7, Channel::Ghosts { hop: 0 }, Payload::Batch(sections))
        };
        // Clean frame: outer and both sections verify.
        let frame = mk();
        assert_eq!(frame.verify(0, 7, Channel::Ghosts { hop: 0 }), Ok(()));
        let Payload::Batch(sections) = &frame.payload else { panic!() };
        for (hop, s) in sections.iter().enumerate() {
            assert_eq!(s.verify(0, 7, Channel::Ghosts { hop }), Ok(()));
        }
        // A bit flip inside section 0's payload leaves the frame checksum
        // valid (it folds the *stamped* section checksums) but fails that
        // section's own verify — the fault localizes.
        let mut bad = mk();
        let Payload::Batch(sections) = &mut bad.payload else { panic!() };
        if let Payload::Ghosts(v) = &mut sections[0].payload {
            v[0].position.x = f64::from_bits(v[0].position.x.to_bits() ^ 1);
        }
        assert_eq!(bad.verify(0, 7, Channel::Ghosts { hop: 0 }), Ok(()));
        let Payload::Batch(sections) = &bad.payload else { panic!() };
        assert!(matches!(
            sections[0].verify(0, 7, Channel::Ghosts { hop: 0 }),
            Err(RuntimeError::ChecksumMismatch { .. })
        ));
        assert_eq!(sections[1].verify(0, 7, Channel::Ghosts { hop: 1 }), Ok(()));
        // Relabeling a section (reordering attack) breaks the frame checksum.
        let mut swapped = mk();
        let Payload::Batch(sections) = &mut swapped.payload else { panic!() };
        sections.swap(0, 1);
        assert!(matches!(
            swapped.verify(0, 7, Channel::Ghosts { hop: 0 }),
            Err(RuntimeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn migrate_channels_match_by_axis() {
        let a = Channel::Migrate { axis: 1, dir: 1 };
        let b = Channel::Migrate { axis: 1, dir: -1 };
        assert!(a.matches(b));
        assert!(!a.matches(Channel::Migrate { axis: 0, dir: 1 }));
        assert!(!Channel::Ghosts { hop: 0 }.matches(Channel::Forces { hop: 0 }));
    }
}
