//! Communication plans and accounting.
//!
//! The accounting types live in `sc-obs` so the serial engine, both
//! executors, and the benchmark bins share one vocabulary:
//! [`sc_obs::CommCounters`] (re-exported here) for the empirical
//! counterpart of Eq. 31 (`T_comm = c_bw·V_import + c_lat·n_msg`) and
//! [`sc_obs::PhaseBreakdown`] for the Eq. 30 wall-clock decomposition.

use crate::error::SetupError;
use sc_md::Method;
use serde::{Deserialize, Serialize};

pub use sc_obs::CommCounters;

/// One routing hop: `(axis, recv_dir)` — the rank receives ghosts from its
/// `recv_dir` neighbour along `axis` (and therefore *sends* its own boundary
/// band to the `-recv_dir` neighbour).
pub type Hop = (usize, i32);

/// The halo-exchange plan of a method: slab widths and the forwarded
/// routing schedule.
///
/// * SC-MD: ghosts only from the + side (first-octant import, Eq. 33),
///   3 hops — "we only need to import atom data from 7 nearest processors
///   using only 3 communication steps via forwarded atom-data routing"
///   (§4.2).
/// * FS-MD / Hybrid-MD: ghosts from both sides, 6 hops, reaching all 26
///   neighbours (the paper notes Hybrid's import volume equals FS's).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GhostPlan {
    /// Ghost slab width below the owned box per axis (real distance).
    pub lo_width: f64,
    /// Ghost slab width above the owned box per axis.
    pub hi_width: f64,
    /// The routing schedule.
    pub hops: Vec<Hop>,
}

impl GhostPlan {
    /// Builds the plan for a method. `halo_width` is the real-space import
    /// depth `max_n (n−1)·cell_edge_n` over the active terms.
    ///
    /// # Errors
    /// [`SetupError::NonPositiveHalo`] when `halo_width` is not a positive
    /// finite number (no active term, a zero cutoff, or a propagated NaN).
    pub fn for_method(method: Method, halo_width: f64) -> Result<Self, SetupError> {
        if !(halo_width > 0.0 && halo_width.is_finite()) {
            return Err(SetupError::NonPositiveHalo { width: halo_width });
        }
        Ok(match method {
            Method::ShiftCollapse => GhostPlan {
                lo_width: 0.0,
                hi_width: halo_width,
                hops: vec![(0, 1), (1, 1), (2, 1)],
            },
            Method::FullShell | Method::Hybrid => GhostPlan {
                lo_width: halo_width,
                hi_width: halo_width,
                hops: vec![(0, 1), (0, -1), (1, 1), (1, -1), (2, 1), (2, -1)],
            },
        })
    }

    /// Number of communication steps per halo exchange.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_obs::{Phase, PhaseBreakdown};

    #[test]
    fn phase_breakdown_keeps_the_paper_decomposition() {
        let mut t = PhaseBreakdown::new();
        t.add(Phase::Migrate, 1.0);
        t.add(Phase::Exchange, 2.0);
        t.add(Phase::Compute, 5.0);
        t.add(Phase::Reduce, 1.0);
        t.add(Phase::Integrate, 1.0);
        assert_eq!(t.total_s(), 10.0);
        assert!((t.comm_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(PhaseBreakdown::default().comm_fraction(), 0.0);
    }

    #[test]
    fn sc_plan_is_one_sided_three_hops() {
        let p = GhostPlan::for_method(Method::ShiftCollapse, 2.5).unwrap();
        assert_eq!(p.lo_width, 0.0);
        assert_eq!(p.hi_width, 2.5);
        assert_eq!(p.hop_count(), 3);
        assert!(p.hops.iter().all(|&(_, d)| d == 1));
    }

    #[test]
    fn fs_plan_is_two_sided_six_hops() {
        for m in [Method::FullShell, Method::Hybrid] {
            let p = GhostPlan::for_method(m, 2.5).unwrap();
            assert_eq!(p.lo_width, 2.5);
            assert_eq!(p.hi_width, 2.5);
            assert_eq!(p.hop_count(), 6);
        }
    }

    #[test]
    fn degenerate_halo_is_rejected_typed() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = GhostPlan::for_method(Method::ShiftCollapse, bad).unwrap_err();
            assert!(matches!(err, SetupError::NonPositiveHalo { .. }), "width {bad}: {err}");
        }
    }

    #[test]
    fn stats_accounting() {
        let mut s = CommCounters::default();
        s.record_send(3, 100);
        s.record_send(3, 50);
        s.record_send(5, 10);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 160);
        assert_eq!(s.partners.len(), 2);
        let mut t = CommCounters::default();
        t.record_send(7, 1);
        t.merge(&s);
        assert_eq!(t.messages, 4);
        assert_eq!(t.partners.len(), 3);
    }
}
