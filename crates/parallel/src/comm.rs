//! Communication plans and accounting.

use crate::error::SetupError;
use sc_md::{Method, StepPhases};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One routing hop: `(axis, recv_dir)` — the rank receives ghosts from its
/// `recv_dir` neighbour along `axis` (and therefore *sends* its own boundary
/// band to the `-recv_dir` neighbour).
pub type Hop = (usize, i32);

/// The halo-exchange plan of a method: slab widths and the forwarded
/// routing schedule.
///
/// * SC-MD: ghosts only from the + side (first-octant import, Eq. 33),
///   3 hops — "we only need to import atom data from 7 nearest processors
///   using only 3 communication steps via forwarded atom-data routing"
///   (§4.2).
/// * FS-MD / Hybrid-MD: ghosts from both sides, 6 hops, reaching all 26
///   neighbours (the paper notes Hybrid's import volume equals FS's).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GhostPlan {
    /// Ghost slab width below the owned box per axis (real distance).
    pub lo_width: f64,
    /// Ghost slab width above the owned box per axis.
    pub hi_width: f64,
    /// The routing schedule.
    pub hops: Vec<Hop>,
}

impl GhostPlan {
    /// Builds the plan for a method. `halo_width` is the real-space import
    /// depth `max_n (n−1)·cell_edge_n` over the active terms.
    ///
    /// # Errors
    /// [`SetupError::NonPositiveHalo`] when `halo_width` is not a positive
    /// finite number (no active term, a zero cutoff, or a propagated NaN).
    pub fn for_method(method: Method, halo_width: f64) -> Result<Self, SetupError> {
        if !(halo_width > 0.0 && halo_width.is_finite()) {
            return Err(SetupError::NonPositiveHalo { width: halo_width });
        }
        Ok(match method {
            Method::ShiftCollapse => GhostPlan {
                lo_width: 0.0,
                hi_width: halo_width,
                hops: vec![(0, 1), (1, 1), (2, 1)],
            },
            Method::FullShell | Method::Hybrid => GhostPlan {
                lo_width: halo_width,
                hi_width: halo_width,
                hops: vec![(0, 1), (0, -1), (1, 1), (1, -1), (2, 1), (2, -1)],
            },
        })
    }

    /// Number of communication steps per halo exchange.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }
}

/// Per-rank communication accounting, the empirical counterpart of the
/// paper's communication model `T_comm = c_bw·V_import + c_lat·n_msg`
/// (Eq. 31).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Ghost atoms imported this step (the import volume observable).
    pub ghosts_imported: u64,
    /// Atoms migrated away this step.
    pub atoms_migrated: u64,
    /// Delivery retries performed after a validation failure or loss
    /// (cumulative; exposed by the `--measured` bench modes as the
    /// fault-overhead observable).
    pub retries: u64,
    /// Validated-exchange failures detected (checksum/epoch mismatches and
    /// lost payloads), whether or not a retry recovered them.
    pub faults_detected: u64,
    /// Distinct ranks this rank sent to.
    pub partners: BTreeSet<usize>,
    /// Cumulative step-phase breakdown of this rank's work (seconds since
    /// construction; `merge` sums it across ranks, so the global total is
    /// summed per-rank CPU time, not wall time). `bin_s`, `enumerate_s`, and
    /// `reduce_s` are filled by [`RankState::compute_forces`]; `exchange_s`
    /// is filled by executors that do per-rank communication (the threaded
    /// executor — the BSP executor reports exchange wall time centrally in
    /// [`PhaseTimings`] instead).
    ///
    /// [`RankState::compute_forces`]: crate::rank::RankState::compute_forces
    pub phases: StepPhases,
}

impl CommStats {
    /// Records a sent message.
    pub fn record_send(&mut self, to: usize, bytes: u64) {
        self.messages += 1;
        self.bytes += bytes;
        self.partners.insert(to);
    }

    /// Merges another rank's stats (for global totals).
    pub fn merge(&mut self, o: &CommStats) {
        self.messages += o.messages;
        self.bytes += o.bytes;
        self.ghosts_imported += o.ghosts_imported;
        self.atoms_migrated += o.atoms_migrated;
        self.retries += o.retries;
        self.faults_detected += o.faults_detected;
        self.partners.extend(o.partners.iter().copied());
        self.phases.accumulate(&o.phases);
    }

    /// Clears the per-step counters (partners persist across steps).
    pub fn reset_step(&mut self) {
        self.ghosts_imported = 0;
        self.atoms_migrated = 0;
    }
}

/// Wall-clock breakdown of a distributed step by phase — the executable
/// counterpart of the paper's `T = T_compute + T_comm` decomposition
/// (Eq. 30), measured rather than modeled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Seconds in atom migration.
    pub migrate_s: f64,
    /// Seconds in ghost-position exchange.
    pub exchange_s: f64,
    /// Seconds in force computation (binning + enumeration + potentials).
    pub compute_s: f64,
    /// Seconds in reverse ghost-force reduction.
    pub reduce_s: f64,
    /// Seconds in integration.
    pub integrate_s: f64,
}

impl PhaseTimings {
    /// Total accounted time.
    pub fn total_s(&self) -> f64 {
        self.migrate_s + self.exchange_s + self.compute_s + self.reduce_s + self.integrate_s
    }

    /// The communication share (migration + exchange + reduction).
    pub fn comm_fraction(&self) -> f64 {
        let comm = self.migrate_s + self.exchange_s + self.reduce_s;
        let t = self.total_s();
        if t > 0.0 {
            comm / t
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timings_accounting() {
        let t = PhaseTimings {
            migrate_s: 1.0,
            exchange_s: 2.0,
            compute_s: 5.0,
            reduce_s: 1.0,
            integrate_s: 1.0,
        };
        assert_eq!(t.total_s(), 10.0);
        assert!((t.comm_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(PhaseTimings::default().comm_fraction(), 0.0);
    }

    #[test]
    fn sc_plan_is_one_sided_three_hops() {
        let p = GhostPlan::for_method(Method::ShiftCollapse, 2.5).unwrap();
        assert_eq!(p.lo_width, 0.0);
        assert_eq!(p.hi_width, 2.5);
        assert_eq!(p.hop_count(), 3);
        assert!(p.hops.iter().all(|&(_, d)| d == 1));
    }

    #[test]
    fn fs_plan_is_two_sided_six_hops() {
        for m in [Method::FullShell, Method::Hybrid] {
            let p = GhostPlan::for_method(m, 2.5).unwrap();
            assert_eq!(p.lo_width, 2.5);
            assert_eq!(p.hi_width, 2.5);
            assert_eq!(p.hop_count(), 6);
        }
    }

    #[test]
    fn degenerate_halo_is_rejected_typed() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = GhostPlan::for_method(Method::ShiftCollapse, bad).unwrap_err();
            assert!(matches!(err, SetupError::NonPositiveHalo { .. }), "width {bad}: {err}");
        }
    }

    #[test]
    fn stats_accounting() {
        let mut s = CommStats::default();
        s.record_send(3, 100);
        s.record_send(3, 50);
        s.record_send(5, 10);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 160);
        assert_eq!(s.partners.len(), 2);
        let mut t = CommStats::default();
        t.record_send(7, 1);
        t.merge(&s);
        assert_eq!(t.messages, 4);
        assert_eq!(t.partners.len(), 3);
    }
}
