//! # sc-parallel — the distributed-memory runtime (MPI substitute)
//!
//! The paper's benchmarks run on MPI clusters; this crate reproduces the
//! *algorithmic* content of that parallelization as a message-passing runtime
//! whose ranks are plain Rust values exchanging explicit messages:
//!
//! * spatial decomposition of the periodic box over a [`RankGrid`]
//!   (paper §3.1.3: each processor owns a cell domain Ω);
//! * **halo exchange with forwarded routing** — SC-MD imports ghost atoms
//!   from its 7 first-octant neighbour ranks in 3 communication steps
//!   (+x, +y, +z, §4.2), FS/Hybrid from all 26 in 6 steps;
//! * **reverse force reduction** — forces accumulated on ghost atoms travel
//!   back along the reversed routes to their owner ranks (the owner-compute
//!   relaxation of the eighth-shell scheme applied to arbitrary n);
//! * **atom migration** — after each drift, atoms that left their rank's
//!   box are handed to the new owner in 3 axis-ordered exchanges.
//!
//! Two executors run the same [`rank::RankState`] logic:
//!
//! * [`DistributedSim`] — bulk-synchronous, main-thread, deterministic:
//!   every message is delivered between phases. This is the reference
//!   executor the correctness tests compare against serial `sc-md`.
//! * [`ThreadedSim`] — each rank on its own OS thread with
//!   `crossbeam-channel` mailboxes, exercising true concurrent message
//!   passing (as close to MPI as a single process gets).
//!
//! Both count every message and byte ([`CommCounters`]), which is what the
//! `sc-netmodel` crate calibrates the paper's communication model against.
//!
//! ## Fault tolerance
//!
//! Every payload travels as a stamped [`Message`] (step epoch, channel,
//! FNV-1a checksum) and is verified on receipt; failures surface as typed
//! [`RuntimeError`]s after a bounded per-delivery retry. The BSP executor
//! additionally routes all deliveries through a scriptable, deterministic
//! [`FaultPlan`] so tests can inject drops, delays, corruption, and rank
//! stalls per `(step, rank, channel)`. Recovery (checkpoint/rollback) is
//! orchestrated by the `Supervisor` in `sc-md`, for which
//! [`DistributedSim`] implements the `Recoverable` trait.
//!
//! Permanent rank death ([`fault::FaultKind::Crash`]) is detected by a
//! per-rank [`health`] state machine (deadline watchdog + flap circuit
//! breaker) and surfaces as [`RuntimeError::RankDead`]; the supervisor then
//! re-decomposes the last checkpoint over the surviving ranks
//! ([`DistributedSim::restore_excluding`]) instead of rolling back forever.

#![warn(missing_docs)]

pub mod comm;
pub mod error;
pub mod fault;
pub mod grid;
pub mod health;
pub mod msg;
pub mod rank;
pub mod transport;

mod exec_bsp;
mod exec_threads;

pub use comm::{CommCounters, GhostPlan};
pub use error::{RunError, RuntimeError, SetupError};
pub use exec_bsp::DistributedSim;
pub use exec_threads::ThreadedSim;
pub use fault::{Delivery, Fault, FaultEvent, FaultKind, FaultPlan};
pub use grid::RankGrid;
pub use health::{HealthConfig, HealthCounters, HealthTracker, RankHealth};
pub use msg::{AtomMsg, Channel, GhostMsg, Message, Payload};
pub use transport::CommConfig;
