//! Typed setup errors for the distributed runtime.

use std::fmt;

/// Why a distributed simulation could not be set up.
#[derive(Debug, Clone, PartialEq)]
pub enum SetupError {
    /// The halo is deeper than one rank sub-box — forwarded routing only
    /// delivers nearest-neighbour data, so the decomposition is too fine.
    HaloTooDeep {
        /// Required halo depth (real distance).
        halo: f64,
        /// Rank sub-box extent along the failing axis.
        sub_box: f64,
        /// The failing axis (0 = x).
        axis: usize,
    },
    /// A rank sub-box is smaller than some term's cutoff.
    SubBoxBelowCutoff {
        /// The cutoff that does not fit.
        rcut: f64,
        /// Sub-box extent along the failing axis.
        sub_box: f64,
        /// The failing axis.
        axis: usize,
    },
    /// The union of rank lattices is too small for the largest tuple order
    /// (pattern offsets would alias through the periodic wrap).
    LatticeTooSmall {
        /// Global cells along the failing axis.
        global_cells: i32,
        /// Required minimum.
        needed: i32,
        /// The failing axis.
        axis: usize,
    },
    /// Unsupported cell subdivision factor.
    UnsupportedSubdivision(i32),
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::HaloTooDeep { halo, sub_box, axis } => write!(
                f,
                "halo width {halo} exceeds rank sub-box {sub_box} along axis {axis}; \
                 use fewer ranks or a bigger box"
            ),
            SetupError::SubBoxBelowCutoff { rcut, sub_box, axis } => {
                write!(f, "rank sub-box {sub_box} smaller than cutoff {rcut} along axis {axis}")
            }
            SetupError::LatticeTooSmall { global_cells, needed, axis } => write!(
                f,
                "global lattice has {global_cells} cells along axis {axis}, need ≥ {needed}"
            ),
            SetupError::UnsupportedSubdivision(k) => {
                write!(f, "unsupported cell subdivision {k} (supported: 1..=3)")
            }
        }
    }
}

impl std::error::Error for SetupError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = SetupError::HaloTooDeep { halo: 5.5, sub_box: 2.7, axis: 1 };
        assert!(e.to_string().contains("halo"));
        let e = SetupError::SubBoxBelowCutoff { rcut: 2.5, sub_box: 2.2, axis: 0 };
        assert!(e.to_string().contains("cutoff"));
        let e = SetupError::LatticeTooSmall { global_cells: 2, needed: 3, axis: 2 };
        assert!(e.to_string().contains("lattice"));
        assert!(SetupError::UnsupportedSubdivision(7).to_string().contains('7'));
    }
}
