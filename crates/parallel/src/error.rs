//! Typed errors for the distributed runtime: setup-time rejection and
//! runtime fault detection.

use crate::msg::Channel;
use std::fmt;

/// Why a distributed simulation could not be set up.
#[derive(Debug, Clone, PartialEq)]
pub enum SetupError {
    /// The halo is deeper than one rank sub-box — forwarded routing only
    /// delivers nearest-neighbour data, so the decomposition is too fine.
    HaloTooDeep {
        /// Required halo depth (real distance).
        halo: f64,
        /// Rank sub-box extent along the failing axis.
        sub_box: f64,
        /// The failing axis (0 = x).
        axis: usize,
    },
    /// A rank sub-box is smaller than some term's cutoff.
    SubBoxBelowCutoff {
        /// The cutoff that does not fit.
        rcut: f64,
        /// Sub-box extent along the failing axis.
        sub_box: f64,
        /// The failing axis.
        axis: usize,
    },
    /// The union of rank lattices is too small for the largest tuple order
    /// (pattern offsets would alias through the periodic wrap).
    LatticeTooSmall {
        /// Global cells along the failing axis.
        global_cells: i32,
        /// Required minimum.
        needed: i32,
        /// The failing axis.
        axis: usize,
    },
    /// Unsupported cell subdivision factor.
    UnsupportedSubdivision(i32),
    /// The halo width derived from the force field is not a positive finite
    /// number (no active term, a zero cutoff, or a NaN propagated in).
    NonPositiveHalo {
        /// The offending width.
        width: f64,
    },
    /// A rank-grid dimension is below 1.
    BadRankGrid {
        /// The offending grid dimensions.
        pdims: [i32; 3],
    },
    /// Weighted rank-grid cut planes are malformed: wrong count, not
    /// strictly increasing, or outside the open box interval.
    BadGridCuts {
        /// The failing axis.
        axis: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// The decomposition did not claim every atom exactly once.
    AtomsLost {
        /// Atoms in the input store.
        expected: usize,
        /// Atoms claimed across all ranks.
        claimed: usize,
    },
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::HaloTooDeep { halo, sub_box, axis } => write!(
                f,
                "halo width {halo} exceeds rank sub-box {sub_box} along axis {axis}; \
                 use fewer ranks or a bigger box"
            ),
            SetupError::SubBoxBelowCutoff { rcut, sub_box, axis } => {
                write!(f, "rank sub-box {sub_box} smaller than cutoff {rcut} along axis {axis}")
            }
            SetupError::LatticeTooSmall { global_cells, needed, axis } => write!(
                f,
                "global lattice has {global_cells} cells along axis {axis}, need ≥ {needed}"
            ),
            SetupError::UnsupportedSubdivision(k) => {
                write!(f, "unsupported cell subdivision {k} (supported: 1..=3)")
            }
            SetupError::NonPositiveHalo { width } => {
                write!(f, "halo width {width} must be positive and finite")
            }
            SetupError::BadRankGrid { pdims } => {
                write!(f, "rank grid dims {pdims:?} must all be ≥ 1")
            }
            SetupError::BadGridCuts { axis, reason } => {
                write!(f, "rank grid cuts along axis {axis}: {reason}")
            }
            SetupError::AtomsLost { expected, claimed } => {
                write!(f, "decomposition claimed {claimed} of {expected} atoms")
            }
        }
    }
}

impl std::error::Error for SetupError {}

/// A fault detected while the distributed runtime was stepping: a validated
/// exchange failed and bounded retries did not recover it, or received data
/// was inconsistent with the rank's state. Unlike [`SetupError`], these can
/// appear on any step; the supervisor layer in `sc-md` responds by rolling
/// back to the last checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A payload arrived stamped with the wrong step epoch (stale or
    /// corrupted header).
    EpochMismatch {
        /// The receiving rank.
        rank: usize,
        /// The epoch the receiver is in.
        expected: u64,
        /// The epoch the message claims.
        got: u64,
    },
    /// A payload failed checksum verification (bit corruption in transit).
    ChecksumMismatch {
        /// The receiving rank.
        rank: usize,
        /// The communication slot the payload was for.
        channel: Channel,
        /// The step epoch.
        epoch: u64,
    },
    /// No valid payload for a routing slot arrived within the retry budget.
    MissingHop {
        /// The rank that timed out waiting.
        rank: usize,
        /// The communication slot that never filled.
        channel: Channel,
        /// The step epoch.
        epoch: u64,
        /// Delivery attempts made (1 original + retries).
        attempts: u32,
    },
    /// A peer rank stayed unresponsive through the whole retry budget.
    RankStalled {
        /// The unresponsive rank.
        rank: usize,
        /// The step epoch.
        epoch: u64,
        /// Delivery attempts made before escalating.
        attempts: u32,
    },
    /// A peer rank was declared permanently dead by the health watchdog
    /// (its failures outlived the deadline that bounds any recoverable
    /// stall). Rollback cannot help — replaying delivers into the same
    /// dead rank — so the supervisor must re-decompose over the survivors.
    RankDead {
        /// The dead rank.
        rank: usize,
        /// Steps the executor had completed when death was declared.
        step: u64,
        /// The epoch of the exchange that could not be delivered.
        epoch: u64,
    },
    /// A payload of the wrong kind arrived for a slot (protocol confusion).
    WrongPayload {
        /// The receiving rank.
        rank: usize,
        /// The slot the payload was for.
        channel: Channel,
    },
    /// A reduced force arrived for an atom this rank neither owns nor holds
    /// as a ghost — the exchange delivered inconsistent routing data.
    UnknownForceTarget {
        /// The receiving rank.
        rank: usize,
        /// The unknown atom's global id.
        id: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::EpochMismatch { rank, expected, got } => {
                write!(f, "rank {rank}: payload stamped epoch {got}, expected {expected}")
            }
            RuntimeError::ChecksumMismatch { rank, channel, epoch } => {
                write!(f, "rank {rank}: checksum mismatch on {channel:?} in epoch {epoch}")
            }
            RuntimeError::MissingHop { rank, channel, epoch, attempts } => write!(
                f,
                "rank {rank}: no valid payload for {channel:?} in epoch {epoch} \
                 after {attempts} attempts"
            ),
            RuntimeError::RankStalled { rank, epoch, attempts } => {
                write!(f, "rank {rank} unresponsive in epoch {epoch} after {attempts} attempts")
            }
            RuntimeError::RankDead { rank, step, epoch } => {
                write!(f, "rank {rank} declared dead at step {step} (epoch {epoch})")
            }
            RuntimeError::WrongPayload { rank, channel } => {
                write!(f, "rank {rank}: wrong payload kind for {channel:?}")
            }
            RuntimeError::UnknownForceTarget { rank, id } => {
                write!(f, "rank {rank} got a reduced force for unknown atom {id}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Either failure mode of a one-shot executor run ([`crate::ThreadedSim`]):
/// the configuration was rejected up front, or a rank hit an unrecoverable
/// communication fault mid-run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// Setup-time rejection.
    Setup(SetupError),
    /// Mid-run fault.
    Runtime(RuntimeError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Setup(e) => write!(f, "setup: {e}"),
            RunError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Setup(e) => Some(e),
            RunError::Runtime(e) => Some(e),
        }
    }
}

impl From<SetupError> for RunError {
    fn from(e: SetupError) -> Self {
        RunError::Setup(e)
    }
}

impl From<RuntimeError> for RunError {
    fn from(e: RuntimeError) -> Self {
        RunError::Runtime(e)
    }
}

// Funnels into the unified `sc_md::Error`, so a binary's whole
// setup-run-output pipeline is one `?`-chain. Defined here (not in `sc-md`)
// to keep the crate layering acyclic: `sc-md` cannot name these types.

impl From<SetupError> for sc_md::Error {
    fn from(e: SetupError) -> Self {
        sc_md::Error::Setup(Box::new(e))
    }
}

impl From<RuntimeError> for sc_md::Error {
    fn from(e: RuntimeError) -> Self {
        sc_md::Error::Runtime(Box::new(e))
    }
}

impl From<RunError> for sc_md::Error {
    fn from(e: RunError) -> Self {
        match e {
            RunError::Setup(s) => s.into(),
            RunError::Runtime(r) => r.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = SetupError::HaloTooDeep { halo: 5.5, sub_box: 2.7, axis: 1 };
        assert!(e.to_string().contains("halo"));
        let e = SetupError::SubBoxBelowCutoff { rcut: 2.5, sub_box: 2.2, axis: 0 };
        assert!(e.to_string().contains("cutoff"));
        let e = SetupError::LatticeTooSmall { global_cells: 2, needed: 3, axis: 2 };
        assert!(e.to_string().contains("lattice"));
        assert!(SetupError::UnsupportedSubdivision(7).to_string().contains('7'));
        assert!(SetupError::NonPositiveHalo { width: -1.0 }.to_string().contains("positive"));
        assert!(SetupError::BadRankGrid { pdims: [0, 1, 1] }.to_string().contains("≥ 1"));
        assert!(SetupError::AtomsLost { expected: 10, claimed: 9 }.to_string().contains("10"));
    }

    #[test]
    fn runtime_errors_name_rank_and_slot() {
        let e = RuntimeError::ChecksumMismatch {
            rank: 3,
            channel: Channel::Ghosts { hop: 1 },
            epoch: 7,
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("epoch 7"));
        let e = RuntimeError::RankStalled { rank: 2, epoch: 4, attempts: 3 };
        assert!(e.to_string().contains("unresponsive"));
        let e = RuntimeError::RankDead { rank: 5, step: 9, epoch: 9 };
        assert!(e.to_string().contains("rank 5"));
        assert!(e.to_string().contains("dead"));
        let e = RuntimeError::MissingHop {
            rank: 0,
            channel: Channel::Forces { hop: 2 },
            epoch: 1,
            attempts: 3,
        };
        assert!(e.to_string().contains("attempts"));
    }

    #[test]
    fn run_error_wraps_both_failure_modes() {
        let s: RunError = SetupError::UnsupportedSubdivision(9).into();
        assert!(s.to_string().starts_with("setup"));
        let r: RunError = RuntimeError::EpochMismatch { rank: 1, expected: 2, got: 3 }.into();
        assert!(r.to_string().starts_with("runtime"));
        assert!(std::error::Error::source(&r).is_some());
    }

    #[test]
    fn executor_errors_funnel_into_the_unified_error() {
        let e: sc_md::Error = SetupError::UnsupportedSubdivision(9).into();
        assert!(e.to_string().starts_with("setup:"), "{e}");
        let e: sc_md::Error = RuntimeError::EpochMismatch { rank: 1, expected: 2, got: 3 }.into();
        assert!(e.to_string().starts_with("runtime:"), "{e}");
        let e: sc_md::Error = RunError::Setup(SetupError::NonPositiveHalo { width: 0.0 }).into();
        assert!(e.to_string().contains("positive"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
