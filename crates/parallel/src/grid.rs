//! Spatial decomposition of the periodic box over a grid of ranks.

use crate::error::SetupError;
use sc_geom::{IVec3, SimulationBox, Vec3};
use serde::{Deserialize, Serialize};

/// A `px × py × pz` grid of ranks, each owning a rectangular sub-volume of
/// the periodic simulation box (the paper's spatial decomposition,
/// §1/§3.1.3).
///
/// By default the sub-volumes are equal (uniform splits). A *weighted* grid
/// built with [`RankGrid::with_splits`] instead places explicit cut planes
/// per axis, so the adaptive load balancer can shrink the slabs of
/// overloaded ranks — the non-uniform decomposition the clustered-gas
/// scenarios need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankGrid {
    pdims: IVec3,
    bbox: SimulationBox,
    /// Interior cut coordinates per axis (`pdims[a] − 1` strictly
    /// increasing values in the open interval `(0, L[a])`), or `None` for
    /// the uniform decomposition.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    cuts: Option<[Vec<f64>; 3]>,
}

impl RankGrid {
    /// Creates a uniform rank grid over `bbox`.
    ///
    /// # Panics
    /// Panics if any `pdims` component is < 1; [`RankGrid::try_new`] is the
    /// non-panicking form.
    pub fn new(pdims: IVec3, bbox: SimulationBox) -> Self {
        Self::try_new(pdims, bbox).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a uniform rank grid over `bbox`, rejecting degenerate
    /// dimensions.
    ///
    /// # Errors
    /// [`SetupError::BadRankGrid`] if any `pdims` component is < 1.
    pub fn try_new(pdims: IVec3, bbox: SimulationBox) -> Result<Self, SetupError> {
        if pdims.x < 1 || pdims.y < 1 || pdims.z < 1 {
            return Err(SetupError::BadRankGrid { pdims: [pdims.x, pdims.y, pdims.z] });
        }
        Ok(RankGrid { pdims, bbox, cuts: None })
    }

    /// Creates a weighted rank grid with explicit interior cut planes per
    /// axis. `cuts[a]` must hold `pdims[a] − 1` strictly increasing finite
    /// values inside the open interval `(0, L[a])`.
    ///
    /// # Errors
    /// [`SetupError::BadRankGrid`] for degenerate dimensions,
    /// [`SetupError::BadGridCuts`] for malformed cut planes.
    pub fn with_splits(
        pdims: IVec3,
        bbox: SimulationBox,
        cuts: [Vec<f64>; 3],
    ) -> Result<Self, SetupError> {
        let mut grid = Self::try_new(pdims, bbox)?;
        let lengths = bbox.lengths();
        for axis in 0..3 {
            let c = &cuts[axis];
            if c.len() != (pdims[axis] - 1) as usize {
                return Err(SetupError::BadGridCuts { axis, reason: "wrong cut count" });
            }
            if c.iter().any(|v| !v.is_finite()) {
                return Err(SetupError::BadGridCuts { axis, reason: "non-finite cut" });
            }
            let mut prev = 0.0;
            for &v in c {
                if v <= prev {
                    return Err(SetupError::BadGridCuts {
                        axis,
                        reason: "cuts must be strictly increasing from 0",
                    });
                }
                prev = v;
            }
            if prev >= lengths[axis] {
                return Err(SetupError::BadGridCuts { axis, reason: "cut beyond box length" });
            }
        }
        // All-uniform cuts are still stored; equality of decompositions is
        // judged by geometry, not representation.
        grid.cuts = Some(cuts);
        Ok(grid)
    }

    /// The explicit cut planes of a weighted grid (`None` when uniform).
    pub fn cuts(&self) -> Option<&[Vec<f64>; 3]> {
        self.cuts.as_ref()
    }

    /// The lower boundary coordinate of slab `i` along `axis`.
    fn slab_lo(&self, axis: usize, i: i32) -> f64 {
        match (&self.cuts, i) {
            (_, 0) => 0.0,
            (Some(c), _) => c[axis][(i - 1) as usize],
            (None, _) => i as f64 * self.bbox.lengths()[axis] / self.pdims[axis] as f64,
        }
    }

    /// The upper boundary coordinate of slab `i` along `axis`.
    fn slab_hi(&self, axis: usize, i: i32) -> f64 {
        if i == self.pdims[axis] - 1 {
            self.bbox.lengths()[axis]
        } else {
            self.slab_lo(axis, i + 1)
        }
    }

    /// Ranks per axis.
    #[inline]
    pub fn pdims(&self) -> IVec3 {
        self.pdims
    }

    /// Total rank count P.
    #[inline]
    pub fn len(&self) -> usize {
        self.pdims.product() as usize
    }

    /// Whether the grid is trivial (never: P ≥ 1 by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The global periodic box.
    #[inline]
    pub fn bbox(&self) -> &SimulationBox {
        &self.bbox
    }

    /// Edge lengths of the *uniform* rank sub-box (`L/p` per axis). For a
    /// weighted grid this is the nominal average; per-rank extents come
    /// from [`RankGrid::rank_box_lengths_of`] and the safety floor from
    /// [`RankGrid::min_slab_lengths`].
    pub fn rank_box_lengths(&self) -> Vec3 {
        let l = self.bbox.lengths();
        Vec3::new(l.x / self.pdims.x as f64, l.y / self.pdims.y as f64, l.z / self.pdims.z as f64)
    }

    /// Edge lengths of a specific rank's sub-box (equals
    /// [`RankGrid::rank_box_lengths`] on a uniform grid).
    pub fn rank_box_lengths_of(&self, rank: usize) -> Vec3 {
        if self.cuts.is_none() {
            return self.rank_box_lengths();
        }
        let b = self.block_of_rank(rank);
        let mut out = Vec3::ZERO;
        for axis in 0..3 {
            out[axis] = self.slab_hi(axis, b[axis]) - self.slab_lo(axis, b[axis]);
        }
        out
    }

    /// The widths of all slabs along `axis`, low to high (length
    /// `pdims[axis]`).
    pub fn slab_widths(&self, axis: usize) -> Vec<f64> {
        (0..self.pdims[axis]).map(|i| self.slab_hi(axis, i) - self.slab_lo(axis, i)).collect()
    }

    /// The narrowest slab width per axis over all ranks — the extent the
    /// halo-depth and cutoff feasibility checks must validate against,
    /// since forwarded routing only ever delivers nearest-neighbour data.
    pub fn min_slab_lengths(&self) -> Vec3 {
        let Some(_) = &self.cuts else {
            return self.rank_box_lengths();
        };
        let mut out = Vec3::ZERO;
        for axis in 0..3 {
            let mut min = f64::INFINITY;
            for i in 0..self.pdims[axis] {
                min = min.min(self.slab_hi(axis, i) - self.slab_lo(axis, i));
            }
            out[axis] = min;
        }
        out
    }

    /// Linear rank id of grid block `b` (periodically wrapped).
    #[inline]
    pub fn rank_of_block(&self, b: IVec3) -> usize {
        let b = b.rem_euclid(self.pdims);
        ((b.x * self.pdims.y + b.y) * self.pdims.z + b.z) as usize
    }

    /// Grid block of linear rank id.
    #[inline]
    pub fn block_of_rank(&self, rank: usize) -> IVec3 {
        let r = rank as i32;
        let z = r % self.pdims.z;
        let y = (r / self.pdims.z) % self.pdims.y;
        let x = r / (self.pdims.z * self.pdims.y);
        IVec3::new(x, y, z)
    }

    /// The rank owning a (wrapped) global position.
    pub fn owner_of(&self, r: Vec3) -> usize {
        let r = self.bbox.wrap(r);
        let b = match &self.cuts {
            None => {
                let sub = self.rank_box_lengths();
                IVec3::new((r.x / sub.x) as i32, (r.y / sub.y) as i32, (r.z / sub.z) as i32)
                    .min(self.pdims - IVec3::splat(1))
            }
            Some(cuts) => {
                let mut b = IVec3::ZERO;
                for axis in 0..3 {
                    // Slab i covers [lo_i, lo_{i+1}); count the cuts at or
                    // below the coordinate.
                    b[axis] = cuts[axis].partition_point(|&c| c <= r[axis]) as i32;
                }
                b.min(self.pdims - IVec3::splat(1))
            }
        };
        self.rank_of_block(b)
    }

    /// Real-space low corner of a rank's sub-box.
    pub fn origin_of(&self, rank: usize) -> Vec3 {
        let b = self.block_of_rank(rank);
        match &self.cuts {
            None => {
                let sub = self.rank_box_lengths();
                Vec3::new(b.x as f64 * sub.x, b.y as f64 * sub.y, b.z as f64 * sub.z)
            }
            Some(_) => Vec3::new(self.slab_lo(0, b.x), self.slab_lo(1, b.y), self.slab_lo(2, b.z)),
        }
    }

    /// The neighbour rank one step along `axis` in direction `dir` (±1),
    /// with periodic wrap. `P = 1` per axis makes a rank its own neighbour —
    /// ghost exchange then produces the rank's own periodic images, exactly
    /// as a periodic serial code would.
    pub fn neighbor(&self, rank: usize, axis: usize, dir: i32) -> usize {
        debug_assert!(dir == 1 || dir == -1);
        let mut b = self.block_of_rank(rank);
        b[axis] += dir;
        self.rank_of_block(b)
    }

    /// Whether stepping from `rank` along `axis` in `dir` crosses the
    /// periodic boundary — the sender must then shift the coordinates it
    /// sends by ∓L along that axis so they land in the receiver's frame.
    pub fn crosses_wrap(&self, rank: usize, axis: usize, dir: i32) -> bool {
        let b = self.block_of_rank(rank);
        let t = b[axis] + dir;
        t < 0 || t >= self.pdims[axis]
    }

    /// The coordinate shift to apply to positions sent from `rank` along
    /// `axis` in `dir` (zero unless the hop crosses the wrap).
    pub fn send_shift(&self, rank: usize, axis: usize, dir: i32) -> Vec3 {
        let mut s = Vec3::ZERO;
        if self.crosses_wrap(rank, axis, dir) {
            s[axis] = -(dir as f64) * self.bbox.lengths()[axis];
        }
        s
    }

    /// Proposes rebalanced cut planes from measured per-rank loads (compute
    /// seconds from the imbalance profiler): per axis, slab loads are
    /// summed over the perpendicular plane, the piecewise-linear load CDF
    /// is inverted at the equal-load quantiles, and the move is damped by
    /// `alpha` (0 = keep current cuts, 1 = jump to the equal-load cuts).
    /// Cuts are clamped so every slab keeps at least `min_width`.
    ///
    /// Returns `None` when `loads` has the wrong length, the total load is
    /// not positive, or `min_width` makes any axis infeasible — callers
    /// should then keep the current decomposition.
    pub fn rebalanced_cuts(
        &self,
        loads: &[f64],
        alpha: f64,
        min_width: f64,
    ) -> Option<[Vec<f64>; 3]> {
        if loads.len() != self.len() || !loads.iter().all(|l| l.is_finite() && *l >= 0.0) {
            return None;
        }
        let lengths = self.bbox.lengths();
        let mut out: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for axis in 0..3 {
            let p = self.pdims[axis];
            if p == 1 {
                continue;
            }
            if (p as f64) * min_width > lengths[axis] {
                return None;
            }
            // Load per slab of this axis, summed over the perpendicular
            // plane of ranks.
            let mut slab = vec![0.0f64; p as usize];
            for (r, &l) in loads.iter().enumerate() {
                slab[self.block_of_rank(r)[axis] as usize] += l;
            }
            let total: f64 = slab.iter().sum();
            if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return None;
            }
            // Invert the piecewise-linear CDF at the equal-load quantiles.
            let mut cuts = Vec::with_capacity((p - 1) as usize);
            let mut cum = 0.0;
            let mut i = 0usize;
            for j in 1..p {
                let q = total * j as f64 / p as f64;
                while i < slab.len() - 1 && cum + slab[i] < q {
                    cum += slab[i];
                    i += 1;
                }
                let lo = self.slab_lo(axis, i as i32);
                let w = self.slab_hi(axis, i as i32) - lo;
                let frac = if slab[i] > 0.0 { (q - cum) / slab[i] } else { 0.5 };
                let target = lo + frac.clamp(0.0, 1.0) * w;
                let old = self.slab_lo(axis, j);
                cuts.push(old + alpha.clamp(0.0, 1.0) * (target - old));
            }
            // Enforce the minimum slab width: forward sweep pushes cuts up,
            // backward sweep pulls them below the box ceiling.
            for j in 0..cuts.len() {
                let floor = if j == 0 { min_width } else { cuts[j - 1] + min_width };
                if cuts[j] < floor {
                    cuts[j] = floor;
                }
            }
            for j in (0..cuts.len()).rev() {
                let ceil = if j == cuts.len() - 1 {
                    lengths[axis] - min_width
                } else {
                    cuts[j + 1] - min_width
                };
                if cuts[j] > ceil {
                    cuts[j] = ceil;
                }
            }
            if cuts[0] < min_width * 0.999 {
                return None;
            }
            out[axis] = cuts;
        }
        // Axes with p == 1 keep their empty cut list, which `with_splits`
        // accepts (0 interior cuts).
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid223() -> RankGrid {
        RankGrid::new(IVec3::new(2, 2, 3), SimulationBox::new(Vec3::new(8.0, 8.0, 12.0)))
    }

    #[test]
    fn rank_block_roundtrip() {
        let g = grid223();
        assert_eq!(g.len(), 12);
        for r in 0..g.len() {
            assert_eq!(g.rank_of_block(g.block_of_rank(r)), r);
        }
    }

    #[test]
    fn owner_of_positions() {
        let g = grid223();
        assert_eq!(g.owner_of(Vec3::new(0.1, 0.1, 0.1)), 0);
        // Sub-box is 4×4×4; (5, 1, 1) is block (1,0,0).
        assert_eq!(g.owner_of(Vec3::new(5.0, 1.0, 1.0)), g.rank_of_block(IVec3::new(1, 0, 0)));
        // Positions wrap first.
        assert_eq!(g.owner_of(Vec3::new(-0.5, 0.0, 0.0)), g.rank_of_block(IVec3::new(1, 0, 0)));
        // Every owner's box actually contains the wrapped point.
        let sub = g.rank_box_lengths();
        for p in [Vec3::new(7.9, 3.9, 11.9), Vec3::new(4.0, 4.0, 8.0), Vec3::new(2.2, 6.6, 5.5)] {
            let r = g.owner_of(p);
            let o = g.origin_of(r);
            let w = g.bbox().wrap(p);
            for a in 0..3 {
                assert!(w[a] >= o[a] - 1e-12 && w[a] < o[a] + sub[a] + 1e-12);
            }
        }
    }

    #[test]
    fn neighbors_wrap() {
        let g = grid223();
        let r0 = 0; // block (0,0,0)
        let rx = g.neighbor(r0, 0, -1);
        assert_eq!(g.block_of_rank(rx), IVec3::new(1, 0, 0)); // wrapped
        assert!(g.crosses_wrap(r0, 0, -1));
        assert!(!g.crosses_wrap(r0, 0, 1));
        // Crossing −x adds +Lx to sent coordinates.
        let s = g.send_shift(r0, 0, -1);
        assert_eq!(s, Vec3::new(8.0, 0.0, 0.0));
        assert_eq!(g.send_shift(r0, 0, 1), Vec3::ZERO);
    }

    #[test]
    fn degenerate_grid_is_rejected_typed() {
        let bbox = SimulationBox::cubic(5.0);
        let err = RankGrid::try_new(IVec3::new(0, 1, 1), bbox).unwrap_err();
        assert!(matches!(err, SetupError::BadRankGrid { pdims: [0, 1, 1] }));
        assert!(RankGrid::try_new(IVec3::splat(2), bbox).is_ok());
    }

    #[test]
    fn single_rank_is_its_own_neighbor() {
        let g = RankGrid::new(IVec3::splat(1), SimulationBox::cubic(5.0));
        assert_eq!(g.neighbor(0, 0, 1), 0);
        assert!(g.crosses_wrap(0, 2, -1));
        assert_eq!(g.send_shift(0, 2, -1).z, 5.0);
    }

    #[test]
    fn weighted_grid_places_explicit_cuts() {
        let bbox = SimulationBox::new(Vec3::new(10.0, 8.0, 6.0));
        let g = RankGrid::with_splits(IVec3::new(2, 2, 1), bbox, [vec![3.0], vec![4.0], vec![]])
            .unwrap();
        // Origins and extents follow the cuts, not L/p.
        assert_eq!(g.origin_of(g.rank_of_block(IVec3::new(1, 0, 0))).x, 3.0);
        assert_eq!(g.rank_box_lengths_of(g.rank_of_block(IVec3::new(0, 0, 0))).x, 3.0);
        assert_eq!(g.rank_box_lengths_of(g.rank_of_block(IVec3::new(1, 0, 0))).x, 7.0);
        assert_eq!(g.min_slab_lengths(), Vec3::new(3.0, 4.0, 6.0));
        // Ownership respects the cut plane.
        assert_eq!(g.owner_of(Vec3::new(2.9, 1.0, 1.0)), g.rank_of_block(IVec3::new(0, 0, 0)));
        assert_eq!(g.owner_of(Vec3::new(3.1, 1.0, 1.0)), g.rank_of_block(IVec3::new(1, 0, 0)));
        // Every wrapped point lands inside its owner's box.
        for p in [Vec3::new(9.9, 7.9, 5.9), Vec3::new(-0.5, 4.0, 3.0), Vec3::new(3.0, 3.9, 0.0)] {
            let r = g.owner_of(p);
            let o = g.origin_of(r);
            let ext = g.rank_box_lengths_of(r);
            let w = g.bbox().wrap(p);
            for a in 0..3 {
                assert!(w[a] >= o[a] - 1e-12 && w[a] < o[a] + ext[a] + 1e-12, "{p:?} axis {a}");
            }
        }
    }

    #[test]
    fn malformed_cuts_are_rejected_typed() {
        let bbox = SimulationBox::cubic(8.0);
        let p = IVec3::new(2, 1, 1);
        for bad in [
            [vec![], vec![], vec![]],         // wrong count
            [vec![0.0], vec![], vec![]],      // not > 0
            [vec![8.0], vec![], vec![]],      // not < L
            [vec![f64::NAN], vec![], vec![]], // non-finite
            [vec![4.0], vec![1.0], vec![]],   // extra cut on a p=1 axis
        ] {
            let err = RankGrid::with_splits(p, bbox, bad).unwrap_err();
            assert!(matches!(err, SetupError::BadGridCuts { .. }), "{err}");
        }
        let err =
            RankGrid::with_splits(IVec3::new(3, 1, 1), bbox, [vec![4.0, 3.0], vec![], vec![]])
                .unwrap_err();
        assert!(matches!(err, SetupError::BadGridCuts { .. }));
    }

    #[test]
    fn uniform_grid_matches_weighted_with_uniform_cuts() {
        let bbox = SimulationBox::new(Vec3::new(8.0, 8.0, 12.0));
        let u = RankGrid::new(IVec3::new(2, 2, 3), bbox);
        let w = RankGrid::with_splits(
            IVec3::new(2, 2, 3),
            bbox,
            [vec![4.0], vec![4.0], vec![4.0, 8.0]],
        )
        .unwrap();
        for r in 0..u.len() {
            assert_eq!(u.origin_of(r), w.origin_of(r));
            assert_eq!(u.rank_box_lengths_of(r), w.rank_box_lengths_of(r));
        }
        for p in [Vec3::new(0.1, 0.1, 0.1), Vec3::new(5.0, 7.0, 9.0), Vec3::new(3.99, 4.01, 8.0)] {
            assert_eq!(u.owner_of(p), w.owner_of(p));
        }
    }

    #[test]
    fn rebalanced_cuts_shift_toward_the_load() {
        let g = RankGrid::new(IVec3::new(2, 1, 1), SimulationBox::cubic(10.0));
        // Rank 0 carries 3× the load of rank 1: the equal-load cut for a
        // uniform density estimate is at 10·(0.5/0.75)·... — concretely the
        // CDF inversion lands at 5·(2/3); with α=1 the cut moves below 5.
        let cuts = g.rebalanced_cuts(&[3.0, 1.0], 1.0, 1.0).unwrap();
        assert!(cuts[0][0] < 5.0, "cut {:?}", cuts[0]);
        assert!(cuts[1].is_empty() && cuts[2].is_empty());
        // Damping halves the move.
        let damped = g.rebalanced_cuts(&[3.0, 1.0], 0.5, 1.0).unwrap();
        assert!((damped[0][0] - (5.0 + cuts[0][0]) / 2.0).abs() < 1e-12);
        // Balanced load keeps the cut in place.
        let same = g.rebalanced_cuts(&[1.0, 1.0], 1.0, 1.0).unwrap();
        assert!((same[0][0] - 5.0).abs() < 1e-12);
        // The proposal is always constructible.
        assert!(RankGrid::with_splits(g.pdims(), *g.bbox(), cuts).is_ok());
        // Extreme skew still respects the minimum slab width.
        let extreme = g.rebalanced_cuts(&[1.0, 0.0], 1.0, 2.0).unwrap();
        assert!(extreme[0][0] >= 2.0 - 1e-12 && extreme[0][0] <= 8.0 + 1e-12);
        // Infeasible floors and bad inputs are refused.
        assert!(g.rebalanced_cuts(&[1.0, 1.0], 0.5, 6.0).is_none());
        assert!(g.rebalanced_cuts(&[1.0], 0.5, 1.0).is_none());
        assert!(g.rebalanced_cuts(&[0.0, 0.0], 0.5, 1.0).is_none());
    }

    #[test]
    fn origins_tile_the_box() {
        let g = grid223();
        let sub = g.rank_box_lengths();
        assert_eq!(sub, Vec3::new(4.0, 4.0, 4.0));
        let mut origins: Vec<_> = (0..g.len()).map(|r| g.origin_of(r).to_array()).collect();
        origins.sort_by(|a, b| a.partial_cmp(b).unwrap());
        origins.dedup_by(|a, b| a == b);
        assert_eq!(origins.len(), 12);
    }
}
