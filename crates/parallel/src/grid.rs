//! Spatial decomposition of the periodic box over a grid of ranks.

use crate::error::SetupError;
use sc_geom::{IVec3, SimulationBox, Vec3};
use serde::{Deserialize, Serialize};

/// A `px × py × pz` grid of ranks, each owning an equal rectangular
/// sub-volume of the periodic simulation box (the paper's spatial
/// decomposition, §1/§3.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankGrid {
    pdims: IVec3,
    bbox: SimulationBox,
}

impl RankGrid {
    /// Creates a rank grid over `bbox`.
    ///
    /// # Panics
    /// Panics if any `pdims` component is < 1; [`RankGrid::try_new`] is the
    /// non-panicking form.
    pub fn new(pdims: IVec3, bbox: SimulationBox) -> Self {
        Self::try_new(pdims, bbox).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a rank grid over `bbox`, rejecting degenerate dimensions.
    ///
    /// # Errors
    /// [`SetupError::BadRankGrid`] if any `pdims` component is < 1.
    pub fn try_new(pdims: IVec3, bbox: SimulationBox) -> Result<Self, SetupError> {
        if pdims.x < 1 || pdims.y < 1 || pdims.z < 1 {
            return Err(SetupError::BadRankGrid { pdims: [pdims.x, pdims.y, pdims.z] });
        }
        Ok(RankGrid { pdims, bbox })
    }

    /// Ranks per axis.
    #[inline]
    pub fn pdims(&self) -> IVec3 {
        self.pdims
    }

    /// Total rank count P.
    #[inline]
    pub fn len(&self) -> usize {
        self.pdims.product() as usize
    }

    /// Whether the grid is trivial (never: P ≥ 1 by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The global periodic box.
    #[inline]
    pub fn bbox(&self) -> &SimulationBox {
        &self.bbox
    }

    /// Edge lengths of one rank's sub-box.
    pub fn rank_box_lengths(&self) -> Vec3 {
        let l = self.bbox.lengths();
        Vec3::new(l.x / self.pdims.x as f64, l.y / self.pdims.y as f64, l.z / self.pdims.z as f64)
    }

    /// Linear rank id of grid block `b` (periodically wrapped).
    #[inline]
    pub fn rank_of_block(&self, b: IVec3) -> usize {
        let b = b.rem_euclid(self.pdims);
        ((b.x * self.pdims.y + b.y) * self.pdims.z + b.z) as usize
    }

    /// Grid block of linear rank id.
    #[inline]
    pub fn block_of_rank(&self, rank: usize) -> IVec3 {
        let r = rank as i32;
        let z = r % self.pdims.z;
        let y = (r / self.pdims.z) % self.pdims.y;
        let x = r / (self.pdims.z * self.pdims.y);
        IVec3::new(x, y, z)
    }

    /// The rank owning a (wrapped) global position.
    pub fn owner_of(&self, r: Vec3) -> usize {
        let r = self.bbox.wrap(r);
        let sub = self.rank_box_lengths();
        let b = IVec3::new((r.x / sub.x) as i32, (r.y / sub.y) as i32, (r.z / sub.z) as i32)
            .min(self.pdims - IVec3::splat(1));
        self.rank_of_block(b)
    }

    /// Real-space low corner of a rank's sub-box.
    pub fn origin_of(&self, rank: usize) -> Vec3 {
        let b = self.block_of_rank(rank);
        let sub = self.rank_box_lengths();
        Vec3::new(b.x as f64 * sub.x, b.y as f64 * sub.y, b.z as f64 * sub.z)
    }

    /// The neighbour rank one step along `axis` in direction `dir` (±1),
    /// with periodic wrap. `P = 1` per axis makes a rank its own neighbour —
    /// ghost exchange then produces the rank's own periodic images, exactly
    /// as a periodic serial code would.
    pub fn neighbor(&self, rank: usize, axis: usize, dir: i32) -> usize {
        debug_assert!(dir == 1 || dir == -1);
        let mut b = self.block_of_rank(rank);
        b[axis] += dir;
        self.rank_of_block(b)
    }

    /// Whether stepping from `rank` along `axis` in `dir` crosses the
    /// periodic boundary — the sender must then shift the coordinates it
    /// sends by ∓L along that axis so they land in the receiver's frame.
    pub fn crosses_wrap(&self, rank: usize, axis: usize, dir: i32) -> bool {
        let b = self.block_of_rank(rank);
        let t = b[axis] + dir;
        t < 0 || t >= self.pdims[axis]
    }

    /// The coordinate shift to apply to positions sent from `rank` along
    /// `axis` in `dir` (zero unless the hop crosses the wrap).
    pub fn send_shift(&self, rank: usize, axis: usize, dir: i32) -> Vec3 {
        let mut s = Vec3::ZERO;
        if self.crosses_wrap(rank, axis, dir) {
            s[axis] = -(dir as f64) * self.bbox.lengths()[axis];
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid223() -> RankGrid {
        RankGrid::new(IVec3::new(2, 2, 3), SimulationBox::new(Vec3::new(8.0, 8.0, 12.0)))
    }

    #[test]
    fn rank_block_roundtrip() {
        let g = grid223();
        assert_eq!(g.len(), 12);
        for r in 0..g.len() {
            assert_eq!(g.rank_of_block(g.block_of_rank(r)), r);
        }
    }

    #[test]
    fn owner_of_positions() {
        let g = grid223();
        assert_eq!(g.owner_of(Vec3::new(0.1, 0.1, 0.1)), 0);
        // Sub-box is 4×4×4; (5, 1, 1) is block (1,0,0).
        assert_eq!(g.owner_of(Vec3::new(5.0, 1.0, 1.0)), g.rank_of_block(IVec3::new(1, 0, 0)));
        // Positions wrap first.
        assert_eq!(g.owner_of(Vec3::new(-0.5, 0.0, 0.0)), g.rank_of_block(IVec3::new(1, 0, 0)));
        // Every owner's box actually contains the wrapped point.
        let sub = g.rank_box_lengths();
        for p in [Vec3::new(7.9, 3.9, 11.9), Vec3::new(4.0, 4.0, 8.0), Vec3::new(2.2, 6.6, 5.5)] {
            let r = g.owner_of(p);
            let o = g.origin_of(r);
            let w = g.bbox().wrap(p);
            for a in 0..3 {
                assert!(w[a] >= o[a] - 1e-12 && w[a] < o[a] + sub[a] + 1e-12);
            }
        }
    }

    #[test]
    fn neighbors_wrap() {
        let g = grid223();
        let r0 = 0; // block (0,0,0)
        let rx = g.neighbor(r0, 0, -1);
        assert_eq!(g.block_of_rank(rx), IVec3::new(1, 0, 0)); // wrapped
        assert!(g.crosses_wrap(r0, 0, -1));
        assert!(!g.crosses_wrap(r0, 0, 1));
        // Crossing −x adds +Lx to sent coordinates.
        let s = g.send_shift(r0, 0, -1);
        assert_eq!(s, Vec3::new(8.0, 0.0, 0.0));
        assert_eq!(g.send_shift(r0, 0, 1), Vec3::ZERO);
    }

    #[test]
    fn degenerate_grid_is_rejected_typed() {
        let bbox = SimulationBox::cubic(5.0);
        let err = RankGrid::try_new(IVec3::new(0, 1, 1), bbox).unwrap_err();
        assert!(matches!(err, SetupError::BadRankGrid { pdims: [0, 1, 1] }));
        assert!(RankGrid::try_new(IVec3::splat(2), bbox).is_ok());
    }

    #[test]
    fn single_rank_is_its_own_neighbor() {
        let g = RankGrid::new(IVec3::splat(1), SimulationBox::cubic(5.0));
        assert_eq!(g.neighbor(0, 0, 1), 0);
        assert!(g.crosses_wrap(0, 2, -1));
        assert_eq!(g.send_shift(0, 2, -1).z, 5.0);
    }

    #[test]
    fn origins_tile_the_box() {
        let g = grid223();
        let sub = g.rank_box_lengths();
        assert_eq!(sub, Vec3::new(4.0, 4.0, 4.0));
        let mut origins: Vec<_> = (0..g.len()).map(|r| g.origin_of(r).to_array()).collect();
        origins.sort_by(|a, b| a.partial_cmp(b).unwrap());
        origins.dedup_by(|a, b| a == b);
        assert_eq!(origins.len(), 12);
    }
}
