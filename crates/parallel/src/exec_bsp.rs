//! Bulk-synchronous executor: deterministic reference implementation of the
//! distributed MD step, with validated message delivery, scriptable fault
//! injection, checkpoint/rollback support, and the communication-optimal
//! schedule from [`crate::transport`]: per-neighbor message aggregation,
//! compute/communication overlap over interior cells, and adaptive load
//! rebalancing of the rank grid.

use crate::comm::GhostPlan;
use crate::error::{RuntimeError, SetupError};
use crate::fault::{Delivery, FaultPlan};
use crate::grid::RankGrid;
use crate::health::{HealthConfig, HealthCounters, HealthTracker};
use crate::msg::{Channel, GhostMsg, Message, Payload};
use crate::rank::{
    best_grid_for, halo_width_for, validate_decomposition, ForceField, InteriorTask, RankState,
    DEFAULT_RESORT_EVERY,
};
use crate::transport::{self, CommConfig, Slot};
use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox};
use sc_md::checkpoint::{Checkpoint, SnapshotLayout};
use sc_md::supervisor::Recoverable;
use sc_md::{EnergyBreakdown, LaneSlots, Observer, Telemetry, ThreadPool, TupleCounts};
use sc_obs::trace::EventKind;
use sc_obs::{
    CommCounters, Counter, Histogram, ImbalanceReport, Phase, PhaseBreakdown, Registry, TraceSink,
    Tracer,
};

/// Retries after a failed delivery before escalating (so each hop gets
/// `1 + MAX_RETRIES` attempts). Two retries cover every single-fault
/// scenario that is recoverable in-step (drop, delay-by-one, one-attempt
/// stall) while keeping worst-case latency bounded.
const MAX_RETRIES: u32 = 2;

/// Verifies every section of a batched frame against its own stamp, so
/// in-frame corruption is detected — and retried at frame granularity —
/// before the receiver unpacks anything. Bare (un-aggregated) messages have
/// no inner sections and pass through.
fn verify_sections(m: &Message, to: usize, epoch: u64) -> Result<(), RuntimeError> {
    if let Payload::Batch(secs) = &m.payload {
        for s in secs {
            s.verify(to, epoch, s.channel)?;
        }
    }
    Ok(())
}

/// Delivers one wire unit (a bare message or an aggregated frame) from
/// `from` to `to` through the fault plan, verifying the outer stamp — and
/// each section's stamp — on arrival and retrying (the sender re-sends its
/// buffered copy) up to [`MAX_RETRIES`] times. Detected faults and retries
/// are recorded in the sender's `stats`; every attempt's outcome also feeds
/// the `health` watchdog, whose transitions are emitted as
/// [`EventKind::Health`] events on `sink`. A sender the watchdog has
/// declared dead escalates as [`RuntimeError::RankDead`] instead of the
/// per-delivery fault — the signal for the supervisor to re-decompose
/// rather than roll back.
#[allow(clippy::too_many_arguments)]
fn deliver_validated(
    fault: &mut FaultPlan,
    health: &mut HealthTracker,
    sink: &TraceSink,
    stats: &mut CommCounters,
    epoch: u64,
    from: usize,
    to: usize,
    channel: Channel,
    msg: Message,
) -> Result<Message, RuntimeError> {
    let class = channel.trace_class();
    // Inert plan: the delivery cannot be dropped, delayed, or corrupted, so
    // skip the retransmission copy and hand the message straight across.
    // Verification and watchdog feeding stay identical to the slow path.
    if fault.is_inert() {
        msg.verify(to, epoch, channel)?;
        verify_sections(&msg, to, epoch)?;
        if let Some(state) = health.record_success(from, class, epoch) {
            sink.instant(epoch, EventKind::Health { peer: from as u32, state: state.code() });
        }
        if health.is_dead(from) {
            return Err(RuntimeError::RankDead { rank: from, step: epoch, epoch });
        }
        return Ok(msg);
    }
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if attempts > 1 {
            stats.retries += 1;
        }
        // The transit copy may be corrupted; the sender keeps the original
        // for retransmission.
        let outcome = fault.transmit(epoch, from, msg.clone());
        let err = match outcome {
            Delivery::Deliver(m) => {
                match m.verify(to, epoch, channel).and_then(|()| verify_sections(&m, to, epoch)) {
                    Ok(()) => {
                        if let Some(state) = health.record_success(from, class, epoch) {
                            sink.instant(
                                epoch,
                                EventKind::Health { peer: from as u32, state: state.code() },
                            );
                        }
                        // A flapping link can trip the circuit breaker on the
                        // very delivery that succeeded; death still wins.
                        if health.is_dead(from) {
                            return Err(RuntimeError::RankDead { rank: from, step: epoch, epoch });
                        }
                        return Ok(m);
                    }
                    Err(e) => e,
                }
            }
            Delivery::Lost { stalled } => {
                if stalled {
                    RuntimeError::RankStalled { rank: from, epoch, attempts }
                } else {
                    RuntimeError::MissingHop { rank: to, channel, epoch, attempts }
                }
            }
        };
        stats.faults_detected += 1;
        if let Some(state) = health.record_failure(from, class, epoch) {
            sink.instant(epoch, EventKind::Health { peer: from as u32, state: state.code() });
        }
        if attempts > MAX_RETRIES {
            if health.is_dead(from) {
                return Err(RuntimeError::RankDead { rank: from, step: epoch, epoch });
            }
            return Err(err);
        }
    }
}

/// Runs one merged exchange phase on the wire: frames every rank's stamped
/// sections per destination ([`transport::frame_sections`]), delivers each
/// frame through the fault plan with validation and retry, and hands every
/// receiver its payloads in canonical slot order
/// ([`transport::match_sections`]).
///
/// Counter discipline (bytes are counted once): `record_send` and the trace
/// Send/Recv events fire **once per wire unit** with the frame's total
/// payload bytes and its section count — never again per section — so
/// `comm.messages`, `comm.bytes`, and the `comm.step_bytes` histogram see
/// aggregated traffic exactly once.
#[allow(clippy::too_many_arguments)]
fn wire_phase(
    aggregation: bool,
    phase: u64,
    epoch: u64,
    fault: &mut FaultPlan,
    health: &mut HealthTracker,
    exec_sink: &TraceSink,
    tsinks: &[TraceSink],
    stats: &mut [CommCounters],
    sends: Vec<Vec<(usize, Message)>>,
    recvs: &[Vec<Slot>],
) -> Result<Vec<Vec<Payload>>, RuntimeError> {
    let nranks = recvs.len();
    let mut units: Vec<Vec<(usize, Message)>> = vec![Vec::new(); nranks];
    for (from, sections) in sends.into_iter().enumerate() {
        for (to, unit) in transport::frame_sections(aggregation, phase, epoch, sections) {
            let bytes = unit.payload.wire_bytes();
            let nsec = unit.payload.section_count() as u16;
            let class = unit.channel.trace_class();
            stats[from].record_send(to, bytes);
            tsinks[from].send(epoch, class, to as u32, bytes, nsec, epoch);
            // The k-th unit from `from` fills the k-th canonical receive
            // slot `to` expects from that source (k > 0 only without
            // aggregation).
            let already = units[to].iter().filter(|(f, _)| *f == from).count();
            let expected = recvs[to]
                .iter()
                .filter(|s| s.peer == from)
                .nth(already)
                .map(|s| s.channel)
                .unwrap_or(unit.channel);
            let got = deliver_validated(
                fault,
                health,
                exec_sink,
                &mut stats[from],
                epoch,
                from,
                to,
                expected,
                unit,
            )?;
            tsinks[to].recv(epoch, class, from as u32, bytes, nsec, epoch);
            units[to].push((from, got));
        }
    }
    let mut out = Vec::with_capacity(nranks);
    for (rank, u) in units.into_iter().enumerate() {
        out.push(transport::match_sections(rank, epoch, &recvs[rank], u)?);
    }
    Ok(out)
}

/// The result of a staged (overlapped) ghost exchange: everything the
/// executor needs to absorb once the interior compute pass joins.
struct StagedGhosts {
    /// Per destination rank: `(hop, from, ghosts)` in canonical absorb
    /// order (phase order, then ascending hop within a phase).
    inbox: Vec<Vec<(usize, usize, Vec<GhostMsg>)>>,
    /// Side communication counters per source rank, merged into the rank
    /// stats after the join.
    stats: Vec<CommCounters>,
    /// The executor phase counter after the ghost phases.
    phase: u64,
    /// The exchange thread's own wall-clock seconds.
    elapsed: f64,
}

/// The full forwarded-routing ghost exchange run on a side thread while the
/// main thread computes interior tuples: identical wire schedule, framing,
/// validation, and fault handling to the in-line exchange, but received
/// bands are *staged* instead of absorbed (the rank stores are concurrently
/// read by the interior pass). Forwarding across axes reads earlier-phase
/// bands from the staging inbox ([`RankState::collect_ghost_band_staged`]),
/// so the staged exchange ships exactly the bytes the in-line one does.
#[allow(clippy::too_many_arguments)]
fn staged_exchange(
    grid: &RankGrid,
    plan: &GhostPlan,
    ranks: &[RankState],
    fault: &mut FaultPlan,
    health: &mut HealthTracker,
    exec_sink: &TraceSink,
    tsinks: &[TraceSink],
    aggregation: bool,
    epoch: u64,
    mut phase: u64,
) -> Result<StagedGhosts, RuntimeError> {
    let t0 = std::time::Instant::now();
    let nranks = ranks.len();
    let mut inbox: Vec<Vec<(usize, usize, Vec<GhostMsg>)>> = vec![Vec::new(); nranks];
    let mut stats = vec![CommCounters::default(); nranks];
    for hops in transport::ghost_phase_groups(plan) {
        phase += 1;
        let mut sends = Vec::with_capacity(nranks);
        let mut recvs = Vec::with_capacity(nranks);
        for (r, rank) in ranks.iter().enumerate() {
            let (slots, rx) = transport::ghost_phase(grid, plan, r, &hops);
            let mut secs = Vec::with_capacity(slots.len());
            for (slot, &hop) in slots.iter().zip(&hops) {
                let (axis, recv_dir) = plan.hops[hop];
                let band = rank.collect_ghost_band_staged(plan, axis, recv_dir, &inbox[r]);
                secs.push((
                    slot.peer,
                    Message::stamped(phase, epoch, slot.channel, Payload::Ghosts(band)),
                ));
            }
            sends.push(secs);
            recvs.push(rx);
        }
        let delivered = wire_phase(
            aggregation,
            phase,
            epoch,
            fault,
            health,
            exec_sink,
            tsinks,
            &mut stats,
            sends,
            &recvs,
        )?;
        for (to, payloads) in delivered.into_iter().enumerate() {
            for ((slot, &hop), payload) in recvs[to].iter().zip(&hops).zip(payloads) {
                let Payload::Ghosts(ghosts) = payload else {
                    return Err(RuntimeError::WrongPayload { rank: to, channel: slot.channel });
                };
                inbox[to].push((hop, slot.peer, ghosts));
            }
        }
    }
    Ok(StagedGhosts { inbox, stats, phase, elapsed: t0.elapsed().as_secs_f64() })
}

/// A distributed MD simulation executed bulk-synchronously: all ranks run
/// each phase in lockstep with messages delivered between phases. Message
/// content and counts are identical to the threaded executor — only the
/// scheduling differs — so this is the deterministic reference for
/// correctness tests and communication accounting.
///
/// The exchange schedule is the merged one from [`crate::transport`]: three
/// migration phases, three ghost phases, and three force-return phases per
/// step, with all per-channel payloads bound for the same neighbor packed
/// into one framed message per phase (when [`CommConfig::aggregation`] is
/// on). Interior-cell tuples are computed while the boundary exchange is in
/// flight (when [`CommConfig::overlap`] is on); both flags are
/// bitwise-neutral — they change message packing and scheduling, never
/// results.
///
/// Every delivery goes through the [`FaultPlan`] (a no-op by default) and is
/// verified against its stamp on arrival; [`DistributedSim::try_step`]
/// surfaces unrecovered faults as [`RuntimeError`], at which point the state
/// is unspecified and the caller must [`restore`](Recoverable::restore) from
/// a checkpoint before continuing (the `sc-md` `Supervisor` automates this).
pub struct DistributedSim {
    grid: RankGrid,
    plan: GhostPlan,
    ranks: Vec<RankState>,
    ff: ForceField,
    dt: f64,
    subdivision: i32,
    resort_every: u64,
    steps_done: u64,
    needs_prime: bool,
    fault_plan: FaultPlan,
    comm: CommConfig,
    phase: u64,
    last_energy: EnergyBreakdown,
    last_tuples: TupleCounts,
    timings: PhaseBreakdown,
    pool: ThreadPool,
    // Per-rank (energy, tuples, phases) slots reused every compute call so
    // the compute fan-out allocates nothing in steady state.
    results: Vec<(EnergyBreakdown, TupleCounts, PhaseBreakdown)>,
    registry: Registry,
    obs: DistMetrics,
    tracer: Tracer,
    /// One event sink per rank (per-rank compute phases and comm events).
    tsinks: Vec<TraceSink>,
    /// Executor-level sink for the synchronous wall-clock phases, tagged
    /// with the synthetic rank `nranks` so it gets its own timeline row.
    exec_sink: TraceSink,
    /// Aggregate counters at the end of the previous step, so the registry
    /// is fed per-step deltas rather than re-counted totals.
    last_totals: CommCounters,
    /// Counters of rank sets retired by adaptive rebalancing, folded into
    /// [`DistributedSim::comm_stats`] so aggregate totals stay monotone
    /// across re-decompositions.
    carried: CommCounters,
    /// Per-rank compute-seconds baseline at the last rebalance, so each
    /// rebalance window measures fresh load deltas.
    last_loads: Vec<f64>,
    observer: Option<(u64, Box<dyn Observer>)>,
    /// The per-rank deadline watchdog / circuit breaker.
    health: HealthTracker,
    /// Watchdog counter totals at the last metrics feed (delta source).
    last_health: HealthCounters,
    /// Set by [`DistributedSim::restore_excluding`]: the runtime lost at
    /// least one rank and is running on a re-decomposed survivor grid.
    degraded: bool,
}

/// Pre-registered metric handles for the distributed executor; inert when
/// the registry is disabled.
struct DistMetrics {
    steps: Counter,
    messages: Counter,
    bytes: Counter,
    ghosts: Counter,
    migrated: Counter,
    retries: Counter,
    faults: Counter,
    step_bytes: Histogram,
    health_suspects: Counter,
    health_deaths: Counter,
    health_recoveries: Counter,
    health_breaker_trips: Counter,
}

impl DistMetrics {
    fn register(reg: &Registry) -> Self {
        DistMetrics {
            steps: reg.counter("dist.steps"),
            messages: reg.counter("comm.messages"),
            bytes: reg.counter("comm.bytes"),
            ghosts: reg.counter("comm.ghosts_imported"),
            migrated: reg.counter("comm.atoms_migrated"),
            retries: reg.counter("comm.retries"),
            faults: reg.counter("comm.faults_detected"),
            step_bytes: reg
                .histogram("comm.step_bytes", &[1024.0, 16384.0, 262144.0, 4194304.0, 67108864.0]),
            health_suspects: reg.counter("health.suspects"),
            health_deaths: reg.counter("health.deaths"),
            health_recoveries: reg.counter("health.recoveries"),
            health_breaker_trips: reg.counter("health.breaker_trips"),
        }
    }
}

impl DistributedSim {
    /// Decomposes `store` over a `pdims` rank grid.
    ///
    /// # Errors
    /// Rejects configurations where the halo would be deeper than one rank
    /// sub-box (forwarded routing delivers only nearest-neighbour data) or
    /// where the global cell lattice is too small for the largest tuple
    /// order.
    pub fn new(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
    ) -> Result<Self, SetupError> {
        Self::new_subdivided(store, bbox, pdims, ff, dt, 1)
    }

    /// Like [`DistributedSim::new`] with `k`-fold subdivided cells and
    /// reach-k patterns (paper §6) on every rank.
    pub fn new_subdivided(
        store: AtomStore,
        bbox: SimulationBox,
        pdims: IVec3,
        ff: ForceField,
        dt: f64,
        k: i32,
    ) -> Result<Self, SetupError> {
        if !(1..=3).contains(&k) {
            return Err(SetupError::UnsupportedSubdivision(k));
        }
        let grid = RankGrid::try_new(pdims, bbox)?;
        let width = validate_decomposition(&ff, &grid)?;
        let plan = GhostPlan::for_method(ff.method, width)?;
        let ranks: Vec<RankState> = (0..grid.len())
            .map(|r| RankState::new_subdivided(r, grid.clone(), &store, &ff, k))
            .collect();
        let total: usize = ranks.iter().map(|r| r.owned()).sum();
        if total != store.len() {
            return Err(SetupError::AtomsLost { expected: store.len(), claimed: total });
        }
        let nranks = ranks.len();
        let registry = Registry::disabled();
        Ok(DistributedSim {
            grid,
            plan,
            ranks,
            ff,
            dt,
            subdivision: k,
            resort_every: DEFAULT_RESORT_EVERY,
            steps_done: 0,
            needs_prime: true,
            fault_plan: FaultPlan::none(),
            comm: CommConfig::default(),
            phase: 0,
            last_energy: EnergyBreakdown::default(),
            last_tuples: TupleCounts::default(),
            timings: PhaseBreakdown::default(),
            pool: ThreadPool::auto(),
            results: vec![Default::default(); nranks],
            obs: DistMetrics::register(&registry),
            registry,
            tracer: Tracer::disabled(),
            tsinks: vec![TraceSink::disabled(); nranks],
            exec_sink: TraceSink::disabled(),
            last_totals: CommCounters::default(),
            carried: CommCounters::default(),
            last_loads: vec![0.0; nranks],
            observer: None,
            health: HealthTracker::new(nranks, HealthConfig::default()),
            last_health: HealthCounters::default(),
            degraded: false,
        })
    }

    /// Replaces the communication configuration (per-neighbor aggregation,
    /// compute/communication overlap, rebalance cadence). All settings are
    /// bitwise-neutral: they change message packing and scheduling, never
    /// physics.
    pub fn set_comm_config(&mut self, comm: CommConfig) {
        self.comm = comm;
    }

    /// The communication configuration in force.
    pub fn comm_config(&self) -> CommConfig {
        self.comm
    }

    /// Replaces the health watchdog's thresholds (all ranks reset to
    /// healthy; cumulative transition counters restart).
    pub fn set_health_config(&mut self, config: HealthConfig) {
        self.health = HealthTracker::new(self.ranks.len(), config);
        self.last_health = HealthCounters::default();
    }

    /// The per-rank health watchdog (state and cumulative transitions).
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// Whether the runtime lost a rank and re-decomposed onto survivors.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Routes this executor's counters and phase timings into `registry`
    /// (per-step deltas: `comm.messages`, `comm.bytes`, `comm.retries`, …,
    /// plus a `comm.step_bytes` histogram and the wall-clock phase slots).
    pub fn set_metrics(&mut self, registry: Registry) {
        self.obs = DistMetrics::register(&registry);
        self.registry = registry;
        self.last_totals = self.comm_stats();
    }

    /// The metrics registry in use (disabled unless
    /// [`DistributedSim::set_metrics`] installed a live one).
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// Routes event-level tracing through `tracer`: one sink per rank
    /// carries that rank's comm send/recv events and its compute-phase
    /// intervals, and an extra sink tagged with the synthetic rank
    /// `nranks` carries the executor's synchronous wall-clock phases on
    /// its own timeline row. Rings are allocated once here; emitting
    /// during stepping never allocates.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        let nranks = self.ranks.len();
        self.tsinks = (0..nranks).map(|r| tracer.sink(r as u32, 0)).collect();
        self.exec_sink = tracer.sink(nranks as u32, 0);
        self.tracer = tracer;
    }

    /// The tracer in use (disabled unless [`DistributedSim::set_tracer`]
    /// installed a live one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Registers a telemetry observer invoked with a fresh
    /// [`Telemetry`] snapshot after every `every` completed steps.
    ///
    /// # Panics
    /// Panics when `every` is 0.
    pub fn observe_every(&mut self, every: u64, observer: Box<dyn Observer>) {
        assert!(every > 0, "observe_every needs a positive interval");
        self.observer = Some((every, observer));
    }

    /// The unified telemetry snapshot: global energies and tuple counts,
    /// the merged phase breakdown (per-rank CPU seconds for bin / enumerate
    /// / eval / reduce, executor wall clock for exchange / migrate /
    /// integrate / compute), aggregate and per-rank communication counters,
    /// and allocation accounting. The distributed executors do not compute
    /// a virial, so `virial` is 0.
    pub fn telemetry(&self) -> Telemetry {
        let comm = self.comm_stats();
        let mut phases = comm.phases;
        for ph in [Phase::Exchange, Phase::Migrate, Phase::Integrate, Phase::Compute] {
            phases.set(ph, self.timings.get(ph));
        }
        Telemetry {
            step: self.steps_done,
            energy: self.last_energy,
            tuples: self.last_tuples,
            virial: 0.0,
            phases,
            total_phases: phases,
            per_rank: self.ranks.iter().map(|r| r.stats.clone()).collect(),
            comm,
            alloc_events: self.registry.allocation_events(),
            degraded: self.degraded,
        }
    }

    /// The per-rank load-imbalance report, with the Eq. 33 import-volume
    /// prediction `Vω = (l + n − 1)³ − l³` attached for the largest active
    /// tuple order (`l` = cells per sub-box side at that term's cutoff), so
    /// measured ghost imports can be checked against the paper's model per
    /// decomposition.
    pub fn imbalance_report(&self) -> ImbalanceReport {
        let per_rank: Vec<CommCounters> = self.ranks.iter().map(|r| r.stats.clone()).collect();
        let mut rep = ImbalanceReport::from_per_rank(&per_rank);
        if let Some((n, rcut)) = self.ff.terms().into_iter().max_by_key(|&(n, _)| n) {
            let sub = self.grid.rank_box_lengths();
            let l = (sub.x.min(sub.y).min(sub.z) / rcut).floor().max(1.0);
            rep = rep.with_import_prediction(l, n as u32);
        }
        rep
    }

    /// The rank grid.
    pub fn grid(&self) -> &RankGrid {
        &self.grid
    }

    /// The ghost plan in force.
    pub fn plan(&self) -> &GhostPlan {
        &self.plan
    }

    /// Installs a fault plan; subsequent deliveries route through it.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Sets the Morton re-sort cadence: every `every`-th step each rank
    /// permutes its owned atoms into cell Z-order at the ghost-free point of
    /// the step (see [`RankState::resort_owned`]). `0` disables re-sorting.
    /// Default 8, matching the serial engine.
    pub fn set_resort_every(&mut self, every: u64) {
        self.resort_every = every;
    }

    /// The active fault plan (to inspect fired [`crate::FaultEvent`]s).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Steps completed since construction (or since the restored
    /// checkpoint's step).
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// The integration timestep.
    pub fn timestep(&self) -> f64 {
        self.dt
    }

    /// Changes the integration timestep (graceful degradation after
    /// rollback).
    pub fn set_timestep(&mut self, dt: f64) {
        self.dt = dt;
    }

    /// Potential energy of the last force computation.
    pub fn potential_energy(&self) -> f64 {
        self.last_energy.total()
    }

    /// Energy breakdown of the last force computation.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        self.last_energy
    }

    /// Tuple statistics of the last force computation (global sums).
    pub fn tuple_counts(&self) -> TupleCounts {
        self.last_tuples
    }

    /// Kinetic energy (global).
    pub fn kinetic_energy(&self) -> f64 {
        self.ranks.iter().map(|r| r.kinetic_energy()).sum()
    }

    /// Total energy; recomputes forces.
    ///
    /// # Panics
    /// Panics on an unrecovered communication fault; fault-injected runs
    /// should step through [`DistributedSim::try_step`] instead.
    pub fn total_energy(&mut self) -> f64 {
        self.exchange_and_compute().unwrap_or_else(|e| panic!("{e}"));
        self.potential_energy() + self.kinetic_energy()
    }

    /// Accumulated wall-clock phase breakdown since construction. Under
    /// compute/communication overlap the exchange and compute slots cover
    /// concurrent intervals, so their sum may exceed step wall time.
    pub fn timings(&self) -> PhaseBreakdown {
        self.timings
    }

    /// Aggregated per-rank step-phase breakdown (binning / enumeration /
    /// scratch reduction) since construction — summed per-rank seconds, the
    /// fine-grained view inside the wall-clock compute slot.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        self.comm_stats().phases
    }

    /// Load imbalance: `max(owned) / mean(owned)` across ranks — 1.0 is a
    /// perfect partition.
    pub fn load_imbalance(&self) -> f64 {
        let counts: Vec<usize> = self.ranks.iter().map(|r| r.owned()).collect();
        let max = *counts.iter().max().unwrap_or(&0) as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Aggregated communication statistics since start: the live ranks'
    /// counters plus the totals of rank sets retired by adaptive
    /// rebalancing, so aggregates stay monotone across re-decompositions.
    pub fn comm_stats(&self) -> CommCounters {
        let mut total = self.carried.clone();
        for r in &self.ranks {
            total.merge(&r.stats);
        }
        total
    }

    /// Per-rank communication statistics (since the last re-decomposition,
    /// if adaptive rebalancing replaced the rank set).
    pub fn rank_stats(&self) -> Vec<&CommCounters> {
        self.ranks.iter().map(|r| &r.stats).collect()
    }

    /// Migration: three axis-ordered merged phases; every rank sends both
    /// directions each axis (empty messages included, as MPI codes do),
    /// framed per neighbor when aggregation is on.
    fn migrate(&mut self) -> Result<(), RuntimeError> {
        let epoch = self.steps_done;
        let nranks = self.ranks.len();
        for axis in 0..3 {
            self.phase += 1;
            let mut sends = Vec::with_capacity(nranks);
            let mut recvs = Vec::with_capacity(nranks);
            for r in 0..nranks {
                let (slots, rx) = transport::migrate_phase(&self.grid, r, axis);
                let (to_minus, to_plus) = self.ranks[r].collect_migrants(axis);
                let secs = slots
                    .into_iter()
                    .zip([to_minus, to_plus])
                    .map(|(slot, atoms)| {
                        let msg = Message::stamped(
                            self.phase,
                            epoch,
                            slot.channel,
                            Payload::Migrate(atoms),
                        );
                        (slot.peer, msg)
                    })
                    .collect();
                sends.push(secs);
                recvs.push(rx);
            }
            let mut side = vec![CommCounters::default(); nranks];
            let delivered = wire_phase(
                self.comm.aggregation,
                self.phase,
                epoch,
                &mut self.fault_plan,
                &mut self.health,
                &self.exec_sink,
                &self.tsinks,
                &mut side,
                sends,
                &recvs,
            )?;
            for (r, s) in side.iter().enumerate() {
                self.ranks[r].stats.merge(s);
            }
            for (to, payloads) in delivered.into_iter().enumerate() {
                for (slot, payload) in recvs[to].iter().zip(payloads) {
                    let Payload::Migrate(atoms) = payload else {
                        return Err(RuntimeError::WrongPayload { rank: to, channel: slot.channel });
                    };
                    self.ranks[to].absorb_migrants(&atoms);
                }
            }
        }
        Ok(())
    }

    /// Halo exchange: forwarded routing per the ghost plan, merged into one
    /// phase per axis group, absorbed in canonical slot order.
    fn exchange_ghosts(&mut self) -> Result<(), RuntimeError> {
        let epoch = self.steps_done;
        let nranks = self.ranks.len();
        for r in &mut self.ranks {
            r.drop_ghosts();
        }
        for hops in transport::ghost_phase_groups(&self.plan) {
            self.phase += 1;
            let mut sends = Vec::with_capacity(nranks);
            let mut recvs = Vec::with_capacity(nranks);
            for r in 0..nranks {
                let (slots, rx) = transport::ghost_phase(&self.grid, &self.plan, r, &hops);
                let mut secs = Vec::with_capacity(slots.len());
                for (slot, &hop) in slots.iter().zip(&hops) {
                    let (axis, recv_dir) = self.plan.hops[hop];
                    let band = self.ranks[r].collect_ghost_band(&self.plan, axis, recv_dir);
                    secs.push((
                        slot.peer,
                        Message::stamped(self.phase, epoch, slot.channel, Payload::Ghosts(band)),
                    ));
                }
                sends.push(secs);
                recvs.push(rx);
            }
            let mut side = vec![CommCounters::default(); nranks];
            let delivered = wire_phase(
                self.comm.aggregation,
                self.phase,
                epoch,
                &mut self.fault_plan,
                &mut self.health,
                &self.exec_sink,
                &self.tsinks,
                &mut side,
                sends,
                &recvs,
            )?;
            for (r, s) in side.iter().enumerate() {
                self.ranks[r].stats.merge(s);
            }
            for (to, payloads) in delivered.into_iter().enumerate() {
                for ((slot, &hop), payload) in recvs[to].iter().zip(&hops).zip(payloads) {
                    let Payload::Ghosts(ghosts) = payload else {
                        return Err(RuntimeError::WrongPayload { rank: to, channel: slot.channel });
                    };
                    self.ranks[to].absorb_ghosts(hop, slot.peer, &ghosts);
                }
            }
        }
        Ok(())
    }

    /// Reverse force reduction along the reversed routing schedule, merged
    /// into one phase per axis group (hops descending within a group).
    fn reduce_forces(&mut self) -> Result<(), RuntimeError> {
        let epoch = self.steps_done;
        let nranks = self.ranks.len();
        for hops in transport::force_phase_groups(&self.plan) {
            self.phase += 1;
            let mut sends = Vec::with_capacity(nranks);
            let mut recvs = Vec::with_capacity(nranks);
            for r in 0..nranks {
                let (slots, rx) = transport::force_phase(&self.grid, &self.plan, r, &hops);
                let mut secs = Vec::with_capacity(slots.len());
                for (slot, &hop) in slots.iter().zip(&hops) {
                    let (forces, recorded) = self.ranks[r].collect_ghost_forces(hop);
                    debug_assert!(
                        recorded.is_none_or(|t| t == slot.peer),
                        "ghost origin disagrees with the routing schedule"
                    );
                    secs.push((
                        slot.peer,
                        Message::stamped(self.phase, epoch, slot.channel, Payload::Forces(forces)),
                    ));
                }
                sends.push(secs);
                recvs.push(rx);
            }
            let mut side = vec![CommCounters::default(); nranks];
            let delivered = wire_phase(
                self.comm.aggregation,
                self.phase,
                epoch,
                &mut self.fault_plan,
                &mut self.health,
                &self.exec_sink,
                &self.tsinks,
                &mut side,
                sends,
                &recvs,
            )?;
            for (r, s) in side.iter().enumerate() {
                self.ranks[r].stats.merge(s);
            }
            for (to, payloads) in delivered.into_iter().enumerate() {
                for ((slot, &hop), payload) in recvs[to].iter().zip(&hops).zip(payloads) {
                    let Payload::Forces(forces) = payload else {
                        return Err(RuntimeError::WrongPayload { rank: to, channel: slot.channel });
                    };
                    self.ranks[to].absorb_ghost_forces(hop, &forces)?;
                }
            }
        }
        Ok(())
    }

    /// The per-rank force-computation fan-out: each pool task owns exactly
    /// one rank slot and one result slot.
    fn compute_all(&mut self) {
        let ff = &self.ff;
        let nranks = self.ranks.len();
        let ranks = LaneSlots::new(self.ranks.as_mut_ptr());
        let out = LaneSlots::new(self.results.as_mut_ptr());
        self.pool.run(nranks, &move |r| {
            // SAFETY: task index r is claimed exactly once per run, so
            // each rank/result slot is touched by a single lane.
            let rank = unsafe { &mut *ranks.get(r) };
            let slot = unsafe { &mut *out.get(r) };
            *slot = rank.compute_forces(ff);
        });
    }

    /// Sums the per-rank results (in rank order, for determinism) into the
    /// global energy and tuple totals.
    fn sum_results(&mut self) {
        let mut energy = EnergyBreakdown::default();
        let mut tuples = TupleCounts::default();
        for (e, t, _phases) in &self.results {
            energy.pair += e.pair;
            energy.triplet += e.triplet;
            energy.quadruplet += e.quadruplet;
            tuples.pair.merge(t.pair);
            tuples.triplet.merge(t.triplet);
            tuples.quadruplet.merge(t.quadruplet);
        }
        self.last_energy = energy;
        self.last_tuples = tuples;
    }

    /// Emits each rank's fine-grained compute phases, laid out cumulatively
    /// from `start_ns` so each rank's timeline row shows its own bin /
    /// enumerate / eval / reduce split.
    fn trace_compute_phases(&self, start_ns: u64) {
        if !self.tracer.enabled() {
            return;
        }
        let step = self.steps_done;
        for (r, (_, _, phases)) in self.results.iter().enumerate() {
            let mut cursor = start_ns;
            for (phase, secs) in phases.iter() {
                let dur_ns = (secs * 1e9) as u64;
                if dur_ns > 0 {
                    self.tsinks[r].phase(step, phase, cursor, dur_ns);
                    cursor += dur_ns;
                }
            }
        }
    }

    /// One full ghost-exchange + force-computation + reduction cycle,
    /// overlapped or sequential per [`CommConfig::overlap`]. Both paths are
    /// bitwise-identical: sweeps always run interior cells first, then
    /// frontier cells, and ghosts are absorbed in canonical order either
    /// way.
    fn exchange_and_compute(&mut self) -> Result<(), RuntimeError> {
        // Overlap needs at least one worker lane to hide the exchange
        // behind; on a single-lane pool the split would serialize anyway
        // and only pay the second lattice rebuild, so degrade to the fused
        // single-pass cycle (bitwise-identical — see the comm_modes suite).
        if self.comm.overlap && self.pool.lanes() > 1 {
            return self.exchange_and_compute_overlapped();
        }
        let t0 = std::time::Instant::now();
        self.exchange_ghosts()?;
        let t1 = std::time::Instant::now();
        let t1_ns = if self.tracer.enabled() { self.exec_sink.now_ns() } else { 0 };
        self.record_wall(Phase::Exchange, (t1 - t0).as_secs_f64());
        // Ranks compute independently — the BSP phase structure makes this
        // embarrassingly parallel.
        self.compute_all();
        let t2 = std::time::Instant::now();
        self.record_wall(Phase::Compute, (t2 - t1).as_secs_f64());
        self.trace_compute_phases(t1_ns);
        self.reduce_forces()?;
        self.record_wall(Phase::Reduce, t2.elapsed().as_secs_f64());
        self.sum_results();
        Ok(())
    }

    /// The overlapped cycle: a scoped thread runs the staged boundary
    /// exchange (band collection reads the rank states immutably) while the
    /// pool computes every rank's interior cells on lattices extracted via
    /// [`RankState::begin_interior`]. After the join the staged ghosts are
    /// absorbed in canonical order and the frontier pass completes the
    /// forces.
    fn exchange_and_compute_overlapped(&mut self) -> Result<(), RuntimeError> {
        let t0_ns = if self.tracer.enabled() { self.exec_sink.now_ns() } else { 0 };
        for r in &mut self.ranks {
            r.drop_ghosts();
        }
        let mut tasks: Vec<InteriorTask> =
            self.ranks.iter_mut().map(|r| r.begin_interior()).collect();
        let nranks = self.ranks.len();
        let epoch = self.steps_done;
        let start_phase = self.phase;
        let aggregation = self.comm.aggregation;
        // Disjoint field borrows: the exchange thread takes the fault plan
        // and health watchdog mutably plus shared reads of the rank states;
        // the interior fan-out reads the same rank states and mutates only
        // the extracted tasks.
        let ranks = &self.ranks;
        let fault = &mut self.fault_plan;
        let health = &mut self.health;
        let exec_sink = &self.exec_sink;
        let tsinks = &self.tsinks;
        let grid = &self.grid;
        let plan = &self.plan;
        let pool = &self.pool;
        let ff = &self.ff;
        // The exchange runs as one extra pool task alongside the per-rank
        // interior tasks — same disjoint borrows as a scoped side thread,
        // but without spawning (and joining) an OS thread every step. The
        // mutable exchange state rides in a Mutex claimed exactly once by
        // whichever lane draws task 0.
        let exchange_state = std::sync::Mutex::new(Some((fault, health)));
        let staged_out: std::sync::Mutex<Option<Result<StagedGhosts, RuntimeError>>> =
            std::sync::Mutex::new(None);
        let t_int = std::time::Instant::now();
        {
            let slots = LaneSlots::new(tasks.as_mut_ptr());
            let exchange_state = &exchange_state;
            let staged_out = &staged_out;
            pool.run(nranks + 1, &move |t| {
                if t == 0 {
                    let (fault, health) =
                        exchange_state.lock().unwrap().take().expect("exchange task runs once");
                    let r = staged_exchange(
                        grid,
                        plan,
                        ranks,
                        fault,
                        health,
                        exec_sink,
                        tsinks,
                        aggregation,
                        epoch,
                        start_phase,
                    );
                    *staged_out.lock().unwrap() = Some(r);
                } else {
                    // SAFETY: task index t is claimed exactly once per run,
                    // so each task slot is touched by a single lane; the
                    // rank states are only read.
                    let task = unsafe { &mut *slots.get(t - 1) };
                    RankState::run_interior(task, &ranks[t - 1], ff);
                }
            });
        }
        let interior_secs = t_int.elapsed().as_secs_f64();
        let staged = staged_out.into_inner().expect("no lane panicked").expect("task 0 ran");
        let staged = match staged {
            Ok(s) => s,
            Err(e) => {
                // Hand the lattices back so a checkpoint restore finds the
                // rank states structurally whole.
                for (r, task) in self.ranks.iter_mut().zip(tasks) {
                    r.finish_interior(task);
                }
                return Err(e);
            }
        };
        // Bank the interior passes and absorb the staged ghosts in the
        // same canonical order the in-line exchange uses.
        for ((rank, task), inbox) in self.ranks.iter_mut().zip(tasks).zip(&staged.inbox) {
            rank.finish_interior(task);
            for (hop, from, ghosts) in inbox {
                rank.absorb_ghosts(*hop, *from, ghosts);
            }
        }
        for (r, s) in staged.stats.iter().enumerate() {
            self.ranks[r].stats.merge(s);
        }
        self.phase = staged.phase;
        self.record_wall(Phase::Exchange, staged.elapsed);
        let t1 = std::time::Instant::now();
        // Frontier (and Hybrid full) computation now that the halo landed.
        self.compute_all();
        self.record_wall(Phase::Compute, interior_secs + t1.elapsed().as_secs_f64());
        self.trace_compute_phases(t0_ns);
        let t2 = std::time::Instant::now();
        self.reduce_forces()?;
        self.record_wall(Phase::Reduce, t2.elapsed().as_secs_f64());
        self.sum_results();
        Ok(())
    }

    /// Closes the adaptive load-balance loop: converts the last window's
    /// per-rank compute seconds into non-uniform axis cuts
    /// ([`RankGrid::rebalanced_cuts`]), validates the candidate grid, and
    /// re-decomposes onto it. Infeasible proposals are skipped — the
    /// simulation keeps its current grid. Retired rank counters fold into
    /// [`DistributedSim::comm_stats`] and forces are recomputed by the
    /// priming exchange.
    fn rebalance(&mut self) {
        let loads: Vec<f64> = self
            .ranks
            .iter()
            .zip(&self.last_loads)
            .map(|(r, last)| (r.stats.phases.compute_total_s() - last).max(0.0))
            .collect();
        self.last_loads = self.ranks.iter().map(|r| r.stats.phases.compute_total_s()).collect();
        let min_width = halo_width_for(&self.ff, &self.grid);
        let Some(cuts) = self.grid.rebalanced_cuts(&loads, 0.5, min_width) else { return };
        let Ok(grid) = RankGrid::with_splits(self.grid.pdims(), *self.grid.bbox(), cuts) else {
            return;
        };
        if validate_decomposition(&self.ff, &grid).is_err() {
            return;
        }
        let store = self.gather();
        let ranks: Vec<RankState> = (0..grid.len())
            .map(|r| RankState::new_subdivided(r, grid.clone(), &store, &self.ff, self.subdivision))
            .collect();
        if ranks.iter().map(|r| r.owned()).sum::<usize>() != store.len() {
            return; // a malformed split would lose atoms; keep the old grid
        }
        for r in &self.ranks {
            self.carried.merge(&r.stats);
        }
        self.exec_sink.instant(
            self.steps_done,
            EventKind::Redecompose { rank: self.ranks.len() as u32, lost: false },
        );
        self.grid = grid;
        self.ranks = ranks;
        self.last_loads = vec![0.0; self.ranks.len()];
        self.health.reset(self.ranks.len());
        self.needs_prime = true;
    }

    /// One velocity-Verlet step, surfacing unrecovered communication faults.
    ///
    /// # Errors
    /// Any [`RuntimeError`] that survived the per-delivery retry budget. On
    /// error the simulation state is unspecified (a phase may have half
    /// run); restore from a checkpoint before stepping again.
    pub fn try_step(&mut self) -> Result<(), RuntimeError> {
        // Rebalance before the priming check: re-decomposition drops the
        // force state, and the priming exchange rebuilds it.
        if self.comm.rebalance_every != 0
            && self.steps_done > 0
            && self.steps_done.is_multiple_of(self.comm.rebalance_every)
        {
            self.rebalance();
        }
        if self.needs_prime {
            self.exchange_and_compute()?;
            self.needs_prime = false;
        }
        let t0 = std::time::Instant::now();
        for r in &mut self.ranks {
            r.vv_start(self.dt);
        }
        for r in &mut self.ranks {
            r.drop_ghosts();
        }
        // Ghost-free point: permute owned atoms into cell Z-order before
        // migration rebuilds the halo against the new slot layout.
        if self.resort_every != 0 && self.steps_done.is_multiple_of(self.resort_every) {
            for r in &mut self.ranks {
                r.resort_owned();
            }
        }
        let t1 = std::time::Instant::now();
        self.record_wall(Phase::Integrate, (t1 - t0).as_secs_f64());
        self.migrate()?;
        self.record_wall(Phase::Migrate, t1.elapsed().as_secs_f64());
        self.exchange_and_compute()?;
        let t2 = std::time::Instant::now();
        for r in &mut self.ranks {
            r.vv_finish(self.dt);
        }
        self.record_wall(Phase::Integrate, t2.elapsed().as_secs_f64());
        self.steps_done += 1;
        self.feed_metrics();
        if let Some((every, mut observer)) = self.observer.take() {
            if self.steps_done.is_multiple_of(every) {
                observer.observe(&self.telemetry());
            }
            self.observer = Some((every, observer));
        }
        Ok(())
    }

    /// Records a wall-clock phase duration both in the cumulative local
    /// breakdown and in the registry (if one is installed).
    fn record_wall(&mut self, phase: Phase, secs: f64) {
        self.timings.add(phase, secs);
        self.registry.record_phase(phase, secs);
        if self.exec_sink.enabled() {
            let dur_ns = (secs * 1e9) as u64;
            let now = self.exec_sink.now_ns();
            self.exec_sink.phase(self.steps_done, phase, now.saturating_sub(dur_ns), dur_ns);
        }
    }

    /// Feeds the step's communication deltas into the registry.
    fn feed_metrics(&mut self) {
        if !self.registry.enabled() {
            return;
        }
        let now = self.comm_stats();
        self.obs.steps.inc();
        self.obs.messages.add(now.messages - self.last_totals.messages);
        self.obs.bytes.add(now.bytes - self.last_totals.bytes);
        self.obs.ghosts.add(now.ghosts_imported - self.last_totals.ghosts_imported);
        self.obs.migrated.add(now.atoms_migrated - self.last_totals.atoms_migrated);
        self.obs.retries.add(now.retries - self.last_totals.retries);
        self.obs.faults.add(now.faults_detected - self.last_totals.faults_detected);
        self.obs.step_bytes.observe((now.bytes - self.last_totals.bytes) as f64);
        self.last_totals = now;
        let h = self.health.counters();
        self.obs.health_suspects.add(h.suspects - self.last_health.suspects);
        self.obs.health_deaths.add(h.deaths - self.last_health.deaths);
        self.obs.health_recoveries.add(h.recoveries - self.last_health.recoveries);
        self.obs.health_breaker_trips.add(h.breaker_trips - self.last_health.breaker_trips);
        self.last_health = h;
    }

    /// One velocity-Verlet step.
    ///
    /// # Panics
    /// Panics on an unrecovered communication fault; fault-injected runs
    /// should use [`DistributedSim::try_step`].
    pub fn step(&mut self) {
        self.try_step().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Runs `n` steps. Panics like [`DistributedSim::step`] on faults.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Gathers all owned atoms into one store, sorted by global id, with
    /// positions wrapped into the global box — directly comparable with a
    /// serial [`sc_md::Simulation`].
    pub fn gather(&self) -> AtomStore {
        let mut atoms: Vec<crate::msg::AtomMsg> =
            self.ranks.iter().flat_map(|r| r.owned_atoms()).collect();
        atoms.sort_by_key(|a| a.id);
        let masses = self.ranks[0].store().species_masses().to_vec();
        let mut out = AtomStore::new(masses);
        for a in &atoms {
            out.push(a.id, a.species, a.position, a.velocity);
        }
        out
    }

    /// Re-decomposes a checkpoint onto an arbitrary `pdims` rank grid and
    /// resumes from it: atoms are re-sorted into the new sub-boxes, forces
    /// are recomputed by the priming exchange, and the health watchdog is
    /// resized to the new rank count (its cumulative transition counters
    /// survive). Trace sinks are re-derived from the installed tracer so
    /// the executor row stays at the new synthetic rank `nranks`.
    ///
    /// # Errors
    /// The same feasibility checks as [`DistributedSim::new`]: every halo
    /// must fit in one sub-box and the global lattice must accommodate the
    /// largest tuple order.
    pub fn restore_onto(&mut self, cp: &Checkpoint, pdims: IVec3) -> Result<(), SetupError> {
        let grid = RankGrid::try_new(pdims, cp.bbox())?;
        let width = validate_decomposition(&self.ff, &grid)?;
        let plan = GhostPlan::for_method(self.ff.method, width)?;
        let store = cp.to_store();
        let ranks: Vec<RankState> = (0..grid.len())
            .map(|r| RankState::new_subdivided(r, grid.clone(), &store, &self.ff, self.subdivision))
            .collect();
        let total: usize = ranks.iter().map(|r| r.owned()).sum();
        if total != store.len() {
            return Err(SetupError::AtomsLost { expected: store.len(), claimed: total });
        }
        let nranks = ranks.len();
        self.grid = grid;
        self.plan = plan;
        self.ranks = ranks;
        self.results = vec![Default::default(); nranks];
        self.tsinks = (0..nranks).map(|r| self.tracer.sink(r as u32, 0)).collect();
        self.exec_sink = self.tracer.sink(nranks as u32, 0);
        // Rank indices mean something new now; per-rank health state from
        // the old grid is unusable (cumulative counters are kept).
        self.health.reset(nranks);
        self.dt = cp.dt;
        self.steps_done = cp.step;
        self.needs_prime = true;
        self.last_energy = EnergyBreakdown::default();
        self.last_tuples = TupleCounts::default();
        self.last_totals = CommCounters::default();
        self.carried = CommCounters::default();
        self.last_loads = vec![0.0; nranks];
        Ok(())
    }

    /// The dead-rank recovery path: retires the ranks in `exclude` from
    /// the fault plan (a crashed rank must not be re-killed under its new
    /// number), picks the best feasible grid over the survivors via
    /// [`best_grid_for`], and re-decomposes the checkpoint onto it. On
    /// success the runtime is flagged [`DistributedSim::degraded`] and a
    /// [`EventKind::Redecompose`] instant is traced per lost rank.
    ///
    /// # Errors
    /// Fails when no survivor grid is feasible (even `1×1×1`) or the
    /// re-decomposition itself fails its setup checks.
    pub fn restore_excluding(
        &mut self,
        cp: &Checkpoint,
        exclude: &[usize],
    ) -> Result<(), SetupError> {
        let survivors = self.ranks.len().saturating_sub(exclude.len());
        if survivors == 0 {
            return Err(SetupError::BadRankGrid { pdims: [0, 0, 0] });
        }
        for &r in exclude {
            self.fault_plan.retire_rank(r);
            self.exec_sink
                .instant(self.steps_done, EventKind::Redecompose { rank: r as u32, lost: true });
        }
        let pdims = match best_grid_for(&self.ff, cp.bbox(), survivors) {
            Some(p) => p,
            None => {
                // Even one rank cannot host this system; surface the
                // concrete 1×1×1 setup error as the diagnostic.
                let grid = RankGrid::try_new(IVec3::splat(1), cp.bbox())?;
                return Err(validate_decomposition(&self.ff, &grid)
                    .err()
                    .unwrap_or(SetupError::BadRankGrid { pdims: [1, 1, 1] }));
            }
        };
        self.restore_onto(cp, pdims)?;
        self.degraded = true;
        Ok(())
    }
}

impl Recoverable for DistributedSim {
    type Fault = RuntimeError;

    fn try_step(&mut self) -> Result<(), RuntimeError> {
        DistributedSim::try_step(self)
    }

    fn checkpoint(&self) -> Checkpoint {
        let p = self.grid.pdims();
        Checkpoint::from_store(self.steps_done, self.dt, self.grid.bbox(), &self.gather())
            .with_layout(SnapshotLayout::Grid { pdims: [p.x, p.y, p.z] })
    }

    fn restore(&mut self, cp: &Checkpoint) {
        // Re-decompose from the gathered snapshot: every rank reclaims its
        // atoms and forces are recomputed by the priming exchange, so the
        // trajectory continues from exactly the checkpointed phase-space
        // point (summation order inside a rank may differ from the
        // pre-fault run, so continuation is exact physics, not bitwise).
        let store = cp.to_store();
        self.ranks = (0..self.grid.len())
            .map(|r| {
                RankState::new_subdivided(r, self.grid.clone(), &store, &self.ff, self.subdivision)
            })
            .collect();
        self.dt = cp.dt;
        self.steps_done = cp.step;
        self.needs_prime = true;
        self.last_energy = EnergyBreakdown::default();
        self.last_tuples = TupleCounts::default();
        // Rank stats were rebuilt from scratch; re-baseline the delta feed.
        self.last_totals = CommCounters::default();
        self.carried = CommCounters::default();
        self.last_loads = vec![0.0; self.ranks.len()];
    }

    fn atom_count(&self) -> usize {
        self.ranks.iter().map(|r| r.owned()).sum()
    }

    fn total_energy_estimate(&self) -> f64 {
        self.last_energy.total() + self.kinetic_energy()
    }

    fn state_is_finite(&self) -> bool {
        self.ranks.iter().all(|rank| {
            let s = rank.store();
            (0..rank.owned()).all(|i| {
                s.positions()[i].is_finite()
                    && s.velocities()[i].is_finite()
                    && s.forces()[i].is_finite()
            })
        })
    }

    fn timestep(&self) -> f64 {
        self.dt
    }

    fn set_timestep(&mut self, dt: f64) {
        self.dt = dt;
    }

    fn steps_done(&self) -> u64 {
        self.steps_done
    }

    fn dead_rank(fault: &RuntimeError) -> Option<usize> {
        match fault {
            RuntimeError::RankDead { rank, .. } => Some(*rank),
            _ => None,
        }
    }

    fn restore_excluding(&mut self, cp: &Checkpoint, exclude: &[usize]) -> Result<(), String> {
        DistributedSim::restore_excluding(self, cp, exclude).map_err(|e| e.to_string())
    }
}
