//! Crash-recovery suite: a scripted `FaultKind::Crash` must be detected
//! behaviourally by the health watchdog (the executor never sees the fault
//! plan's intent), escalated as `RuntimeError::RankDead`, and recovered by
//! the supervisor through online re-decomposition onto the survivors —
//! finishing within the drift guardrail of a fault-free reference. Also
//! covers restoring a distributed checkpoint onto a different rank
//! topology (shrink, reshape, round-trip).

use proptest::prelude::*;
use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox, Vec3};
use sc_md::supervisor::{Recoverable, Supervisor, SupervisorConfig};
use sc_md::{build_fcc_lattice, thermalize, LatticeSpec, Method, SnapshotLayout};
use sc_parallel::rank::ForceField;
use sc_parallel::{DistributedSim, Fault, FaultKind, FaultPlan};
use sc_potential::{LennardJones, Vashishta};

fn lj_ff() -> ForceField {
    ForceField {
        pair: Some(Box::new(LennardJones::reduced(2.5))),
        triplet: None,
        quadruplet: None,
        method: Method::ShiftCollapse,
    }
}

fn lj_system() -> (AtomStore, SimulationBox) {
    build_fcc_lattice(&LatticeSpec::cubic(7, 1.5599), 0.1, 42)
}

/// An 8-rank (2×2×2) LJ sim — big enough that losing one rank still
/// leaves a feasible survivor grid.
fn lj_sim8() -> DistributedSim {
    let (store, bbox) = lj_system();
    DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(), 0.002).unwrap()
}

fn silica_ff() -> ForceField {
    let v = Vashishta::silica();
    ForceField {
        pair: Some(Box::new(v.pair.clone())),
        triplet: Some(Box::new(v.triplet.clone())),
        quadruplet: None,
        method: Method::ShiftCollapse,
    }
}

fn silica_system() -> (AtomStore, SimulationBox) {
    let v = Vashishta::silica();
    let (mut store, bbox) = sc_md::build_silica_like(4, 7.16, v.params().masses, 0.0, 42);
    thermalize(&mut store, 0.05, 42);
    (store, bbox)
}

/// An 8-rank (2×2×2) silica sim (box 28.64 per axis, sub-box 14.32 vs the
/// 5.5 cutoff — survivor grids down to 6 ranks stay feasible).
fn silica_sim8() -> DistributedSim {
    let (store, bbox) = silica_system();
    DistributedSim::new(store, bbox, IVec3::splat(2), silica_ff(), 0.0005).unwrap()
}

fn total_momentum(store: &AtomStore) -> Vec3 {
    let masses = store.species_masses().to_vec();
    let mut p = Vec3::ZERO;
    for i in 0..store.len() {
        p += store.velocities()[i] * masses[store.species()[i].index()];
    }
    p
}

fn assert_bitwise_eq(a: &AtomStore, b: &AtomStore, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom counts differ");
    let bits = |v: Vec3| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()];
    for i in 0..a.len() {
        assert_eq!(a.ids()[i], b.ids()[i], "{what}: id order differs at {i}");
        assert_eq!(
            bits(a.positions()[i]),
            bits(b.positions()[i]),
            "{what}: atom {i} position bits differ"
        );
        assert_eq!(
            bits(a.velocities()[i]),
            bits(b.velocities()[i]),
            "{what}: atom {i} velocity bits differ"
        );
    }
}

/// Positions/velocities match up to periodic wrapping within `tol`.
fn assert_close(bbox: &SimulationBox, a: &AtomStore, b: &AtomStore, tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom counts differ");
    for i in 0..a.len() {
        assert_eq!(a.ids()[i], b.ids()[i], "{what}: id order differs at {i}");
        let dr = bbox.min_image(a.positions()[i], b.positions()[i]).norm();
        let dv = (a.velocities()[i] - b.velocities()[i]).norm();
        assert!(dr < tol, "{what}: atom {i} position differs by {dr}");
        assert!(dv < tol, "{what}: atom {i} velocity differs by {dv}");
    }
}

/// Supervises `sim` for `steps` with a checkpoint cadence tight enough for
/// crash detection (the watchdog needs several rollback replays to accrue
/// enough consecutive failures to declare the rank dead).
fn supervise(sim: &mut DistributedSim, steps: u64) -> sc_md::supervisor::RecoveryStats {
    let mut sup = Supervisor::new(SupervisorConfig {
        checkpoint_every: 2,
        max_rollbacks: 16,
        ..SupervisorConfig::default()
    });
    sup.run(sim, steps).expect("crash must be recovered by re-decomposition");
    sup.stats()
}

/// The acceptance scenario: a rank of an 8-rank silica run crashes
/// mid-trajectory. The watchdog must declare it dead, the supervisor must
/// re-decompose onto the survivors, and the finished run must match a
/// fault-free reference within the drift guardrail.
#[test]
fn silica_crash_is_detected_and_recovered_by_redecomposition() {
    let mut clean = silica_sim8();
    clean.run(8);
    let reference = clean.gather();
    let (_, bbox) = silica_system();

    let mut sim = silica_sim8();
    sim.set_fault_plan(FaultPlan::none().with(Fault {
        step: 3,
        rank: 2,
        channel: None,
        kind: FaultKind::Crash,
    }));
    let stats = supervise(&mut sim, 8);

    assert_eq!(sim.steps_done(), 8);
    assert!(sim.degraded(), "losing a rank must flag the runtime degraded");
    assert_eq!(stats.redecompositions, 1, "exactly one re-decomposition");
    assert_eq!(stats.ranks_lost, 1);
    assert!(stats.rollbacks >= 1, "detection accrues over rollback replays");
    assert!(sim.health().counters().deaths >= 1, "watchdog must record the death");
    let survivors = sim.telemetry().per_rank.len();
    assert!(survivors < 8, "grid must shrink below 8 ranks, got {survivors}");
    assert_eq!(sim.gather().len(), reference.len(), "no atom may be lost");
    assert_close(&bbox, &reference, &sim.gather(), 1e-6, "crash + re-decomposition");
}

/// A crash with only one rank to lose: the survivor grid is 1×1×1 and the
/// run still finishes (the distributed runtime degrades to serial).
#[test]
fn crash_recovers_onto_single_rank_grid() {
    let (store, bbox) = lj_system();
    let mut clean = DistributedSim::new(store, bbox, IVec3::new(2, 1, 1), lj_ff(), 0.002).unwrap();
    clean.run(6);
    let reference = clean.gather();

    let (store, bbox) = lj_system();
    let mut sim = DistributedSim::new(store, bbox, IVec3::new(2, 1, 1), lj_ff(), 0.002).unwrap();
    sim.set_fault_plan(FaultPlan::none().with(Fault {
        step: 2,
        rank: 1,
        channel: None,
        kind: FaultKind::Crash,
    }));
    supervise(&mut sim, 6);
    assert_eq!(sim.steps_done(), 6);
    assert!(sim.degraded());
    assert_eq!(sim.telemetry().per_rank.len(), 1, "one survivor → serial grid");
    assert_close(&bbox, &reference, &sim.gather(), 1e-7, "shrink to 1×1×1");
}

/// Satellite: a distributed checkpoint restores onto arbitrary topologies.
/// Shrinking to 1×1×1, reshaping, and returning to the original grid all
/// preserve the phase-space point bitwise, and stepping the same
/// checkpoint on two different grids yields identical accepted-tuple
/// counters (the paper's decomposition-independence invariant).
#[test]
fn checkpoint_restores_across_topologies_bitwise() {
    let (_, bbox) = lj_system();
    let mut sim = lj_sim8();
    sim.run(3);
    let cp = Recoverable::checkpoint(&sim);
    assert_eq!(cp.layout, SnapshotLayout::Grid { pdims: [2, 2, 2] });
    cp.require_layout(SnapshotLayout::Grid { pdims: [2, 2, 2] }).unwrap();
    assert!(cp.require_layout(SnapshotLayout::Serial).is_err(), "layout provenance must match");
    sim.run(3);
    let uninterrupted = sim.gather();
    let reference_tuples = sim.telemetry().tuples;

    // Shrink → reshape → original; every hop lands on the same point.
    for pdims in [IVec3::new(1, 1, 1), IVec3::new(1, 2, 2), IVec3::splat(2)] {
        sim.restore_onto(&cp, pdims).unwrap();
        assert_eq!(sim.steps_done(), 3);
        assert_bitwise_eq(&cp.to_store(), &sim.gather(), &format!("restore onto {pdims:?}"));
    }
    sim.run(3);
    assert_close(&bbox, &uninterrupted, &sim.gather(), 1e-7, "round-trip continuation");
    let tuples = sim.telemetry().tuples;
    assert_eq!(tuples.pair.accepted, reference_tuples.pair.accepted);
    assert_eq!(tuples.triplet.accepted, reference_tuples.triplet.accepted);
    assert_eq!(tuples.quadruplet.accepted, reference_tuples.quadruplet.accepted);

    // The same checkpoint stepped once on two different grids accepts
    // exactly the same tuples.
    let mut a = lj_sim8();
    let mut b = lj_sim8();
    a.restore_onto(&cp, IVec3::new(1, 1, 1)).unwrap();
    b.restore_onto(&cp, IVec3::new(2, 2, 1)).unwrap();
    a.run(1);
    b.run(1);
    let (ta, tb) = (a.telemetry().tuples, b.telemetry().tuples);
    assert_eq!(ta.pair.accepted, tb.pair.accepted, "pair acceptance is grid-independent");
    assert_eq!(ta.triplet.accepted, tb.triplet.accepted);
    // Rank-internal force summation order differs between grids, so one
    // step is exact physics but not bitwise (ulp-level divergence).
    assert_close(&bbox, &a.gather(), &b.gather(), 1e-10, "one step from the same checkpoint");
}

/// An infeasible survivor grid aborts with diagnostics instead of looping:
/// 2 ranks on a box whose halved sub-box is below the cutoff cannot shrink
/// (1×1×1 is fine) — but a re-decomposition budget of zero must surface
/// `RankLost` immediately.
#[test]
fn exhausted_redecomposition_budget_aborts_with_diagnostics() {
    let mut sim = lj_sim8();
    sim.set_fault_plan(FaultPlan::none().with(Fault {
        step: 2,
        rank: 5,
        channel: None,
        kind: FaultKind::Crash,
    }));
    let mut sup = Supervisor::new(SupervisorConfig {
        checkpoint_every: 2,
        max_rollbacks: 16,
        max_redecompositions: 0,
        ..SupervisorConfig::default()
    });
    let err = sup.run(&mut sim, 6).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("rank 5"), "diagnostics must name the rank: {msg}");
    assert!(msg.contains("budget"), "diagnostics must name the exhausted budget: {msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any (step, rank) crash in an 8-rank LJ run is recovered: the run
    /// finishes on a survivor grid with no atom lost and total momentum
    /// matching the fault-free reference.
    #[test]
    fn random_crash_step_and_rank_recovers(step in 1u64..6, rank in 0usize..8) {
        let mut clean = lj_sim8();
        clean.run(8);
        let reference = clean.gather();

        let mut sim = lj_sim8();
        sim.set_fault_plan(FaultPlan::none().with(Fault {
            step,
            rank,
            channel: None,
            kind: FaultKind::Crash,
        }));
        let stats = supervise(&mut sim, 8);
        prop_assert_eq!(sim.steps_done(), 8);
        prop_assert!(sim.degraded(), "crash at step {} rank {} must degrade", step, rank);
        prop_assert_eq!(stats.ranks_lost, 1);
        let out = sim.gather();
        prop_assert_eq!(out.len(), reference.len(), "atom count not conserved");
        let dp = (total_momentum(&out) - total_momentum(&reference)).norm();
        prop_assert!(dp < 1e-9, "momentum drifted by {} (step {}, rank {})", dp, step, rank);
    }
}
