//! Contracts of the transport schedule's packing modes: per-neighbor
//! aggregation and compute/communication overlap are bitwise-neutral
//! (identical trajectories across every mode combination and executor),
//! their counters reconcile exactly against the per-channel baseline, and
//! the adaptive rebalance loop re-fits the rank grid without perturbing
//! conservation laws.

use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox, Vec3};
use sc_md::{build_clustered_gas, build_fcc_lattice, build_silica_like, LatticeSpec, Method};
use sc_obs::trace::EventKind;
use sc_obs::{v_omega, CommCounters, Tracer};
use sc_parallel::rank::ForceField;
use sc_parallel::{CommConfig, DistributedSim, ThreadedSim};
use sc_potential::{LennardJones, Vashishta};

fn lj_system() -> (AtomStore, SimulationBox) {
    build_fcc_lattice(&LatticeSpec::cubic(7, 1.5599), 0.1, 42)
}

fn lj_ff(method: Method) -> ForceField {
    ForceField {
        pair: Some(Box::new(LennardJones::reduced(2.5))),
        triplet: None,
        quadruplet: None,
        method,
    }
}

fn silica_ff(method: Method) -> ForceField {
    let v = Vashishta::silica();
    ForceField {
        pair: Some(Box::new(v.pair.clone())),
        triplet: Some(Box::new(v.triplet.clone())),
        quadruplet: None,
        method,
    }
}

/// Every aggregation × overlap combination (rebalance off).
fn mode_matrix() -> [CommConfig; 4] {
    let mut out = [CommConfig::default(); 4];
    let mut i = 0;
    for aggregation in [false, true] {
        for overlap in [false, true] {
            out[i] = CommConfig { aggregation, overlap, rebalance_every: 0 };
            i += 1;
        }
    }
    out
}

fn run_bsp(
    system: &(AtomStore, SimulationBox),
    ff: ForceField,
    pdims: IVec3,
    dt: f64,
    steps: usize,
    comm: CommConfig,
) -> (AtomStore, CommCounters) {
    let (store, bbox) = system;
    let mut d = DistributedSim::new(store.clone(), *bbox, pdims, ff, dt).unwrap();
    d.set_comm_config(comm);
    d.run(steps);
    (d.gather(), d.comm_stats())
}

fn assert_bitwise_eq(a: &AtomStore, b: &AtomStore, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom counts differ");
    let bits = |v: Vec3| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()];
    for i in 0..a.len() {
        assert_eq!(a.ids()[i], b.ids()[i], "{what}: id order differs at {i}");
        assert_eq!(
            bits(a.positions()[i]),
            bits(b.positions()[i]),
            "{what}: atom {i} position bits differ"
        );
        assert_eq!(
            bits(a.velocities()[i]),
            bits(b.velocities()[i]),
            "{what}: atom {i} velocity bits differ"
        );
    }
}

#[test]
fn packing_modes_are_bitwise_identical_all_methods() {
    let system = lj_system();
    for method in Method::ALL {
        let (reference, _) = run_bsp(
            &system,
            lj_ff(method),
            IVec3::splat(2),
            0.002,
            4,
            CommConfig { aggregation: false, overlap: false, rebalance_every: 0 },
        );
        for comm in mode_matrix() {
            let (gathered, _) = run_bsp(&system, lj_ff(method), IVec3::splat(2), 0.002, 4, comm);
            assert_bitwise_eq(&reference, &gathered, &format!("{} {comm:?}", method.name()));
        }
    }
}

#[test]
fn packing_modes_are_bitwise_identical_silica() {
    // Triplet forces exercise the force-return path with non-trivial
    // ghost-force payloads; FS exercises the two-sided halo.
    let v = Vashishta::silica();
    let masses = v.params().masses;
    let system = build_silica_like(4, 7.16, masses, 0.01, 7);
    for method in [Method::ShiftCollapse, Method::FullShell] {
        let (reference, _) = run_bsp(
            &system,
            silica_ff(method),
            IVec3::new(2, 2, 1),
            0.0005,
            3,
            CommConfig { aggregation: false, overlap: false, rebalance_every: 0 },
        );
        for comm in mode_matrix() {
            let (gathered, _) =
                run_bsp(&system, silica_ff(method), IVec3::new(2, 2, 1), 0.0005, 3, comm);
            assert_bitwise_eq(&reference, &gathered, &format!("silica {} {comm:?}", method.name()));
        }
    }
}

/// The counter-equality regression for the aggregation bugfix: framed
/// batch bytes are counted once (section payload bytes, no double count
/// and no framing inflation), so byte/ghost/migration totals reconcile
/// exactly with the per-channel baseline and only the message count drops.
#[test]
fn aggregated_counters_reconcile_with_per_channel_baseline() {
    for method in [Method::ShiftCollapse, Method::FullShell] {
        let run = |aggregation: bool| {
            run_bsp(
                &lj_system(),
                lj_ff(method),
                IVec3::splat(2),
                0.002,
                2,
                CommConfig { aggregation, overlap: false, rebalance_every: 0 },
            )
            .1
        };
        let batched = run(true);
        let per_channel = run(false);
        let what = method.name();
        assert_eq!(batched.bytes, per_channel.bytes, "{what}: wire volume must not change");
        assert_eq!(batched.ghosts_imported, per_channel.ghosts_imported, "{what}");
        assert_eq!(batched.atoms_migrated, per_channel.atoms_migrated, "{what}");
        assert!(
            batched.messages < per_channel.messages,
            "{what}: batching must reduce message count ({} vs {})",
            batched.messages,
            per_channel.messages,
        );
        // On a 2×2×2 grid every rank has exactly one distinct neighbor per
        // axis, so the batched schedule sends one frame per neighbor per
        // phase: 9 phases per step (3 migrate + 3 ghost + 3 force) plus the
        // 6-phase priming exchange at step 0. The per-channel baseline
        // sends one message per channel: SC 12/step, FS 18/step.
        let ranks = 8u64;
        let steps = 2u64;
        assert_eq!(batched.messages, ranks * (9 * steps + 6), "{what}: one frame per neighbor");
        let per_channel_step = match method {
            Method::FullShell => 18,
            _ => 12,
        };
        let prime = per_channel_step - 6; // ghost + force phases only
        assert_eq!(per_channel.messages, ranks * (per_channel_step * steps + prime), "{what}");
    }
}

#[test]
fn threaded_executor_matches_bsp_across_modes() {
    let (store, bbox) = lj_system();
    for comm in mode_matrix() {
        let (reference, bsp_stats) = run_bsp(
            &(store.clone(), bbox),
            lj_ff(Method::ShiftCollapse),
            IVec3::new(2, 1, 1),
            0.002,
            3,
            comm,
        );
        let mut t = ThreadedSim::new(
            store.clone(),
            bbox,
            IVec3::new(2, 1, 1),
            lj_ff(Method::ShiftCollapse),
            0.002,
        )
        .unwrap();
        t.set_comm_config(comm);
        t.run_steps(3);
        let stats = t.comm_stats();
        assert_bitwise_eq(&reference, &t.gather(), &format!("threaded {comm:?}"));
        // Same schedule ⇒ same counters, not just same physics.
        assert_eq!(stats.messages, bsp_stats.messages, "{comm:?}");
        assert_eq!(stats.bytes, bsp_stats.bytes, "{comm:?}");
        assert_eq!(stats.ghosts_imported, bsp_stats.ghosts_imported, "{comm:?}");
    }
}

#[test]
fn rebalance_refits_the_grid_on_clustered_load() {
    let system = build_clustered_gas(3000, 24.0, 2, 2.0, 9);
    let (store, bbox) = &system;
    let mut d = DistributedSim::new(
        store.clone(),
        *bbox,
        IVec3::new(2, 2, 2),
        lj_ff(Method::ShiftCollapse),
        0.002,
    )
    .unwrap();
    let tracer = Tracer::new();
    d.set_tracer(tracer.clone());
    d.set_comm_config(CommConfig { rebalance_every: 2, ..CommConfig::default() });
    d.run(6);
    assert_eq!(d.gather().len(), store.len(), "rebalance must conserve atoms");
    let redecompositions = tracer
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Redecompose { lost: false, .. }))
        .count();
    assert!(redecompositions >= 1, "the cadence must trigger at least one re-fit");
    let cuts = d.grid().cuts().expect("a rebalanced grid carries explicit cuts");
    let uneven = cuts.iter().flat_map(|axis| axis.iter()).any(|&w| {
        // with_splits normalizes to fractional widths; a clustered gas
        // cannot stay perfectly uniform.
        (w - 0.5).abs() > 1e-9
    });
    assert!(uneven, "clustered density must move at least one cut: {cuts:?}");
    // Counters survive the re-decomposition monotonically (the carried
    // fold): a fresh 2-step run can't have more traffic than 6 steps with
    // re-fits in between.
    let stats = d.comm_stats();
    assert!(stats.messages > 0 && stats.bytes > 0);
    assert!(d.telemetry().comm.messages == stats.messages);
}

#[test]
fn imbalance_report_cross_checks_measured_imports_against_eq33() {
    // Eq. 33: Vω = (l + n − 1)³ − l³ cells of import volume per rank. The
    // measured ghost count divided by the mean atoms-per-cell density must
    // land within a small factor of the prediction (boundary effects and
    // the non-cubic sub-box make it inexact, but the order must match).
    let system = lj_system();
    let (store, bbox) = &system;
    let mut d = DistributedSim::new(
        store.clone(),
        *bbox,
        IVec3::splat(2),
        lj_ff(Method::ShiftCollapse),
        0.002,
    )
    .unwrap();
    d.run(2);
    let report = d.imbalance_report();
    let predicted_cells =
        report.predicted_import_cells.expect("the BSP executor knows its sub-box geometry");
    // Per-axis cells per rank: sub-box edge / cutoff.
    let l = (bbox.lengths().x / 2.0 / 2.5).floor();
    assert_eq!(predicted_cells, v_omega(l, 2), "pair interactions predict n = 2");
    let atoms_per_cell = store.len() as f64 / 8.0 / l.powi(3);
    let predicted_ghosts = predicted_cells * atoms_per_cell;
    // Ghosts per rank per exchange: 2 steps + priming = 3 exchanges.
    let per_exchange =
        report.per_rank.iter().map(|r| r.ghosts_imported).sum::<u64>() as f64 / 8.0 / 3.0;
    let ratio = per_exchange / predicted_ghosts;
    assert!(
        (0.25..4.0).contains(&ratio),
        "measured {per_exchange:.0} ghosts/exchange vs Eq. 33 prediction {predicted_ghosts:.0} \
         (ratio {ratio:.2})"
    );
}
