//! Fault-injection suite: scripted transport failures against the BSP
//! executor, asserting that validation + bounded retry recover every
//! single-fault scenario in-step (bitwise), and that escalated faults roll
//! back through the supervisor and still converge to the fault-free state.

use proptest::prelude::*;
use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox, Vec3};
use sc_md::supervisor::{Recoverable, Supervisor, SupervisorConfig};
use sc_md::{build_fcc_lattice, LatticeSpec, Method};
use sc_parallel::rank::ForceField;
use sc_parallel::{DistributedSim, Fault, FaultKind, FaultPlan};
use sc_potential::LennardJones;

fn lj_system() -> (AtomStore, SimulationBox) {
    build_fcc_lattice(&LatticeSpec::cubic(7, 1.5599), 0.1, 42)
}

fn lj_ff() -> ForceField {
    ForceField {
        pair: Some(Box::new(LennardJones::reduced(2.5))),
        triplet: None,
        quadruplet: None,
        method: Method::ShiftCollapse,
    }
}

fn mk_sim() -> DistributedSim {
    let (store, bbox) = lj_system();
    DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(), 0.002).unwrap()
}

fn total_momentum(store: &AtomStore) -> Vec3 {
    let masses = store.species_masses().to_vec();
    let mut p = Vec3::ZERO;
    for i in 0..store.len() {
        p += store.velocities()[i] * masses[store.species()[i].index()];
    }
    p
}

fn assert_bitwise_eq(a: &AtomStore, b: &AtomStore, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom counts differ");
    let bits = |v: Vec3| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()];
    for i in 0..a.len() {
        assert_eq!(a.ids()[i], b.ids()[i], "{what}: id order differs at {i}");
        assert_eq!(
            bits(a.positions()[i]),
            bits(b.positions()[i]),
            "{what}: atom {i} position bits differ"
        );
        assert_eq!(
            bits(a.velocities()[i]),
            bits(b.velocities()[i]),
            "{what}: atom {i} velocity bits differ"
        );
    }
}

/// Positions/velocities match up to periodic wrapping within `tol`.
fn assert_close(bbox: &SimulationBox, a: &AtomStore, b: &AtomStore, tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom counts differ");
    for i in 0..a.len() {
        assert_eq!(a.ids()[i], b.ids()[i], "{what}: id order differs at {i}");
        let dr = bbox.min_image(a.positions()[i], b.positions()[i]).norm();
        let dv = (a.velocities()[i] - b.velocities()[i]).norm();
        assert!(dr < tol, "{what}: atom {i} position differs by {dr}");
        assert!(dv < tol, "{what}: atom {i} velocity differs by {dv}");
    }
}

#[test]
fn empty_fault_plan_is_bitwise_transparent() {
    let mut clean = mk_sim();
    let mut instrumented = mk_sim();
    instrumented.set_fault_plan(FaultPlan::none());
    clean.run(6);
    instrumented.run(6);
    assert_bitwise_eq(&clean.gather(), &instrumented.gather(), "FaultPlan::none()");
    assert_eq!(instrumented.comm_stats().retries, 0);
    assert_eq!(instrumented.comm_stats().faults_detected, 0);
}

/// Every single-fault class the plan can script is absorbed by the
/// per-delivery retry protocol without touching the trajectory: the final
/// state is bitwise identical to the fault-free run.
#[test]
fn single_faults_recover_in_step_bitwise() {
    let mut clean = mk_sim();
    clean.run(6);
    let reference = clean.gather();
    let kinds = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Corrupt { header: false },
        FaultKind::Corrupt { header: true },
        FaultKind::Stall { attempts: 1 },
        FaultKind::Stall { attempts: 2 },
    ];
    for kind in kinds {
        let mut sim = mk_sim();
        sim.set_fault_plan(FaultPlan::none().with(Fault { step: 2, rank: 1, channel: None, kind }));
        for _ in 0..6 {
            sim.try_step().unwrap_or_else(|e| panic!("{kind:?}: unrecovered fault {e}"));
        }
        let what = format!("{kind:?}");
        assert!(!sim.fault_plan().events().is_empty(), "{what}: fault never fired");
        assert!(sim.fault_plan().is_exhausted(), "{what}: fault still pending");
        let stats = sim.comm_stats();
        assert!(stats.retries > 0, "{what}: recovery must go through the retry path");
        assert!(stats.faults_detected > 0, "{what}: loss/corruption must be detected");
        assert_bitwise_eq(&reference, &sim.gather(), &what);
    }
}

/// A stall deeper than the retry budget escalates out of `try_step`; the
/// supervisor rolls back to the last checkpoint and replays until the
/// stalled rank's attempts are exhausted, converging to the fault-free
/// trajectory.
#[test]
fn escalated_stall_rolls_back_and_converges() {
    let mut clean = mk_sim();
    clean.run(6);
    let (_, bbox) = lj_system();

    let mut sim = mk_sim();
    sim.set_fault_plan(FaultPlan::none().with(Fault {
        step: 3,
        rank: 2,
        channel: None,
        kind: FaultKind::Stall { attempts: 12 },
    }));
    let mut sup = Supervisor::new(SupervisorConfig {
        checkpoint_every: 2,
        max_rollbacks: 16,
        ..SupervisorConfig::default()
    });
    sup.run(&mut sim, 6).expect("supervision must outlast the stall");
    assert_eq!(sim.steps_done(), 6);
    assert!(sup.stats().rollbacks >= 1, "a 12-attempt stall must force at least one rollback");
    assert_eq!(sup.stats().comm_faults, sup.stats().rollbacks);
    assert!(sim.fault_plan().is_exhausted(), "replay must drain the stall");
    // Restore re-decomposes from an id-sorted gather, so continuation is
    // exact physics but rank-internal summation order may change: compare
    // with a tolerance, not bitwise.
    assert_close(&bbox, &clean.gather(), &sim.gather(), 1e-7, "stall + rollback");
}

/// Checkpoint/restore alone (no faults) continues the distributed
/// trajectory from the captured phase-space point.
#[test]
fn distributed_checkpoint_restore_continues_trajectory() {
    let (_, bbox) = lj_system();
    let mut sim = mk_sim();
    sim.run(3);
    let cp = Recoverable::checkpoint(&sim);
    assert_eq!(cp.step, 3);
    sim.run(3);
    let uninterrupted = sim.gather();

    sim.restore(&cp);
    assert_eq!(sim.steps_done(), 3);
    sim.run(3);
    assert_close(&bbox, &uninterrupted, &sim.gather(), 1e-7, "restore continuation");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under any seed-derived single-fault scenario, supervised recovery
    /// preserves the invariants the paper's runtime relies on: no atom is
    /// lost and total momentum matches the fault-free run.
    #[test]
    fn random_single_fault_conserves_atoms_and_momentum(seed in 0u64..10_000) {
        let mut clean = mk_sim();
        clean.run(6);
        let reference = clean.gather();

        let mut sim = mk_sim();
        sim.set_fault_plan(FaultPlan::random(seed, 1, 6, 8));
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint_every: 2,
            max_rollbacks: 16,
            ..SupervisorConfig::default()
        });
        sup.run(&mut sim, 6).expect("single faults must always be recoverable");
        let out = sim.gather();
        prop_assert_eq!(out.len(), reference.len(), "atom count not conserved");
        let dp = (total_momentum(&out) - total_momentum(&reference)).norm();
        prop_assert!(dp < 1e-9, "momentum drifted by {} under seed {}", dp, seed);
    }
}
