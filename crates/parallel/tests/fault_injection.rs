//! Fault-injection suite: scripted transport failures against the BSP
//! executor, asserting that validation + bounded retry recover every
//! single-fault scenario in-step (bitwise), and that escalated faults roll
//! back through the supervisor and still converge to the fault-free state.

use proptest::prelude::*;
use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox, Vec3};
use sc_md::supervisor::{Recoverable, Supervisor, SupervisorConfig};
use sc_md::{build_fcc_lattice, LatticeSpec, Method};
use sc_parallel::rank::ForceField;
use sc_parallel::{CommConfig, DistributedSim, Fault, FaultKind, FaultPlan};
use sc_potential::LennardJones;

fn lj_system() -> (AtomStore, SimulationBox) {
    build_fcc_lattice(&LatticeSpec::cubic(7, 1.5599), 0.1, 42)
}

fn lj_ff() -> ForceField {
    ForceField {
        pair: Some(Box::new(LennardJones::reduced(2.5))),
        triplet: None,
        quadruplet: None,
        method: Method::ShiftCollapse,
    }
}

fn mk_sim() -> DistributedSim {
    let (store, bbox) = lj_system();
    DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(), 0.002).unwrap()
}

fn total_momentum(store: &AtomStore) -> Vec3 {
    let masses = store.species_masses().to_vec();
    let mut p = Vec3::ZERO;
    for i in 0..store.len() {
        p += store.velocities()[i] * masses[store.species()[i].index()];
    }
    p
}

fn assert_bitwise_eq(a: &AtomStore, b: &AtomStore, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom counts differ");
    let bits = |v: Vec3| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()];
    for i in 0..a.len() {
        assert_eq!(a.ids()[i], b.ids()[i], "{what}: id order differs at {i}");
        assert_eq!(
            bits(a.positions()[i]),
            bits(b.positions()[i]),
            "{what}: atom {i} position bits differ"
        );
        assert_eq!(
            bits(a.velocities()[i]),
            bits(b.velocities()[i]),
            "{what}: atom {i} velocity bits differ"
        );
    }
}

/// Positions/velocities match up to periodic wrapping within `tol`.
fn assert_close(bbox: &SimulationBox, a: &AtomStore, b: &AtomStore, tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom counts differ");
    for i in 0..a.len() {
        assert_eq!(a.ids()[i], b.ids()[i], "{what}: id order differs at {i}");
        let dr = bbox.min_image(a.positions()[i], b.positions()[i]).norm();
        let dv = (a.velocities()[i] - b.velocities()[i]).norm();
        assert!(dr < tol, "{what}: atom {i} position differs by {dr}");
        assert!(dv < tol, "{what}: atom {i} velocity differs by {dv}");
    }
}

#[test]
fn empty_fault_plan_is_bitwise_transparent() {
    let mut clean = mk_sim();
    let mut instrumented = mk_sim();
    instrumented.set_fault_plan(FaultPlan::none());
    clean.run(6);
    instrumented.run(6);
    assert_bitwise_eq(&clean.gather(), &instrumented.gather(), "FaultPlan::none()");
    assert_eq!(instrumented.comm_stats().retries, 0);
    assert_eq!(instrumented.comm_stats().faults_detected, 0);
}

/// Every single-fault class the plan can script is absorbed by the
/// per-delivery retry protocol without touching the trajectory: the final
/// state is bitwise identical to the fault-free run.
#[test]
fn single_faults_recover_in_step_bitwise() {
    let mut clean = mk_sim();
    clean.run(6);
    let reference = clean.gather();
    let kinds = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Corrupt { header: false },
        FaultKind::Corrupt { header: true },
        FaultKind::Stall { attempts: 1 },
        FaultKind::Stall { attempts: 2 },
    ];
    for kind in kinds {
        let mut sim = mk_sim();
        sim.set_fault_plan(FaultPlan::none().with(Fault { step: 2, rank: 1, channel: None, kind }));
        for _ in 0..6 {
            sim.try_step().unwrap_or_else(|e| panic!("{kind:?}: unrecovered fault {e}"));
        }
        let what = format!("{kind:?}");
        assert!(!sim.fault_plan().events().is_empty(), "{what}: fault never fired");
        assert!(sim.fault_plan().is_exhausted(), "{what}: fault still pending");
        let stats = sim.comm_stats();
        assert!(stats.retries > 0, "{what}: recovery must go through the retry path");
        assert!(stats.faults_detected > 0, "{what}: loss/corruption must be detected");
        assert_bitwise_eq(&reference, &sim.gather(), &what);
    }
}

/// A stall deeper than the retry budget escalates out of `try_step`; the
/// supervisor rolls back to the last checkpoint and replays until the
/// stalled rank's attempts are exhausted, converging to the fault-free
/// trajectory.
#[test]
fn escalated_stall_rolls_back_and_converges() {
    let mut clean = mk_sim();
    clean.run(6);
    let (_, bbox) = lj_system();

    let mut sim = mk_sim();
    sim.set_fault_plan(FaultPlan::none().with(Fault {
        step: 3,
        rank: 2,
        channel: None,
        kind: FaultKind::Stall { attempts: 12 },
    }));
    let mut sup = Supervisor::new(SupervisorConfig {
        checkpoint_every: 2,
        max_rollbacks: 16,
        ..SupervisorConfig::default()
    });
    sup.run(&mut sim, 6).expect("supervision must outlast the stall");
    assert_eq!(sim.steps_done(), 6);
    assert!(sup.stats().rollbacks >= 1, "a 12-attempt stall must force at least one rollback");
    assert_eq!(sup.stats().comm_faults, sup.stats().rollbacks);
    assert!(sim.fault_plan().is_exhausted(), "replay must drain the stall");
    // Restore re-decomposes from an id-sorted gather, so continuation is
    // exact physics but rank-internal summation order may change: compare
    // with a tolerance, not bitwise.
    assert_close(&bbox, &clean.gather(), &sim.gather(), 1e-7, "stall + rollback");
}

/// Checkpoint/restore alone (no faults) continues the distributed
/// trajectory from the captured phase-space point.
#[test]
fn distributed_checkpoint_restore_continues_trajectory() {
    let (_, bbox) = lj_system();
    let mut sim = mk_sim();
    sim.run(3);
    let cp = Recoverable::checkpoint(&sim);
    assert_eq!(cp.step, 3);
    sim.run(3);
    let uninterrupted = sim.gather();

    sim.restore(&cp);
    assert_eq!(sim.steps_done(), 3);
    sim.run(3);
    assert_close(&bbox, &uninterrupted, &sim.gather(), 1e-7, "restore continuation");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under any seed-derived single-fault scenario, supervised recovery
    /// preserves the invariants the paper's runtime relies on: no atom is
    /// lost and total momentum matches the fault-free run.
    #[test]
    fn random_single_fault_conserves_atoms_and_momentum(seed in 0u64..10_000) {
        let mut clean = mk_sim();
        clean.run(6);
        let reference = clean.gather();

        let mut sim = mk_sim();
        sim.set_fault_plan(FaultPlan::random(seed, 1, 6, 8));
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint_every: 2,
            max_rollbacks: 16,
            ..SupervisorConfig::default()
        });
        sup.run(&mut sim, 6).expect("single faults must always be recoverable");
        let out = sim.gather();
        prop_assert_eq!(out.len(), reference.len(), "atom count not conserved");
        let dp = (total_momentum(&out) - total_momentum(&reference)).norm();
        prop_assert!(dp < 1e-9, "momentum drifted by {} under seed {}", dp, seed);
    }

    /// Random fault scripts against *batched* frames: with per-neighbor
    /// aggregation (and any overlap setting) every in-budget fault script
    /// must be absorbed by the per-delivery retry path — per-section
    /// checksums localize corruption inside a batch — leaving the final
    /// state bitwise identical to a fault-free run of the same mode.
    /// Faults land on distinct steps so no single delivery sees more than
    /// one fault (stacked stalls can legitimately exceed the retry budget
    /// and escalate; that path is the supervisor tests' job).
    #[test]
    fn random_fault_scripts_on_batched_frames_recover_bitwise(
        seed in 0u64..10_000,
        nfaults in 1usize..=3,
    ) {
        let comm = CommConfig { aggregation: true, overlap: seed % 2 == 1, rebalance_every: 0 };
        let mut clean = mk_sim();
        clean.set_comm_config(comm);
        clean.run(6);

        let kinds = [
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Corrupt { header: false },
            FaultKind::Corrupt { header: true },
            FaultKind::Stall { attempts: 1 },
            FaultKind::Stall { attempts: 2 },
        ];
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut plan = FaultPlan::none();
        for i in 0..nfaults {
            plan = plan.with(Fault {
                step: i as u64 * 2, // distinct steps: one fault per delivery window
                rank: (next() % 8) as usize,
                channel: None,
                kind: kinds[(next() % kinds.len() as u64) as usize],
            });
        }
        let mut sim = mk_sim();
        sim.set_comm_config(comm);
        sim.set_fault_plan(plan);
        for step in 0..6 {
            let r = sim.try_step();
            prop_assert!(r.is_ok(), "seed {}: unrecovered fault at step {}: {:?}", seed, step, r);
        }
        let stats = sim.comm_stats();
        let fired = !sim.fault_plan().events().is_empty();
        prop_assert!(fired, "seed {}: scripted faults never fired", seed);
        prop_assert!(
            stats.retries > 0 || stats.faults_detected > 0,
            "seed {}: recovery left no trace in the counters", seed
        );
        let (a, b) = (clean.gather(), sim.gather());
        prop_assert_eq!(a.len(), b.len(), "atom count not conserved");
        for i in 0..a.len() {
            prop_assert_eq!(a.ids()[i], b.ids()[i], "id order differs at {}", i);
            let p_eq = a.positions()[i].x.to_bits() == b.positions()[i].x.to_bits()
                && a.positions()[i].y.to_bits() == b.positions()[i].y.to_bits()
                && a.positions()[i].z.to_bits() == b.positions()[i].z.to_bits();
            let v_eq = a.velocities()[i].x.to_bits() == b.velocities()[i].x.to_bits()
                && a.velocities()[i].y.to_bits() == b.velocities()[i].y.to_bits()
                && a.velocities()[i].z.to_bits() == b.velocities()[i].z.to_bits();
            prop_assert!(p_eq && v_eq, "seed {}: atom {} state bits differ", seed, i);
        }
    }
}
