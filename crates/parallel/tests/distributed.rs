//! Distributed-vs-serial equivalence: the correctness contract of the
//! parallel runtime. Whatever the rank count, method, or executor, the
//! physics must match the serial engine.

use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox, Vec3};
use sc_md::{build_fcc_lattice, build_silica_like, LatticeSpec, Method, Simulation};
use sc_parallel::rank::ForceField;
use sc_parallel::{DistributedSim, ThreadedSim};
use sc_potential::{LennardJones, TorsionToy, Vashishta};

fn lj_system() -> (AtomStore, SimulationBox) {
    build_fcc_lattice(&LatticeSpec::cubic(7, 1.5599), 0.1, 42)
}

fn lj_ff(method: Method) -> ForceField {
    ForceField {
        pair: Some(Box::new(LennardJones::reduced(2.5))),
        triplet: None,
        quadruplet: None,
        method,
    }
}

fn serial_lj(method: Method) -> Simulation {
    let (store, bbox) = lj_system();
    Simulation::builder(store, bbox)
        .pair_potential(Box::new(LennardJones::reduced(2.5)))
        .method(method)
        .timestep(0.002)
        .build()
        .unwrap()
}

/// Compares per-atom positions/velocities of a gathered store against a
/// serial store (both sorted by id), up to periodic wrapping.
fn assert_stores_match(bbox: &SimulationBox, a: &AtomStore, b: &AtomStore, tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom counts differ");
    for i in 0..a.len() {
        assert_eq!(a.ids()[i], b.ids()[i], "{what}: id order differs at {i}");
        let dr = bbox.min_image(a.positions()[i], b.positions()[i]).norm();
        let dv = (a.velocities()[i] - b.velocities()[i]).norm();
        assert!(dr < tol, "{what}: atom {i} position differs by {dr}");
        assert!(dv < tol, "{what}: atom {i} velocity differs by {dv}");
    }
}

fn serial_snapshot(sim: &Simulation) -> AtomStore {
    // The serial engine re-sorts atoms into Morton order as it runs, so the
    // snapshot must be brought back to id order to line up with gather().
    let mut store = sim.store().clone();
    store.sort_by_id();
    store
}

#[test]
fn single_rank_matches_serial_lj() {
    let (store, bbox) = lj_system();
    let mut dist =
        DistributedSim::new(store, bbox, IVec3::splat(1), lj_ff(Method::ShiftCollapse), 0.002)
            .unwrap();
    let mut serial = serial_lj(Method::ShiftCollapse);
    let e_d = dist.total_energy();
    let e_s = serial.total_energy();
    assert!((e_d - e_s).abs() < 1e-9 * e_s.abs(), "single-rank energy {e_d} vs serial {e_s}");
    dist.run(5);
    serial.run(5);
    assert_stores_match(&bbox, &dist.gather(), &serial_snapshot(&serial), 1e-8, "1-rank LJ");
}

#[test]
fn eight_ranks_match_serial_all_methods() {
    for method in Method::ALL {
        let (store, bbox) = lj_system();
        let mut dist =
            DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(method), 0.002).unwrap();
        let mut serial = serial_lj(method);
        let e_d = dist.total_energy();
        let e_s = serial.total_energy();
        assert!(
            (e_d - e_s).abs() < 1e-9 * e_s.abs(),
            "{}: energy {e_d} vs serial {e_s}",
            method.name()
        );
        dist.run(5);
        serial.run(5);
        assert_stores_match(&bbox, &dist.gather(), &serial_snapshot(&serial), 1e-7, method.name());
    }
}

#[test]
fn anisotropic_rank_grid_matches_serial() {
    let (store, bbox) = lj_system();
    let mut dist =
        DistributedSim::new(store, bbox, IVec3::new(2, 1, 2), lj_ff(Method::ShiftCollapse), 0.002)
            .unwrap();
    let mut serial = serial_lj(Method::ShiftCollapse);
    dist.run(4);
    serial.run(4);
    assert_stores_match(&bbox, &dist.gather(), &serial_snapshot(&serial), 1e-7, "2x1x2");
}

#[test]
fn silica_distributed_matches_serial() {
    let v = Vashishta::silica();
    let masses = v.params().masses;
    for method in Method::ALL {
        let (store, bbox) = build_silica_like(4, 7.16, masses, 0.01, 7);
        let ff = ForceField {
            pair: Some(Box::new(v.pair.clone())),
            triplet: Some(Box::new(v.triplet.clone())),
            quadruplet: None,
            method,
        };
        let mut dist =
            DistributedSim::new(store.clone(), bbox, IVec3::splat(2), ff, 0.0005).unwrap();
        let mut serial = Simulation::builder(store, bbox)
            .pair_potential(Box::new(v.pair.clone()))
            .triplet_potential(Box::new(v.triplet.clone()))
            .method(method)
            .timestep(0.0005)
            .build()
            .unwrap();
        let e_d = dist.total_energy();
        let e_s = serial.total_energy();
        assert!(
            (e_d - e_s).abs() < 1e-8 * e_s.abs().max(1.0),
            "{}: silica energy {e_d} vs serial {e_s}",
            method.name()
        );
        // Triplet work is real.
        assert!(dist.tuple_counts().triplet.accepted > 0);
        dist.run(3);
        serial.run(3);
        assert_stores_match(
            &bbox,
            &dist.gather(),
            &serial_snapshot(&serial),
            1e-6,
            &format!("silica {}", method.name()),
        );
    }
}

#[test]
fn quadruplet_distributed_matches_serial() {
    let torsion = TorsionToy::new(0.05, 1.0, 0.3);
    for method in Method::ALL {
        let (store, bbox) = build_fcc_lattice(&LatticeSpec::cubic(6, 1.2), 0.02, 13);
        let ff = ForceField {
            pair: Some(Box::new(LennardJones::reduced(1.2))),
            triplet: None,
            quadruplet: Some(Box::new(torsion)),
            method,
        };
        let mut dist =
            DistributedSim::new(store.clone(), bbox, IVec3::splat(2), ff, 0.001).unwrap();
        let mut serial = Simulation::builder(store, bbox)
            .pair_potential(Box::new(LennardJones::reduced(1.2)))
            .quadruplet_potential(Box::new(torsion))
            .method(method)
            .timestep(0.001)
            .build()
            .unwrap();
        let e_d = dist.total_energy();
        let serial_stats = serial.compute_forces();
        let e_s = serial_stats.energy.total() + serial.store().kinetic_energy();
        assert!(
            (e_d - e_s).abs() < 1e-8 * e_s.abs().max(1.0),
            "{}: quad energy {e_d} vs serial {e_s}",
            method.name()
        );
        assert!(dist.tuple_counts().quadruplet.accepted > 0, "{}", method.name());
        assert_eq!(
            dist.tuple_counts().quadruplet.accepted,
            serial_stats.tuples.quadruplet.accepted,
            "{}: distributed and serial find different quad counts",
            method.name()
        );
    }
}

#[test]
fn threaded_executor_handles_silica_full_shell() {
    // The threaded path with the two-sided (6-hop) plan and a many-body
    // force field — the most message-intensive configuration.
    let v = Vashishta::silica();
    let masses = v.params().masses;
    let (store, bbox) = build_silica_like(4, 7.16, masses, 0.01, 5);
    let mk_ff = || ForceField {
        pair: Some(Box::new(v.pair.clone())),
        triplet: Some(Box::new(v.triplet.clone())),
        quadruplet: None,
        method: Method::FullShell,
    };
    let mut bsp =
        DistributedSim::new(store.clone(), bbox, IVec3::new(2, 2, 2), mk_ff(), 0.0005).unwrap();
    bsp.run(3);
    let (gathered, energy, _) =
        ThreadedSim::run(store, bbox, IVec3::new(2, 2, 2), mk_ff(), 0.0005, 3).unwrap();
    assert_stores_match(&bbox, &gathered, &bsp.gather(), 1e-9, "threaded silica FS");
    assert!(
        (energy.total() - bsp.energy_breakdown().total()).abs()
            < 1e-9 * energy.total().abs().max(1.0)
    );
}

#[test]
fn threaded_executor_matches_bsp() {
    let (store, bbox) = lj_system();
    let mut bsp = DistributedSim::new(
        store.clone(),
        bbox,
        IVec3::splat(2),
        lj_ff(Method::ShiftCollapse),
        0.002,
    )
    .unwrap();
    bsp.run(5);
    let (gathered, energy, stats) =
        ThreadedSim::run(store, bbox, IVec3::splat(2), lj_ff(Method::ShiftCollapse), 0.002, 5)
            .unwrap();
    assert_stores_match(&bbox, &gathered, &bsp.gather(), 1e-9, "threaded vs BSP");
    assert!(
        (energy.total() - bsp.energy_breakdown().total()).abs()
            < 1e-9 * energy.total().abs().max(1.0)
    );
    assert!(stats.messages > 0 && stats.bytes > 0);
}

#[test]
fn sc_imports_less_than_fs() {
    // The import-volume advantage (Eq. 33 vs the two-sided FS halo),
    // observed as actual ghost traffic.
    let run = |method: Method| {
        let (store, bbox) = lj_system();
        let mut d =
            DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(method), 0.002).unwrap();
        d.run(2);
        d.comm_stats()
    };
    let sc = run(Method::ShiftCollapse);
    let fs = run(Method::FullShell);
    assert!(
        sc.ghosts_imported < fs.ghosts_imported,
        "SC imported {} ghosts, FS {}",
        sc.ghosts_imported,
        fs.ghosts_imported
    );
    // With per-neighbor aggregation both methods send one frame per
    // neighbor per phase, so message counts match — the savings show up
    // as wire volume (SC's one-sided halo vs FS's two-sided shell).
    assert!(sc.bytes < fs.bytes, "SC sent {} bytes, FS {}", sc.bytes, fs.bytes);
}

#[test]
fn sc_rank_talks_only_to_face_neighbors() {
    let (store, bbox) = lj_system();
    let mut d =
        DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(Method::ShiftCollapse), 0.002)
            .unwrap();
    d.run(2);
    // Forwarded routing: every rank's direct partners are face neighbours
    // only (≤ 6 distinct ranks), even though 7 neighbours' data arrives.
    for (r, stats) in d.rank_stats().iter().enumerate() {
        assert!(stats.partners.len() <= 6, "rank {r} has {} direct partners", stats.partners.len());
    }
}

#[test]
fn atom_count_conserved_under_migration() {
    // Hot gas: lots of migration.
    let (mut store, bbox) = lj_system();
    for v in store.velocities_mut() {
        *v = *v * 20.0 + Vec3::new(5.0, -3.0, 2.0);
    }
    let n0 = store.len();
    let mut d =
        DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(Method::ShiftCollapse), 0.001)
            .unwrap();
    d.run(10);
    let g = d.gather();
    assert_eq!(g.len(), n0);
    let stats = d.comm_stats();
    assert!(stats.atoms_migrated > 0, "hot gas should migrate atoms");
    // Gathered ids are exactly 0..n0.
    for (i, &id) in g.ids().iter().enumerate() {
        assert_eq!(id, i as u64);
    }
}

#[test]
fn distributed_nve_conserves_energy() {
    let (store, bbox) = lj_system();
    let mut d =
        DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(Method::ShiftCollapse), 0.002)
            .unwrap();
    let e0 = d.total_energy();
    d.run(30);
    let e1 = d.total_energy();
    assert!(((e1 - e0) / e0.abs()).abs() < 1e-3, "distributed NVE drift: {e0} → {e1}");
}

#[test]
fn subdivided_distributed_matches_serial() {
    // §6 extension under the distributed runtime: reach-2 patterns on
    // half-size rank-local cells, same physics.
    let v = Vashishta::silica();
    let masses = v.params().masses;
    let (store, bbox) = build_silica_like(4, 7.16, masses, 0.01, 5);
    let ff = ForceField {
        pair: Some(Box::new(v.pair.clone())),
        triplet: Some(Box::new(v.triplet.clone())),
        quadruplet: None,
        method: Method::ShiftCollapse,
    };
    let mut dist =
        DistributedSim::new_subdivided(store.clone(), bbox, IVec3::splat(2), ff, 0.0005, 2)
            .unwrap();
    let mut serial = Simulation::builder(store, bbox)
        .pair_potential(Box::new(v.pair.clone()))
        .triplet_potential(Box::new(v.triplet.clone()))
        .method(Method::ShiftCollapse)
        .timestep(0.0005)
        .build()
        .unwrap();
    let e_d = dist.total_energy();
    let e_s = serial.total_energy();
    assert!(
        (e_d - e_s).abs() < 1e-8 * e_s.abs().max(1.0),
        "subdivided distributed energy {e_d} vs serial {e_s}"
    );
    dist.run(3);
    serial.run(3);
    assert_stores_match(&bbox, &dist.gather(), &serial_snapshot(&serial), 1e-6, "subdivided");
}

#[test]
fn timings_and_load_are_reported() {
    let (store, bbox) = lj_system();
    let mut d =
        DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(Method::ShiftCollapse), 0.002)
            .unwrap();
    d.run(3);
    let t = d.timings();
    assert!(t.total_s() > 0.0);
    assert!(t.compute_s() > 0.0, "compute must dominate in-process: {t:?}");
    assert!((0.0..=1.0).contains(&t.comm_fraction()));
    // A uniform FCC crystal decomposes almost perfectly.
    let imb = d.load_imbalance();
    assert!((1.0..1.2).contains(&imb), "imbalance {imb}");
}

#[test]
fn too_many_ranks_rejected() {
    let (store, bbox) = lj_system(); // box ≈ 10.9, rcut 2.5
    let err =
        DistributedSim::new(store, bbox, IVec3::splat(5), lj_ff(Method::ShiftCollapse), 0.002);
    assert!(err.is_err(), "sub-box 2.18 < cutoff 2.5 should be rejected");
}

#[test]
fn threaded_single_rank_matches_serial_silica() {
    // 1×1×1 degenerates every exchange to self-sends; the threaded executor
    // must still reproduce the serial silica trajectory exactly (one rank ⇒
    // identical summation order up to the scratch merge).
    let v = Vashishta::silica();
    let masses = v.params().masses;
    let (store, bbox) = build_silica_like(3, 7.16, masses, 0.01, 7);
    let ff = ForceField {
        pair: Some(Box::new(v.pair.clone())),
        triplet: Some(Box::new(v.triplet.clone())),
        quadruplet: None,
        method: Method::ShiftCollapse,
    };
    let (gathered, energy, stats) =
        ThreadedSim::run(store.clone(), bbox, IVec3::splat(1), ff, 0.0005, 3).unwrap();
    let mut serial = Simulation::builder(store, bbox)
        .pair_potential(Box::new(v.pair.clone()))
        .triplet_potential(Box::new(v.triplet.clone()))
        .method(Method::ShiftCollapse)
        .timestep(0.0005)
        .build()
        .unwrap();
    serial.run(3);
    assert_stores_match(&bbox, &gathered, &serial_snapshot(&serial), 1e-9, "threaded 1x1x1");
    let e_s = serial.telemetry().energy.total();
    assert!(
        (energy.total() - e_s).abs() < 1e-9 * e_s.abs().max(1.0),
        "threaded 1x1x1 energy {} vs serial {e_s}",
        energy.total()
    );
    // The per-rank phase metrics rode along in the comm stats.
    assert!(stats.phases.bin_s() > 0.0);
    assert!(stats.phases.enumerate_s() > 0.0);
    assert!(stats.phases.reduce_s() > 0.0);
    assert!(stats.phases.exchange_s() > 0.0, "threaded executor times its exchanges");
}

#[test]
fn bsp_phase_breakdown_is_recorded() {
    let (store, bbox) = lj_system();
    let mut d =
        DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(Method::ShiftCollapse), 0.002)
            .unwrap();
    d.run(2);
    let p = d.phase_breakdown();
    assert!(p.bin_s() > 0.0, "ranks timed their binning: {p:?}");
    assert!(p.enumerate_s() > 0.0, "ranks timed their enumeration: {p:?}");
    assert!(p.reduce_s() > 0.0, "ranks timed their scratch merge: {p:?}");
    assert_eq!(p.exchange_s(), 0.0, "BSP exchange time is counted centrally in PhaseTimings");
    // The fine-grained rank view nests inside the coarse compute wall time.
    assert!(d.timings().compute_s() > 0.0);
    assert_eq!(p, d.comm_stats().phases);
}

#[test]
fn telemetry_snapshot_carries_every_section() {
    use sc_obs::{Phase, Registry};
    use sc_parallel::{Fault, FaultKind, FaultPlan};

    let reg = Registry::new();
    let (store, bbox) = lj_system();
    let mut d =
        DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(Method::ShiftCollapse), 0.002)
            .unwrap();
    d.set_metrics(reg.clone());
    d.set_fault_plan(FaultPlan::none().with(Fault {
        step: 1,
        rank: 1,
        channel: None,
        kind: FaultKind::Drop,
    }));
    for _ in 0..3 {
        d.try_step().unwrap();
    }

    let t = d.telemetry();
    assert_eq!(t.step, 3);
    assert!(t.energy.total() != 0.0);
    // Per-phase timings: per-rank CPU phases and executor wall phases.
    for phase in [Phase::Bin, Phase::Enumerate, Phase::Reduce, Phase::Exchange, Phase::Compute] {
        assert!(t.phases.get(phase) > 0.0, "missing {} timing: {:?}", phase.name(), t.phases);
    }
    // Per-rank communication counters.
    assert_eq!(t.per_rank.len(), 8);
    assert!(t.per_rank.iter().all(|r| r.bytes > 0 && r.messages > 0));
    // The injected drop left its trace in the aggregate fault counters.
    assert!(t.comm.retries > 0, "the injected drop recovers via retry");
    assert!(t.comm.faults_detected > 0);
    assert!(t.alloc_events > 0, "metric registration is accounted");

    // The registry saw the same per-step-delta traffic.
    assert_eq!(reg.counter("dist.steps").get(), 3);
    assert_eq!(reg.counter("comm.bytes").get(), t.comm.bytes);
    assert_eq!(reg.counter("comm.retries").get(), t.comm.retries);
    assert!(reg.phase_s(Phase::Exchange) > 0.0);

    // The JSON line round-trips and the per-rank section is intact.
    let v = sc_obs::json::Json::parse(&t.to_json()).unwrap();
    assert_eq!(v.get("step").unwrap().as_f64(), Some(3.0));
    assert_eq!(v.get("per_rank").unwrap().as_array().unwrap().len(), 8);
    assert!(v.get("comm").unwrap().get("retries").unwrap().as_f64().unwrap() > 0.0);
}

#[test]
fn threaded_run_with_metrics_reports_totals() {
    use sc_obs::{Phase, Registry};
    let reg = Registry::new();
    let (store, bbox) = lj_system();
    let (_, _, stats) = ThreadedSim::run_with_metrics(
        store,
        bbox,
        IVec3::splat(2),
        lj_ff(Method::ShiftCollapse),
        0.002,
        3,
        &reg,
    )
    .unwrap();
    assert_eq!(reg.counter("comm.messages").get(), stats.messages);
    assert_eq!(reg.counter("comm.bytes").get(), stats.bytes);
    assert!(reg.phase_s(Phase::Exchange) > 0.0, "threaded exchange wall time is reported");
    assert!(reg.phase_s(Phase::Bin) > 0.0);
}

#[test]
fn bsp_trace_events_agree_with_comm_counters() {
    use sc_obs::{EventKind, Tracer};

    let (store, bbox) = lj_system();
    let mut d =
        DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(Method::ShiftCollapse), 0.002)
            .unwrap();
    let tracer = Tracer::new();
    d.set_tracer(tracer.clone());
    d.run(2);
    assert_eq!(tracer.dropped(), 0, "the default ring holds a short run without wrapping");

    let events = tracer.events();
    let nranks = 8u32;
    // Every send the stats counted is on the timeline, rank by rank, with
    // matching byte totals — and every send has a matching receive.
    for (r, stats) in d.rank_stats().iter().enumerate() {
        let sends: Vec<_> = events
            .iter()
            .filter(|e| e.rank == r as u32 && matches!(e.kind, EventKind::Send { .. }))
            .collect();
        assert_eq!(sends.len() as u64, stats.messages, "rank {r} send count");
        let bytes: u64 = sends
            .iter()
            .map(|e| match e.kind {
                EventKind::Send { bytes, .. } => bytes,
                _ => 0,
            })
            .sum();
        assert_eq!(bytes, stats.bytes, "rank {r} send bytes");
        let recvs = events
            .iter()
            .filter(|e| e.rank == r as u32 && matches!(e.kind, EventKind::Recv { .. }))
            .count();
        assert!(recvs > 0, "rank {r} received something");
        // Each rank's row carries its fine-grained compute phases.
        assert!(
            events.iter().any(|e| e.rank == r as u32
                && matches!(e.kind, EventKind::Phase(p) if p == sc_obs::Phase::Bin)),
            "rank {r} binning interval traced"
        );
    }
    // The executor's synchronous wall phases land on the synthetic
    // rank-`nranks` row.
    for phase in [
        sc_obs::Phase::Exchange,
        sc_obs::Phase::Compute,
        sc_obs::Phase::Reduce,
        sc_obs::Phase::Integrate,
        sc_obs::Phase::Migrate,
    ] {
        assert!(
            events.iter().any(|e| e.rank == nranks && e.kind == EventKind::Phase(phase)),
            "executor row traced {}",
            phase.name()
        );
    }
}

#[test]
fn imbalance_report_is_consistent_with_aggregated_comm_counters() {
    let (store, bbox) = lj_system();
    let mut d =
        DistributedSim::new(store, bbox, IVec3::splat(2), lj_ff(Method::ShiftCollapse), 0.002)
            .unwrap();
    d.run(3);
    let t = d.telemetry();
    let report = t.imbalance().expect("multi-rank telemetry carries the imbalance report");
    assert_eq!(report.per_rank.len(), 8);
    // Per-rank comm seconds are exactly the comm slots of that rank's
    // phase breakdown, so the comm-wait fractions are consistent with the
    // aggregated comm.* counters the registry sees.
    let mut ghosts = 0;
    for (load, counters) in report.per_rank.iter().zip(&t.per_rank) {
        let comm_s =
            counters.phases.exchange_s() + counters.phases.migrate_s() + counters.phases.reduce_s();
        assert!((load.comm_s - comm_s).abs() < 1e-12, "rank {} comm seconds", load.rank);
        assert_eq!(load.ghosts_imported, counters.ghosts_imported);
        ghosts += load.ghosts_imported;
    }
    assert_eq!(ghosts, t.comm.ghosts_imported, "imbalance ghosts sum to the aggregate counter");
    assert!(report.compute_imbalance() >= 1.0);
    assert!((0.0..=1.0).contains(&report.comm_wait_fraction()));
}

#[test]
fn threaded_run_observed_traces_every_rank() {
    use sc_obs::{EventKind, Registry, Tracer};

    let reg = Registry::new();
    let tracer = Tracer::new();
    let (store, bbox) = lj_system();
    let (_, _, stats) = ThreadedSim::run_observed(
        store,
        bbox,
        IVec3::splat(2),
        lj_ff(Method::ShiftCollapse),
        0.002,
        2,
        &reg,
        &tracer,
    )
    .unwrap();

    let events = tracer.events();
    let send_bytes: u64 = events
        .iter()
        .map(|e| match e.kind {
            EventKind::Send { bytes, .. } => bytes,
            _ => 0,
        })
        .sum();
    assert_eq!(send_bytes, stats.bytes, "traced send bytes equal the aggregated counters");
    let sends = events.iter().filter(|e| matches!(e.kind, EventKind::Send { .. })).count();
    assert_eq!(sends as u64, stats.messages);
    for r in 0..8u32 {
        assert!(
            events
                .iter()
                .any(|e| e.rank == r && e.kind == EventKind::Phase(sc_obs::Phase::Exchange)),
            "rank {r} exchange interval traced"
        );
        assert!(
            events.iter().any(|e| e.rank == r && matches!(e.kind, EventKind::Recv { .. })),
            "rank {r} receives traced"
        );
    }
    // Merged ordering: sorted by (step, rank, t_ns, lane) even though the
    // eight rank threads stamped their events concurrently.
    let keys: Vec<_> = events.iter().map(|e| (e.step, e.rank, e.t_ns, e.lane)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
