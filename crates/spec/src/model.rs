//! The scenario data model: strict decode from JSON/TOML, cross-field
//! validation, and canonical re-serialization.
//!
//! A scenario is the declarative unit of work for `scmd run/bench/chaos`
//! and the job service: workload system, potential, method Ψ, executor +
//! rank grid, integration parameters, and the optional fault /
//! observability / checkpoint plans. Decoding is *strict* — unknown fields
//! are rejected ([`SpecError::UnknownField`]) so a typo fails loudly
//! instead of silently falling back to a default — and every error names
//! the offending field by dotted path.
//!
//! [`ScenarioSpec::to_json`] emits the canonical form: every default
//! materialized, fields in pinned order. Canonicalization is idempotent
//! (`parse(to_json(s)) == s` and `to_json(parse(to_json(s))) ==
//! to_json(s)`), which the golden round-trip tests assert.

use crate::error::SpecError;
use sc_md::Method;
use sc_obs::json::Json;

/// The schema identifier every scenario document must carry.
pub const SCHEMA_ID: &str = "sc-scenario/1";

/// A fully-decoded, validated scenario description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable scenario name (also the default job label).
    pub name: String,
    /// The workload system to build.
    pub system: SystemSpec,
    /// The potential terms to attach.
    pub potential: PotentialSpec,
    /// The n-tuple computation method Ψ.
    pub method: Method,
    /// Which engine runs the scenario, and its decomposition.
    pub executor: ExecutorSpec,
    /// Integration timestep.
    pub dt: f64,
    /// Steps to integrate.
    pub steps: u64,
    /// Cell subdivision `k` (paper §6), 1–3.
    pub subdivision: i32,
    /// Hybrid-MD Verlet skin (0 = rebuild every step).
    pub verlet_skin: f64,
    /// Morton re-sort cadence (0 = never).
    pub resort_every: u64,
    /// Communication schedule knobs (distributed executors).
    pub comm: CommSpec,
    /// Optional Berendsen thermostat (serial executor only).
    pub thermostat: Option<ThermostatSpec>,
    /// Optional scripted fault storm (BSP executor only).
    pub fault_plan: Option<FaultPlanSpec>,
    /// Observability sinks to enable.
    pub observability: ObservabilitySpec,
    /// Optional checkpoint schedule (used by supervised/served runs).
    pub checkpoint: Option<CheckpointSpec>,
}

/// Which workload to build. All systems are deterministic per seed.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemSpec {
    /// FCC Lennard-Jones crystal: `cells³` unit cells at lattice constant
    /// `a`, thermalized to `temp`.
    Lj {
        /// Unit cells per axis.
        cells: u64,
        /// Lattice constant.
        a: f64,
        /// Thermalization temperature.
        temp: f64,
        /// Seed for lattice noise and thermalization.
        seed: u64,
    },
    /// β-cristobalite-like SiO₂ (masses from the Vashishta silica
    /// parameterization).
    Silica {
        /// Conventional diamond cells per axis.
        cells: u64,
        /// Cell constant.
        a: f64,
        /// Thermalization temperature.
        temp: f64,
        /// Seed for lattice noise and thermalization.
        seed: u64,
    },
    /// Uniform random single-species gas.
    Gas {
        /// Atom count.
        n: u64,
        /// Cubic box edge.
        box_l: f64,
        /// Thermalization temperature.
        temp: f64,
        /// Seed for placement and thermalization.
        seed: u64,
    },
    /// Clustered (inhomogeneous) gas — Gaussian blobs, the non-uniform
    /// density profile that stresses per-rank load balance.
    Clustered {
        /// Atom count.
        n: u64,
        /// Cubic box edge.
        box_l: f64,
        /// Number of Gaussian blobs.
        clusters: u64,
        /// Per-axis standard deviation of each blob.
        spread: f64,
        /// Thermalization temperature.
        temp: f64,
        /// Seed for placement and thermalization.
        seed: u64,
    },
}

/// Which potential terms to attach.
#[derive(Debug, Clone, PartialEq)]
pub enum PotentialSpec {
    /// Reduced-unit Lennard-Jones pair term with the given cutoff.
    Lj {
        /// Pair cutoff in reduced units.
        cutoff: f64,
    },
    /// The Vashishta silica pair + triplet parameterization.
    Vashishta,
}

/// Which engine runs the scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutorSpec {
    /// The in-process serial/thread-pool engine ([`sc_md::Simulation`]).
    Serial {
        /// Force-evaluation lanes (0 = auto).
        threads: u64,
    },
    /// The BSP distributed executor over a `grid` of ranks.
    Bsp {
        /// Rank grid dimensions.
        grid: [u64; 3],
    },
    /// The one-shot threaded executor over a `grid` of ranks (not
    /// resumable — rejected by the job service).
    Threaded {
        /// Rank grid dimensions.
        grid: [u64; 3],
    },
}

impl SystemSpec {
    /// Short name used in case labels and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            SystemSpec::Lj { .. } => "lj",
            SystemSpec::Silica { .. } => "silica",
            SystemSpec::Gas { .. } => "gas",
            SystemSpec::Clustered { .. } => "clustered",
        }
    }
}

impl ExecutorSpec {
    /// Short name used in case labels and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecutorSpec::Serial { .. } => "serial",
            ExecutorSpec::Bsp { .. } => "bsp",
            ExecutorSpec::Threaded { .. } => "threaded",
        }
    }
}

/// Communication schedule knobs for the distributed executors. All of
/// them are bitwise-neutral: they change when traffic moves and how it is
/// framed, never the trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct CommSpec {
    /// Pack all same-phase payloads per neighbor into one framed batch
    /// message (one message per neighbor per phase instead of one per
    /// channel).
    pub aggregation: bool,
    /// Compute interior tuples while the first boundary exchange is in
    /// flight.
    pub overlap: bool,
    /// Re-fit the rank grid to measured per-rank compute seconds every
    /// this many steps (0 = never; BSP executor only).
    pub rebalance_every: u64,
}

impl Default for CommSpec {
    fn default() -> Self {
        CommSpec { aggregation: true, overlap: true, rebalance_every: 0 }
    }
}

/// Berendsen thermostat parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermostatSpec {
    /// Target temperature.
    pub target: f64,
    /// Coupling ratio `dt/τ ∈ (0, 1]`.
    pub dt_over_tau: f64,
}

/// A seeded [`sc_parallel::FaultPlan::storm`] schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanSpec {
    /// Storm seed.
    pub seed: u64,
    /// Scripted faults.
    pub count: u64,
    /// Crash budget within `count`.
    pub max_crashes: u64,
}

/// Which observability sinks a run should enable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObservabilitySpec {
    /// Enable the lock-free metrics registry.
    pub metrics: bool,
    /// Enable the event tracer.
    pub trace: bool,
    /// Steps between live `watch` telemetry snapshots when a subscriber
    /// does not ask for its own cadence (`0`: one snapshot per scheduler
    /// slice boundary).
    pub watch_every: u64,
    /// Flight-recorder ring capacity per trace sink, in events. `None`
    /// leaves the choice to the runner (the job service arms its default
    /// ring; standalone runs stay dark unless `trace` is set), `Some(0)`
    /// disables the ring explicitly, `Some(n)` arms `n`-event rings.
    pub ring: Option<u64>,
}

/// Checkpoint cadence for supervised / served runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// Steps between checkpoints (≥ 1).
    pub every: u64,
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A field-path-tracking view over one JSON object, enforcing strictness.
struct Fields<'a> {
    prefix: String,
    fields: &'a [(String, Json)],
}

impl<'a> Fields<'a> {
    fn root(v: &'a Json) -> Result<Self, SpecError> {
        match v.as_object() {
            Some(fields) => Ok(Fields { prefix: String::new(), fields }),
            None => Err(SpecError::BadType { field: "$".into(), expected: "object" }),
        }
    }

    fn path(&self, key: &str) -> String {
        if self.prefix.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.prefix)
        }
    }

    fn get(&self, key: &str) -> Option<&'a Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn required(&self, key: &str) -> Result<&'a Json, SpecError> {
        self.get(key).ok_or_else(|| SpecError::MissingField { field: self.path(key) })
    }

    fn obj(&self, key: &str) -> Result<Fields<'a>, SpecError> {
        let v = self.required(key)?;
        match v.as_object() {
            Some(fields) => Ok(Fields { prefix: self.path(key), fields }),
            None => Err(SpecError::BadType { field: self.path(key), expected: "object" }),
        }
    }

    fn str(&self, key: &str) -> Result<&'a str, SpecError> {
        self.required(key)?
            .as_str()
            .ok_or_else(|| SpecError::BadType { field: self.path(key), expected: "string" })
    }

    fn f64(&self, key: &str) -> Result<f64, SpecError> {
        self.required(key)?
            .as_f64()
            .ok_or_else(|| SpecError::BadType { field: self.path(key), expected: "number" })
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(_) => self.f64(key),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, SpecError> {
        let n = self.f64(key)?;
        if n.fract() != 0.0 || !(0.0..=u64::MAX as f64).contains(&n) {
            return Err(SpecError::BadType {
                field: self.path(key),
                expected: "non-negative integer",
            });
        }
        Ok(n as u64)
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(_) => self.u64(key),
        }
    }

    fn bool_or(&self, key: &str, default: bool) -> Result<bool, SpecError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| SpecError::BadType { field: self.path(key), expected: "boolean" }),
        }
    }

    fn grid(&self, key: &str) -> Result<[u64; 3], SpecError> {
        let items = self
            .required(key)?
            .as_array()
            .ok_or_else(|| SpecError::BadType { field: self.path(key), expected: "array" })?;
        let dims: Vec<u64> = items
            .iter()
            .map(|v| match v.as_f64() {
                Some(n) if n.fract() == 0.0 && n >= 0.0 => Ok(n as u64),
                _ => Err(SpecError::BadType {
                    field: self.path(key),
                    expected: "array of 3 positive integers",
                }),
            })
            .collect::<Result<_, _>>()?;
        dims.try_into().map_err(|_| SpecError::BadType {
            field: self.path(key),
            expected: "array of 3 positive integers",
        })
    }

    /// Rejects any field outside `allowed` — the strictness guard.
    fn deny_unknown(&self, allowed: &[&str]) -> Result<(), SpecError> {
        for (k, _) in self.fields {
            if !allowed.contains(&k.as_str()) {
                return Err(SpecError::UnknownField { field: self.path(k) });
            }
        }
        Ok(())
    }
}

fn bad(field: impl Into<String>, detail: impl Into<String>) -> SpecError {
    SpecError::BadValue { field: field.into(), detail: detail.into() }
}

impl ScenarioSpec {
    /// Loads a spec from a file, dispatching on extension: `.toml` parses
    /// as TOML, anything else as JSON.
    pub fn from_path(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path).map_err(|e| SpecError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        if path.extension().is_some_and(|e| e == "toml") {
            Self::from_toml_str(&text)
        } else {
            Self::from_json_str(&text)
        }
    }

    /// Parses and validates a JSON scenario document.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let v = Json::parse(text).map_err(|detail| SpecError::Parse { format: "json", detail })?;
        Self::from_json(&v)
    }

    /// Parses and validates a TOML scenario document.
    pub fn from_toml_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&crate::toml::parse(text)?)
    }

    /// Decodes and validates a scenario from a parsed JSON value.
    pub fn from_json(v: &Json) -> Result<Self, SpecError> {
        let root = Fields::root(v)?;
        root.deny_unknown(&[
            "schema",
            "name",
            "system",
            "potential",
            "method",
            "executor",
            "dt",
            "steps",
            "subdivision",
            "verlet_skin",
            "resort_every",
            "comm",
            "thermostat",
            "fault_plan",
            "observability",
            "checkpoint",
        ])?;
        let schema = root.str("schema")?;
        if schema != SCHEMA_ID {
            return Err(SpecError::UnknownVariant {
                field: "schema".into(),
                value: schema.to_string(),
                allowed: SCHEMA_ID,
            });
        }
        let spec = ScenarioSpec {
            name: root.str("name")?.to_string(),
            system: decode_system(&root.obj("system")?)?,
            potential: decode_potential(&root.obj("potential")?)?,
            method: decode_method(&root)?,
            executor: decode_executor(&root.obj("executor")?)?,
            dt: root.f64("dt")?,
            steps: root.u64("steps")?,
            subdivision: root.u64_or("subdivision", 1)? as i32,
            verlet_skin: root.f64_or("verlet_skin", 0.0)?,
            resort_every: root.u64_or("resort_every", 8)?,
            comm: match root.get("comm") {
                None => CommSpec::default(),
                Some(_) => decode_comm(&root.obj("comm")?)?,
            },
            thermostat: match root.get("thermostat") {
                None => None,
                Some(_) => Some(decode_thermostat(&root.obj("thermostat")?)?),
            },
            fault_plan: match root.get("fault_plan") {
                None => None,
                Some(_) => Some(decode_fault_plan(&root.obj("fault_plan")?)?),
            },
            observability: match root.get("observability") {
                None => ObservabilitySpec::default(),
                Some(_) => decode_observability(&root.obj("observability")?)?,
            },
            checkpoint: match root.get("checkpoint") {
                None => None,
                Some(_) => Some(decode_checkpoint(&root.obj("checkpoint")?)?),
            },
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-field validity rules; every rejection names the field.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(bad("name", "must not be empty"));
        }
        if !(self.dt > 0.0 && self.dt.is_finite()) {
            return Err(bad("dt", format!("{} is not a positive finite timestep", self.dt)));
        }
        if self.steps == 0 {
            return Err(bad("steps", "must be at least 1"));
        }
        if !(1..=3).contains(&self.subdivision) {
            return Err(bad("subdivision", format!("{} is outside 1..=3", self.subdivision)));
        }
        if !(self.verlet_skin >= 0.0 && self.verlet_skin.is_finite()) {
            return Err(bad("verlet_skin", "must be finite and ≥ 0"));
        }
        match &self.system {
            SystemSpec::Lj { cells, a, temp, .. } | SystemSpec::Silica { cells, a, temp, .. } => {
                if *cells == 0 {
                    return Err(bad("system.cells", "must be at least 1"));
                }
                if !(*a > 0.0 && a.is_finite()) {
                    return Err(bad("system.a", "lattice constant must be positive and finite"));
                }
                if !(*temp >= 0.0 && temp.is_finite()) {
                    return Err(bad("system.temp", "must be finite and ≥ 0"));
                }
            }
            SystemSpec::Gas { n, box_l, temp, .. } => {
                if *n == 0 {
                    return Err(bad("system.n", "must be at least 1"));
                }
                if !(*box_l > 0.0 && box_l.is_finite()) {
                    return Err(bad("system.box", "must be positive and finite"));
                }
                if !(*temp >= 0.0 && temp.is_finite()) {
                    return Err(bad("system.temp", "must be finite and ≥ 0"));
                }
            }
            SystemSpec::Clustered { n, box_l, clusters, spread, temp, .. } => {
                if *n == 0 {
                    return Err(bad("system.n", "must be at least 1"));
                }
                if !(*box_l > 0.0 && box_l.is_finite()) {
                    return Err(bad("system.box", "must be positive and finite"));
                }
                if *clusters == 0 {
                    return Err(bad("system.clusters", "must be at least 1"));
                }
                if !(*spread > 0.0 && spread.is_finite()) {
                    return Err(bad("system.spread", "must be positive and finite"));
                }
                if !(*temp >= 0.0 && temp.is_finite()) {
                    return Err(bad("system.temp", "must be finite and ≥ 0"));
                }
            }
        }
        // The potential must match the system's species set: Vashishta is
        // the two-species silica model; everything else is single-species
        // LJ territory.
        let silica_system = matches!(self.system, SystemSpec::Silica { .. });
        match &self.potential {
            PotentialSpec::Vashishta if !silica_system => {
                return Err(bad(
                    "potential.kind",
                    "vashishta requires the two-species silica system",
                ));
            }
            PotentialSpec::Lj { .. } if silica_system => {
                return Err(bad("potential.kind", "the silica system requires vashishta"));
            }
            PotentialSpec::Lj { cutoff } if !(*cutoff > 0.0 && cutoff.is_finite()) => {
                return Err(bad("potential.cutoff", "must be positive and finite"));
            }
            _ => {}
        }
        match &self.executor {
            ExecutorSpec::Serial { .. } => {}
            ExecutorSpec::Bsp { grid } | ExecutorSpec::Threaded { grid } => {
                if grid.contains(&0) {
                    return Err(bad("executor.grid", "every dimension must be at least 1"));
                }
            }
        }
        if self.comm.rebalance_every != 0 && !matches!(self.executor, ExecutorSpec::Bsp { .. }) {
            return Err(bad(
                "comm.rebalance_every",
                "only the bsp executor supports adaptive re-decomposition",
            ));
        }
        if let Some(t) = &self.thermostat {
            if !matches!(self.executor, ExecutorSpec::Serial { .. }) {
                return Err(bad("thermostat", "only the serial executor supports a thermostat"));
            }
            if !(t.target >= 0.0 && t.target.is_finite()) {
                return Err(bad("thermostat.target", "must be finite and ≥ 0"));
            }
            if !(t.dt_over_tau > 0.0 && t.dt_over_tau <= 1.0) {
                return Err(bad("thermostat.dt_over_tau", "must be in (0, 1]"));
            }
        }
        if let Some(fp) = &self.fault_plan {
            let ranks = match &self.executor {
                ExecutorSpec::Bsp { grid } => grid.iter().product::<u64>(),
                _ => {
                    return Err(bad("fault_plan", "only the bsp executor supports fault plans"));
                }
            };
            if fp.count == 0 {
                return Err(bad("fault_plan.count", "must be at least 1"));
            }
            if fp.max_crashes >= ranks {
                return Err(bad(
                    "fault_plan.max_crashes",
                    format!("{} crashes would leave no survivor of {ranks} ranks", fp.max_crashes),
                ));
            }
        }
        if let Some(cp) = &self.checkpoint {
            if cp.every == 0 {
                return Err(bad("checkpoint.every", "must be at least 1"));
            }
        }
        Ok(())
    }

    /// Renders the canonical JSON form: every default materialized, field
    /// order pinned. `parse(to_json()) == self` and the rendering is
    /// byte-stable, which the golden round-trip tests assert.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".to_string(), Json::str(SCHEMA_ID)),
            ("name".to_string(), Json::str(self.name.clone())),
            ("system".to_string(), system_json(&self.system)),
            ("potential".to_string(), potential_json(&self.potential)),
            ("method".to_string(), Json::str(method_name(self.method))),
            ("executor".to_string(), executor_json(&self.executor)),
            ("dt".to_string(), Json::num(self.dt)),
            ("steps".to_string(), Json::num(self.steps as f64)),
            ("subdivision".to_string(), Json::num(self.subdivision as f64)),
            ("verlet_skin".to_string(), Json::num(self.verlet_skin)),
            ("resort_every".to_string(), Json::num(self.resort_every as f64)),
            (
                "comm".to_string(),
                Json::Obj(vec![
                    ("aggregation".to_string(), Json::Bool(self.comm.aggregation)),
                    ("overlap".to_string(), Json::Bool(self.comm.overlap)),
                    ("rebalance_every".to_string(), Json::num(self.comm.rebalance_every as f64)),
                ]),
            ),
        ];
        if let Some(t) = &self.thermostat {
            fields.push((
                "thermostat".to_string(),
                Json::Obj(vec![
                    ("target".to_string(), Json::num(t.target)),
                    ("dt_over_tau".to_string(), Json::num(t.dt_over_tau)),
                ]),
            ));
        }
        if let Some(fp) = &self.fault_plan {
            fields.push((
                "fault_plan".to_string(),
                Json::Obj(vec![
                    ("seed".to_string(), Json::num(fp.seed as f64)),
                    ("count".to_string(), Json::num(fp.count as f64)),
                    ("max_crashes".to_string(), Json::num(fp.max_crashes as f64)),
                ]),
            ));
        }
        fields.push((
            "observability".to_string(),
            Json::Obj({
                let mut obs = vec![
                    ("metrics".to_string(), Json::Bool(self.observability.metrics)),
                    ("trace".to_string(), Json::Bool(self.observability.trace)),
                    ("watch_every".to_string(), Json::num(self.observability.watch_every as f64)),
                ];
                if let Some(ring) = self.observability.ring {
                    obs.push(("ring".to_string(), Json::num(ring as f64)));
                }
                obs
            }),
        ));
        if let Some(cp) = &self.checkpoint {
            fields.push((
                "checkpoint".to_string(),
                Json::Obj(vec![("every".to_string(), Json::num(cp.every as f64))]),
            ));
        }
        Json::Obj(fields)
    }
}

/// The `method` field's short-name mapping (matches [`Method::name`]).
pub fn method_name(m: Method) -> &'static str {
    match m {
        Method::ShiftCollapse => "sc",
        Method::FullShell => "fs",
        Method::Hybrid => "hybrid",
    }
}

fn decode_method(root: &Fields) -> Result<Method, SpecError> {
    match root.str("method")? {
        "sc" => Ok(Method::ShiftCollapse),
        "fs" => Ok(Method::FullShell),
        "hybrid" => Ok(Method::Hybrid),
        other => Err(SpecError::UnknownVariant {
            field: "method".into(),
            value: other.to_string(),
            allowed: "sc|fs|hybrid",
        }),
    }
}

fn decode_system(f: &Fields) -> Result<SystemSpec, SpecError> {
    match f.str("kind")? {
        "lj" => {
            f.deny_unknown(&["kind", "cells", "a", "temp", "seed"])?;
            Ok(SystemSpec::Lj {
                cells: f.u64("cells")?,
                a: f.f64_or("a", 1.5599)?,
                temp: f.f64_or("temp", 1.0)?,
                seed: f.u64_or("seed", 42)?,
            })
        }
        "silica" => {
            f.deny_unknown(&["kind", "cells", "a", "temp", "seed"])?;
            Ok(SystemSpec::Silica {
                cells: f.u64("cells")?,
                a: f.f64_or("a", 7.16)?,
                temp: f.f64_or("temp", 0.05)?,
                seed: f.u64_or("seed", 42)?,
            })
        }
        "gas" => {
            f.deny_unknown(&["kind", "n", "box", "temp", "seed"])?;
            Ok(SystemSpec::Gas {
                n: f.u64("n")?,
                box_l: f.f64("box")?,
                temp: f.f64_or("temp", 0.5)?,
                seed: f.u64_or("seed", 42)?,
            })
        }
        "clustered" => {
            f.deny_unknown(&["kind", "n", "box", "clusters", "spread", "temp", "seed"])?;
            Ok(SystemSpec::Clustered {
                n: f.u64("n")?,
                box_l: f.f64("box")?,
                clusters: f.u64("clusters")?,
                spread: f.f64("spread")?,
                temp: f.f64_or("temp", 0.5)?,
                seed: f.u64_or("seed", 42)?,
            })
        }
        other => Err(SpecError::UnknownVariant {
            field: f.path("kind"),
            value: other.to_string(),
            allowed: "lj|silica|gas|clustered",
        }),
    }
}

fn system_json(s: &SystemSpec) -> Json {
    match s {
        SystemSpec::Lj { cells, a, temp, seed } => Json::Obj(vec![
            ("kind".to_string(), Json::str("lj")),
            ("cells".to_string(), Json::num(*cells as f64)),
            ("a".to_string(), Json::num(*a)),
            ("temp".to_string(), Json::num(*temp)),
            ("seed".to_string(), Json::num(*seed as f64)),
        ]),
        SystemSpec::Silica { cells, a, temp, seed } => Json::Obj(vec![
            ("kind".to_string(), Json::str("silica")),
            ("cells".to_string(), Json::num(*cells as f64)),
            ("a".to_string(), Json::num(*a)),
            ("temp".to_string(), Json::num(*temp)),
            ("seed".to_string(), Json::num(*seed as f64)),
        ]),
        SystemSpec::Gas { n, box_l, temp, seed } => Json::Obj(vec![
            ("kind".to_string(), Json::str("gas")),
            ("n".to_string(), Json::num(*n as f64)),
            ("box".to_string(), Json::num(*box_l)),
            ("temp".to_string(), Json::num(*temp)),
            ("seed".to_string(), Json::num(*seed as f64)),
        ]),
        SystemSpec::Clustered { n, box_l, clusters, spread, temp, seed } => Json::Obj(vec![
            ("kind".to_string(), Json::str("clustered")),
            ("n".to_string(), Json::num(*n as f64)),
            ("box".to_string(), Json::num(*box_l)),
            ("clusters".to_string(), Json::num(*clusters as f64)),
            ("spread".to_string(), Json::num(*spread)),
            ("temp".to_string(), Json::num(*temp)),
            ("seed".to_string(), Json::num(*seed as f64)),
        ]),
    }
}

fn decode_potential(f: &Fields) -> Result<PotentialSpec, SpecError> {
    match f.str("kind")? {
        "lj" => {
            f.deny_unknown(&["kind", "cutoff"])?;
            Ok(PotentialSpec::Lj { cutoff: f.f64_or("cutoff", 2.5)? })
        }
        "vashishta" => {
            f.deny_unknown(&["kind"])?;
            Ok(PotentialSpec::Vashishta)
        }
        other => Err(SpecError::UnknownVariant {
            field: f.path("kind"),
            value: other.to_string(),
            allowed: "lj|vashishta",
        }),
    }
}

fn potential_json(p: &PotentialSpec) -> Json {
    match p {
        PotentialSpec::Lj { cutoff } => Json::Obj(vec![
            ("kind".to_string(), Json::str("lj")),
            ("cutoff".to_string(), Json::num(*cutoff)),
        ]),
        PotentialSpec::Vashishta => Json::Obj(vec![("kind".to_string(), Json::str("vashishta"))]),
    }
}

fn decode_executor(f: &Fields) -> Result<ExecutorSpec, SpecError> {
    match f.str("kind")? {
        "serial" => {
            f.deny_unknown(&["kind", "threads"])?;
            Ok(ExecutorSpec::Serial { threads: f.u64_or("threads", 0)? })
        }
        "bsp" => {
            f.deny_unknown(&["kind", "grid"])?;
            Ok(ExecutorSpec::Bsp { grid: f.grid("grid")? })
        }
        "threaded" => {
            f.deny_unknown(&["kind", "grid"])?;
            Ok(ExecutorSpec::Threaded { grid: f.grid("grid")? })
        }
        other => Err(SpecError::UnknownVariant {
            field: f.path("kind"),
            value: other.to_string(),
            allowed: "serial|bsp|threaded",
        }),
    }
}

fn executor_json(e: &ExecutorSpec) -> Json {
    let grid_json = |g: &[u64; 3]| Json::Arr(g.iter().map(|&d| Json::num(d as f64)).collect());
    match e {
        ExecutorSpec::Serial { threads } => Json::Obj(vec![
            ("kind".to_string(), Json::str("serial")),
            ("threads".to_string(), Json::num(*threads as f64)),
        ]),
        ExecutorSpec::Bsp { grid } => Json::Obj(vec![
            ("kind".to_string(), Json::str("bsp")),
            ("grid".to_string(), grid_json(grid)),
        ]),
        ExecutorSpec::Threaded { grid } => Json::Obj(vec![
            ("kind".to_string(), Json::str("threaded")),
            ("grid".to_string(), grid_json(grid)),
        ]),
    }
}

fn decode_comm(f: &Fields) -> Result<CommSpec, SpecError> {
    f.deny_unknown(&["aggregation", "overlap", "rebalance_every"])?;
    Ok(CommSpec {
        aggregation: f.bool_or("aggregation", true)?,
        overlap: f.bool_or("overlap", true)?,
        rebalance_every: f.u64_or("rebalance_every", 0)?,
    })
}

fn decode_thermostat(f: &Fields) -> Result<ThermostatSpec, SpecError> {
    f.deny_unknown(&["target", "dt_over_tau"])?;
    Ok(ThermostatSpec { target: f.f64("target")?, dt_over_tau: f.f64("dt_over_tau")? })
}

fn decode_fault_plan(f: &Fields) -> Result<FaultPlanSpec, SpecError> {
    f.deny_unknown(&["seed", "count", "max_crashes"])?;
    Ok(FaultPlanSpec {
        seed: f.u64("seed")?,
        count: f.u64("count")?,
        max_crashes: f.u64_or("max_crashes", 0)?,
    })
}

fn decode_observability(f: &Fields) -> Result<ObservabilitySpec, SpecError> {
    f.deny_unknown(&["metrics", "trace", "watch_every", "ring"])?;
    Ok(ObservabilitySpec {
        metrics: f.bool_or("metrics", false)?,
        trace: f.bool_or("trace", false)?,
        watch_every: f.u64_or("watch_every", 0)?,
        ring: match f.get("ring") {
            None => None,
            Some(_) => Some(f.u64("ring")?),
        },
    })
}

fn decode_checkpoint(f: &Fields) -> Result<CheckpointSpec, SpecError> {
    f.deny_unknown(&["every"])?;
    Ok(CheckpointSpec { every: f.u64("every")? })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lj_spec_json() -> String {
        r#"{
            "schema": "sc-scenario/1",
            "name": "lj-melt",
            "system": {"kind": "lj", "cells": 6, "temp": 1.0, "seed": 42},
            "potential": {"kind": "lj", "cutoff": 2.5},
            "method": "sc",
            "executor": {"kind": "serial"},
            "dt": 0.002,
            "steps": 100
        }"#
        .to_string()
    }

    #[test]
    fn decodes_with_defaults_materialized() {
        let spec = ScenarioSpec::from_json_str(&lj_spec_json()).unwrap();
        assert_eq!(spec.name, "lj-melt");
        assert_eq!(spec.method, Method::ShiftCollapse);
        assert_eq!(spec.subdivision, 1);
        assert_eq!(spec.resort_every, 8);
        assert_eq!(spec.verlet_skin, 0.0);
        assert!(spec.thermostat.is_none() && spec.fault_plan.is_none());
        assert!(!spec.observability.metrics);
        match spec.system {
            SystemSpec::Lj { cells, a, .. } => {
                assert_eq!(cells, 6);
                assert_eq!(a, 1.5599);
            }
            other => panic!("wrong system {other:?}"),
        }
    }

    #[test]
    fn canonical_round_trip_is_stable() {
        let spec = ScenarioSpec::from_json_str(&lj_spec_json()).unwrap();
        let canonical = spec.to_json().to_string();
        let again = ScenarioSpec::from_json_str(&canonical).unwrap();
        assert_eq!(again, spec);
        assert_eq!(again.to_json().to_string(), canonical);
    }

    #[test]
    fn toml_and_json_decode_identically() {
        let toml = r#"
            schema = "sc-scenario/1"
            name = "lj-melt"
            method = "sc"
            dt = 0.002
            steps = 100
            [system]
            kind = "lj"
            cells = 6
            temp = 1.0
            seed = 42
            [potential]
            kind = "lj"
            cutoff = 2.5
            [executor]
            kind = "serial"
        "#;
        assert_eq!(
            ScenarioSpec::from_toml_str(toml).unwrap(),
            ScenarioSpec::from_json_str(&lj_spec_json()).unwrap()
        );
    }

    #[test]
    fn unknown_top_level_field_is_rejected() {
        let doc = lj_spec_json().replace("\"steps\": 100", "\"steps\": 100, \"stepss\": 1");
        match ScenarioSpec::from_json_str(&doc) {
            Err(SpecError::UnknownField { field }) => assert_eq!(field, "stepss"),
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn nested_errors_carry_dotted_paths() {
        let doc = lj_spec_json().replace("\"cells\": 6", "\"cells\": 6.5");
        match ScenarioSpec::from_json_str(&doc) {
            Err(SpecError::BadType { field, .. }) => assert_eq!(field, "system.cells"),
            other => panic!("expected BadType, got {other:?}"),
        }
        let doc = lj_spec_json().replace("\"kind\": \"lj\", \"cells\"", "\"cells\"");
        match ScenarioSpec::from_json_str(&doc) {
            Err(SpecError::MissingField { field }) => assert_eq!(field, "system.kind"),
            other => panic!("expected MissingField, got {other:?}"),
        }
    }

    #[test]
    fn cross_field_rules_reject_mismatches() {
        // Vashishta on an LJ system.
        let doc =
            lj_spec_json().replace(r#"{"kind": "lj", "cutoff": 2.5}"#, r#"{"kind": "vashishta"}"#);
        match ScenarioSpec::from_json_str(&doc) {
            Err(SpecError::BadValue { field, .. }) => assert_eq!(field, "potential.kind"),
            other => panic!("expected BadValue, got {other:?}"),
        }
        // Thermostat on a distributed executor.
        let doc = lj_spec_json().replace(
            r#""executor": {"kind": "serial"}"#,
            r#""executor": {"kind": "bsp", "grid": [2, 1, 1]}, "thermostat": {"target": 1.0, "dt_over_tau": 0.1}"#,
        );
        match ScenarioSpec::from_json_str(&doc) {
            Err(SpecError::BadValue { field, .. }) => assert_eq!(field, "thermostat"),
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn bad_schema_id_is_an_unknown_variant() {
        let doc = lj_spec_json().replace("sc-scenario/1", "sc-scenario/9");
        match ScenarioSpec::from_json_str(&doc) {
            Err(SpecError::UnknownVariant { field, .. }) => assert_eq!(field, "schema"),
            other => panic!("expected UnknownVariant, got {other:?}"),
        }
    }
}
