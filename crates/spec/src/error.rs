//! Typed errors for scenario parsing, validation, and instantiation.

use sc_md::BuildError;
use std::fmt;

/// Why a scenario spec could not be read, decoded, validated, or turned
/// into a runnable simulation. Every variant names the offending field
/// with its full dotted path (e.g. `system.cells`), so a bad spec file is
/// diagnosable from the message alone.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Reading the spec file failed.
    Io {
        /// The path that failed to read.
        path: String,
        /// The underlying I/O error text.
        detail: String,
    },
    /// The document is not syntactically valid TOML/JSON.
    Parse {
        /// `"json"` or `"toml"`.
        format: &'static str,
        /// Parser diagnostic (includes position).
        detail: String,
    },
    /// A required field is absent.
    MissingField {
        /// Dotted path of the missing field.
        field: String,
    },
    /// A field holds a value of the wrong JSON type.
    BadType {
        /// Dotted path of the offending field.
        field: String,
        /// The type the field expects (e.g. `"number"`, `"object"`).
        expected: &'static str,
    },
    /// A field holds a value of the right type but an invalid magnitude or
    /// an inconsistent combination.
    BadValue {
        /// Dotted path of the offending field.
        field: String,
        /// What is wrong with it.
        detail: String,
    },
    /// A field is not part of the scenario schema (typo guard: specs are
    /// decoded strictly so a misspelled knob fails instead of silently
    /// falling back to a default).
    UnknownField {
        /// Dotted path of the unrecognised field.
        field: String,
    },
    /// A closed-enum field holds an unknown alternative.
    UnknownVariant {
        /// Dotted path of the offending field.
        field: String,
        /// The rejected value as written.
        value: String,
        /// The accepted alternatives.
        allowed: &'static str,
    },
    /// The decoded spec was rejected by the simulation builder.
    Build(BuildError),
    /// The decoded spec was rejected by a distributed executor's setup
    /// (type-erased to keep the crate layering acyclic).
    Setup(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Io { path, detail } => write!(f, "reading {path}: {detail}"),
            SpecError::Parse { format, detail } => write!(f, "invalid {format}: {detail}"),
            SpecError::MissingField { field } => write!(f, "missing required field '{field}'"),
            SpecError::BadType { field, expected } => {
                write!(f, "field '{field}' must be a {expected}")
            }
            SpecError::BadValue { field, detail } => write!(f, "field '{field}': {detail}"),
            SpecError::UnknownField { field } => write!(f, "unknown field '{field}'"),
            SpecError::UnknownVariant { field, value, allowed } => {
                write!(f, "field '{field}': unknown value {value:?} (expected {allowed})")
            }
            SpecError::Build(e) => write!(f, "spec builds an invalid simulation: {e}"),
            SpecError::Setup(e) => write!(f, "spec rejected by executor setup: {e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for SpecError {
    fn from(e: BuildError) -> Self {
        SpecError::Build(e)
    }
}

/// Funnels spec failures into the unified top-level error, so `scmd`'s
/// whole spec-load → build → run pipeline is one `?`-chain.
impl From<SpecError> for sc_md::Error {
    fn from(e: SpecError) -> Self {
        sc_md::Error::Setup(Box::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_the_dotted_field_path() {
        let e = SpecError::MissingField { field: "system.cells".into() };
        assert!(e.to_string().contains("system.cells"));
        let e = SpecError::BadType { field: "dt".into(), expected: "number" }.to_string();
        assert!(e.contains("dt") && e.contains("number"));
        let e = SpecError::UnknownVariant {
            field: "method".into(),
            value: "magic".into(),
            allowed: "sc|fs|hybrid",
        };
        assert!(e.to_string().contains("sc|fs|hybrid"));
    }

    #[test]
    fn converts_into_the_unified_error() {
        let top: sc_md::Error = SpecError::UnknownField { field: "stepss".into() }.into();
        assert!(top.to_string().contains("stepss"), "{top}");
        assert!(std::error::Error::source(&top).is_some());
    }
}
