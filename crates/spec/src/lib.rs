//! # sc-spec — declarative scenario specifications
//!
//! A scenario spec is a small TOML or JSON document that pins down an
//! entire simulation campaign: the physical system, the potential, the
//! n-tuple method Ψ (shift-collapse / full-shell / hybrid), the executor
//! and rank grid, integration parameters, optional thermostat, fault
//! plan, observability sinks, and checkpoint cadence. The checked-in
//! `scenarios/` zoo and the bench matrix are expressed as specs, and the
//! job service (`scmd serve`) accepts them as its submission unit.
//!
//! The crate deliberately has **no** external dependencies: TOML is read
//! by a vendored subset parser ([`toml`]), JSON via
//! [`sc_obs::json::Json`], and decoding is strict — unknown fields,
//! wrong types, and out-of-range values all fail with a [`SpecError`]
//! naming the offending field's dotted path.
//!
//! ```text
//! file/str ── parse ──► Json ── decode+validate ──► ScenarioSpec
//!                                                      │ instantiate()
//!                                                      ▼
//!                                  RunHandle (Simulation | DistributedSim)
//! ```

pub mod build;
pub mod error;
pub mod model;
pub mod toml;

pub use build::{observables_doc, Executor, RunFault, RunHandle, OBSERVABLES_SCHEMA_ID};
pub use error::SpecError;
pub use model::{
    method_name, CheckpointSpec, CommSpec, ExecutorSpec, FaultPlanSpec, ObservabilitySpec,
    PotentialSpec, ScenarioSpec, SystemSpec, ThermostatSpec, SCHEMA_ID,
};
