//! A minimal, dependency-free TOML-subset parser emitting
//! [`sc_obs::json::Json`].
//!
//! The workspace's vendored `serde` is a marker-trait shim with no codegen,
//! so scenario files in TOML are parsed here and decoded through the same
//! [`Json`] path as JSON specs. The supported subset is exactly what
//! scenario files need:
//!
//! - `#` comments and blank lines
//! - `[dotted.table]` headers (each may appear once)
//! - `key = value` and `dotted.key = value` assignments
//! - values: basic `"strings"` (with `\"` `\\` `\n` `\t` escapes), integers,
//!   floats, booleans, single-line `[arrays]`, and single-line
//!   `{inline = "tables"}`
//!
//! Multi-line arrays/strings, datetimes, and `[[array-of-table]]` syntax are
//! not needed by any scenario and are rejected with a line-numbered error.

use crate::error::SpecError;
use sc_obs::json::Json;

/// Parses a TOML-subset document into a JSON object value.
pub fn parse(input: &str) -> Result<Json, SpecError> {
    let mut root: Vec<(String, Json)> = Vec::new();
    // Dotted path of the currently-open `[table]` header.
    let mut table: Vec<String> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if let Some(header) = line.strip_prefix('[') {
            if header.starts_with('[') {
                return Err(err(lineno, "arrays of tables ([[...]]) are not supported"));
            }
            let Some(header) = header.strip_suffix(']') else {
                return Err(err(lineno, "unterminated table header"));
            };
            table = split_key(header, lineno)?;
            // Materialize the table so empty sections still appear.
            ensure_object(&mut root, &table, lineno)?;
            continue;
        }
        let Some(eq) = find_unquoted(line, b'=') else {
            return Err(err(lineno, "expected 'key = value'"));
        };
        let mut path = table.clone();
        path.extend(split_key(&line[..eq], lineno)?);
        let value = parse_value(line[eq + 1..].trim(), lineno)?;
        insert(&mut root, &path, value, lineno)?;
    }
    Ok(Json::Obj(root))
}

fn err(lineno: usize, detail: &str) -> SpecError {
    SpecError::Parse { format: "toml", detail: format!("line {lineno}: {detail}") }
}

/// Strips a `#` comment, ignoring `#` inside double quotes.
fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, b'#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Finds the first `needle` byte outside of double quotes.
fn find_unquoted(s: &str, needle: u8) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, b) in s.bytes().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_str => escaped = true,
            b'"' => in_str = !in_str,
            b if b == needle && !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Splits a (possibly dotted) key into segments; bare keys only.
fn split_key(key: &str, lineno: usize) -> Result<Vec<String>, SpecError> {
    let mut out = Vec::new();
    for seg in key.split('.') {
        let seg = seg.trim();
        if seg.is_empty() || !seg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(err(lineno, &format!("invalid key segment {seg:?}")));
        }
        out.push(seg.to_string());
    }
    Ok(out)
}

/// Walks/creates nested objects along `path`, returning the innermost one.
fn ensure_object<'a>(
    obj: &'a mut Vec<(String, Json)>,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Vec<(String, Json)>, SpecError> {
    let mut cur = obj;
    for seg in path {
        if !cur.iter().any(|(k, _)| k == seg) {
            cur.push((seg.clone(), Json::Obj(Vec::new())));
        }
        let slot = cur.iter_mut().find(|(k, _)| k == seg).map(|(_, v)| v).unwrap();
        match slot {
            Json::Obj(fields) => cur = fields,
            _ => return Err(err(lineno, &format!("'{seg}' is both a value and a table"))),
        }
    }
    Ok(cur)
}

fn insert(
    root: &mut Vec<(String, Json)>,
    path: &[String],
    value: Json,
    lineno: usize,
) -> Result<(), SpecError> {
    let (last, parents) = path.split_last().expect("split_key returns at least one segment");
    let obj = ensure_object(root, parents, lineno)?;
    if obj.iter().any(|(k, _)| k == last) {
        return Err(err(lineno, &format!("duplicate key '{last}'")));
    }
    obj.push((last.clone(), value));
    Ok(())
}

fn parse_value(text: &str, lineno: usize) -> Result<Json, SpecError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(err(lineno, "missing value after '='"));
    }
    match text.as_bytes()[0] {
        b'"' => parse_string(text, lineno).map(Json::Str),
        b'[' => parse_array(text, lineno),
        b'{' => parse_inline_table(text, lineno),
        b't' | b'f' => match text {
            "true" => Ok(Json::Bool(true)),
            "false" => Ok(Json::Bool(false)),
            other => Err(err(lineno, &format!("bad value {other:?}"))),
        },
        _ => {
            // TOML permits `1_000`-style separators in numbers.
            let clean: String = text.chars().filter(|&c| c != '_').collect();
            clean
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| err(lineno, &format!("bad value {text:?}")))
        }
    }
}

fn parse_string(text: &str, lineno: usize) -> Result<String, SpecError> {
    let inner = text
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| err(lineno, "unterminated string"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return Err(err(lineno, "unescaped quote inside string"));
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => return Err(err(lineno, &format!("bad escape '\\{other}'"))),
            None => return Err(err(lineno, "dangling escape")),
        }
    }
    Ok(out)
}

/// Splits the interior of a bracketed list on top-level commas.
fn split_items(inner: &str) -> Result<Vec<&str>, String> {
    let mut items = Vec::new();
    let (mut depth, mut in_str, mut escaped, mut start) = (0i32, false, false, 0usize);
    for (i, b) in inner.bytes().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_str => escaped = true,
            b'"' => in_str = !in_str,
            b'[' | b'{' if !in_str => depth += 1,
            b']' | b'}' if !in_str => depth -= 1,
            b',' if !in_str && depth == 0 => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err("unbalanced brackets or quotes".to_string());
    }
    if !inner[start..].trim().is_empty() {
        items.push(&inner[start..]);
    }
    Ok(items)
}

fn parse_array(text: &str, lineno: usize) -> Result<Json, SpecError> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(lineno, "unterminated array (arrays must be single-line)"))?;
    let items = split_items(inner).map_err(|e| err(lineno, &e))?;
    items.into_iter().map(|item| parse_value(item, lineno)).collect::<Result<_, _>>().map(Json::Arr)
}

fn parse_inline_table(text: &str, lineno: usize) -> Result<Json, SpecError> {
    let inner = text
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| err(lineno, "unterminated inline table"))?;
    let mut fields: Vec<(String, Json)> = Vec::new();
    for item in split_items(inner).map_err(|e| err(lineno, &e))? {
        let Some(eq) = find_unquoted(item, b'=') else {
            return Err(err(lineno, "inline table entries must be 'key = value'"));
        };
        let path = split_key(&item[..eq], lineno)?;
        let value = parse_value(item[eq + 1..].trim(), lineno)?;
        insert(&mut fields, &path, value, lineno)?;
    }
    Ok(Json::Obj(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_scenario_shaped_document() {
        let doc = parse(
            r#"
            # a scenario
            schema = "sc-scenario/1"
            name = "lj-demo"
            method = "sc"
            dt = 0.002
            steps = 1_000
            potential = { kind = "lj", cutoff = 2.5 }

            [system]
            kind = "lj"
            cells = 6
            temp = 1.0   # reduced units

            [executor]
            kind = "bsp"
            grid = [2, 2, 2]

            [observability]
            metrics = true
            "#,
        )
        .unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("sc-scenario/1"));
        assert_eq!(doc.get("steps").unwrap().as_f64(), Some(1000.0));
        assert_eq!(doc.get("system").unwrap().get("cells").unwrap().as_f64(), Some(6.0));
        assert_eq!(doc.get("system").unwrap().get("temp").unwrap().as_f64(), Some(1.0));
        let grid = doc.get("executor").unwrap().get("grid").unwrap().as_array().unwrap();
        assert_eq!(grid.len(), 3);
        assert_eq!(doc.get("observability").unwrap().get("metrics").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("potential").unwrap().get("cutoff").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn dotted_keys_and_headers_nest() {
        let doc = parse("a.b.c = 1\n[x.y]\nz = \"s # not a comment\"").unwrap();
        assert_eq!(doc.get("a").unwrap().get("b").unwrap().get("c").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            doc.get("x").unwrap().get("y").unwrap().get("z").unwrap().as_str(),
            Some("s # not a comment")
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = parse(r#"s = "a\"b\\c\nd""#).unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (src, needle) in [
            ("steps 10", "line 1"),
            ("[open\nx = 1", "unterminated table header"),
            ("x = ", "missing value"),
            ("x = 1\nx = 2", "duplicate key"),
            ("x = [1, 2", "unterminated array"),
            ("[[t]]\n", "not supported"),
            ("x = nope", "bad value"),
            ("x.y = 1\nx = 2", "duplicate"),
            ("x = 1\nx.y = 2", "both a value and a table"),
        ] {
            let e = parse(src).unwrap_err();
            assert!(e.to_string().contains(needle), "{src:?} -> {e}");
        }
    }

    #[test]
    fn duplicate_key_inside_dotted_path_is_rejected() {
        let e = parse("x = 1\nx.y = 2").unwrap_err();
        assert!(matches!(e, SpecError::Parse { format: "toml", .. }), "{e:?}");
    }
}
