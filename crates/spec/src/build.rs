//! Turning a validated [`ScenarioSpec`] into a running simulation, plus the
//! bitwise observables document served runs and standalone runs are
//! compared on.

use crate::error::SpecError;
use crate::model::{
    ExecutorSpec, ObservabilitySpec, PotentialSpec, ScenarioSpec, SystemSpec, ThermostatSpec,
};
use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox};
use sc_md::supervisor::Recoverable;
use sc_md::{
    build_clustered_gas, build_fcc_lattice, build_silica_like, random_gas, thermalize, Checkpoint,
    LatticeSpec, RuntimeConfig, Simulation, Telemetry,
};
use sc_obs::json::Json;
use sc_obs::{Registry, Tracer};
use sc_parallel::rank::ForceField;
use sc_parallel::{CommStats, DistributedSim, FaultPlan, ThreadedSim};
use sc_potential::{LennardJones, Vashishta};

/// The schema identifier of the observables document.
pub const OBSERVABLES_SCHEMA_ID: &str = "sc-observables/1";

/// An executor fault surfaced through [`RunHandle`]'s [`Recoverable`]
/// impl, preserving the dead-rank classification the supervisor's
/// recovery ladder keys on.
#[derive(Debug)]
pub struct RunFault {
    message: String,
    dead_rank: Option<usize>,
}

impl std::fmt::Display for RunFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RunFault {}

/// A scenario instantiated on a resumable executor. The threaded executor
/// is one-shot (no mid-run state to checkpoint), so it is deliberately not
/// a `RunHandle` — use [`ScenarioSpec::run_threaded`] for it.
pub enum RunHandle {
    /// The in-process serial/thread-pool engine.
    Serial(Box<Simulation>),
    /// The BSP distributed executor.
    Bsp(Box<DistributedSim>),
}

impl RunHandle {
    /// Advances one step, surfacing unrecovered distributed faults as text.
    pub fn try_step(&mut self) -> Result<(), String> {
        match self {
            RunHandle::Serial(sim) => {
                sim.step();
                Ok(())
            }
            RunHandle::Bsp(sim) => sim.try_step().map_err(|e| e.to_string()),
        }
    }

    /// Runs `n` steps (panicking executors abort; use
    /// [`RunHandle::try_step`] for fault-tolerant loops).
    pub fn run(&mut self, n: usize) {
        match self {
            RunHandle::Serial(sim) => {
                sim.run(n);
            }
            RunHandle::Bsp(sim) => sim.run(n),
        }
    }

    /// Steps completed so far.
    pub fn steps_done(&self) -> u64 {
        match self {
            RunHandle::Serial(sim) => sim.steps_done(),
            RunHandle::Bsp(sim) => sim.steps_done(),
        }
    }

    /// The unified telemetry snapshot.
    pub fn telemetry(&self) -> Telemetry {
        match self {
            RunHandle::Serial(sim) => sim.telemetry(),
            RunHandle::Bsp(sim) => sim.telemetry(),
        }
    }

    /// Total (kinetic + potential) energy from fresh forces.
    pub fn total_energy(&mut self) -> f64 {
        match self {
            RunHandle::Serial(sim) => sim.total_energy(),
            RunHandle::Bsp(sim) => sim.total_energy(),
        }
    }

    /// The full phase-space state, gathered into one store (owned atoms
    /// only, deterministic order for a fixed executor configuration).
    pub fn gather(&self) -> AtomStore {
        match self {
            RunHandle::Serial(sim) => sim.store().clone(),
            RunHandle::Bsp(sim) => sim.gather(),
        }
    }

    /// Snapshots the full dynamic state (bitwise-lossless, PR 2 contract).
    pub fn checkpoint(&self) -> Checkpoint {
        match self {
            RunHandle::Serial(sim) => Recoverable::checkpoint(sim.as_ref()),
            RunHandle::Bsp(sim) => Recoverable::checkpoint(sim.as_ref()),
        }
    }

    /// Rewinds to a snapshot taken by [`RunHandle::checkpoint`]. Restored
    /// trajectories replay bitwise.
    pub fn restore(&mut self, cp: &Checkpoint) {
        match self {
            RunHandle::Serial(sim) => Recoverable::restore(sim.as_mut(), cp),
            RunHandle::Bsp(sim) => Recoverable::restore(sim.as_mut(), cp),
        }
    }

    /// The metrics registry the run reports into (disabled unless the spec
    /// enabled metrics).
    pub fn metrics(&self) -> &Registry {
        match self {
            RunHandle::Serial(sim) => sim.metrics(),
            RunHandle::Bsp(sim) => sim.metrics(),
        }
    }

    /// The event tracer (disabled unless the spec enabled tracing).
    pub fn tracer(&self) -> &Tracer {
        match self {
            RunHandle::Serial(sim) => sim.tracer(),
            RunHandle::Bsp(sim) => sim.tracer(),
        }
    }

    /// Executor short name (`serial` / `bsp`).
    pub fn executor_kind(&self) -> &'static str {
        match self {
            RunHandle::Serial(_) => "serial",
            RunHandle::Bsp(_) => "bsp",
        }
    }
}

/// Delegates supervision hooks to the engines' own [`Recoverable`] impls,
/// so a [`sc_md::Supervisor`] can drive any spec-instantiated run — the
/// job service leans on this for per-job rollback recovery.
impl Recoverable for RunHandle {
    type Fault = RunFault;

    fn try_step(&mut self) -> Result<(), RunFault> {
        match self {
            RunHandle::Serial(sim) => Recoverable::try_step(sim.as_mut()).map_err(|e| match e {}),
            RunHandle::Bsp(sim) => Recoverable::try_step(sim.as_mut()).map_err(|e| RunFault {
                dead_rank: <DistributedSim as Recoverable>::dead_rank(&e),
                message: e.to_string(),
            }),
        }
    }

    fn checkpoint(&self) -> Checkpoint {
        RunHandle::checkpoint(self)
    }

    fn restore(&mut self, cp: &Checkpoint) {
        RunHandle::restore(self, cp);
    }

    fn restore_excluding(&mut self, cp: &Checkpoint, exclude: &[usize]) -> Result<(), String> {
        match self {
            RunHandle::Serial(sim) => Recoverable::restore_excluding(sim.as_mut(), cp, exclude),
            RunHandle::Bsp(sim) => Recoverable::restore_excluding(sim.as_mut(), cp, exclude),
        }
    }

    fn atom_count(&self) -> usize {
        match self {
            RunHandle::Serial(sim) => Recoverable::atom_count(sim.as_ref()),
            RunHandle::Bsp(sim) => Recoverable::atom_count(sim.as_ref()),
        }
    }

    fn total_energy_estimate(&self) -> f64 {
        match self {
            RunHandle::Serial(sim) => Recoverable::total_energy_estimate(sim.as_ref()),
            RunHandle::Bsp(sim) => Recoverable::total_energy_estimate(sim.as_ref()),
        }
    }

    fn state_is_finite(&self) -> bool {
        match self {
            RunHandle::Serial(sim) => Recoverable::state_is_finite(sim.as_ref()),
            RunHandle::Bsp(sim) => Recoverable::state_is_finite(sim.as_ref()),
        }
    }

    fn timestep(&self) -> f64 {
        match self {
            RunHandle::Serial(sim) => Recoverable::timestep(sim.as_ref()),
            RunHandle::Bsp(sim) => Recoverable::timestep(sim.as_ref()),
        }
    }

    fn set_timestep(&mut self, dt: f64) {
        match self {
            RunHandle::Serial(sim) => Recoverable::set_timestep(sim.as_mut(), dt),
            RunHandle::Bsp(sim) => Recoverable::set_timestep(sim.as_mut(), dt),
        }
    }

    fn steps_done(&self) -> u64 {
        RunHandle::steps_done(self)
    }

    fn dead_rank(fault: &RunFault) -> Option<usize> {
        fault.dead_rank
    }
}

impl ScenarioSpec {
    /// Builds the workload system (deterministic per the spec's seeds),
    /// thermalized and ready to hand to an executor.
    pub fn build_workload(&self) -> (AtomStore, SimulationBox) {
        match &self.system {
            SystemSpec::Lj { cells, a, temp, seed } => {
                let (mut store, bbox) =
                    build_fcc_lattice(&LatticeSpec::cubic(*cells as usize, *a), 0.0, *seed);
                thermalize(&mut store, *temp, *seed);
                (store, bbox)
            }
            SystemSpec::Silica { cells, a, temp, seed } => {
                let masses = Vashishta::silica().params().masses;
                let (mut store, bbox) = build_silica_like(*cells as usize, *a, masses, 0.0, *seed);
                thermalize(&mut store, *temp, *seed);
                (store, bbox)
            }
            SystemSpec::Gas { n, box_l, temp, seed } => {
                let (mut store, bbox) = random_gas(*n as usize, *box_l, *seed);
                thermalize(&mut store, *temp, *seed);
                (store, bbox)
            }
            SystemSpec::Clustered { n, box_l, clusters, spread, temp, seed } => {
                let (mut store, bbox) =
                    build_clustered_gas(*n as usize, *box_l, *clusters as usize, *spread, *seed);
                thermalize(&mut store, *temp, *seed);
                (store, bbox)
            }
        }
    }

    /// The force field the spec's potential section describes.
    pub fn force_field(&self) -> ForceField {
        match &self.potential {
            PotentialSpec::Lj { cutoff } => ForceField {
                pair: Some(Box::new(LennardJones::reduced(*cutoff))),
                triplet: None,
                quadruplet: None,
                method: self.method,
            },
            PotentialSpec::Vashishta => {
                let v = Vashishta::silica();
                ForceField {
                    pair: Some(Box::new(v.pair.clone())),
                    triplet: Some(Box::new(v.triplet.clone())),
                    quadruplet: None,
                    method: self.method,
                }
            }
        }
    }

    fn registries(&self, label: Option<&str>) -> (Registry, Tracer) {
        let ObservabilitySpec { metrics, trace } = self.observability;
        let registry = match (metrics, label) {
            (false, _) => Registry::disabled(),
            (true, None) => Registry::new(),
            (true, Some(label)) => Registry::labeled(label),
        };
        let tracer = if trace { Tracer::new() } else { Tracer::disabled() };
        (registry, tracer)
    }

    /// Instantiates the scenario on its resumable executor.
    ///
    /// # Errors
    /// [`SpecError::BadValue`] for the one-shot threaded executor (use
    /// [`ScenarioSpec::run_threaded`]); [`SpecError::Build`] /
    /// [`SpecError::Setup`] when the engine rejects the configuration.
    pub fn instantiate(&self) -> Result<RunHandle, SpecError> {
        self.instantiate_labeled(None)
    }

    /// Like [`ScenarioSpec::instantiate`], stamping `label` (a job id)
    /// onto the metrics registry so multiplexed jobs stay distinguishable.
    pub fn instantiate_labeled(&self, label: Option<&str>) -> Result<RunHandle, SpecError> {
        let (store, bbox) = self.build_workload();
        let (metrics, tracer) = self.registries(label);
        match &self.executor {
            ExecutorSpec::Serial { threads } => {
                let runtime = RuntimeConfig {
                    threads: *threads as usize,
                    verlet_skin: self.verlet_skin,
                    resort_every: self.resort_every,
                    metrics,
                    tracer,
                    ..RuntimeConfig::default()
                };
                let mut b = Simulation::builder(store, bbox)
                    .method(self.method)
                    .timestep(self.dt)
                    .cell_subdivision(self.subdivision)
                    .runtime(runtime);
                match &self.potential {
                    PotentialSpec::Lj { cutoff } => {
                        b = b.pair_potential(Box::new(LennardJones::reduced(*cutoff)));
                    }
                    PotentialSpec::Vashishta => {
                        let v = Vashishta::silica();
                        b = b
                            .pair_potential(Box::new(v.pair.clone()))
                            .triplet_potential(Box::new(v.triplet.clone()));
                    }
                }
                if let Some(ThermostatSpec { target, dt_over_tau }) = &self.thermostat {
                    b = b.thermostat(*target, *dt_over_tau);
                }
                Ok(RunHandle::Serial(Box::new(b.build()?)))
            }
            ExecutorSpec::Bsp { grid } => {
                let pdims = IVec3::new(grid[0] as i32, grid[1] as i32, grid[2] as i32);
                let mut sim = DistributedSim::new_subdivided(
                    store,
                    bbox,
                    pdims,
                    self.force_field(),
                    self.dt,
                    self.subdivision,
                )
                .map_err(|e| SpecError::Setup(e.to_string()))?;
                sim.set_resort_every(self.resort_every);
                if let Some(fp) = &self.fault_plan {
                    let ranks = grid.iter().product::<u64>() as usize;
                    sim.set_fault_plan(FaultPlan::storm(
                        fp.seed,
                        fp.count as usize,
                        self.steps,
                        ranks,
                        fp.max_crashes as usize,
                    ));
                }
                sim.set_metrics(metrics);
                sim.set_tracer(tracer);
                Ok(RunHandle::Bsp(Box::new(sim)))
            }
            ExecutorSpec::Threaded { .. } => Err(SpecError::BadValue {
                field: "executor.kind".into(),
                detail: "the threaded executor is one-shot; use run_threaded (it cannot be \
                         checkpointed or served)"
                    .into(),
            }),
        }
    }

    /// Runs the scenario on the one-shot threaded executor for its full
    /// `steps`, returning the final store, energy breakdown, and comm
    /// totals.
    ///
    /// # Errors
    /// [`SpecError::BadValue`] when the spec's executor is not `threaded`;
    /// [`SpecError::Setup`] when the run is rejected or fails mid-flight.
    pub fn run_threaded(
        &self,
    ) -> Result<(AtomStore, sc_md::EnergyBreakdown, CommStats), SpecError> {
        let ExecutorSpec::Threaded { grid } = &self.executor else {
            return Err(SpecError::BadValue {
                field: "executor.kind".into(),
                detail: format!(
                    "run_threaded needs a threaded executor, spec says {}",
                    self.executor.kind()
                ),
            });
        };
        let (store, bbox) = self.build_workload();
        let pdims = IVec3::new(grid[0] as i32, grid[1] as i32, grid[2] as i32);
        ThreadedSim::run(store, bbox, pdims, self.force_field(), self.dt, self.steps as usize)
            .map_err(|e| SpecError::Setup(e.to_string()))
    }
}

/// 64-bit FNV-1a over a byte stream.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the final-observables document for a finished run: atom count,
/// step count, the total energy as an exact IEEE-754 bit pattern, and an
/// FNV-1a hash over the full phase space (positions then velocities, in
/// store order, exact bits).
///
/// The document deliberately carries **no** wall times, job ids, or
/// hostnames, so "resumed job equals uninterrupted run" is a plain file
/// comparison: two runs of the same spec on the same executor
/// configuration produce byte-identical documents exactly when their final
/// phase space and energy are bitwise equal.
pub fn observables_doc(
    scenario: &str,
    steps_done: u64,
    store: &AtomStore,
    energy_total: f64,
) -> Json {
    let pos_then_vel = store
        .positions()
        .iter()
        .chain(store.velocities().iter())
        .flat_map(|v| [v.x, v.y, v.z])
        .flat_map(|c| c.to_bits().to_le_bytes());
    Json::Obj(vec![
        ("schema".to_string(), Json::str(OBSERVABLES_SCHEMA_ID)),
        ("scenario".to_string(), Json::str(scenario)),
        ("steps".to_string(), Json::num(steps_done as f64)),
        ("atoms".to_string(), Json::num(store.len() as f64)),
        ("energy_total".to_string(), Json::num(energy_total)),
        ("energy_bits".to_string(), Json::str(format!("0x{:016x}", energy_total.to_bits()))),
        ("phase_hash".to_string(), Json::str(format!("0x{:016x}", fnv1a(pos_then_vel)))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SCHEMA_ID;

    fn spec_cells(executor: &str, cells: usize) -> ScenarioSpec {
        let doc = format!(
            r#"{{
                "schema": "{SCHEMA_ID}",
                "name": "t",
                "system": {{"kind": "lj", "cells": {cells}, "temp": 1.0, "seed": 42}},
                "potential": {{"kind": "lj", "cutoff": 2.5}},
                "method": "sc",
                "executor": {executor},
                "dt": 0.002,
                "steps": 4
            }}"#
        );
        ScenarioSpec::from_json_str(&doc).unwrap()
    }

    fn spec(executor: &str) -> ScenarioSpec {
        // 5 FCC cells suffice for the serial engine; distributed executors
        // need ≥3 link cells per axis and get 7 (matching the bench matrix).
        let cells = if executor.contains("serial") { 5 } else { 7 };
        spec_cells(executor, cells)
    }

    #[test]
    fn serial_and_bsp_instantiate_and_step() {
        let mut serial = spec(r#"{"kind": "serial"}"#).instantiate().unwrap();
        serial.run(2);
        assert_eq!(serial.steps_done(), 2);
        let mut bsp = spec(r#"{"kind": "bsp", "grid": [2, 1, 1]}"#).instantiate().unwrap();
        bsp.try_step().unwrap();
        assert_eq!(bsp.steps_done(), 1);
        assert_eq!(bsp.executor_kind(), "bsp");
    }

    #[test]
    fn threaded_is_rejected_by_instantiate_but_runs_one_shot() {
        let spec = spec(r#"{"kind": "threaded", "grid": [2, 1, 1]}"#);
        match spec.instantiate() {
            Err(SpecError::BadValue { field, .. }) => assert_eq!(field, "executor.kind"),
            other => panic!("expected BadValue, got {:?}", other.is_ok()),
        }
        let (store, energy, _) = spec.run_threaded().unwrap();
        assert_eq!(store.len(), 4 * 7usize.pow(3));
        assert!(energy.total().is_finite());
    }

    #[test]
    fn checkpoint_restore_replays_bitwise() {
        let mut sim = spec(r#"{"kind": "serial"}"#).instantiate().unwrap();
        sim.run(2);
        let cp = sim.checkpoint();
        sim.run(3);
        let reference = observables_doc("t", sim.steps_done(), &sim.gather(), 0.0);
        sim.restore(&cp);
        assert_eq!(sim.steps_done(), 2);
        sim.run(3);
        let replay = observables_doc("t", sim.steps_done(), &sim.gather(), 0.0);
        assert_eq!(reference.to_string(), replay.to_string());
    }

    #[test]
    fn sliced_run_equals_straight_run_bitwise() {
        // The scheduler steps jobs in slices; slicing must not perturb the
        // trajectory.
        let mut a = spec(r#"{"kind": "serial"}"#).instantiate().unwrap();
        a.run(6);
        let mut b = spec(r#"{"kind": "serial"}"#).instantiate().unwrap();
        for _ in 0..3 {
            b.run(2);
        }
        let doc_a = observables_doc("t", a.steps_done(), &a.gather(), a.total_energy());
        let doc_b = observables_doc("t", b.steps_done(), &b.gather(), b.total_energy());
        assert_eq!(doc_a.to_string(), doc_b.to_string());
    }

    #[test]
    fn labeled_instantiation_labels_the_registry() {
        let mut spec = spec(r#"{"kind": "serial"}"#);
        spec.observability.metrics = true;
        let sim = spec.instantiate_labeled(Some("job-9")).unwrap();
        assert_eq!(sim.metrics().label(), Some("job-9"));
        // Unlabeled: metrics on, no label.
        let sim = spec.instantiate().unwrap();
        assert!(sim.metrics().enabled());
        assert_eq!(sim.metrics().label(), None);
    }

    #[test]
    fn observables_doc_is_sensitive_to_single_bit_changes() {
        let spec = spec(r#"{"kind": "serial"}"#);
        let (mut store, _) = spec.build_workload();
        let a = observables_doc("t", 1, &store, -1.0);
        store.velocities_mut()[0].x = f64::from_bits(store.velocities()[0].x.to_bits() ^ 1);
        let b = observables_doc("t", 1, &store, -1.0);
        assert_ne!(a.to_string(), b.to_string());
        assert!(a.to_string().contains("0x"));
    }
}
