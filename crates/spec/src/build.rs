//! Turning a validated [`ScenarioSpec`] into a running simulation, plus the
//! bitwise observables document served runs and standalone runs are
//! compared on.

use crate::error::SpecError;
use crate::model::{
    ExecutorSpec, ObservabilitySpec, PotentialSpec, ScenarioSpec, SystemSpec, ThermostatSpec,
};
use sc_cell::AtomStore;
use sc_geom::{IVec3, SimulationBox};
use sc_md::supervisor::Recoverable;
use sc_md::{
    build_clustered_gas, build_fcc_lattice, build_silica_like, random_gas, thermalize, Checkpoint,
    LatticeSpec, RuntimeConfig, Simulation, Telemetry,
};
use sc_obs::json::Json;
use sc_obs::{Registry, Tracer};
use sc_parallel::rank::ForceField;
use sc_parallel::{CommConfig, CommCounters, DistributedSim, FaultPlan, ThreadedSim};
use sc_potential::{LennardJones, Vashishta};

/// The schema identifier of the observables document.
pub const OBSERVABLES_SCHEMA_ID: &str = "sc-observables/1";

/// An executor fault surfaced through [`RunHandle`]'s [`Recoverable`]
/// impl, preserving the dead-rank classification the supervisor's
/// recovery ladder keys on.
#[derive(Debug)]
pub struct RunFault {
    message: String,
    dead_rank: Option<usize>,
}

impl std::fmt::Display for RunFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RunFault {}

/// The one executor surface every engine implements — the serial
/// in-process engine, the BSP distributed executor, and the persistent
/// threaded executor all instantiate to a `Box<dyn Executor>` inside
/// [`RunHandle`], so the spec layer, the CLI, the bench harness, and the
/// job service drive them through identical calls instead of
/// enum-matching per engine.
pub trait Executor: Send {
    /// Advances one step, surfacing unrecovered faults.
    fn try_step(&mut self) -> Result<(), RunFault>;
    /// Steps completed so far.
    fn steps_done(&self) -> u64;
    /// The unified telemetry snapshot.
    fn telemetry(&self) -> Telemetry;
    /// Total (kinetic + potential) energy from fresh forces.
    fn total_energy(&mut self) -> f64;
    /// The full phase-space state, gathered into one store (owned atoms
    /// only, deterministic order for a fixed executor configuration).
    fn gather(&self) -> AtomStore;
    /// Snapshots the full dynamic state (bitwise-lossless).
    fn checkpoint(&self) -> Checkpoint;
    /// Rewinds to a snapshot; restored trajectories replay bitwise.
    fn restore(&mut self, cp: &Checkpoint);
    /// Restores while excluding dead ranks (engines that cannot
    /// re-decompose return `Err`).
    fn restore_excluding(&mut self, cp: &Checkpoint, exclude: &[usize]) -> Result<(), String>;
    /// The metrics registry the run reports into.
    fn metrics(&self) -> &Registry;
    /// The event tracer.
    fn tracer(&self) -> &Tracer;
    /// Executor short name (`serial` / `bsp` / `threaded`).
    fn kind(&self) -> &'static str;
    /// Owned atoms across all ranks (supervision invariant).
    fn atom_count(&self) -> usize;
    /// Cached total-energy estimate (no force recomputation).
    fn total_energy_estimate(&self) -> f64;
    /// Whether all positions/velocities/forces are finite.
    fn state_is_finite(&self) -> bool;
    /// The integration timestep.
    fn timestep(&self) -> f64;
    /// Changes the integration timestep.
    fn set_timestep(&mut self, dt: f64);
    /// Unwraps to the concrete engine (used by harnesses that need
    /// engine-specific hooks, e.g. the chaos storm driver's fault plans).
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

impl Executor for Simulation {
    fn try_step(&mut self) -> Result<(), RunFault> {
        Recoverable::try_step(self).map_err(|e| match e {})
    }

    fn steps_done(&self) -> u64 {
        Simulation::steps_done(self)
    }

    fn telemetry(&self) -> Telemetry {
        Simulation::telemetry(self)
    }

    fn total_energy(&mut self) -> f64 {
        Simulation::total_energy(self)
    }

    fn gather(&self) -> AtomStore {
        self.store().clone()
    }

    fn checkpoint(&self) -> Checkpoint {
        Recoverable::checkpoint(self)
    }

    fn restore(&mut self, cp: &Checkpoint) {
        Recoverable::restore(self, cp);
    }

    fn restore_excluding(&mut self, cp: &Checkpoint, exclude: &[usize]) -> Result<(), String> {
        Recoverable::restore_excluding(self, cp, exclude)
    }

    fn metrics(&self) -> &Registry {
        Simulation::metrics(self)
    }

    fn tracer(&self) -> &Tracer {
        Simulation::tracer(self)
    }

    fn kind(&self) -> &'static str {
        "serial"
    }

    fn atom_count(&self) -> usize {
        Recoverable::atom_count(self)
    }

    fn total_energy_estimate(&self) -> f64 {
        Recoverable::total_energy_estimate(self)
    }

    fn state_is_finite(&self) -> bool {
        Recoverable::state_is_finite(self)
    }

    fn timestep(&self) -> f64 {
        Recoverable::timestep(self)
    }

    fn set_timestep(&mut self, dt: f64) {
        Recoverable::set_timestep(self, dt);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Implements [`Executor`] for a distributed engine whose [`Recoverable`]
/// fault is [`sc_parallel::RuntimeError`] — the BSP and threaded
/// executors share every delegation except their inherent accessors.
macro_rules! distributed_executor {
    ($engine:ty, $kind:literal) => {
        impl Executor for $engine {
            fn try_step(&mut self) -> Result<(), RunFault> {
                <$engine>::try_step(self).map_err(|e| RunFault {
                    dead_rank: <$engine as Recoverable>::dead_rank(&e),
                    message: e.to_string(),
                })
            }

            fn steps_done(&self) -> u64 {
                <$engine>::steps_done(self)
            }

            fn telemetry(&self) -> Telemetry {
                <$engine>::telemetry(self)
            }

            fn total_energy(&mut self) -> f64 {
                <$engine>::total_energy(self)
            }

            fn gather(&self) -> AtomStore {
                <$engine>::gather(self)
            }

            fn checkpoint(&self) -> Checkpoint {
                Recoverable::checkpoint(self)
            }

            fn restore(&mut self, cp: &Checkpoint) {
                Recoverable::restore(self, cp);
            }

            fn restore_excluding(
                &mut self,
                cp: &Checkpoint,
                exclude: &[usize],
            ) -> Result<(), String> {
                Recoverable::restore_excluding(self, cp, exclude)
            }

            fn metrics(&self) -> &Registry {
                <$engine>::metrics(self)
            }

            fn tracer(&self) -> &Tracer {
                <$engine>::tracer(self)
            }

            fn kind(&self) -> &'static str {
                $kind
            }

            fn atom_count(&self) -> usize {
                Recoverable::atom_count(self)
            }

            fn total_energy_estimate(&self) -> f64 {
                Recoverable::total_energy_estimate(self)
            }

            fn state_is_finite(&self) -> bool {
                Recoverable::state_is_finite(self)
            }

            fn timestep(&self) -> f64 {
                Recoverable::timestep(self)
            }

            fn set_timestep(&mut self, dt: f64) {
                Recoverable::set_timestep(self, dt);
            }

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
    };
}

distributed_executor!(DistributedSim, "bsp");
distributed_executor!(ThreadedSim, "threaded");

/// A scenario instantiated on an executor: a thin owner of the one
/// [`Executor`] object every engine hides behind.
pub struct RunHandle {
    exec: Box<dyn Executor>,
}

impl RunHandle {
    /// Wraps a concrete engine (the spec layer's instantiation path; also
    /// usable by harnesses that build engines directly).
    pub fn new(exec: impl Executor + 'static) -> Self {
        RunHandle { exec: Box::new(exec) }
    }

    /// Advances one step, surfacing unrecovered distributed faults as text.
    pub fn try_step(&mut self) -> Result<(), String> {
        self.exec.try_step().map_err(|e| e.to_string())
    }

    /// Runs `n` steps (panicking on faults; use [`RunHandle::try_step`]
    /// for fault-tolerant loops).
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.exec.try_step().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    /// Steps completed so far.
    pub fn steps_done(&self) -> u64 {
        self.exec.steps_done()
    }

    /// The unified telemetry snapshot.
    pub fn telemetry(&self) -> Telemetry {
        self.exec.telemetry()
    }

    /// Total (kinetic + potential) energy from fresh forces.
    pub fn total_energy(&mut self) -> f64 {
        self.exec.total_energy()
    }

    /// The full phase-space state, gathered into one store (owned atoms
    /// only, deterministic order for a fixed executor configuration).
    pub fn gather(&self) -> AtomStore {
        self.exec.gather()
    }

    /// Snapshots the full dynamic state (bitwise-lossless, PR 2 contract).
    pub fn checkpoint(&self) -> Checkpoint {
        self.exec.checkpoint()
    }

    /// Rewinds to a snapshot taken by [`RunHandle::checkpoint`]. Restored
    /// trajectories replay bitwise.
    pub fn restore(&mut self, cp: &Checkpoint) {
        self.exec.restore(cp);
    }

    /// The metrics registry the run reports into (disabled unless the spec
    /// enabled metrics).
    pub fn metrics(&self) -> &Registry {
        self.exec.metrics()
    }

    /// The event tracer (disabled unless the spec enabled tracing).
    pub fn tracer(&self) -> &Tracer {
        self.exec.tracer()
    }

    /// Executor short name (`serial` / `bsp` / `threaded`).
    pub fn executor_kind(&self) -> &'static str {
        self.exec.kind()
    }

    /// Unwraps the BSP engine (None for other executors) — for harnesses
    /// that need BSP-only hooks like scripted fault plans.
    pub fn into_bsp(self) -> Option<Box<DistributedSim>> {
        self.exec.into_any().downcast::<DistributedSim>().ok()
    }
}

/// Delegates supervision hooks to the engines' own [`Recoverable`] impls,
/// so a [`sc_md::Supervisor`] can drive any spec-instantiated run — the
/// job service leans on this for per-job rollback recovery.
impl Recoverable for RunHandle {
    type Fault = RunFault;

    fn try_step(&mut self) -> Result<(), RunFault> {
        self.exec.try_step()
    }

    fn checkpoint(&self) -> Checkpoint {
        self.exec.checkpoint()
    }

    fn restore(&mut self, cp: &Checkpoint) {
        self.exec.restore(cp);
    }

    fn restore_excluding(&mut self, cp: &Checkpoint, exclude: &[usize]) -> Result<(), String> {
        self.exec.restore_excluding(cp, exclude)
    }

    fn atom_count(&self) -> usize {
        self.exec.atom_count()
    }

    fn total_energy_estimate(&self) -> f64 {
        self.exec.total_energy_estimate()
    }

    fn state_is_finite(&self) -> bool {
        self.exec.state_is_finite()
    }

    fn timestep(&self) -> f64 {
        self.exec.timestep()
    }

    fn set_timestep(&mut self, dt: f64) {
        self.exec.set_timestep(dt);
    }

    fn steps_done(&self) -> u64 {
        self.exec.steps_done()
    }

    fn dead_rank(fault: &RunFault) -> Option<usize> {
        fault.dead_rank
    }
}

impl ScenarioSpec {
    /// Builds the workload system (deterministic per the spec's seeds),
    /// thermalized and ready to hand to an executor.
    pub fn build_workload(&self) -> (AtomStore, SimulationBox) {
        match &self.system {
            SystemSpec::Lj { cells, a, temp, seed } => {
                let (mut store, bbox) =
                    build_fcc_lattice(&LatticeSpec::cubic(*cells as usize, *a), 0.0, *seed);
                thermalize(&mut store, *temp, *seed);
                (store, bbox)
            }
            SystemSpec::Silica { cells, a, temp, seed } => {
                let masses = Vashishta::silica().params().masses;
                let (mut store, bbox) = build_silica_like(*cells as usize, *a, masses, 0.0, *seed);
                thermalize(&mut store, *temp, *seed);
                (store, bbox)
            }
            SystemSpec::Gas { n, box_l, temp, seed } => {
                let (mut store, bbox) = random_gas(*n as usize, *box_l, *seed);
                thermalize(&mut store, *temp, *seed);
                (store, bbox)
            }
            SystemSpec::Clustered { n, box_l, clusters, spread, temp, seed } => {
                let (mut store, bbox) =
                    build_clustered_gas(*n as usize, *box_l, *clusters as usize, *spread, *seed);
                thermalize(&mut store, *temp, *seed);
                (store, bbox)
            }
        }
    }

    /// The force field the spec's potential section describes.
    pub fn force_field(&self) -> ForceField {
        match &self.potential {
            PotentialSpec::Lj { cutoff } => ForceField {
                pair: Some(Box::new(LennardJones::reduced(*cutoff))),
                triplet: None,
                quadruplet: None,
                method: self.method,
            },
            PotentialSpec::Vashishta => {
                let v = Vashishta::silica();
                ForceField {
                    pair: Some(Box::new(v.pair.clone())),
                    triplet: Some(Box::new(v.triplet.clone())),
                    quadruplet: None,
                    method: self.method,
                }
            }
        }
    }

    fn registries(&self, label: Option<&str>, flight_ring: Option<usize>) -> (Registry, Tracer) {
        let ObservabilitySpec { metrics, trace, ring, .. } = self.observability;
        let registry = match (metrics, label) {
            (false, _) => Registry::disabled(),
            (true, None) => Registry::new(),
            (true, Some(label)) => Registry::labeled(label),
        };
        // The spec's explicit `ring` wins; otherwise `trace` arms a
        // default-capacity ring, and a runner-supplied flight-recorder
        // capacity (the job service's continuously armed ring) covers the
        // remaining case. `ring: 0` explicitly disarms everything.
        let tracer = match (ring, trace, flight_ring) {
            (Some(0), _, _) => Tracer::disabled(),
            (Some(n), _, _) => Tracer::with_capacity(n as usize),
            (None, true, _) => Tracer::new(),
            (None, false, Some(n)) if n > 0 => Tracer::with_capacity(n),
            (None, false, _) => Tracer::disabled(),
        };
        (registry, tracer)
    }

    /// The communication schedule the spec's `comm` block describes.
    pub fn comm_config(&self) -> CommConfig {
        CommConfig {
            aggregation: self.comm.aggregation,
            overlap: self.comm.overlap,
            rebalance_every: self.comm.rebalance_every,
        }
    }

    /// Instantiates the scenario on its executor.
    ///
    /// # Errors
    /// [`SpecError::Build`] / [`SpecError::Setup`] when the engine rejects
    /// the configuration.
    pub fn instantiate(&self) -> Result<RunHandle, SpecError> {
        self.instantiate_labeled(None)
    }

    /// Like [`ScenarioSpec::instantiate`], stamping `label` (a job id)
    /// onto the metrics registry so multiplexed jobs stay distinguishable.
    pub fn instantiate_labeled(&self, label: Option<&str>) -> Result<RunHandle, SpecError> {
        self.instantiate_flight(label, None)
    }

    /// Like [`ScenarioSpec::instantiate_labeled`], additionally arming a
    /// flight-recorder trace ring of `flight_ring` events per sink when
    /// the spec itself leaves tracing unset — the job service keeps every
    /// job's ring continuously armed this way so `Dump` can snapshot a
    /// running job's recent past. A spec-level `observability.ring`
    /// (including an explicit `0`) overrides the runner's choice.
    pub fn instantiate_flight(
        &self,
        label: Option<&str>,
        flight_ring: Option<usize>,
    ) -> Result<RunHandle, SpecError> {
        let (store, bbox) = self.build_workload();
        let (metrics, tracer) = self.registries(label, flight_ring);
        match &self.executor {
            ExecutorSpec::Serial { threads } => {
                let runtime = RuntimeConfig {
                    threads: *threads as usize,
                    verlet_skin: self.verlet_skin,
                    resort_every: self.resort_every,
                    metrics,
                    tracer,
                    ..RuntimeConfig::default()
                };
                let mut b = Simulation::builder(store, bbox)
                    .method(self.method)
                    .timestep(self.dt)
                    .cell_subdivision(self.subdivision)
                    .runtime(runtime);
                match &self.potential {
                    PotentialSpec::Lj { cutoff } => {
                        b = b.pair_potential(Box::new(LennardJones::reduced(*cutoff)));
                    }
                    PotentialSpec::Vashishta => {
                        let v = Vashishta::silica();
                        b = b
                            .pair_potential(Box::new(v.pair.clone()))
                            .triplet_potential(Box::new(v.triplet.clone()));
                    }
                }
                if let Some(ThermostatSpec { target, dt_over_tau }) = &self.thermostat {
                    b = b.thermostat(*target, *dt_over_tau);
                }
                Ok(RunHandle::new(b.build()?))
            }
            ExecutorSpec::Bsp { grid } => {
                let pdims = IVec3::new(grid[0] as i32, grid[1] as i32, grid[2] as i32);
                let mut sim = DistributedSim::new_subdivided(
                    store,
                    bbox,
                    pdims,
                    self.force_field(),
                    self.dt,
                    self.subdivision,
                )
                .map_err(|e| SpecError::Setup(e.to_string()))?;
                sim.set_resort_every(self.resort_every);
                sim.set_comm_config(self.comm_config());
                if let Some(fp) = &self.fault_plan {
                    let ranks = grid.iter().product::<u64>() as usize;
                    sim.set_fault_plan(FaultPlan::storm(
                        fp.seed,
                        fp.count as usize,
                        self.steps,
                        ranks,
                        fp.max_crashes as usize,
                    ));
                }
                sim.set_metrics(metrics);
                sim.set_tracer(tracer);
                Ok(RunHandle::new(sim))
            }
            ExecutorSpec::Threaded { grid } => {
                let pdims = IVec3::new(grid[0] as i32, grid[1] as i32, grid[2] as i32);
                let mut sim = ThreadedSim::new(store, bbox, pdims, self.force_field(), self.dt)
                    .map_err(|e| SpecError::Setup(e.to_string()))?;
                sim.set_resort_every(self.resort_every);
                sim.set_comm_config(self.comm_config());
                sim.set_metrics(metrics);
                sim.set_tracer(tracer);
                Ok(RunHandle::new(sim))
            }
        }
    }

    /// Runs the scenario on the one-shot threaded convenience path for its
    /// full `steps`, returning the final store, energy breakdown, and comm
    /// totals. Thin wrapper over the same persistent executor
    /// [`ScenarioSpec::instantiate`] builds.
    ///
    /// # Errors
    /// [`SpecError::BadValue`] when the spec's executor is not `threaded`;
    /// [`SpecError::Setup`] when the run is rejected or fails mid-flight.
    pub fn run_threaded(
        &self,
    ) -> Result<(AtomStore, sc_md::EnergyBreakdown, CommCounters), SpecError> {
        let ExecutorSpec::Threaded { grid } = &self.executor else {
            return Err(SpecError::BadValue {
                field: "executor.kind".into(),
                detail: format!(
                    "run_threaded needs a threaded executor, spec says {}",
                    self.executor.kind()
                ),
            });
        };
        let (store, bbox) = self.build_workload();
        let pdims = IVec3::new(grid[0] as i32, grid[1] as i32, grid[2] as i32);
        let mut sim = ThreadedSim::new(store, bbox, pdims, self.force_field(), self.dt)
            .map_err(|e| SpecError::Setup(e.to_string()))?;
        sim.set_resort_every(self.resort_every);
        sim.set_comm_config(self.comm_config());
        for _ in 0..self.steps {
            sim.try_step().map_err(|e| SpecError::Setup(e.to_string()))?;
        }
        let energy = sim.telemetry().energy;
        let stats = sim.comm_stats();
        Ok((sim.gather(), energy, stats))
    }
}

/// 64-bit FNV-1a over a byte stream.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the final-observables document for a finished run: atom count,
/// step count, the total energy as an exact IEEE-754 bit pattern, and an
/// FNV-1a hash over the full phase space (positions then velocities, in
/// store order, exact bits).
///
/// The document deliberately carries **no** wall times, job ids, or
/// hostnames, so "resumed job equals uninterrupted run" is a plain file
/// comparison: two runs of the same spec on the same executor
/// configuration produce byte-identical documents exactly when their final
/// phase space and energy are bitwise equal.
pub fn observables_doc(
    scenario: &str,
    steps_done: u64,
    store: &AtomStore,
    energy_total: f64,
) -> Json {
    let pos_then_vel = store
        .positions()
        .iter()
        .chain(store.velocities().iter())
        .flat_map(|v| [v.x, v.y, v.z])
        .flat_map(|c| c.to_bits().to_le_bytes());
    Json::Obj(vec![
        ("schema".to_string(), Json::str(OBSERVABLES_SCHEMA_ID)),
        ("scenario".to_string(), Json::str(scenario)),
        ("steps".to_string(), Json::num(steps_done as f64)),
        ("atoms".to_string(), Json::num(store.len() as f64)),
        ("energy_total".to_string(), Json::num(energy_total)),
        ("energy_bits".to_string(), Json::str(format!("0x{:016x}", energy_total.to_bits()))),
        ("phase_hash".to_string(), Json::str(format!("0x{:016x}", fnv1a(pos_then_vel)))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SCHEMA_ID;

    fn spec_cells(executor: &str, cells: usize) -> ScenarioSpec {
        let doc = format!(
            r#"{{
                "schema": "{SCHEMA_ID}",
                "name": "t",
                "system": {{"kind": "lj", "cells": {cells}, "temp": 1.0, "seed": 42}},
                "potential": {{"kind": "lj", "cutoff": 2.5}},
                "method": "sc",
                "executor": {executor},
                "dt": 0.002,
                "steps": 4
            }}"#
        );
        ScenarioSpec::from_json_str(&doc).unwrap()
    }

    fn spec(executor: &str) -> ScenarioSpec {
        // 5 FCC cells suffice for the serial engine; distributed executors
        // need ≥3 link cells per axis and get 7 (matching the bench matrix).
        let cells = if executor.contains("serial") { 5 } else { 7 };
        spec_cells(executor, cells)
    }

    #[test]
    fn serial_and_bsp_instantiate_and_step() {
        let mut serial = spec(r#"{"kind": "serial"}"#).instantiate().unwrap();
        serial.run(2);
        assert_eq!(serial.steps_done(), 2);
        let mut bsp = spec(r#"{"kind": "bsp", "grid": [2, 1, 1]}"#).instantiate().unwrap();
        bsp.try_step().unwrap();
        assert_eq!(bsp.steps_done(), 1);
        assert_eq!(bsp.executor_kind(), "bsp");
    }

    #[test]
    fn threaded_instantiates_like_any_other_executor() {
        let spec = spec(r#"{"kind": "threaded", "grid": [2, 1, 1]}"#);
        let mut handle = spec.instantiate().unwrap();
        assert_eq!(handle.executor_kind(), "threaded");
        handle.try_step().unwrap();
        assert_eq!(handle.steps_done(), 1);
        assert_eq!(handle.gather().len(), 4 * 7usize.pow(3));
        // The one-shot convenience wrapper still runs the full spec.
        let (store, energy, stats) = spec.run_threaded().unwrap();
        assert_eq!(store.len(), 4 * 7usize.pow(3));
        assert!(energy.total().is_finite());
        assert!(stats.messages > 0);
    }

    #[test]
    fn threaded_checkpoint_restore_continues_trajectory() {
        // Restore re-decomposes from an id-sorted gather, so the replay is
        // exact physics but rank-internal summation order may change:
        // compare with a tolerance, not bitwise (same caveat as the BSP
        // supervisor tests).
        let mut sim = spec(r#"{"kind": "threaded", "grid": [2, 1, 1]}"#).instantiate().unwrap();
        sim.run(2);
        let cp = sim.checkpoint();
        sim.run(2);
        let reference = sim.gather();
        sim.restore(&cp);
        assert_eq!(sim.steps_done(), 2);
        sim.run(2);
        let replay = sim.gather();
        assert_eq!(reference.len(), replay.len());
        for i in 0..reference.len() {
            assert_eq!(reference.ids()[i], replay.ids()[i], "id order differs at {i}");
            let dr = (reference.positions()[i] - replay.positions()[i]).norm();
            let dv = (reference.velocities()[i] - replay.velocities()[i]).norm();
            assert!(dr < 1e-9 && dv < 1e-9, "atom {i} drifted: dr={dr} dv={dv}");
        }
    }

    #[test]
    fn checkpoint_restore_replays_bitwise() {
        let mut sim = spec(r#"{"kind": "serial"}"#).instantiate().unwrap();
        sim.run(2);
        let cp = sim.checkpoint();
        sim.run(3);
        let reference = observables_doc("t", sim.steps_done(), &sim.gather(), 0.0);
        sim.restore(&cp);
        assert_eq!(sim.steps_done(), 2);
        sim.run(3);
        let replay = observables_doc("t", sim.steps_done(), &sim.gather(), 0.0);
        assert_eq!(reference.to_string(), replay.to_string());
    }

    #[test]
    fn sliced_run_equals_straight_run_bitwise() {
        // The scheduler steps jobs in slices; slicing must not perturb the
        // trajectory.
        let mut a = spec(r#"{"kind": "serial"}"#).instantiate().unwrap();
        a.run(6);
        let mut b = spec(r#"{"kind": "serial"}"#).instantiate().unwrap();
        for _ in 0..3 {
            b.run(2);
        }
        let doc_a = observables_doc("t", a.steps_done(), &a.gather(), a.total_energy());
        let doc_b = observables_doc("t", b.steps_done(), &b.gather(), b.total_energy());
        assert_eq!(doc_a.to_string(), doc_b.to_string());
    }

    #[test]
    fn labeled_instantiation_labels_the_registry() {
        let mut spec = spec(r#"{"kind": "serial"}"#);
        spec.observability.metrics = true;
        let sim = spec.instantiate_labeled(Some("job-9")).unwrap();
        assert_eq!(sim.metrics().label(), Some("job-9"));
        // Unlabeled: metrics on, no label.
        let sim = spec.instantiate().unwrap();
        assert!(sim.metrics().enabled());
        assert_eq!(sim.metrics().label(), None);
    }

    #[test]
    fn observables_doc_is_sensitive_to_single_bit_changes() {
        let spec = spec(r#"{"kind": "serial"}"#);
        let (mut store, _) = spec.build_workload();
        let a = observables_doc("t", 1, &store, -1.0);
        store.velocities_mut()[0].x = f64::from_bits(store.velocities()[0].x.to_bits() ^ 1);
        let b = observables_doc("t", 1, &store, -1.0);
        assert_ne!(a.to_string(), b.to_string());
        assert!(a.to_string().contains("0x"));
    }
}
