//! The per-step cost model: search + force + ghosts + communication.
//!
//! The model is *continuum*: cell counts and per-cell densities use the
//! ideal values (`cells = (d/r_cut)³`, `ρ_cell = ρ·r_cut³`) rather than the
//! integer cell grids the runtime builds. This removes integer-granularity
//! jitter from the curves while preserving every method-distinguishing term
//! the paper analyses: pattern sizes (Eq. 25/29), import volumes (Eq. 33 vs
//! the two-sided full-shell halo), and message counts (§4.2).

use crate::{MachineProfile, SilicaWorkload};
use sc_core::theory;
use sc_md::Method;
use serde::{Deserialize, Serialize};

/// Abstract operation counts for the cost components. These are kernel
/// weights (an exp-heavy Vashishta force evaluation costs far more than a
/// distance-squared candidate check), shared by all platforms; the platform
/// profile sets the rate at which they execute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostConsts {
    /// Ops per candidate examined in a cell pair sweep.
    pub cand_ops: f64,
    /// Ops per candidate in a cell *triplet* sweep (chain step: extra
    /// distance checks, species filters, index juggling).
    pub trip_cand_ops: f64,
    /// Ops per candidate in a neighbour-list scan (cheaper: contiguous).
    pub list_cand_ops: f64,
    /// Ops per accepted pair force evaluation.
    pub pair_force_ops: f64,
    /// Ops per accepted triplet force evaluation.
    pub triplet_force_ops: f64,
    /// Ops per imported ghost (unpack + bin + pack forces back).
    pub ghost_ops: f64,
    /// Extra ops per ghost for Hybrid's list rows (0 = rows built during
    /// the sweep, already counted there).
    pub ghost_list_ops: f64,
    /// Ops per owned atom (integration, rebinning, thermo).
    pub atom_ops: f64,
}

impl Default for CostConsts {
    fn default() -> Self {
        CostConsts {
            cand_ops: 1.0,
            trip_cand_ops: 3.0,
            list_cand_ops: 0.5,
            pair_force_ops: 30.0,
            triplet_force_ops: 60.0,
            ghost_ops: 300.0,
            ghost_list_ops: 0.0,
            atom_ops: 40.0,
        }
    }
}

/// The modelled per-step cost of one method at one granularity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodCosts {
    /// Compute seconds (search + force + ghost processing + per-atom).
    pub compute_s: f64,
    /// Communication seconds (latency + bandwidth terms).
    pub comm_s: f64,
    /// Ghost atoms imported per rank.
    pub ghosts: f64,
    /// Messages per rank per step.
    pub messages: f64,
    /// Bytes sent per rank per step.
    pub bytes: f64,
}

impl MethodCosts {
    /// Total step time.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s
    }
}

/// One point of a strong-scaling curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Core (task) count.
    pub cores: usize,
    /// Speedup over the reference configuration.
    pub speedup: f64,
    /// Parallel efficiency `speedup / (cores / ref_cores)`.
    pub efficiency: f64,
    /// Modelled step time (seconds).
    pub step_s: f64,
}

/// The cost model: workload × machine × kernel constants.
#[derive(Debug, Clone)]
pub struct MdCostModel {
    /// The workload.
    pub workload: SilicaWorkload,
    /// The machine.
    pub machine: MachineProfile,
    /// Kernel weights.
    pub consts: CostConsts,
}

/// Ghost-message wire bytes (id + species + position), matching
/// `sc_parallel::msg::GhostMsg::WIRE_BYTES`.
const GHOST_BYTES: f64 = 33.0;
/// Force-return wire bytes.
const FORCE_BYTES: f64 = 32.0;
/// Migration wire bytes.
const MIGRATE_BYTES: f64 = 57.0;

impl MdCostModel {
    /// Builds a model with default kernel constants.
    pub fn new(workload: SilicaWorkload, machine: MachineProfile) -> Self {
        MdCostModel { workload, machine, consts: CostConsts::default() }
    }

    /// Ghost atoms imported per rank for a halo of `lo + hi` one-sided
    /// depths at rank edge `d`.
    fn ghost_count(&self, d: f64, lo: f64, hi: f64) -> f64 {
        self.workload.density * ((d + lo + hi).powi(3) - d.powi(3))
    }

    /// The real-space halo depth: `max(r_cut2, 2·r_cut3)`.
    fn halo_width(&self) -> f64 {
        self.workload.rcut2.max(2.0 * self.workload.rcut3)
    }

    /// Cell-sweep candidate count per rank for a term: continuum cells of
    /// edge = cutoff, `cells · |Ψ| · ρ_cellⁿ`.
    fn sweep_candidates(&self, d: f64, rcut: f64, n: i32, psize: f64) -> f64 {
        let cells = (d / rcut).powi(3);
        let rho_cell = self.workload.density * rcut.powi(3);
        cells * psize * rho_cell.powi(n)
    }

    /// Models one step of `method` at `n` atoms per task (n ≥ ρ·rcut2³ so a
    /// rank sub-box fits the cutoff, as the real runtime requires).
    pub fn step_time(&self, method: Method, n: f64) -> MethodCosts {
        let w = &self.workload;
        let c = &self.consts;
        let d = w.rank_edge(n);
        let halo = self.halo_width();
        let sc3 = theory::sc_path_count(3) as f64;
        let fs3 = theory::fs_path_count(3) as f64;
        let sc2 = theory::sc_path_count(2) as f64;
        let fs2 = theory::fs_path_count(2) as f64;

        // --- search ops ---
        let search_ops = match method {
            Method::ShiftCollapse => {
                c.cand_ops * self.sweep_candidates(d, w.rcut2, 2, sc2)
                    + c.trip_cand_ops * self.sweep_candidates(d, w.rcut3, 3, sc3)
            }
            Method::FullShell => {
                c.cand_ops * self.sweep_candidates(d, w.rcut2, 2, fs2)
                    + c.trip_cand_ops * self.sweep_candidates(d, w.rcut3, 3, fs3)
            }
            Method::Hybrid => {
                // Pair-list build: a full-shell pair sweep whose base cells
                // include the two-sided ghost shell (boundary triplets need
                // rows for ghosts), i.e. (d + 2·halo)³ worth of cells.
                let rho_cell = w.density * w.rcut2.powi(3);
                let sweep_cells = ((d + 2.0 * halo) / w.rcut2).powi(3);
                let list_build = sweep_cells * fs2 * rho_cell * rho_cell;
                // Triplet pruning from the pair list: scan each owned row
                // (nb2 entries), expand the nb3 short ones over the rest.
                let trip_scan = n * (w.nb2() + w.nb3() * w.nb2() / 2.0);
                c.cand_ops * list_build + c.list_cand_ops * trip_scan
            }
        };

        // --- force ops: identical accepted-tuple counts for every method ---
        let force_ops = n
            * (w.pairs_per_atom() * c.pair_force_ops + w.triplets_per_atom() * c.triplet_force_ops);

        // --- ghosts ---
        let ghosts = match method {
            Method::ShiftCollapse => self.ghost_count(d, 0.0, halo),
            Method::FullShell | Method::Hybrid => self.ghost_count(d, halo, halo),
        };
        let ghost_ops = match method {
            Method::Hybrid => ghosts * (c.ghost_ops + c.ghost_list_ops),
            _ => ghosts * c.ghost_ops,
        };

        let compute_ops = search_ops + force_ops + ghost_ops + n * c.atom_ops;
        let compute_s = compute_ops / self.machine.ops_per_sec;

        // --- communication (Eq. 31) ---
        // SC uses 3-hop forwarded routing (§4.2): 3 ghost sends + 3 force
        // returns + 6 migration sends. The paper's production FS/Hybrid
        // codes exchange with all 26 neighbour sub-volumes: 26 + 26 + 6.
        let messages = match method {
            Method::ShiftCollapse => 3.0 + 3.0 + 6.0,
            _ => 26.0 + 26.0 + 6.0,
        };
        let bytes = ghosts * (GHOST_BYTES + FORCE_BYTES) + n * w.migration_fraction * MIGRATE_BYTES;
        let comm_s = messages * self.machine.latency_s + bytes / self.machine.bandwidth_bps;

        MethodCosts { compute_s, comm_s, ghosts, messages, bytes }
    }

    /// The finest legal granularity: one rank sub-box must fit the pair
    /// cutoff.
    pub fn min_granularity(&self) -> f64 {
        self.workload.density * self.workload.rcut2.powi(3)
    }

    /// Finds the granularity where `b` becomes at least as fast as `a`
    /// (scanning upward from `lo` to `hi`), or `None` if it never does.
    pub fn crossover(&self, a: Method, b: Method, lo: f64, hi: f64) -> Option<f64> {
        let mut n = lo.max(self.min_granularity());
        while n <= hi {
            if self.step_time(b, n).total_s() <= self.step_time(a, n).total_s() {
                return Some(n);
            }
            n *= 1.02;
        }
        None
    }

    /// Strong-scaling curve for a fixed `n_total` atoms: speedup and
    /// efficiency at each core count relative to `ref_cores`.
    pub fn strong_scaling(
        &self,
        method: Method,
        n_total: f64,
        cores: &[usize],
        ref_cores: usize,
    ) -> Vec<ScalingPoint> {
        let t_ref = self.step_time(method, n_total / ref_cores as f64).total_s();
        cores
            .iter()
            .map(|&p| {
                let t = self.step_time(method, n_total / p as f64).total_s();
                let speedup = t_ref / t;
                let efficiency = speedup / (p as f64 / ref_cores as f64);
                ScalingPoint { cores: p, speedup, efficiency, step_s: t }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon_model() -> MdCostModel {
        MdCostModel::new(SilicaWorkload::silica(), MachineProfile::xeon())
    }

    fn bgq_model() -> MdCostModel {
        MdCostModel::new(SilicaWorkload::silica(), MachineProfile::bgq())
    }

    #[test]
    fn sc_wins_at_fine_grain() {
        for model in [xeon_model(), bgq_model()] {
            let n = 24.0;
            let sc = model.step_time(Method::ShiftCollapse, n).total_s();
            let fs = model.step_time(Method::FullShell, n).total_s();
            let hy = model.step_time(Method::Hybrid, n).total_s();
            assert!(sc < fs && sc < hy, "{}: SC must win at N/P = 24", model.machine.name);
            // Multi-fold advantages, as in Fig. 8 (9.7×/10.5× on Xeon,
            // 5.1×/5.7× on BG/Q at the finest grain).
            assert!(hy / sc > 2.0, "{}: Hybrid/SC = {}", model.machine.name, hy / sc);
            assert!(fs / sc > 1.8, "{}: FS/SC = {}", model.machine.name, fs / sc);
        }
        // The Xeon fine-grain gap exceeds the BG/Q one (9.7× vs 5.1×).
        let gx = xeon_model().step_time(Method::Hybrid, 24.0).total_s()
            / xeon_model().step_time(Method::ShiftCollapse, 24.0).total_s();
        let gb = bgq_model().step_time(Method::Hybrid, 24.0).total_s()
            / bgq_model().step_time(Method::ShiftCollapse, 24.0).total_s();
        assert!(gx > gb, "Xeon gap {gx} should exceed BG/Q gap {gb}");
    }

    #[test]
    fn hybrid_wins_at_coarse_grain_with_crossover_ordering() {
        // Fig. 8: crossover at N/P ≈ 2095 (Xeon) and ≈ 425 (BG/Q) —
        // the BG/Q crossover must come much earlier.
        let x = xeon_model().crossover(Method::ShiftCollapse, Method::Hybrid, 24.0, 1e6);
        let b = bgq_model().crossover(Method::ShiftCollapse, Method::Hybrid, 24.0, 1e6);
        let x = x.expect("Xeon crossover must exist");
        let b = b.expect("BG/Q crossover must exist");
        assert!(b < x / 2.0, "BG/Q crossover {b} should be much finer than Xeon {x}");
        assert!((800.0..8000.0).contains(&x), "Xeon crossover {x} (paper: 2095)");
        assert!((150.0..1500.0).contains(&b), "BG/Q crossover {b} (paper: 425)");
    }

    #[test]
    fn fs_never_beats_sc() {
        for n in [24.0, 100.0, 1000.0, 10_000.0, 100_000.0] {
            for m in [xeon_model(), bgq_model()] {
                assert!(
                    m.step_time(Method::ShiftCollapse, n).total_s()
                        < m.step_time(Method::FullShell, n).total_s(),
                    "{} n = {n}",
                    m.machine.name
                );
            }
        }
    }

    #[test]
    fn strong_scaling_sc_stays_efficient() {
        // Fig. 9(a): 0.88M atoms on 12–768 Xeon cores — SC ≈ 90%+ (92.6% in
        // the paper), FS and Hybrid degrade badly (38.3% / 26.8%).
        let m = xeon_model();
        let cores = [12, 48, 192, 768];
        let sc = m.strong_scaling(Method::ShiftCollapse, 0.88e6, &cores, 12);
        let fs = m.strong_scaling(Method::FullShell, 0.88e6, &cores, 12);
        let hy = m.strong_scaling(Method::Hybrid, 0.88e6, &cores, 12);
        assert!(sc.last().unwrap().efficiency > 0.8, "SC eff {:?}", sc.last().unwrap());
        assert!(fs.last().unwrap().efficiency < sc.last().unwrap().efficiency);
        assert!(hy.last().unwrap().efficiency < sc.last().unwrap().efficiency);
        // Efficiency is monotonically non-increasing with core count.
        for curve in [&sc, &fs, &hy] {
            for w in curve.windows(2) {
                assert!(w[1].efficiency <= w[0].efficiency + 1e-9);
            }
        }
    }

    #[test]
    fn strong_scaling_bgq_extreme_scale() {
        // §5.3: 50.3M atoms on up to 524 288 cores (2M tasks) — SC keeps
        // > 80% efficiency relative to the 128-core reference.
        let m = bgq_model();
        let cores = [128, 1024, 8192, 65_536, 524_288];
        let sc = m.strong_scaling(Method::ShiftCollapse, 50.3e6, &cores, 128);
        assert!(
            sc.last().unwrap().efficiency > 0.8,
            "SC eff at 524k cores: {:?}",
            sc.last().unwrap()
        );
    }

    #[test]
    #[ignore = "diagnostic dump for calibration"]
    fn dump_breakdown() {
        for model in [xeon_model(), bgq_model()] {
            println!("=== {} ===", model.machine.name);
            for n in [24.0, 100.0, 425.0, 1000.0, 2095.0, 6000.0, 20000.0] {
                for m in [Method::ShiftCollapse, Method::FullShell, Method::Hybrid] {
                    let c = model.step_time(m, n);
                    println!(
                        "n={n:>7} {:10} compute={:.3e} comm={:.3e} total={:.3e} ghosts={:.0}",
                        m.name(),
                        c.compute_s,
                        c.comm_s,
                        c.total_s(),
                        c.ghosts
                    );
                }
            }
            let x = model.crossover(Method::ShiftCollapse, Method::Hybrid, 24.0, 1e6);
            println!("crossover SC->Hybrid: {x:?}");
        }
    }

    #[test]
    fn ghost_counts_ordered() {
        let m = xeon_model();
        let n = 500.0;
        let sc = m.step_time(Method::ShiftCollapse, n);
        let fs = m.step_time(Method::FullShell, n);
        assert!(sc.ghosts < fs.ghosts);
        assert!(sc.messages < fs.messages);
    }

    #[test]
    fn min_granularity_matches_cutoff_box() {
        let m = xeon_model();
        // ρ·rcut2³ ≈ 11 atoms.
        assert!((m.min_granularity() - 10.98).abs() < 0.5);
    }
}
