//! Workload description: the silica benchmark system of the paper's §5.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// The range-limited n-tuple workload parameters of the benchmark system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SilicaWorkload {
    /// Number density (atoms/Å³).
    pub density: f64,
    /// Pair cutoff (Å).
    pub rcut2: f64,
    /// Triplet cutoff (Å) — ≈ 0.47·rcut2 in the paper's silica system.
    pub rcut3: f64,
    /// Fraction of a rank's atoms that migrate per step.
    pub migration_fraction: f64,
}

impl SilicaWorkload {
    /// The paper's silica system: amorphous SiO₂ density (≈ 2.2 g/cm³ →
    /// 0.066 atoms/Å³) with the Vashishta cutoffs.
    pub fn silica() -> Self {
        SilicaWorkload { density: 0.066, rcut2: 5.5, rcut3: 2.6, migration_fraction: 0.02 }
    }

    /// Average pair-cutoff neighbours per atom `(4π/3)·ρ·rcut2³`.
    pub fn nb2(&self) -> f64 {
        4.0 * PI / 3.0 * self.density * self.rcut2.powi(3)
    }

    /// Average triplet-cutoff neighbours per atom.
    pub fn nb3(&self) -> f64 {
        4.0 * PI / 3.0 * self.density * self.rcut3.powi(3)
    }

    /// Undirected cutoff pairs per atom.
    pub fn pairs_per_atom(&self) -> f64 {
        self.nb2() / 2.0
    }

    /// Undirected chain triplets per atom (vertex-centred: `nb3²/2`).
    pub fn triplets_per_atom(&self) -> f64 {
        self.nb3() * self.nb3() / 2.0
    }

    /// Rank sub-box edge at granularity `n` atoms per task.
    pub fn rank_edge(&self, n: f64) -> f64 {
        (n / self.density).cbrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silica_numbers_are_sane() {
        let w = SilicaWorkload::silica();
        assert!((w.rcut3 / w.rcut2 - 0.47).abs() < 0.01);
        // ≈ 46 pair-cutoff neighbours, ≈ 4.9 triplet-cutoff neighbours.
        assert!((w.nb2() - 46.0).abs() < 2.0, "nb2 = {}", w.nb2());
        assert!((w.nb3() - 4.9).abs() < 0.5, "nb3 = {}", w.nb3());
        // 24 atoms per task (paper's finest grain) is a ~7.1 Å box.
        assert!((w.rank_edge(24.0) - 7.13).abs() < 0.05);
    }
}
