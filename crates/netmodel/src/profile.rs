//! Machine profiles for the two benchmark platforms of the paper.

use serde::{Deserialize, Serialize};

/// A machine profile: the three platform constants of the communication/
/// computation model. Values are order-of-magnitude-faithful to the public
/// specifications of the paper's two platforms; the *ratios* between the
/// profiles (per-task compute rate above all) are what produce the paper's
/// platform-dependent crossover shift (§5.2: the BG/Q crossover sits at a
/// much finer granularity "likely due to the lower computational power per
/// core").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProfile {
    /// Platform name.
    pub name: String,
    /// Abstract operations per second one MPI task sustains in the tuple
    /// search/force kernel.
    pub ops_per_sec: f64,
    /// Point-to-point message latency (seconds), including the software
    /// overhead of posting the exchange.
    pub latency_s: f64,
    /// Effective per-task link bandwidth (bytes/second).
    pub bandwidth_bps: f64,
    /// Cores (MPI tasks) per node — used to translate the paper's node
    /// counts.
    pub tasks_per_node: usize,
}

impl MachineProfile {
    /// Intel Xeon X5650 cluster (USC-HPCC, §5): 2.66-class GHz cores, 12
    /// per node, Myrinet-class interconnect.
    pub fn xeon() -> Self {
        MachineProfile {
            name: "Intel-Xeon".into(),
            ops_per_sec: 1.1e9,
            // Effective per-exchange latency including MPI software overhead
            // and neighbour synchronisation on a 2010-era commodity fabric.
            latency_s: 3.0e-5,
            bandwidth_bps: 0.5e9,
            tasks_per_node: 12,
        }
    }

    /// BlueGene/Q (Mira-class, §5): 1.6 GHz A2 cores running 4 MPI tasks
    /// per core (64 per node), 5-D torus. Per-task compute rate is roughly
    /// an order of magnitude below a Xeon core's; latency is low.
    pub fn bgq() -> Self {
        MachineProfile {
            name: "BlueGene/Q".into(),
            // Per-task rate: a 1.6 GHz in-order A2 core shared by 4 MPI
            // tasks — roughly an order of magnitude below a Xeon core.
            ops_per_sec: 1.2e8,
            // The 5-D torus has very low latency and high per-node
            // bandwidth relative to the weak cores, which is why the
            // compute/communication trade-off tips toward Hybrid at a much
            // finer granularity than on Xeon (§5.2).
            latency_s: 3.0e-6,
            bandwidth_bps: 1.8e9,
            tasks_per_node: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_ratio_drives_crossover_direction() {
        // BG/Q tasks are much slower than Xeon cores — the property §5.2
        // credits for the smaller BG/Q crossover granularity.
        let x = MachineProfile::xeon();
        let b = MachineProfile::bgq();
        assert!(x.ops_per_sec / b.ops_per_sec > 5.0);
        assert!(x.tasks_per_node == 12 && b.tasks_per_node == 64);
    }
}
