//! # sc-netmodel — calibrated machine model for the paper's performance figures
//!
//! **Substitution note (DESIGN.md §3).** The paper's granularity and
//! strong-scaling results (Figs. 8–9, §5.2–5.3) were measured on a 768-core
//! Intel Xeon cluster and on BlueGene/Q. This reproduction runs on a
//! single-core host, so those *wall-clock* experiments cannot be re-measured
//! directly. What the paper itself argues — and what this crate implements —
//! is that the performance is governed by a small set of quantities that our
//! implementation computes exactly:
//!
//! * the n-tuple **search-space sizes** per method (|Ψ|·ρⁿ per cell, Lemma 5
//!   and Eq. 29) and the force-evaluation counts,
//! * the **import volume** per method (Eq. 33 vs. the two-sided full-shell
//!   halo) plus per-ghost processing,
//! * the **communication model** `T_comm = c_bw·V_import + c_lat·n_msg`
//!   (Eq. 31), with 12 messages/step for SC (3 ghost hops + 3 reduction
//!   hops + 6 migration) vs. 18 for FS/Hybrid.
//!
//! [`MdCostModel`] combines these with a [`MachineProfile`] whose constants
//! are set to public characteristics of the two platforms (per-task
//! instruction rate, MPI latency, link bandwidth). The claims reproduced are
//! *shape* claims: who wins at which granularity, where the SC→Hybrid
//! crossover falls, and how strong-scaling efficiency decays — not absolute
//! seconds.

#![warn(missing_docs)]

mod model;
mod profile;
mod workload;

pub use model::{CostConsts, MdCostModel, MethodCosts, ScalingPoint};
pub use profile::MachineProfile;
pub use workload::SilicaWorkload;
