//! Property-based tests of the geometry substrate: wrapping, minimum
//! image, and region arithmetic under arbitrary inputs.

use proptest::prelude::*;
use sc_geom::{CellRegion, IVec3, SimulationBox, Vec3};

fn vec3(range: std::ops::Range<f64>) -> impl Strategy<Value = Vec3> {
    let r = range;
    (r.clone(), r.clone(), r).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// wrap() lands in the box and is idempotent; wrapping preserves the
    /// position modulo box vectors.
    #[test]
    fn wrap_properties(l in 1.0f64..50.0, r in vec3(-200.0..200.0)) {
        let bbox = SimulationBox::cubic(l);
        let w = bbox.wrap(r);
        prop_assert!(bbox.contains(w));
        prop_assert!((bbox.wrap(w) - w).norm() < 1e-12);
        for a in 0..3 {
            let k = (r[a] - w[a]) / l;
            prop_assert!((k - k.round()).abs() < 1e-9, "axis {a}: offset {k} not integer");
        }
    }

    /// Minimum image: antisymmetric, within half a box per axis, and never
    /// longer than the raw displacement of wrapped positions.
    #[test]
    fn min_image_properties(l in 2.0f64..40.0, a in vec3(-50.0..50.0), b in vec3(-50.0..50.0)) {
        let bbox = SimulationBox::cubic(l);
        let (wa, wb) = (bbox.wrap(a), bbox.wrap(b));
        let d = bbox.min_image(wa, wb);
        let e = bbox.min_image(wb, wa);
        prop_assert!((d + e).norm() < 1e-9);
        for ax in 0..3 {
            prop_assert!(d[ax].abs() <= 0.5 * l + 1e-9);
        }
        prop_assert!(d.norm() <= (wb - wa).norm() + 1e-9);
        // Displacement is equivalent to the raw one modulo box vectors.
        for ax in 0..3 {
            let k = (wb[ax] - wa[ax] - d[ax]) / l;
            prop_assert!((k - k.round()).abs() < 1e-9);
        }
    }

    /// Euclidean modulo on cell indices: always in range, idempotent, and
    /// compatible with addition.
    #[test]
    fn rem_euclid_properties(
        x in -100i32..100, y in -100i32..100, z in -100i32..100,
        dx in -100i32..100, dy in -100i32..100, dz in -100i32..100,
        l in 1i32..12,
    ) {
        let dims = IVec3::splat(l);
        let q = IVec3::new(x, y, z);
        let d = IVec3::new(dx, dy, dz);
        let w = q.rem_euclid(dims);
        prop_assert!(w.in_first_octant());
        prop_assert!(w.x < l && w.y < l && w.z < l);
        prop_assert_eq!(w.rem_euclid(dims), w);
        // (q + d) % L == (q%L + d) % L
        prop_assert_eq!((q + d).rem_euclid(dims), (w + d).rem_euclid(dims));
    }

    /// Region intersection is commutative, contained in both operands, and
    /// grown regions contain the original.
    #[test]
    fn region_properties(
        a_lo in 0i32..4, a_ext in 1i32..5,
        b_lo in 0i32..4, b_ext in 1i32..5,
        grow in 0i32..3,
    ) {
        let a = CellRegion::new(IVec3::splat(a_lo), IVec3::splat(a_lo + a_ext));
        let b = CellRegion::new(IVec3::splat(b_lo), IVec3::splat(b_lo + b_ext));
        match (a.intersect(&b), b.intersect(&a)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x, y);
                for q in x.iter() {
                    prop_assert!(a.contains(q) && b.contains(q));
                }
            }
            (None, None) => {}
            _ => prop_assert!(false, "intersection not commutative"),
        }
        let g = a.grown(grow, grow);
        prop_assert!(g.cell_count() >= a.cell_count());
        for q in a.iter() {
            prop_assert!(g.contains(q));
        }
    }

    /// Vector algebra: dot/cross identities.
    #[test]
    fn vec3_identities(a in vec3(-10.0..10.0), b in vec3(-10.0..10.0), s in -5.0f64..5.0) {
        prop_assert!((a.cross(b) + b.cross(a)).norm() < 1e-12);
        prop_assert!(a.cross(b).dot(a).abs() < 1e-9);
        prop_assert!(((a * s).dot(b) - s * a.dot(b)).abs() < 1e-9);
        prop_assert!((a.norm_sq() - a.dot(a)).abs() < 1e-12);
    }
}
