//! 3-component `i32` vector for cell indices and cell offsets.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-component `i32` vector.
///
/// This is the element of the paper's cell-index vector space `L`: both
/// absolute cell coordinates `q = (q_x, q_y, q_z)` and the offsets
/// `v_k` that make up a computation path are `IVec3`s. The algebra the
/// shift-collapse algorithm manipulates (path shifting `p + Δ`, differential
/// representation `σ(p)`, octant compression) is plain `IVec3` arithmetic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct IVec3 {
    /// x component.
    pub x: i32,
    /// y component.
    pub y: i32,
    /// z component.
    pub z: i32,
}

impl IVec3 {
    /// The zero vector (the origin cell offset).
    pub const ZERO: IVec3 = IVec3 { x: 0, y: 0, z: 0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        IVec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: i32) -> Self {
        IVec3::new(v, v, v)
    }

    /// Euclidean (always non-negative) modulo, component-wise against the
    /// lattice extents `dims`. This is exactly the paper's cell-offset
    /// operation `q'_α = (q_α + Δ_α) % L_α` under periodic boundaries.
    #[inline]
    pub fn rem_euclid(self, dims: IVec3) -> IVec3 {
        IVec3::new(self.x.rem_euclid(dims.x), self.y.rem_euclid(dims.y), self.z.rem_euclid(dims.z))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: IVec3) -> IVec3 {
        IVec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: IVec3) -> IVec3 {
        IVec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Sum of components — handy for counting and for lexicographic tricks.
    #[inline]
    pub fn sum(self) -> i32 {
        self.x + self.y + self.z
    }

    /// Product of components (e.g. number of cells in an `Lx×Ly×Lz` lattice).
    #[inline]
    pub fn product(self) -> i64 {
        self.x as i64 * self.y as i64 * self.z as i64
    }

    /// Chebyshev (L∞) norm: the maximum absolute component. Two cells are
    /// nearest neighbours (26-neighbourhood) iff the Chebyshev distance of
    /// their indices is ≤ 1, which is the adjacency `GENERATE-FS` walks.
    #[inline]
    pub fn linf_norm(self) -> i32 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// Returns `true` if every component is non-negative — i.e. the vector
    /// lies in the first octant, which is the invariant `OC-SHIFT`
    /// establishes for whole paths relative to their octant corner.
    #[inline]
    pub fn in_first_octant(self) -> bool {
        self.x >= 0 && self.y >= 0 && self.z >= 0
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [i32; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [i32; 3]) -> Self {
        IVec3::new(a[0], a[1], a[2])
    }

    /// Iterates over every lattice point of the axis-aligned box
    /// `[lo, hi]` (inclusive on both ends), in z-fastest order.
    pub fn box_iter(lo: IVec3, hi: IVec3) -> impl Iterator<Item = IVec3> {
        (lo.x..=hi.x).flat_map(move |x| {
            (lo.y..=hi.y).flat_map(move |y| (lo.z..=hi.z).map(move |z| IVec3::new(x, y, z)))
        })
    }
}

impl fmt::Display for IVec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

impl Index<usize> for IVec3 {
    type Output = i32;
    #[inline]
    fn index(&self, i: usize) -> &i32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("IVec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for IVec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut i32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("IVec3 index out of range: {i}"),
        }
    }
}

impl Add for IVec3 {
    type Output = IVec3;
    #[inline]
    fn add(self, rhs: IVec3) -> IVec3 {
        IVec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for IVec3 {
    #[inline]
    fn add_assign(&mut self, rhs: IVec3) {
        *self = *self + rhs;
    }
}

impl Sub for IVec3 {
    type Output = IVec3;
    #[inline]
    fn sub(self, rhs: IVec3) -> IVec3 {
        IVec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for IVec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: IVec3) {
        *self = *self - rhs;
    }
}

impl Mul<i32> for IVec3 {
    type Output = IVec3;
    #[inline]
    fn mul(self, s: i32) -> IVec3 {
        IVec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for IVec3 {
    type Output = IVec3;
    #[inline]
    fn neg(self) -> IVec3 {
        IVec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = IVec3::new(1, -2, 3);
        let b = IVec3::new(4, 5, -6);
        assert_eq!(a + b, IVec3::new(5, 3, -3));
        assert_eq!(a - b, IVec3::new(-3, -7, 9));
        assert_eq!(a * 2, IVec3::new(2, -4, 6));
        assert_eq!(-a, IVec3::new(-1, 2, -3));
    }

    #[test]
    fn rem_euclid_is_always_nonnegative() {
        let dims = IVec3::new(4, 5, 6);
        let v = IVec3::new(-1, -6, 13);
        let w = v.rem_euclid(dims);
        assert_eq!(w, IVec3::new(3, 4, 1));
        assert!(w.in_first_octant());
        // Wrapping twice is idempotent.
        assert_eq!(w.rem_euclid(dims), w);
    }

    #[test]
    fn linf_norm_describes_26_neighbourhood() {
        assert_eq!(IVec3::ZERO.linf_norm(), 0);
        assert_eq!(IVec3::new(1, -1, 1).linf_norm(), 1);
        assert_eq!(IVec3::new(0, 2, -1).linf_norm(), 2);
        // All 27 offsets with L∞ ≤ 1:
        let n = IVec3::box_iter(IVec3::splat(-1), IVec3::splat(1)).count();
        assert_eq!(n, 27);
    }

    #[test]
    fn box_iter_covers_box_without_duplicates() {
        let lo = IVec3::new(-1, 0, 2);
        let hi = IVec3::new(1, 2, 3);
        let pts: Vec<_> = IVec3::box_iter(lo, hi).collect();
        assert_eq!(pts.len(), 3 * 3 * 2);
        let set: std::collections::HashSet<_> = pts.iter().copied().collect();
        assert_eq!(set.len(), pts.len());
        for p in pts {
            assert!(p.x >= lo.x && p.x <= hi.x);
            assert!(p.y >= lo.y && p.y <= hi.y);
            assert!(p.z >= lo.z && p.z <= hi.z);
        }
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Derived Ord is lexicographic on (x, y, z); the pattern canonical
        // form relies on this being a total order.
        assert!(IVec3::new(0, 0, 1) < IVec3::new(0, 1, 0));
        assert!(IVec3::new(0, 1, 0) < IVec3::new(1, 0, 0));
    }

    #[test]
    fn product_and_sum() {
        let v = IVec3::new(4, 5, 6);
        assert_eq!(v.product(), 120);
        assert_eq!(v.sum(), 15);
    }
}
