//! Periodic orthorhombic simulation box.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// An orthorhombic simulation volume `[0, Lx) × [0, Ly) × [0, Lz)` with
/// periodic boundary conditions in all three Cartesian directions, as assumed
/// throughout the paper (§3.1.1).
///
/// The box provides the two operations MD needs constantly:
/// [`SimulationBox::wrap`] maps any position back into the primary image, and
/// [`SimulationBox::min_image`] returns the minimum-image displacement
/// between two (wrapped) positions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationBox {
    lengths: Vec3,
}

impl SimulationBox {
    /// Creates a box with the given edge lengths.
    ///
    /// # Panics
    /// Panics if any length is not strictly positive and finite.
    pub fn new(lengths: Vec3) -> Self {
        assert!(
            lengths.x > 0.0 && lengths.y > 0.0 && lengths.z > 0.0 && lengths.is_finite(),
            "box lengths must be positive and finite, got {lengths:?}"
        );
        SimulationBox { lengths }
    }

    /// Creates a cubic box with edge `l`.
    pub fn cubic(l: f64) -> Self {
        SimulationBox::new(Vec3::splat(l))
    }

    /// Edge lengths of the box.
    #[inline]
    pub fn lengths(&self) -> Vec3 {
        self.lengths
    }

    /// Box volume.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.lengths.x * self.lengths.y * self.lengths.z
    }

    /// Wraps a position into the primary image `[0, L)` per axis.
    ///
    /// `rem_euclid` alone can return exactly `L`: e.g. wrapping a tiny
    /// negative coordinate (`-1e-17` with `L = 10`) rounds `-1e-17 + 10` to
    /// `10.0`, and the next representable value below `2L` behaves the same
    /// way. Such a coordinate fails [`SimulationBox::contains`] and would bin
    /// into an out-of-range cell, so the result is folded back to `0.0`.
    #[inline]
    pub fn wrap(&self, r: Vec3) -> Vec3 {
        #[inline]
        fn wrap1(x: f64, l: f64) -> f64 {
            let w = x.rem_euclid(l);
            if w < l {
                w
            } else {
                0.0
            }
        }
        Vec3::new(
            wrap1(r.x, self.lengths.x),
            wrap1(r.y, self.lengths.y),
            wrap1(r.z, self.lengths.z),
        )
    }

    /// Returns `true` if `r` lies in the primary image.
    #[inline]
    pub fn contains(&self, r: Vec3) -> bool {
        (0.0..self.lengths.x).contains(&r.x)
            && (0.0..self.lengths.y).contains(&r.y)
            && (0.0..self.lengths.z).contains(&r.z)
    }

    /// Minimum-image displacement `r_j − r_i`, i.e. the shortest periodic
    /// image of the separation vector. Valid for separations up to half the
    /// box length per axis, which the cell method guarantees whenever the
    /// lattice has ≥ 3 cells per axis (cell edge ≥ cutoff).
    #[inline]
    pub fn min_image(&self, ri: Vec3, rj: Vec3) -> Vec3 {
        let mut d = rj - ri;
        for a in 0..3 {
            let l = self.lengths[a];
            if d[a] > 0.5 * l {
                d[a] -= l;
            } else if d[a] < -0.5 * l {
                d[a] += l;
            }
        }
        d
    }

    /// Minimum-image distance squared between two positions.
    #[inline]
    pub fn dist_sq(&self, ri: Vec3, rj: Vec3) -> f64 {
        self.min_image(ri, rj).norm_sq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_brings_positions_into_box() {
        let b = SimulationBox::new(Vec3::new(10.0, 20.0, 30.0));
        let r = b.wrap(Vec3::new(-1.0, 25.0, 61.0));
        assert!(b.contains(r));
        assert!((r.x - 9.0).abs() < 1e-12);
        assert!((r.y - 5.0).abs() < 1e-12);
        assert!((r.z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_is_idempotent() {
        let b = SimulationBox::cubic(7.3);
        let r = b.wrap(Vec3::new(-13.4, 100.0, 3.6));
        assert_eq!(b.wrap(r), r);
    }

    #[test]
    fn wrap_never_returns_the_upper_bound() {
        let b = SimulationBox::new(Vec3::new(10.0, 7.3, 1.0));
        // Boundary-straddling inputs whose rem_euclid rounds to exactly L.
        let cases = [
            Vec3::new(-1e-17, 0.0, 0.0),
            Vec3::new(10.0, 7.3, 1.0),
            Vec3::new(-0.0, -1e-300, f64::from_bits(1.0f64.to_bits() - 1)),
            Vec3::new(20.0f64.next_down(), 7.3f64.next_down() + 7.3, 2.0),
        ];
        for r in cases {
            let w = b.wrap(r);
            assert!(b.contains(w), "wrap({r:?}) = {w:?} escaped the box");
        }
    }

    #[test]
    fn min_image_shorter_than_half_box() {
        let b = SimulationBox::cubic(10.0);
        let ri = Vec3::new(0.5, 0.5, 0.5);
        let rj = Vec3::new(9.5, 9.5, 9.5);
        let d = b.min_image(ri, rj);
        // Nearest image of rj is at (-0.5,-0.5,-0.5): displacement -1 per axis.
        assert!((d.x + 1.0).abs() < 1e-12);
        assert!((d.y + 1.0).abs() < 1e-12);
        assert!((d.z + 1.0).abs() < 1e-12);
        assert!((b.dist_sq(ri, rj) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_image_antisymmetric() {
        let b = SimulationBox::new(Vec3::new(8.0, 9.0, 10.0));
        let ri = Vec3::new(7.9, 0.1, 5.0);
        let rj = Vec3::new(0.2, 8.8, 5.2);
        let dij = b.min_image(ri, rj);
        let dji = b.min_image(rj, ri);
        assert!((dij + dji).norm() < 1e-12);
    }

    #[test]
    fn volume() {
        let b = SimulationBox::new(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.volume(), 24.0);
    }

    #[test]
    #[should_panic]
    fn zero_length_rejected() {
        let _ = SimulationBox::new(Vec3::new(0.0, 1.0, 1.0));
    }
}
