//! Half-open boxes of integer cell indices.

use crate::IVec3;
use serde::{Deserialize, Serialize};

/// A half-open axis-aligned box of cell indices `[lo, hi)`.
///
/// Domain decomposition assigns each rank a `CellRegion` of the global cell
/// lattice; import-volume bookkeeping (`Vω = |Π(Ω,Ψ) − Ω|`, Eq. 14 of the
/// paper) is intersection/containment arithmetic on such regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellRegion {
    /// Inclusive lower corner.
    pub lo: IVec3,
    /// Exclusive upper corner.
    pub hi: IVec3,
}

impl CellRegion {
    /// Creates a region; `hi` must dominate `lo` component-wise.
    ///
    /// # Panics
    /// Panics if the region would be empty or inverted on any axis.
    pub fn new(lo: IVec3, hi: IVec3) -> Self {
        assert!(
            lo.x < hi.x && lo.y < hi.y && lo.z < hi.z,
            "empty or inverted region: lo={lo}, hi={hi}"
        );
        CellRegion { lo, hi }
    }

    /// The region `[0, dims)` covering a whole lattice.
    pub fn whole(dims: IVec3) -> Self {
        CellRegion::new(IVec3::ZERO, dims)
    }

    /// Extent per axis.
    #[inline]
    pub fn extent(&self) -> IVec3 {
        self.hi - self.lo
    }

    /// Number of cells in the region.
    #[inline]
    pub fn cell_count(&self) -> i64 {
        self.extent().product()
    }

    /// Returns `true` if `q` lies inside the region.
    #[inline]
    pub fn contains(&self, q: IVec3) -> bool {
        q.x >= self.lo.x
            && q.x < self.hi.x
            && q.y >= self.lo.y
            && q.y < self.hi.y
            && q.z >= self.lo.z
            && q.z < self.hi.z
    }

    /// Grows the region by `minus` cells on the low side and `plus` cells on
    /// the high side of every axis. This is how a rank's owned region is
    /// expanded to its *coverage*: the SC pattern needs `plus = n−1, minus = 0`
    /// (first-octant import), full shell needs `plus = minus = n−1`.
    pub fn grown(&self, minus: i32, plus: i32) -> CellRegion {
        CellRegion::new(self.lo - IVec3::splat(minus), self.hi + IVec3::splat(plus))
    }

    /// Iterates over all cell indices in the region (unwrapped; callers apply
    /// periodic wrapping where needed).
    pub fn iter(&self) -> impl Iterator<Item = IVec3> {
        IVec3::box_iter(self.lo, self.hi - IVec3::splat(1))
    }

    /// Intersection with another region, or `None` if disjoint.
    pub fn intersect(&self, other: &CellRegion) -> Option<CellRegion> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo.x < hi.x && lo.y < hi.y && lo.z < hi.z {
            Some(CellRegion::new(lo, hi))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_containment() {
        let r = CellRegion::new(IVec3::new(1, 1, 1), IVec3::new(4, 5, 6));
        assert_eq!(r.cell_count(), 3 * 4 * 5);
        assert!(r.contains(IVec3::new(1, 1, 1)));
        assert!(!r.contains(IVec3::new(4, 1, 1))); // hi is exclusive
        assert!(!r.contains(IVec3::new(0, 1, 1)));
    }

    #[test]
    fn grown_matches_import_volume_formula() {
        // Eq. 33 of the paper: Vω(Ω, Ψ_SC) = (l+n−1)³ − l³ for a cubic
        // domain of l cells and first-octant coverage of depth n−1.
        for l in 1..6i64 {
            for n in 2..6i32 {
                let r = CellRegion::new(IVec3::ZERO, IVec3::splat(l as i32));
                let cov = r.grown(0, n - 1);
                let vol = cov.cell_count() - r.cell_count();
                let expect = (l + (n as i64) - 1).pow(3) - l.pow(3);
                assert_eq!(vol, expect, "l={l}, n={n}");
            }
        }
    }

    #[test]
    fn iter_visits_each_cell_once() {
        let r = CellRegion::new(IVec3::new(0, 0, 0), IVec3::new(2, 3, 2));
        let cells: Vec<_> = r.iter().collect();
        assert_eq!(cells.len() as i64, r.cell_count());
        let set: std::collections::HashSet<_> = cells.iter().copied().collect();
        assert_eq!(set.len(), cells.len());
        assert!(cells.iter().all(|&q| r.contains(q)));
    }

    #[test]
    fn intersect() {
        let a = CellRegion::new(IVec3::ZERO, IVec3::splat(4));
        let b = CellRegion::new(IVec3::splat(2), IVec3::splat(6));
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, CellRegion::new(IVec3::splat(2), IVec3::splat(4)));
        let d = CellRegion::new(IVec3::splat(4), IVec3::splat(5));
        assert!(a.intersect(&d).is_none());
    }

    #[test]
    #[should_panic]
    fn empty_region_rejected() {
        let _ = CellRegion::new(IVec3::ZERO, IVec3::new(0, 1, 1));
    }
}
