//! Geometry substrate for the shift-collapse MD stack.
//!
//! This crate provides the small, dependency-free building blocks every other
//! crate in the workspace leans on:
//!
//! * [`Vec3`] — a 3-component `f64` vector with the usual arithmetic,
//!   dot/cross products, and norms. Atom positions, velocities, and forces
//!   are all `Vec3`s.
//! * [`IVec3`] — a 3-component `i32` vector used for *cell indices* and
//!   *cell offsets*. The computation-pattern algebra of the paper
//!   (Kunaseth et al., SC'13) is entirely integer-vector arithmetic over the
//!   cell lattice `L`, so `IVec3` is the atom of that algebra.
//! * [`SimulationBox`] — an orthorhombic periodic simulation volume with
//!   position wrapping and minimum-image displacement.
//! * [`CellRegion`] — a half-open axis-aligned box of integer cell indices,
//!   used for domain decomposition and import-volume bookkeeping.
//!
//! # Conventions
//!
//! * Cartesian axes are indexed `0 = x`, `1 = y`, `2 = z` everywhere.
//! * Periodic wrapping follows the paper's cell-offset operation
//!   `q'_α = (q_α + Δ_α) % L_α` (Euclidean modulo, always non-negative).

#![warn(missing_docs)]

mod ivec3;
mod pbc;
mod region;
mod vec3;

pub use ivec3::IVec3;
pub use pbc::SimulationBox;
pub use region::CellRegion;
pub use vec3::Vec3;

/// The three Cartesian axes, convenient for loops that must treat x, y, z
/// symmetrically (as the paper's proofs do).
pub const AXES: [usize; 3] = [0, 1, 2];
