//! 3-component `f64` vector.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-component `f64` vector.
///
/// Used for atom positions, velocities, and forces. All arithmetic is
/// component-wise; [`Vec3::dot`], [`Vec3::cross`], and the norm helpers cover
/// the geometric operations MD needs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Squared Euclidean norm. Cheaper than [`Vec3::norm`]; prefer it for
    /// cutoff tests (`r² < rc²`), which is what the enumeration hot loops do.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Returns the unit vector in this direction.
    ///
    /// # Panics
    /// Panics in debug builds if the norm is zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing zero vector");
        self / n
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Returns `true` if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
        assert_eq!(2.0 * a, a * 2.0);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(x.dot(y), 0.0);
        // Cross product is orthogonal to both arguments.
        let a = Vec3::new(1.3, -2.2, 0.7);
        let b = Vec3::new(0.4, 4.1, -1.9);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        v[1] = 9.0;
        assert_eq!(v.y, 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn min_max_hadamard() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(3.0, 2.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 2.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(3.0, 5.0, -1.0));
        assert_eq!(a.mul_elem(b), Vec3::new(3.0, 10.0, 2.0));
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.0, 0.0, 3.0)];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn array_conversions() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }
}
